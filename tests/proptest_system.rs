//! System-level property tests: randomized module behaviour against the
//! full kernel, checking the LXFI enforcement oracle end to end.

use proptest::prelude::*;

use lxfi::prelude::*;
use lxfi_core::Violation;
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::ProgramBuilder;
use lxfi_rewriter::InterfaceSpec;

/// A module that allocates `size` bytes and stores one byte at `off`.
fn poke_module(size: u64, off: u64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new("poke");
    let km = pb.import_func("kmalloc");
    pb.define("poke", 0, 0, |f| {
        f.call_extern(km, &[(size as i64).into()], Some(R1));
        f.add(R2, R1, off as i64);
        f.store(0x5ai64, R2, 0, lxfi_machine::Width::B1);
        f.ret(R1);
    });
    ModuleSpec {
        name: "poke".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The enforcement oracle: a store at offset `off` into a `size`-byte
    /// allocation is allowed iff `off < size` — matching kmalloc's
    /// transfer annotation exactly, for arbitrary sizes and offsets.
    #[test]
    fn store_allowed_iff_within_allocation(size in 1u64..4096, off in 0u64..8192) {
        let mut k = Kernel::boot(IsolationMode::Lxfi);
        let id = k.load_module(poke_module(size, off)).unwrap();
        let addr = k.module_fn_addr(id, "poke").unwrap();
        let r = k.enter(|k| k.invoke_module_function(addr, &[], None));
        if off < size {
            prop_assert!(r.is_ok(), "in-bounds store at {off} of {size} denied");
        } else {
            prop_assert!(r.is_err(), "out-of-bounds store at {off} of {size} allowed");
            let is_missing_write =
                matches!(k.last_violation(), Some(Violation::MissingWrite { .. }));
            prop_assert!(is_missing_write);
        }
    }

    /// Benign packet traffic of arbitrary sizes and interleavings never
    /// panics the LXFI kernel, and stock/LXFI agree on all counters.
    #[test]
    fn random_net_traffic_is_clean(
        ops in proptest::collection::vec((0u8..3, 1u64..1400), 1..25)
    ) {
        let run = |mode: IsolationMode| {
            let mut k = Kernel::boot(mode);
            k.pci_add_device(0x8086, 0x100e, 11);
            k.load_module(lxfi_modules::e1000::spec()).unwrap();
            k.enter(|k| k.pci_probe_all()).unwrap();
            let dev = *k.net().devices.last().unwrap();
            for &(op, len) in &ops {
                match op {
                    0 => {
                        k.enter(|k| k.net_send_packet(dev, len)).unwrap();
                    }
                    1 => {
                        k.enter(|k| k.net_deliver_rx(dev, len % 8 + 1)).unwrap();
                    }
                    _ => {
                        k.enter(|k| k.net_drain_rx()).unwrap();
                    }
                }
            }
            assert!(k.panic_reason().is_none());
            let rx_total = k.net().rx_total;
            (k.net_tx_packets(dev), rx_total)
        };
        prop_assert_eq!(run(IsolationMode::Stock), run(IsolationMode::Lxfi));
    }

    /// Socket traffic across all four protocol modules with arbitrary
    /// payload sizes never violates policy.
    #[test]
    fn random_socket_traffic_is_clean(
        msgs in proptest::collection::vec((0usize..4, 1u64..48), 1..20)
    ) {
        let mut k = Kernel::boot(IsolationMode::Lxfi);
        for spec in lxfi_modules::all_specs() {
            k.load_module(spec).unwrap();
        }
        let fams = [9u64, 21, 29, 30];
        let socks: Vec<_> = fams
            .iter()
            .map(|&f| k.enter(|k| k.sys_socket(f)).unwrap())
            .collect();
        let buf = k.user_alloc(64);
        let dest = k.user_alloc(8);
        for &(which, len) in &msgs {
            // Benign headers for each protocol (RDS gets a user dest).
            k.mem.write_word(buf, if which == 3 { 1 } else { 7 }).unwrap();
            k.mem.write_word(buf + 8, if which == 1 { dest } else { 4 }).unwrap();
            if which == 1 {
                k.mem.write_word(buf, dest).unwrap();
            }
            let s = socks[which];
            k.enter(|k| k.sys_sendmsg(s, buf, len.max(32))).unwrap();
        }
        prop_assert!(k.panic_reason().is_none());
    }
}
