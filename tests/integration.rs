//! Cross-crate integration tests: whole-system scenarios that span the
//! machine, runtime, rewriter, kernel, and modules.

use lxfi::prelude::*;
use lxfi_core::{RawCap, Violation};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Word};
use lxfi_rewriter::InterfaceSpec;

fn boot_full(mode: IsolationMode) -> Kernel {
    let mut k = Kernel::boot(mode);
    k.pci_add_device(0x8086, 0x100e, 11);
    for spec in lxfi_modules::all_specs() {
        k.load_module(spec).unwrap();
    }
    k
}

#[test]
fn full_system_mixed_workload_stays_clean_under_lxfi() {
    let mut k = boot_full(IsolationMode::Lxfi);
    k.enter(|k| k.pci_probe_all()).unwrap();
    let dev = *k.net().devices.last().unwrap();
    let buf = k.user_alloc(64);
    k.mem.write_word(buf, 3).unwrap();

    // Interleave every subsystem's traffic.
    let esock = k.enter(|k| k.sys_socket(9)).unwrap();
    let csock = k.enter(|k| k.sys_socket(29)).unwrap();
    let ti = k.enter(|k| k.dm_create(1, 0x1234)).unwrap();
    for round in 0..10u64 {
        k.enter(|k| k.net_send_packet(dev, 64 + round * 10))
            .unwrap();
        k.enter(|k| k.sys_sendmsg(esock, buf, 8 + round)).unwrap();
        k.enter(|k| k.sys_sendmsg(csock, buf, 16)).unwrap();
        k.enter(|k| k.dm_submit(ti, round % 2 == 0, 64, round as u8))
            .unwrap();
        if round % 3 == 0 {
            k.enter(|k| k.net_deliver_rx(dev, 4)).unwrap();
            k.enter(|k| k.net_drain_rx()).unwrap();
        }
    }
    assert!(k.panic_reason().is_none());
    assert_eq!(k.net_tx_packets(dev), 10);
}

#[test]
fn interrupts_preserve_module_principal() {
    // An interrupt arriving while a module executes must save and
    // restore the module's principal (§3.1 / §5 shadow stack).
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut pb = ProgramBuilder::new("m");
    let km = pb.import_func("kmalloc");
    pb.define("work", 0, 0, |f| {
        f.call_extern(km, &[64i64.into()], Some(R0));
        f.store8(1i64, R0, 0); // guarded write after the interrupt point
        f.ret(R0);
    });
    let id = k
        .load_module(ModuleSpec {
            name: "m".into(),
            program: pb.finish(),
            iface: InterfaceSpec::new(),
            iterators: vec![],
            init_fn: None,
        })
        .unwrap();
    let addr = k.module_fn_addr(id, "work").unwrap();
    // Simulate: enter the wrapper manually, interrupt, then verify the
    // interrupt ran in kernel context and the module context returned.
    let t = k.current_thread();
    let mid = k.runtime_module(id).unwrap();
    let shared = k.rt.shared_principal(mid);
    let tok = k.rt.wrapper_enter(t, Some((mid, shared)));
    assert_eq!(k.rt.current(t), Some((mid, shared)));
    let observed = k.interrupt(|k| k.rt.current(k.current_thread()));
    assert_eq!(observed, None, "interrupt handler runs as kernel");
    assert_eq!(k.rt.current(t), Some((mid, shared)), "principal restored");
    k.rt.wrapper_exit(t, tok).unwrap();
    // And the real call path still works.
    k.enter(|k| k.invoke_module_function(addr, &[], None))
        .unwrap();
}

#[test]
fn wrong_annotation_admits_attack_limitation() {
    // §2.2: LXFI trusts annotations. An over-permissive annotation on a
    // kernel export (granting WRITE to caller-chosen memory) lets a
    // compromised module escalate — reproducing the paper's caveat that
    // a mistaken annotation enforces the mistaken policy.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.export(
        "backdoor_grant",
        vec![lxfi_core::Param::scalar("p"), lxfi_core::Param::scalar("n")],
        // The "mistake": grants WRITE over an arbitrary caller-chosen
        // range (a correct annotation would check ownership instead).
        Some("post(transfer(write, p, n))"),
        std::sync::Arc::new(|_k, _a| Ok(0)),
    );
    let mut pb = ProgramBuilder::new("evil");
    let bd = pb.import_func("backdoor_grant");
    pb.define("pwn", 1, 0, |f| {
        f.call_extern(bd, &[R0.into(), 8i64.into()], None);
        f.store8(0i64, R0, 0); // now "legitimately" writable
        f.ret(0i64);
    });
    let id = k
        .load_module(ModuleSpec {
            name: "evil".into(),
            program: pb.finish(),
            iface: InterfaceSpec::new(),
            iterators: vec![],
            init_fn: None,
        })
        .unwrap();
    let uid_addr = (k.procs().current_task() as i64 + lxfi_kernel::process::task::UID) as u64;
    let pwn = k.module_fn_addr(id, "pwn").unwrap();
    k.enter(|k| k.invoke_module_function(pwn, &[uid_addr], None))
        .unwrap();
    assert_eq!(
        k.procs().current_uid(&k.mem),
        0,
        "the mistaken annotation let the module zero the uid — LXFI \
         enforces the specified policy, not the intended one (§2.2)"
    );
}

#[test]
fn annotation_laundering_is_rejected() {
    // A module function annotated for one pointer type cannot be invoked
    // through a differently-annotated call site: hashes must match (§4.1).
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut pb = ProgramBuilder::new("m");
    let benign_sig = pb.sig("benign_cb", 1);
    let other_sig = pb.sig("other_cb", 1);
    let cb = pb.define("cb", 1, 0, |f| f.ret(R0));
    pb.assign_sig(cb, benign_sig);
    pb.define("call_via_other", 1, 0, |f| {
        // r0 = function pointer; call it through the *other* type.
        f.call_ptr(R0, other_sig, &[7i64.into()], Some(R0));
        f.ret(R0);
    });
    let mut iface = InterfaceSpec::new();
    iface.declare_sig(lxfi_core::FnDecl::new(
        "benign_cb",
        vec![lxfi_core::Param::scalar("x")],
        lxfi_annotations::parse_fn_annotations("pre(check(write, x, 8))").unwrap(),
    ));
    iface.declare_sig(lxfi_core::FnDecl::new(
        "other_cb",
        vec![lxfi_core::Param::scalar("x")],
        lxfi_annotations::parse_fn_annotations("").unwrap(),
    ));
    let id = k
        .load_module(ModuleSpec {
            name: "m".into(),
            program: pb.finish(),
            iface,
            iterators: vec![],
            init_fn: None,
        })
        .unwrap();
    let cb_addr = k.module_fn_addr(id, "cb").unwrap();
    let via = k.module_fn_addr(id, "call_via_other").unwrap();
    let r = k.enter(|k| k.invoke_module_function(via, &[cb_addr], None));
    assert!(r.is_err());
    assert!(matches!(
        k.last_violation(),
        Some(Violation::AnnotationMismatch { .. })
    ));
}

#[test]
fn figure4_alias_gives_one_principal_two_names() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(lxfi_modules::e1000::spec()).unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let pcidev = k.pci().devices[0];
    let ndev = *k.net().devices.last().unwrap();
    let mid = k.runtime_module(k.module_id("e1000").unwrap()).unwrap();
    let p_pci = k.rt.principal_for_name(mid, pcidev);
    let p_net = k.rt.principal_for_name(mid, ndev);
    assert_eq!(
        p_pci, p_net,
        "lxfi_princ_alias bound both names to one principal (Figure 4)"
    );
    // The single principal holds both the REF (from probe) and the
    // device WRITE (from alloc_etherdev).
    let t = k.rt.ref_type("struct pci_dev");
    assert!(k.rt.owns(p_pci, RawCap::reference(t, pcidev)));
    assert!(k.rt.owns(p_net, RawCap::write(ndev, 128)));
}

#[test]
fn two_nics_are_two_principals() {
    // Two e1000-managed NICs: compromising one device's principal gives
    // no access to the other's MMIO or net_device (§2.1's goal).
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.pci_add_device(0x8086, 0x100e, 12);
    k.load_module(lxfi_modules::e1000::spec()).unwrap();
    assert_eq!(k.enter(|k| k.pci_probe_all()).unwrap(), 2);
    let mid = k.runtime_module(k.module_id("e1000").unwrap()).unwrap();
    let d0 = k.pci().devices[0];
    let d1 = k.pci().devices[1];
    let p0 = k.rt.principal_for_name(mid, d0);
    let p1 = k.rt.principal_for_name(mid, d1);
    assert_ne!(p0, p1);
    let rt_ty = k.rt.ref_type("struct pci_dev");
    assert!(k.rt.owns(p0, RawCap::reference(rt_ty, d0)));
    assert!(!k.rt.owns(p0, RawCap::reference(rt_ty, d1)));
    // Both devices still transmit independently.
    let devs = k.net().devices.clone();
    for dev in devs {
        k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
        assert_eq!(k.net_tx_packets(dev), 1);
    }
}

#[test]
fn stock_and_lxfi_agree_on_benign_behaviour() {
    // Rewriting must be semantics-preserving for policy-abiding code:
    // the observable outputs of a mixed workload match across modes.
    let run = |mode: IsolationMode| -> (u64, u64, Vec<u8>) {
        let mut k = boot_full(mode);
        k.enter(|k| k.pci_probe_all()).unwrap();
        let dev = *k.net().devices.last().unwrap();
        for _ in 0..5 {
            k.enter(|k| k.net_send_packet(dev, 100)).unwrap();
        }
        let ti = k.enter(|k| k.dm_create(1, 0xfeed)).unwrap();
        let b = k.enter(|k| k.dm_submit(ti, true, 64, 0x33)).unwrap();
        let payload = k.bio_payload(b).unwrap();
        let rx = k.enter(|k| k.net_deliver_rx(dev, 6)).unwrap();
        (k.net_tx_packets(dev), rx, payload)
    };
    let a = run(IsolationMode::Stock);
    let b = run(IsolationMode::Lxfi);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "dm-crypt ciphertext identical across modes");
}

#[test]
fn kernel_pass_instrumented_the_thunks() {
    // The loaded kernel thunks under LXFI must contain indirect-call
    // guards; under stock they must not.
    let k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.module_id("<kernel-thunks>").unwrap();
    let prog = k.module_program(id);
    let guards = prog
        .funcs
        .iter()
        .flat_map(|f| &f.insts)
        .filter(|i| matches!(i, lxfi_machine::Inst::GuardIndCall { .. }))
        .count();
    assert!(guards >= 7, "every dispatch thunk guarded, got {guards}");

    let k = Kernel::boot(IsolationMode::Stock);
    let id = k.module_id("<kernel-thunks>").unwrap();
    let prog = k.module_program(id);
    assert!(prog
        .funcs
        .iter()
        .flat_map(|f| &f.insts)
        .all(|i| !i.is_guard()));
}

#[test]
fn violations_identify_the_offending_principal() {
    // The violation names the instance principal, which maps back to the
    // socket — useful forensics the multi-principal design enables.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(lxfi_modules::rds::spec()).unwrap();
    let sock = k.enter(|k| k.sys_socket(21)).unwrap();
    let buf = k.user_alloc(32);
    let victim: Word = 0xffff_8a00_dead_0000;
    k.mem.write_word(buf, victim).unwrap();
    k.mem.write_word(buf + 8, 1).unwrap();
    k.enter(|k| k.sys_sendmsg(sock, buf, 16)).unwrap();
    // Resolve the expected principal BEFORE the violation: the fault
    // quarantines the module, unpublishing its name and retiring its
    // principals.
    let rds = k.module_id("rds").unwrap();
    let mid = k.runtime_module(rds).unwrap();
    let expected = k.rt.principal_for_name(mid, sock);
    let _ = k.enter(|k| k.sys_recvmsg(sock, 0, 0));
    let Some(Violation::MissingWrite {
        principal, addr, ..
    }) = k.last_violation()
    else {
        panic!("expected MissingWrite");
    };
    assert_eq!(addr, victim);
    assert_eq!(expected, principal);
    // The structured fault record carries the same attribution — no
    // string-matching needed to learn who died.
    let fault = k.last_fault().unwrap();
    assert_eq!(fault.module, "rds");
    assert_eq!(fault.mid, Some(mid));
    assert_eq!(fault.principal, Some(principal));
    assert!(k.panic_reason().is_none(), "module fault, not kernel panic");
}

#[test]
fn dm_crypt_xor_is_an_involution() {
    // Submitting the same buffer twice through dm-crypt restores the
    // plaintext — end-to-end evidence the map path transforms data
    // deterministically under full enforcement.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(lxfi_modules::dm_crypt::spec()).unwrap();
    let ti = k.enter(|k| k.dm_create(1, 0xabcd)).unwrap();
    let b1 = k.enter(|k| k.dm_submit(ti, true, 64, 0x55)).unwrap();
    let once = k.bio_payload(b1).unwrap();
    assert!(once.iter().any(|&x| x != 0x55), "encrypted");
    // Feed the ciphertext back through: XOR with the same key schedule.
    let ops = k.dm().targets[0].1;
    k.enter(|k| k.indirect_call(ops + 8, "dm_map", &[ti, b1]))
        .unwrap();
    let twice = k.bio_payload(b1).unwrap();
    assert!(twice.iter().all(|&x| x == 0x55), "decrypted back");
}
