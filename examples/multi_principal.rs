//! Multi-principal isolation (§3.1): two econet sockets are separate
//! principals; compromising one instance's data path cannot touch the
//! other's, and cross-instance list surgery needs the global principal.
//!
//! Run with: `cargo run --example multi_principal`

use lxfi::prelude::*;
use lxfi_core::RawCap;
use lxfi_modules::econet;

fn main() {
    println!("== multi-principal econet ==\n");
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(econet::spec()).unwrap();

    let s1 = k.enter(|k| k.sys_socket(econet::ECONET_FAMILY)).unwrap();
    let s2 = k.enter(|k| k.sys_socket(econet::ECONET_FAMILY)).unwrap();
    println!("socket A at {s1:#x}, socket B at {s2:#x}");

    // Traffic on each socket runs as that socket's principal.
    let buf = k.user_alloc(64);
    k.mem.write_word(buf, 1).unwrap();
    k.enter(|k| k.sys_sendmsg(s1, buf, 32)).unwrap();
    k.enter(|k| k.sys_sendmsg(s2, buf, 16)).unwrap();
    println!(
        "queued: A={} B={}",
        k.enter(|k| k.sys_ioctl(s1, 0, 0)).unwrap(),
        k.enter(|k| k.sys_ioctl(s2, 0, 0)).unwrap()
    );

    // Inspect the capability state: A's principal owns A's sock, not B's.
    let mid = k.runtime_module(k.module_id("econet").unwrap()).unwrap();
    let pa = k.rt.principal_for_name(mid, s1);
    let pb = k.rt.principal_for_name(mid, s2);
    println!(
        "\nprincipal(A) owns WRITE(A): {}",
        k.rt.owns(pa, RawCap::write(s1, 64))
    );
    println!(
        "principal(A) owns WRITE(B): {}",
        k.rt.owns(pa, RawCap::write(s2, 64))
    );
    println!(
        "principal(B) owns WRITE(B): {}",
        k.rt.owns(pb, RawCap::write(s2, 64))
    );
    println!(
        "global principal owns both: {} {}",
        k.rt.owns(k.rt.global_principal(mid), RawCap::write(s1, 64)),
        k.rt.owns(k.rt.global_principal(mid), RawCap::write(s2, 64))
    );

    // Link both sockets into the module's global list (bind switches to
    // the global principal for the list surgery — Guideline 6).
    let addr = k.user_alloc(16);
    k.mem.write_word(addr, 7).unwrap();
    k.enter(|k| k.sys_bind(s1, addr)).unwrap();
    k.enter(|k| k.sys_bind(s2, addr)).unwrap();
    println!("\nboth sockets bound and linked into the global list");

    // The global-principal path does the list surgery legitimately.
    let id = k.module_id("econet").unwrap();
    let unlink = k.module_fn_addr(id, "econet_unlink").unwrap();
    let noglobal = k.module_fn_addr(id, "econet_unlink_noglobal").unwrap();
    k.enter(|k| k.invoke_module_function(unlink, &[s1], None))
        .unwrap();
    println!("global principal unlinked socket A: OK");

    // A compromised instance trying to write the sibling's sock directly
    // is stopped — and only econet is quarantined (docs/fault-model.md);
    // the kernel itself keeps running.
    match k.enter(|k| k.invoke_module_function(noglobal, &[s2, s1], None)) {
        Err(e) => println!("\ninstance principal touching sibling sock: {e}"),
        Ok(_) => unreachable!(),
    }
    assert!(k.panic_reason().is_none());
    println!(
        "kernel panicked: false; econet quarantined: {}",
        k.module_id("econet").is_none()
    );
}
