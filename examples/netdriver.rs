//! The Figure 1/4 scenario end to end: the e1000 driver probes a PCI
//! device, aliases its principals, transmits and receives packets — all
//! under LXFI enforcement, with guard statistics at the end.
//!
//! Run with: `cargo run --example netdriver`

use lxfi::prelude::*;
use lxfi_core::ALL_GUARD_KINDS;

fn main() {
    println!("== e1000 under LXFI ==\n");
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(lxfi_modules::e1000::spec()).unwrap();

    // PCI probe: runs as the principal named by the pci_dev pointer,
    // receives REF(struct pci_dev), and aliases the net_device name to
    // the same principal (Figure 4 lines 69-78).
    let bound = k.enter(|k| k.pci_probe_all()).unwrap();
    println!("pci_probe_all: {bound} device bound");
    let dev = *k.net().devices.last().unwrap();

    // Transmit through the (rewritten) dev_queue_xmit thunk: the skb's
    // capabilities transfer to the driver, which writes the MMIO ring.
    for len in [64, 256, 1448] {
        let r = k.enter(|k| k.net_send_packet(dev, len)).unwrap();
        println!("tx {len:>5}B -> status {r} (NETDEV_TX_OK)");
    }
    println!("driver TX counter: {}", k.net_tx_packets(dev));

    // Receive via NAPI poll inside a simulated interrupt; each skb's
    // capabilities transfer to the kernel at netif_rx.
    let got = k.enter(|k| k.net_deliver_rx(dev, 8)).unwrap();
    let drained = k.enter(|k| k.net_drain_rx()).unwrap();
    println!("rx: poll delivered {got}, stack drained {drained}");

    println!("\nguard statistics:");
    for kind in ALL_GUARD_KINDS {
        println!(
            "  {:<20} {:>6} guards  {:>8} cycles",
            kind.label(),
            k.rt.stats.count(kind),
            k.rt.stats.cycles(kind)
        );
    }
    assert!(k.panic_reason().is_none());
    println!("\nno violations — the annotated interface was used as intended.");
}
