//! Regenerates the Figure 8 security table: all exploits against both
//! kernels (same content as `cargo run -p lxfi-bench --bin table_security`).
//!
//! Run with: `cargo run --example security_eval`

use lxfi_exploits::run_all;
use lxfi_kernel::IsolationMode;

fn main() {
    println!(
        "{:<28} {:>14} {:>14}  blocked by",
        "Exploit", "stock", "LXFI"
    );
    println!("{}", "-".repeat(86));
    let stock = run_all(IsolationMode::Stock);
    let lxfi = run_all(IsolationMode::Lxfi);
    for (s, l) in stock.iter().zip(&lxfi) {
        println!(
            "{:<28} {:>14} {:>14}  {}",
            s.name,
            if s.succeeded { "root/hidden" } else { "failed" },
            if l.succeeded {
                "NOT PREVENTED"
            } else {
                "prevented"
            },
            l.blocked_by
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
    }
    assert!(stock.iter().all(|o| o.succeeded));
    assert!(lxfi.iter().all(|o| !o.succeeded));
    println!("\nAll exploits effective on stock, all prevented by LXFI — Figure 8 reproduced.");
}
