//! Quickstart: annotate a kernel API, load a module under LXFI, and watch
//! a violation get blocked.
//!
//! Run with: `cargo run --example quickstart`

use lxfi::prelude::*;
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::ProgramBuilder;
use lxfi_rewriter::InterfaceSpec;

fn main() {
    // A tiny module: `fill(n)` allocates n bytes and writes them;
    // `smash(n)` allocates n bytes and writes one byte past the end.
    let spec = || {
        let mut pb = ProgramBuilder::new("demo");
        let kmalloc = pb.import_func("kmalloc");
        pb.define("fill", 1, 0, |f| {
            let done = f.label();
            let top = f.label();
            f.mov(R5, R0);
            f.call_extern(kmalloc, &[R0.into()], Some(R1));
            f.mov(R2, 0i64);
            f.bind(top);
            f.br(lxfi_machine::Cond::Eq, R2, R5, done);
            f.add(R3, R1, R2);
            f.store(0x42i64, R3, 0, lxfi_machine::Width::B1);
            f.add(R2, R2, 1i64);
            f.jmp(top);
            f.bind(done);
            f.ret(R1);
        });
        pb.define("smash", 1, 0, |f| {
            f.mov(R5, R0);
            f.call_extern(kmalloc, &[R0.into()], Some(R1));
            f.add(R2, R1, R5);
            f.store(0x66i64, R2, 0, lxfi_machine::Width::B1); // one past end!
            f.ret(R1);
        });
        ModuleSpec {
            name: "demo".into(),
            program: pb.finish(),
            iface: InterfaceSpec::new(),
            iterators: vec![],
            init_fn: None,
        }
    };

    println!("== LXFI quickstart ==\n");
    println!(
        "kmalloc's annotation is:\n  post(if (return != 0) transfer(write, return, size))\n\
         so the module receives a WRITE capability for exactly the bytes\n\
         it asked for — nothing more.\n"
    );

    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(spec()).unwrap();

    // In-bounds writes are fine.
    let fill = k.module_fn_addr(id, "fill").unwrap();
    let p = k
        .enter(|k| k.invoke_module_function(fill, &[64], None))
        .unwrap();
    println!("fill(64)  -> wrote 64 bytes at {p:#x}: OK");

    // The out-of-bounds write is stopped at the first bad byte.
    let smash = k.module_fn_addr(id, "smash").unwrap();
    match k.enter(|k| k.invoke_module_function(smash, &[64], None)) {
        Err(e) => println!("smash(64) -> {e}"),
        Ok(_) => unreachable!("LXFI must block the overflow"),
    }
    println!("\nviolation recorded: {:?}", k.last_violation().unwrap());

    // The same module on a stock kernel corrupts the heap silently.
    let mut k = Kernel::boot(IsolationMode::Stock);
    let id = k.load_module(spec()).unwrap();
    let smash = k.module_fn_addr(id, "smash").unwrap();
    let p = k
        .enter(|k| k.invoke_module_function(smash, &[64], None))
        .unwrap();
    let b = k.mem.read(p + 64, lxfi_machine::Width::B1).unwrap();
    println!("\nstock kernel: smash(64) wrote {b:#x} into the adjacent object — silent corruption");
}
