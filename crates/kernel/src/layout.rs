//! Simulated address-space layout.
//!
//! Mirrors the x86-64 split the paper's testbed uses: user space in the
//! lower half, kernel in the upper half. Regions are disjoint by
//! construction; nothing enforces them except the code that allocates
//! from them, exactly like a real kernel.

use lxfi_machine::Word;

/// Exclusive upper bound of user-space addresses.
pub const USER_TOP: Word = 0x0000_8000_0000_0000;

/// Base of the slab/kmalloc heap.
pub const HEAP_BASE: Word = 0xffff_8800_0000_0000;

/// Base of kernel thread stacks; each thread gets [`STACK_SIZE`] bytes,
/// spaced [`STACK_STRIDE`] apart.
pub const STACK_BASE: Word = 0xffff_9000_0000_0000;

/// Kernel stack size per thread (8 KiB, like x86-64 Linux).
pub const STACK_SIZE: u64 = 0x2000;

/// Spacing between thread stacks (guard gap included).
pub const STACK_STRIDE: u64 = 0x10000;

/// Base of module load windows; module `i` owns
/// `[MODULE_BASE + i*MODULE_STRIDE, ... + MODULE_STRIDE)`.
pub const MODULE_BASE: Word = 0xffff_a000_0000_0000;

/// Size of one module window.
pub const MODULE_STRIDE: u64 = 0x0100_0000;

/// Offset of a module's function-address region inside its window.
/// Function "addresses" identify functions for CALL capabilities and the
/// registry; they are not backed by data pages.
pub const MODULE_FN_OFFSET: u64 = 0x00f0_0000;

/// Spacing between module function addresses.
pub const FN_SPACING: u64 = 16;

/// Base of kernel exported-function addresses.
pub const EXPORT_BASE: Word = 0xffff_ffff_8000_0000;

/// Base of kernel data-symbol region (exported data like `jiffies`).
pub const KDATA_BASE: Word = 0xffff_8900_0000_0000;

/// Base of the kernel's own static objects (process table, ops tables).
pub const KSTATIC_BASE: Word = 0xffff_8a00_0000_0000;

/// Number of slab heap shards: the kmalloc heap is carved into this many
/// disjoint sub-regions, each backed by its own [`crate::slab::Slab`]
/// behind its own lock, and each given its own writer-index shard and
/// writer-map stripe. A CPU refills its magazines from "its" shard
/// (`cpu % SLAB_SHARDS`), so per-packet alloc/free traffic on different
/// CPUs touches disjoint locks end to end.
pub const SLAB_SHARDS: u64 = 8;

/// Byte span of one slab heap shard ([`HEAP_BASE`]..[`KDATA_BASE`] is
/// 1 TiB; eight shards of 128 GiB each).
pub const SLAB_SHARD_SPAN: u64 = (KDATA_BASE - HEAP_BASE) / SLAB_SHARDS;

/// Base address of slab heap shard `i`.
pub fn slab_shard_base(i: u64) -> Word {
    HEAP_BASE + i * SLAB_SHARD_SPAN
}

/// The slab heap shard an address belongs to (callers guarantee the
/// address is inside the heap region).
pub fn slab_shard_of(addr: Word) -> usize {
    debug_assert!((HEAP_BASE..KDATA_BASE).contains(&addr));
    ((addr - HEAP_BASE) / SLAB_SHARD_SPAN) as usize
}

/// Shard split points for the runtime's reverse writer index: one shard
/// per address region (user space, heap, kernel data, kernel statics,
/// stacks, module area, exports), plus a shard per module window for the
/// first [`SHARDED_MODULE_WINDOWS`] modules, plus one per slab heap
/// shard — the regions whose capability traffic is independent, so
/// grant/revoke splices in one never move another's intervals. The same
/// split points stripe the runtime's writer-set bitmap, so per-CPU slab
/// zeroing never contends on another CPU's stripe lock.
pub fn shard_boundaries() -> Vec<Word> {
    let mut b = vec![
        HEAP_BASE,
        KDATA_BASE,
        KSTATIC_BASE,
        STACK_BASE,
        MODULE_BASE,
        EXPORT_BASE,
    ];
    for i in 1..=SHARDED_MODULE_WINDOWS {
        b.push(MODULE_BASE + i * MODULE_STRIDE);
    }
    for i in 1..SLAB_SHARDS {
        b.push(slab_shard_base(i));
    }
    b.sort_unstable();
    b
}

/// Module windows given their own writer-index shard (later windows
/// share the tail shard; ten annotated modules exist today).
pub const SHARDED_MODULE_WINDOWS: u64 = 12;

/// Returns true for user-space addresses.
pub fn is_user_addr(a: Word) -> bool {
    a < USER_TOP
}

/// Returns true for kernel-half addresses.
pub fn is_kernel_addr(a: Word) -> bool {
    a >= 0xffff_0000_0000_0000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // layout constants checked on purpose
    fn regions_are_disjoint_and_classified() {
        assert!(is_user_addr(0x1000));
        assert!(!is_user_addr(HEAP_BASE));
        assert!(is_kernel_addr(HEAP_BASE));
        assert!(is_kernel_addr(STACK_BASE));
        assert!(is_kernel_addr(MODULE_BASE));
        assert!(is_kernel_addr(EXPORT_BASE));
        assert!(!is_kernel_addr(USER_TOP - 1));
        // Module windows do not collide with stacks or heap.
        assert!(MODULE_BASE > STACK_BASE + 1024 * STACK_STRIDE);
        assert!(STACK_BASE > HEAP_BASE);
        assert!(EXPORT_BASE > MODULE_BASE + 256 * MODULE_STRIDE);
    }

    #[test]
    fn shard_boundaries_are_sorted_distinct_regions() {
        let b = shard_boundaries();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        // Every region base is a split point, so no region shares a
        // shard with another.
        for base in [
            HEAP_BASE,
            KDATA_BASE,
            KSTATIC_BASE,
            STACK_BASE,
            MODULE_BASE,
            EXPORT_BASE,
        ] {
            assert!(b.contains(&base), "{base:#x} missing");
        }
        // The per-module-window boundaries stay inside the module area.
        assert!(b
            .iter()
            .filter(|&&x| x > MODULE_BASE && x < EXPORT_BASE)
            .all(|&x| (x - MODULE_BASE).is_multiple_of(MODULE_STRIDE)));
    }
}
