//! The socket layer: protocol registration and the syscalls exploits use.
//!
//! Protocol modules (econet, RDS, CAN) register a `proto_ops` table; the
//! kernel dispatches `sendmsg`/`recvmsg`/`ioctl`/`bind` through the table
//! with the KIR thunks from [`crate::net::kernel_thunks`]. Because the
//! `proto_ops` table lives in *module* memory, those dispatches take the
//! slow path of the indirect-call check — exactly the paths the RDS and
//! Econet exploits corrupt.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_machine::{Trap, Word};

use crate::kernel::KernelCpu;
use crate::types::{shmid_kernel, sock};

/// Annotation shared by the socket callbacks: the callee principal is the
/// socket instance, which receives WRITE over its `sock` structure.
pub const PROTO_SOCK_ANN: &str = "principal(sock) pre(copy(write, sock, 64))";

/// Socket-layer state.
#[derive(Debug, Default)]
pub struct SocketState {
    /// family → `proto_ops` table address (module memory).
    pub families: Vec<(u64, Word)>,
    /// All sockets ever created.
    pub sockets: Vec<Word>,
    /// System-V shm segments (`shmid_kernel` addresses), indexed by id.
    pub shm_segments: Vec<Word>,
}

/// Registers socket exports and interface annotations.
pub fn register(k: &mut KernelCpu) {
    for name in ["proto_ioctl", "proto_sendmsg", "proto_recvmsg"] {
        k.define_sig(
            name,
            vec![
                Param::ptr("sock", "sock"),
                Param::scalar("a"),
                Param::scalar("b"),
            ],
            PROTO_SOCK_ANN,
        );
    }
    k.define_sig(
        "proto_bind",
        vec![Param::ptr("sock", "sock"), Param::scalar("addr")],
        PROTO_SOCK_ANN,
    );
    // Kernel-owned shm callback type: modules never legitimately provide
    // this, which is why a corrupted shmid pointer cannot pass the
    // annotation-match check even if a CALL capability existed.
    k.define_sig("shm_ops", vec![Param::ptr("shp", "shmid_kernel")], "");

    k.export(
        "sock_register",
        vec![Param::scalar("family"), Param::scalar("ops")],
        Some(""),
        Arc::new(|k, args| {
            k.sock().families.push((args[0], args[1]));
            Ok(0)
        }),
    );

    // The kernel's legitimate shm handler (what `sys_shmget` installs).
    k.export(
        "shm_default_ops",
        vec![Param::ptr("shp", "shmid_kernel")],
        Some(""),
        Arc::new(|_k, _args| Ok(0)),
    );
}

impl KernelCpu {
    /// `socket(2)`: creates a socket of `family`. The `sock` struct lives
    /// in kernel memory; its `ops` field points at the module's table.
    pub fn sys_socket(&mut self, family: u64) -> Result<Word, Trap> {
        let ops = self
            .sock()
            .families
            .iter()
            .find(|&&(f, _)| f == family)
            .map(|&(_, o)| o)
            .ok_or_else(|| Trap::BadRef(format!("no protocol family {family}")))?;
        let s = self.kstatic_alloc(sock::SIZE);
        self.mem.write_word((s as i64 + sock::OPS) as u64, ops)?;
        self.mem
            .write_word((s as i64 + sock::FAMILY) as u64, family)?;
        self.sock().sockets.push(s);
        Ok(s)
    }

    /// `sendmsg(2)` — dispatches through the module's `proto_ops`.
    pub fn sys_sendmsg(&mut self, sock: Word, buf: Word, len: u64) -> Result<Word, Trap> {
        self.run_kernel_thunk("sock_sendmsg", &[sock, buf, len])
    }

    /// `recvmsg(2)`.
    pub fn sys_recvmsg(&mut self, sock: Word, buf: Word, len: u64) -> Result<Word, Trap> {
        self.run_kernel_thunk("sock_recvmsg", &[sock, buf, len])
    }

    /// `ioctl(2)` on a socket.
    pub fn sys_ioctl(&mut self, sock: Word, cmd: u64, arg: Word) -> Result<Word, Trap> {
        self.run_kernel_thunk("sock_ioctl", &[sock, cmd, arg])
    }

    /// `bind(2)`.
    pub fn sys_bind(&mut self, sock: Word, addr: Word) -> Result<Word, Trap> {
        self.run_kernel_thunk("sock_bind", &[sock, addr])
    }

    /// `shmget(2)`-ish: creates a System-V shm segment **from the slab**
    /// (the CAN BCM exploit grooms the heap so its overflowed buffer sits
    /// directly before this object).
    pub fn sys_shmget(&mut self, segsz: u64) -> Result<u64, Trap> {
        let shp = self
            .kmalloc_cpu(shmid_kernel::SIZE)
            .ok_or_else(|| Trap::BadRef("shm alloc".into()))?;
        self.mem.zero_range(shp, shmid_kernel::SIZE)?;
        self.rt.note_zeroed(shp, shmid_kernel::SIZE);
        // The kernel installs its legitimate shm handler.
        let handler = self
            .export_addr("shm_default_ops")
            .expect("shm handler export");
        self.mem
            .write_word((shp as i64 + shmid_kernel::OPS) as u64, handler)?;
        self.mem
            .write_word((shp as i64 + shmid_kernel::SEGSZ) as u64, segsz)?;
        // Push and read the id under one guard: a concurrent shmget on
        // another CPU must not shift the index between the two.
        let id = {
            let mut sock = self.sock();
            sock.shm_segments.push(shp);
            sock.shm_segments.len() as u64 - 1
        };
        Ok(id)
    }

    /// `shmctl(2)`-ish: invokes the segment's ops function pointer via the
    /// kernel thunk — the indirect call the CAN BCM exploit redirects.
    pub fn sys_shmctl(&mut self, id: u64) -> Result<Word, Trap> {
        let shp = *self
            .sock()
            .shm_segments
            .get(id as usize)
            .ok_or_else(|| Trap::BadRef(format!("shm id {id}")))?;
        self.run_kernel_thunk("shm_invoke", &[shp])
    }

    /// Address of a shm segment (the exploit reads this via a kernel
    /// info leak; we hand it out directly — leaks are out of scope, §2).
    pub fn shm_segment_addr(&self, id: u64) -> Option<Word> {
        self.sock().shm_segments.get(id as usize).copied()
    }
}
