//! Simulated kernel struct layouts.
//!
//! Field offsets of the structures the modules and exploits manipulate.
//! These stand in for the C struct definitions; the type sizes are also
//! registered in [`lxfi_core::TypeLayouts`] so annotations can resolve
//! `sizeof(*ptr)` defaults.

use lxfi_core::TypeLayouts;

/// `struct sk_buff` — a network packet.
pub mod sk_buff {
    /// Pointer to packet payload.
    pub const DATA: i64 = 0;
    /// Payload length in bytes.
    pub const LEN: i64 = 8;
    /// Owning device (`struct net_device *`).
    pub const DEV: i64 = 16;
    /// Protocol tag.
    pub const PROTOCOL: i64 = 24;
    /// Total size of the header object.
    pub const SIZE: u64 = 64;
}

/// `struct net_device` — a network interface.
pub mod net_device {
    /// Pointer to `struct net_device_ops`.
    pub const DEV_OPS: i64 = 0;
    /// MTU.
    pub const MTU: i64 = 8;
    /// Interface flags.
    pub const FLAGS: i64 = 16;
    /// Driver-private area pointer.
    pub const PRIV: i64 = 24;
    /// Transmit-packet counter.
    pub const TX_PACKETS: i64 = 32;
    /// Receive-packet counter.
    pub const RX_PACKETS: i64 = 40;
    /// Attached packet scheduler (`struct Qdisc *`, Guideline 7).
    pub const QDISC: i64 = 48;
    /// Total size.
    pub const SIZE: u64 = 128;
}

/// `struct net_device_ops` — device driver callbacks.
pub mod net_device_ops {
    /// `ndo_start_xmit(skb, dev)`.
    pub const NDO_START_XMIT: i64 = 0;
    /// `ndo_open(dev)`.
    pub const NDO_OPEN: i64 = 8;
    /// `ndo_stop(dev)`.
    pub const NDO_STOP: i64 = 16;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct pci_dev` — a PCI device.
pub mod pci_dev {
    /// Vendor id.
    pub const VENDOR: i64 = 0;
    /// Device id.
    pub const DEVICE: i64 = 4;
    /// IRQ line.
    pub const IRQ: i64 = 8;
    /// Enable count (`pci_enable_device` increments).
    pub const ENABLED: i64 = 16;
    /// Simulated MMIO window base.
    pub const MMIO_BASE: i64 = 24;
    /// Simulated MMIO window length.
    pub const MMIO_LEN: i64 = 32;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct socket` / `struct sock` (merged for the simulation).
pub mod sock {
    /// Pointer to `struct proto_ops`.
    pub const OPS: i64 = 0;
    /// Protocol family.
    pub const FAMILY: i64 = 8;
    /// Socket state.
    pub const STATE: i64 = 16;
    /// Protocol-private pointer.
    pub const PRIV: i64 = 24;
    /// Bytes queued.
    pub const QUEUED: i64 = 32;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct proto_ops` — protocol callbacks.
pub mod proto_ops {
    /// `ioctl(sock, cmd, arg)`.
    pub const IOCTL: i64 = 0;
    /// `sendmsg(sock, buf, len)`.
    pub const SENDMSG: i64 = 8;
    /// `recvmsg(sock, buf, len)`.
    pub const RECVMSG: i64 = 16;
    /// `bind(sock, addr)`.
    pub const BIND: i64 = 24;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct shmid_kernel` — System-V shared memory segment (the CAN BCM
/// exploit's corruption target).
pub mod shmid_kernel {
    /// Permissions word.
    pub const PERM: i64 = 0;
    /// Function pointer invoked on shm operations (stands in for the
    /// `file->f_op` chain the real exploit corrupts).
    pub const OPS: i64 = 8;
    /// Segment size.
    pub const SEGSZ: i64 = 16;
    /// Total size (chosen to share the 64-byte slab class with the
    /// undersized CAN BCM buffer).
    pub const SIZE: u64 = 64;
}

/// `struct Qdisc` — packet scheduler (Guideline 7).
pub mod qdisc {
    /// `enqueue(skb, qdisc)` callback.
    pub const ENQUEUE: i64 = 0;
    /// Owning device.
    pub const DEV: i64 = 8;
    /// Queue length.
    pub const QLEN: i64 = 16;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct snd_pcm` — a sound PCM stream.
pub mod snd_pcm {
    /// Pointer to ops table.
    pub const OPS: i64 = 0;
    /// DMA buffer pointer.
    pub const DMA_AREA: i64 = 8;
    /// DMA buffer size.
    pub const DMA_BYTES: i64 = 16;
    /// Stream state.
    pub const STATE: i64 = 24;
    /// Hardware pointer position.
    pub const HW_PTR: i64 = 32;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct snd_pcm_ops` — PCM stream callbacks.
pub mod snd_pcm_ops {
    /// `pcm_trigger(pcm, cmd)`.
    pub const TRIGGER: i64 = 0;
    /// `pcm_pointer(pcm, _)`.
    pub const POINTER: i64 = 8;
    /// `pcm_capture(pcm, bytes)` — the capture-period bottom half.
    pub const CAPTURE: i64 = 16;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct dm_target` — a device-mapper target instance.
pub mod dm_target {
    /// Pointer to the target-type ops.
    pub const OPS: i64 = 0;
    /// Target-private pointer (set by `ctr`).
    pub const PRIV: i64 = 8;
    /// Length of the mapped region, in sectors.
    pub const LEN: i64 = 16;
    /// Backing device start sector.
    pub const BEGIN: i64 = 24;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `struct bio` — a block I/O request.
pub mod bio {
    /// Data buffer pointer.
    pub const DATA: i64 = 0;
    /// Length in bytes.
    pub const LEN: i64 = 8;
    /// Target sector.
    pub const SECTOR: i64 = 16;
    /// 0 = read, 1 = write.
    pub const RW: i64 = 24;
    /// Completion status (written by the driver).
    pub const STATUS: i64 = 32;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// `spinlock_t`.
pub mod spinlock {
    /// Total size.
    pub const SIZE: u64 = 8;
}

/// Registers every simulated struct size with the layout registry.
pub fn register_layouts(l: &mut TypeLayouts) {
    l.define("sk_buff", sk_buff::SIZE);
    l.define("struct sk_buff", sk_buff::SIZE);
    l.define("net_device", net_device::SIZE);
    l.define("struct net_device", net_device::SIZE);
    l.define("net_device_ops", net_device_ops::SIZE);
    l.define("pci_dev", pci_dev::SIZE);
    l.define("struct pci_dev", pci_dev::SIZE);
    l.define("sock", sock::SIZE);
    l.define("struct sock", sock::SIZE);
    l.define("proto_ops", proto_ops::SIZE);
    l.define("shmid_kernel", shmid_kernel::SIZE);
    l.define("Qdisc", qdisc::SIZE);
    l.define("struct Qdisc", qdisc::SIZE);
    l.define("snd_pcm", snd_pcm::SIZE);
    l.define("struct snd_pcm", snd_pcm::SIZE);
    l.define("snd_pcm_ops", snd_pcm_ops::SIZE);
    l.define("dm_target", dm_target::SIZE);
    l.define("struct dm_target", dm_target::SIZE);
    l.define("bio", bio::SIZE);
    l.define("struct bio", bio::SIZE);
    l.define("spinlock_t", spinlock::SIZE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_register() {
        let mut l = TypeLayouts::new();
        register_layouts(&mut l);
        assert_eq!(l.size_of("sk_buff"), Some(64));
        assert_eq!(l.size_of("struct pci_dev"), Some(64));
        assert_eq!(l.size_of("spinlock_t"), Some(8));
        assert_eq!(l.size_of("no_such_struct"), None);
    }

    #[test]
    fn fields_within_size() {
        assert!((sk_buff::PROTOCOL as u64) + 8 <= sk_buff::SIZE);
        assert!((net_device::QDISC as u64) + 8 <= net_device::SIZE);
        assert!((proto_ops::BIND as u64) + 8 <= proto_ops::SIZE);
        assert!((shmid_kernel::SEGSZ as u64) + 8 <= shmid_kernel::SIZE);
    }
}
