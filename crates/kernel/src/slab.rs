//! A SLUB-like slab allocator for `kmalloc`/`kfree`.
//!
//! Size classes are powers of two from 32 bytes to 4 KiB; each slab page
//! holds `PAGE/class` objects laid out contiguously, so objects of the
//! same class allocated back-to-back are **adjacent in memory**. The CAN
//! BCM exploit (§8.1) depends on exactly this property: the attacker
//! groom places a `shmid_kernel` object directly after the under-sized
//! BCM buffer and overflows into it.

use lxfi_machine::{AddressSpace, Word, PAGE_SIZE};
use std::collections::BTreeMap;

/// Size classes, ascending.
pub const SIZE_CLASSES: [u64; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

#[derive(Debug)]
struct SlabPage {
    base: Word,
    class: u64,
    /// Free-object indices, popped from the back (LIFO within a page,
    /// ascending on a fresh page so sequential allocations are adjacent).
    free: Vec<u32>,
}

/// The allocator.
#[derive(Debug)]
pub struct Slab {
    next_page: Word,
    pages: Vec<SlabPage>,
    /// Live allocations, indexed by address: `addr -> (requested size,
    /// class)`. A map (not a scan list) so `kfree` of one object among
    /// tens of thousands is a lookup, not a walk.
    live: BTreeMap<Word, (u64, u64)>,
    /// Total bytes handed out (diagnostics).
    pub allocated: u64,
}

impl Slab {
    /// Creates an allocator growing from `base`.
    pub fn new(base: Word) -> Self {
        Slab {
            next_page: base,
            pages: Vec::new(),
            live: BTreeMap::new(),
            allocated: 0,
        }
    }

    /// The size class `size` rounds up to, or `None` if unsupported.
    pub fn class_for(size: u64) -> Option<u64> {
        SIZE_CLASSES.iter().copied().find(|&c| c >= size)
    }

    /// Allocates `size` bytes (0 < size ≤ 4096), mapping pages as needed.
    /// Returns the object address, or `None` for unsupported sizes.
    ///
    /// Objects come from the slab page with the lowest free slot of the
    /// class, so consecutive allocations of one class are adjacent.
    pub fn kmalloc(&mut self, mem: &AddressSpace, size: u64) -> Option<Word> {
        if size == 0 {
            return None;
        }
        let class = Self::class_for(size)?;
        let page = match self
            .pages
            .iter_mut()
            .find(|p| p.class == class && !p.free.is_empty())
        {
            Some(p) => p,
            None => {
                let base = self.next_page;
                self.next_page += PAGE_SIZE;
                mem.map_range(base, PAGE_SIZE);
                let count = (PAGE_SIZE / class) as u32;
                self.pages.push(SlabPage {
                    base,
                    class,
                    // Reverse order so pop() yields ascending addresses.
                    free: (0..count).rev().collect(),
                });
                self.pages.last_mut().unwrap()
            }
        };
        let idx = page.free.pop().unwrap();
        let addr = page.base + u64::from(idx) * class;
        self.live.insert(addr, (size, class));
        self.allocated += size;
        Some(addr)
    }

    /// Carves `n` slots of exact size-class `class` out of the page free
    /// lists **without** registering them live — the slots belong to a
    /// per-CPU magazine until [`Slab::adopt`] (handed out) or
    /// [`Slab::finish_free`] (flushed back) claims them. Returned
    /// ascending so a magazine serving them in order preserves SLUB
    /// adjacency for back-to-back allocations.
    pub fn reserve_batch(&mut self, mem: &AddressSpace, class: u64, n: usize, out: &mut Vec<Word>) {
        debug_assert!(SIZE_CLASSES.contains(&class));
        let start = out.len();
        for _ in 0..n {
            let page = match self
                .pages
                .iter_mut()
                .find(|p| p.class == class && !p.free.is_empty())
            {
                Some(p) => p,
                None => {
                    let base = self.next_page;
                    self.next_page += PAGE_SIZE;
                    mem.map_range(base, PAGE_SIZE);
                    let count = (PAGE_SIZE / class) as u32;
                    self.pages.push(SlabPage {
                        base,
                        class,
                        free: (0..count).rev().collect(),
                    });
                    self.pages.last_mut().unwrap()
                }
            };
            let idx = page.free.pop().unwrap();
            out.push(page.base + u64::from(idx) * class);
        }
        out[start..].sort_unstable();
    }

    /// Registers a magazine-held slot as a live allocation of `size`
    /// bytes (its reservation came from [`Slab::reserve_batch`]). This is
    /// the handing-out half of a magazine hit: the live set stays
    /// authoritative for teardown scans, leak gauges, and double-free
    /// detection no matter which CPU's magazine served the object.
    pub fn adopt(&mut self, addr: Word, size: u64, class: u64) {
        debug_assert!(Self::class_for(size) == Some(class));
        let prev = self.live.insert(addr, (size, class));
        debug_assert!(prev.is_none(), "adopting an already-live object");
        self.allocated += size;
    }

    /// Frees an object. Returns its `(requested size, class size)` or
    /// `None` for a bad pointer (double free / wild free).
    pub fn kfree(&mut self, addr: Word) -> Option<(u64, u64)> {
        let r = self.begin_free(addr)?;
        self.finish_free(addr, r.1);
        Some(r)
    }

    /// First half of a two-phase free: validates the pointer and removes
    /// it from the live set **without** returning the slot to the free
    /// list, so a concurrent `kmalloc` cannot hand the address out while
    /// the caller is still revoking capabilities / zeroing it (the kfree
    /// path drops the slab lock across that work). A racing double free
    /// sees `None` here, exactly like `kfree`.
    pub fn begin_free(&mut self, addr: Word) -> Option<(u64, u64)> {
        let (size, class) = self.live.remove(&addr)?;
        self.allocated -= size;
        Some((size, class))
    }

    /// Second half of a two-phase free: returns the slot to its page's
    /// free list. Call with the `(addr, class)` pair `begin_free` gave.
    pub fn finish_free(&mut self, addr: Word, class: u64) {
        let page = self
            .pages
            .iter_mut()
            .find(|p| p.class == class && addr >= p.base && addr < p.base + PAGE_SIZE)
            .expect("live object belongs to a page");
        page.free.push(((addr - page.base) / class) as u32);
    }

    /// The requested size of a live allocation.
    pub fn size_of(&self, addr: Word) -> Option<u64> {
        self.live.get(&addr).map(|&(s, _)| s)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Snapshot of the live allocations as `(addr, requested size,
    /// class)` — module teardown scans it for objects only the dead
    /// module's principals could still free.
    pub fn live_objects(&self) -> Vec<(Word, u64, u64)> {
        self.live.iter().map(|(&a, &(s, c))| (a, s, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Slab, AddressSpace) {
        (Slab::new(0xffff_8800_0000_0000), AddressSpace::new())
    }

    #[test]
    fn same_class_allocations_are_adjacent() {
        let (mut s, m) = setup();
        let a = s.kmalloc(&m, 64).unwrap();
        let b = s.kmalloc(&m, 64).unwrap();
        let c = s.kmalloc(&m, 64).unwrap();
        assert_eq!(b, a + 64, "SLUB adjacency (CAN BCM groom relies on it)");
        assert_eq!(c, b + 64);
    }

    #[test]
    fn sizes_round_up_to_class() {
        let (mut s, m) = setup();
        let a = s.kmalloc(&m, 33).unwrap();
        let b = s.kmalloc(&m, 50).unwrap();
        assert_eq!(b, a + 64, "both land in the 64-byte class");
        assert_eq!(s.size_of(a), Some(33), "requested size remembered");
    }

    #[test]
    fn free_then_realloc_reuses_slot() {
        let (mut s, m) = setup();
        let a = s.kmalloc(&m, 128).unwrap();
        let _b = s.kmalloc(&m, 128).unwrap();
        s.kfree(a).unwrap();
        let c = s.kmalloc(&m, 128).unwrap();
        assert_eq!(c, a, "freed slot is reused (heap grooming)");
    }

    #[test]
    fn double_free_rejected() {
        let (mut s, m) = setup();
        let a = s.kmalloc(&m, 64).unwrap();
        assert!(s.kfree(a).is_some());
        assert!(s.kfree(a).is_none());
        assert!(s.kfree(0xdead).is_none());
    }

    #[test]
    fn live_objects_never_overlap() {
        let (mut s, m) = setup();
        let mut addrs: Vec<(Word, u64)> = Vec::new();
        for size in [32u64, 64, 64, 100, 128, 4096, 32, 2048, 512] {
            let a = s.kmalloc(&m, size).unwrap();
            let class = Slab::class_for(size).unwrap();
            for &(b, bc) in &addrs {
                assert!(a + class <= b || b + bc <= a, "overlap {a:#x} {b:#x}");
            }
            addrs.push((a, class));
        }
        assert_eq!(s.live_count(), 9);
    }

    #[test]
    fn allocations_are_mapped_memory() {
        let (mut s, m) = setup();
        let a = s.kmalloc(&m, 4096).unwrap();
        m.write_word(a, 42).unwrap();
        m.write_word(a + 4088, 43).unwrap();
        assert_eq!(m.read_word(a).unwrap(), 42);
    }

    #[test]
    fn oversized_and_zero_rejected() {
        let (mut s, m) = setup();
        assert!(s.kmalloc(&m, 0).is_none());
        assert!(s.kmalloc(&m, 4097).is_none());
    }
}
