//! The netperf testbed cost model (Figure 12).
//!
//! The paper measures a real e1000 on a Gigabit link between two desktops
//! (3.2 GHz dual-core i3-550 under test). This model reproduces the
//! *mechanism* behind the figure's shape; per-packet cycle counts are
//! measured by running packets through the interpreted e1000 module
//! (`lxfi-bench`), not assumed.
//!
//! Accounting choices, mirrored from how netperf counts:
//!
//! - **UDP_STREAM** reports *messages processed at the socket layer* per
//!   second (the paper's stock TX rate of 3.1 M pkt/s exceeds what a
//!   Gigabit wire can carry in 64-byte frames — messages are counted when
//!   sent, drops happen below). Throughput is therefore
//!   `min(offered, cores·hz / cycles_per_pkt)`: once the CPU saturates
//!   (LXFI TX), throughput falls; while it doesn't (stock, and RX where
//!   the offered rate is what the wire delivers), throughput holds and
//!   only CPU% rises.
//! - **TCP_STREAM** is flow-controlled and link-limited: offered load is
//!   the link rate in MTU frames; with CPU headroom on both sides the
//!   throughput pins at the wire and LXFI only shows up in CPU%.
//! - **RR** is latency-bound: `tps = 1 / (2·latency + local + remote)`.
//!   With switches in the path the LXFI processing hides inside the RTT;
//!   with one low-latency switch it dominates (the paper's 16 K → 9.8 K).
//!
//! CPU% is utilization of the whole dual-core machine, as `top` would
//! report it.
//!
//! **Deterministic interrupt delivery.** Every latency and cycle count
//! this model converts to wall-clock units is a *simulated*-cycle
//! total, and those totals must not depend on host scheduling. The RX
//! side earns that via the deferred-call mux's affinity rule
//! ([`crate::deferred`]): a device's bottom half runs on the CPU that
//! observed its wire event — the one whose schedule call found the
//! slot's ring empty — and ambient quiescent-point drains never steal
//! another CPU's slots. So a per-CPU benchmark batch accrues exactly
//! the poll cycles for the frames that CPU injected, every run; the
//! request server's p50/p99 and the multi-CPU `kmt_*` rows are exact
//! (gate-able without noise slack) because of it. The only
//! affinity-ignoring path is an *explicit* flush of one device's slot
//! (`net_rx_flush`), where the caller is the observing CPU by
//! construction.

/// Testbed parameters (§8.3's hardware).
#[derive(Debug, Clone, Copy)]
pub struct NetSimConfig {
    /// CPU frequency in Hz. One simulated cycle = one clock.
    pub cpu_hz: f64,
    /// Number of cores (i3-550: 2).
    pub cores: f64,
    /// Link line rate in bits/second.
    pub link_bps: f64,
    /// Per-frame wire overhead in bytes (header + FCS + preamble + IFG).
    pub wire_overhead: u64,
    /// Largest frame payload (MTU).
    pub mtu: u64,
    /// One-way network latency, seconds (multi-switch building LAN).
    pub lan_latency_s: f64,
    /// One-way latency with a single dedicated switch.
    pub one_switch_latency_s: f64,
    /// Fixed per-transaction cost on the (stock) remote peer, seconds.
    pub remote_s: f64,
}

impl Default for NetSimConfig {
    fn default() -> Self {
        NetSimConfig {
            cpu_hz: 3.2e9,
            cores: 2.0,
            link_bps: 1.0e9,
            wire_overhead: 58,
            mtu: 1500,
            lan_latency_s: 45e-6,
            one_switch_latency_s: 22e-6,
            remote_s: 8e-6,
        }
    }
}

/// Result of a stream workload.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Packets (messages) per second achieved.
    pub pps: f64,
    /// Application-payload throughput, bits/second.
    pub throughput_bps: f64,
    /// CPU utilization of the machine under test, 0..=1.
    pub cpu: f64,
    /// True when the CPU limited throughput below the offered rate.
    pub cpu_bound: bool,
}

/// Result of a request/response workload.
#[derive(Debug, Clone, Copy)]
pub struct RrResult {
    /// Transactions per second.
    pub tps: f64,
    /// CPU utilization of the machine under test, 0..=1.
    pub cpu: f64,
}

impl NetSimConfig {
    /// Total CPU capacity, cycles per second.
    pub fn capacity(&self) -> f64 {
        self.cpu_hz * self.cores
    }

    /// Frames needed for one message of `msg` bytes.
    pub fn frames_per_msg(&self, msg: u64) -> u64 {
        msg.div_ceil(self.mtu)
    }

    /// The offered frame rate of a link-saturating TCP stream.
    pub fn link_frame_rate(&self) -> f64 {
        self.link_bps / (((self.mtu + self.wire_overhead) * 8) as f64)
    }

    /// Stream workload: `offered_pps` packets per second arrive at (or
    /// are generated above) the layer under test; each costs
    /// `cycles_per_pkt` on this machine.
    pub fn stream(&self, offered_pps: f64, cycles_per_pkt: f64, payload: u64) -> StreamResult {
        let cpu_pps = self.capacity() / cycles_per_pkt;
        let pps = offered_pps.min(cpu_pps);
        StreamResult {
            pps,
            throughput_bps: pps * (payload * 8) as f64,
            cpu: (pps * cycles_per_pkt / self.capacity()).min(1.0),
            cpu_bound: cpu_pps < offered_pps,
        }
    }

    /// Request/response workload: one small packet each way per
    /// transaction; `local_cycles` covers this machine's TX + RX
    /// processing.
    pub fn rr(&self, local_cycles: f64, one_switch: bool) -> RrResult {
        let latency = if one_switch {
            self.one_switch_latency_s
        } else {
            self.lan_latency_s
        };
        let local_s = local_cycles / self.cpu_hz; // serial: one core runs it
        let txn_s = 2.0 * latency + local_s + self.remote_s;
        RrResult {
            tps: 1.0 / txn_s,
            cpu: (local_cycles / (txn_s * self.capacity())).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetSimConfig {
        NetSimConfig::default()
    }

    #[test]
    fn tcp_stream_is_link_bound_under_lxfi() {
        // Offered load = link rate in MTU frames; tripling per-frame cost
        // must not move throughput, only CPU% (TCP_STREAM row).
        let offered = cfg().link_frame_rate();
        let stock = cfg().stream(offered, 11_000.0, 1448);
        let lxfi = cfg().stream(offered, 40_000.0, 1448);
        assert!(!stock.cpu_bound);
        assert!(!lxfi.cpu_bound);
        assert!((stock.pps - lxfi.pps).abs() < 1.0);
        assert!(lxfi.cpu > 3.0 * stock.cpu);
    }

    #[test]
    fn udp_tx_saturates_and_loses_throughput() {
        // 64-byte UDP TX: offered 3.1 M msg/s; LXFI's extra cycles push
        // the machine to 100% CPU and throughput drops ~35%.
        let stock = cfg().stream(3.1e6, 1_100.0, 64);
        let lxfi = cfg().stream(3.1e6, 3_200.0, 64);
        assert!(!stock.cpu_bound);
        assert!(lxfi.cpu_bound);
        assert!((lxfi.cpu - 1.0).abs() < 1e-9);
        let ratio = lxfi.pps / stock.pps;
        assert!(ratio > 0.5 && ratio < 0.8, "drop ratio {ratio}");
    }

    #[test]
    fn udp_rx_holds_throughput_at_higher_cpu() {
        // RX: the wire delivers 2.3 M pkt/s; LXFI still keeps up, at much
        // higher CPU (the UDP_STREAM RX row).
        let stock = cfg().stream(2.3e6, 1_200.0, 64);
        let lxfi = cfg().stream(2.3e6, 2_700.0, 64);
        assert!((stock.pps - lxfi.pps).abs() < 1.0, "same throughput");
        assert!(lxfi.cpu > 1.9 * stock.cpu);
    }

    #[test]
    fn rr_overhead_grows_as_latency_shrinks() {
        let stock_lan = cfg().rr(12_000.0, false);
        let lxfi_lan = cfg().rr(40_000.0, false);
        let stock_sw = cfg().rr(12_000.0, true);
        let lxfi_sw = cfg().rr(40_000.0, true);
        let lan_keep = lxfi_lan.tps / stock_lan.tps;
        let sw_keep = lxfi_sw.tps / stock_sw.tps;
        assert!(sw_keep < lan_keep, "relative overhead larger at 1 switch");
        assert!(stock_sw.tps > stock_lan.tps, "lower latency → more tps");
    }

    #[test]
    fn frames_per_msg_rounds_up() {
        assert_eq!(cfg().frames_per_msg(16384), 11);
        assert_eq!(cfg().frames_per_msg(64), 1);
        assert_eq!(cfg().frames_per_msg(1500), 1);
        assert_eq!(cfg().frames_per_msg(1501), 2);
    }

    #[test]
    fn cpu_is_capped_at_one() {
        let r = cfg().stream(1e9, 10_000.0, 64);
        assert!(r.cpu <= 1.0);
        assert!(r.cpu_bound);
    }
}
