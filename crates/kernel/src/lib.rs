//! The simulated Linux core kernel — LXFI's substrate.
//!
//! The paper evaluates LXFI inside Linux 2.6.36 on real hardware; this
//! crate provides the closest synthetic equivalent that exercises the same
//! code paths (see DESIGN.md §2 for the substitution table):
//!
//! - a 64-bit address space with user/kernel split and per-thread kernel
//!   stacks ([`layout`]);
//! - a SLUB-like slab allocator whose same-size-class objects are adjacent
//!   (required by the CAN BCM heap-overflow exploit) ([`slab`]);
//! - a process table with uids, `clear_child_tid` and the `pid_hash` used
//!   by the rootkit experiment ([`process`]);
//! - simulated struct layouts (`sk_buff`, `net_device`, `pci_dev`, ...)
//!   ([`types`]);
//! - the exported-symbol registry with per-function annotations
//!   ([`exports`]);
//! - the [`Kernel`] world: module loading (stock or LXFI-rewritten),
//!   wrapper execution at every kernel/module crossing, indirect-call
//!   interposition, per-module fault containment (quarantine on trap;
//!   the panic flag is reserved for the kernel's own invariants —
//!   `docs/fault-model.md`) ([`kernel`]);
//! - supervised recovery with backoff and crash-loop detection
//!   ([`supervisor`]) over deterministic seeded fault injection
//!   ([`fault_inject`]);
//! - subsystems: PCI ([`pci`]), networking ([`net`]), sockets
//!   ([`socket`]), sound ([`snd`]), device mapper ([`dm`]);
//! - the deferred-call dispatch layer for bottom halves (NAPI polls,
//!   capture periods) drained at quiescent points ([`deferred`]);
//! - the netperf-style cost model used to regenerate Figure 12
//!   ([`netsim`]).

pub mod deferred;
pub mod dm;
pub mod exports;
pub mod exports_base;
pub mod fault_inject;
pub mod kernel;
pub mod layout;
pub mod magazine;
pub mod net;
pub mod netsim;
pub mod pci;
pub mod process;
pub mod slab;
pub mod snd;
pub mod socket;
pub mod supervisor;
pub mod types;

pub use exports::{Export, NativeFn};
pub use fault_inject::{FaultPlan, FaultRule, FaultSite};
pub use kernel::{
    IsolationMode, Kernel, KernelCore, KernelCpu, KernelError, LoadedModuleId, ModuleFault,
    ModuleSpec, UserFn,
};
pub use layout::*;
pub use lxfi_machine::{Backend, CompileStats};
pub use supervisor::{RestartPolicy, SupervisedState, Supervisor, SupervisorEvent};
