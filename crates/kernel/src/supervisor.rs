//! Supervised module recovery: restart quarantined modules with bounded
//! exponential backoff and crash-loop detection.
//!
//! The supervisor is deliberately *outside* the kernel's trusted
//! containment path: quarantine is complete without it (the module is
//! dead and its resources reclaimed). What the supervisor adds is
//! availability — reload the module from its pristine spec, back off
//! exponentially while it keeps dying, and after
//! [`RestartPolicy::max_consecutive_failures`] declare it crash-looping
//! and leave it dead so the kernel degrades gracefully, serving the
//! remaining modules.
//!
//! Time is a caller-driven tick counter ([`Supervisor::tick`]), never a
//! wall clock, so supervised chaos runs are deterministic. Faults are
//! consumed from the kernel's structured fault log
//! ([`crate::KernelCpu::faults_since`]) and matched by module *name* —
//! no string-parsing of panic messages.

use std::collections::BTreeMap;

use crate::kernel::{IsolationMode, KernelCpu, LoadedModuleId, ModuleSpec};

/// Restart policy knobs (all in supervisor ticks).
#[derive(Debug, Clone, Copy)]
pub struct RestartPolicy {
    /// Consecutive failures after which the module stays dead.
    pub max_consecutive_failures: u32,
    /// Backoff before the first restart; doubles per consecutive
    /// failure.
    pub base_backoff: u64,
    /// Backoff ceiling.
    pub max_backoff: u64,
    /// Ticks a restarted module must run fault-free before its failure
    /// streak resets (so a module that dies every N calls still trips
    /// crash-loop detection).
    pub probation: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_consecutive_failures: 5,
            base_backoff: 1,
            max_backoff: 64,
            probation: 8,
        }
    }
}

/// What a supervised module is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisedState {
    /// Loaded and serving.
    Running(LoadedModuleId),
    /// Quarantined; restart scheduled.
    Backoff {
        /// Tick at which the next restart attempt is due.
        until_tick: u64,
    },
    /// Crash-looping; the supervisor gave up on it.
    Dead,
}

/// One thing the supervisor did during a tick (logs and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// A new fault was attributed to a supervised module.
    Faulted {
        /// The module.
        module: String,
        /// Its consecutive-failure streak after this fault.
        consecutive: u32,
    },
    /// A quarantined module was reloaded.
    Restarted {
        /// The module.
        module: String,
        /// Its fresh registry id.
        id: LoadedModuleId,
        /// The backoff it waited out.
        after_backoff: u64,
    },
    /// A reload attempt itself failed (counts toward the streak).
    RestartFailed {
        /// The module.
        module: String,
        /// The loader's error.
        why: String,
    },
    /// The streak reached the policy limit; the module stays dead.
    CrashLooping {
        /// The module.
        module: String,
    },
}

type SpecBuilder = Box<dyn Fn() -> ModuleSpec + Send>;

struct Entry {
    builder: SpecBuilder,
    mode: IsolationMode,
    state: SupervisedState,
    consecutive_failures: u32,
    backoff: u64,
    healthy_since: u64,
    restarts: u64,
}

/// The supervisor: a registry of restartable modules driven by
/// [`Supervisor::tick`].
pub struct Supervisor {
    policy: RestartPolicy,
    /// Keyed and ordered by module name, so a tick's restart order is
    /// deterministic.
    entries: BTreeMap<String, Entry>,
    tick: u64,
    faults_seen: usize,
}

impl Supervisor {
    /// An empty supervisor with the given policy.
    pub fn new(policy: RestartPolicy) -> Self {
        Supervisor {
            policy,
            entries: BTreeMap::new(),
            tick: 0,
            faults_seen: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Loads a module and registers it for supervised restart. `builder`
    /// must produce a pristine [`ModuleSpec`] on every call (specs are
    /// consumed by loading).
    pub fn supervise(
        &mut self,
        k: &mut KernelCpu,
        name: &str,
        mode: IsolationMode,
        builder: SpecBuilder,
    ) -> Result<LoadedModuleId, crate::kernel::KernelError> {
        // Faults already in the log predate supervision.
        self.faults_seen = self.faults_seen.max(k.fault_count());
        let id = k.load_module_with_mode(builder(), mode)?;
        self.entries.insert(
            name.to_string(),
            Entry {
                builder,
                mode,
                state: SupervisedState::Running(id),
                consecutive_failures: 0,
                backoff: 0,
                healthy_since: self.tick,
                restarts: 0,
            },
        );
        Ok(id)
    }

    /// The supervised state of a module.
    pub fn state(&self, name: &str) -> Option<SupervisedState> {
        self.entries.get(name).map(|e| e.state)
    }

    /// How many times a module has been restarted.
    pub fn restarts(&self, name: &str) -> u64 {
        self.entries.get(name).map(|e| e.restarts).unwrap_or(0)
    }

    /// Advances supervision by one tick: consume new faults from the
    /// kernel's fault log, reset streaks that survived probation, and
    /// restart quarantined modules whose backoff expired.
    pub fn tick(&mut self, k: &mut KernelCpu) -> Vec<SupervisorEvent> {
        self.tick += 1;
        let mut events = Vec::new();

        // 1. Attribute new faults. A fault for a module already declared
        // dead (or one we do not supervise) is recorded by the kernel
        // but changes nothing here.
        let fresh = k.faults_since(self.faults_seen);
        self.faults_seen += fresh.len();
        for f in &fresh {
            let Some(e) = self.entries.get_mut(&f.module) else {
                continue;
            };
            if e.state == SupervisedState::Dead {
                continue;
            }
            e.consecutive_failures += 1;
            events.push(SupervisorEvent::Faulted {
                module: f.module.clone(),
                consecutive: e.consecutive_failures,
            });
            if e.consecutive_failures >= self.policy.max_consecutive_failures {
                e.state = SupervisedState::Dead;
                events.push(SupervisorEvent::CrashLooping {
                    module: f.module.clone(),
                });
            } else {
                e.backoff = self
                    .policy
                    .base_backoff
                    .saturating_mul(1 << (e.consecutive_failures - 1).min(32))
                    .min(self.policy.max_backoff);
                e.state = SupervisedState::Backoff {
                    until_tick: self.tick + e.backoff,
                };
            }
        }

        // 2. Probation: a module that ran fault-free long enough earns
        // a clean slate.
        for e in self.entries.values_mut() {
            if matches!(e.state, SupervisedState::Running(_))
                && e.consecutive_failures > 0
                && self.tick.saturating_sub(e.healthy_since) >= self.policy.probation
            {
                e.consecutive_failures = 0;
            }
        }

        // 3. Restarts due this tick.
        for (name, e) in self.entries.iter_mut() {
            let SupervisedState::Backoff { until_tick } = e.state else {
                continue;
            };
            if self.tick < until_tick {
                continue;
            }
            match k.load_module_with_mode((e.builder)(), e.mode) {
                Ok(id) => {
                    e.state = SupervisedState::Running(id);
                    e.restarts += 1;
                    e.healthy_since = self.tick;
                    events.push(SupervisorEvent::Restarted {
                        module: name.clone(),
                        id,
                        after_backoff: e.backoff,
                    });
                }
                Err(err) => {
                    e.consecutive_failures += 1;
                    events.push(SupervisorEvent::RestartFailed {
                        module: name.clone(),
                        why: err.to_string(),
                    });
                    if e.consecutive_failures >= self.policy.max_consecutive_failures {
                        e.state = SupervisedState::Dead;
                        events.push(SupervisorEvent::CrashLooping {
                            module: name.clone(),
                        });
                    } else {
                        e.backoff = self
                            .policy
                            .base_backoff
                            .saturating_mul(1 << (e.consecutive_failures - 1).min(32))
                            .min(self.policy.max_backoff);
                        e.state = SupervisedState::Backoff {
                            until_tick: self.tick + e.backoff,
                        };
                    }
                }
            }
        }
        events
    }
}
