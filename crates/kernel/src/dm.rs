//! The device-mapper subsystem: layered block devices.
//!
//! Exercised by `dm-crypt`, `dm-zero`, and `dm-snapshot`. Each *created
//! device* is a separate module principal named by its `dm_target`
//! pointer (Guideline 5) — compromising one encrypted volume must not
//! grant access to the others.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_core::runtime::EmittedCap;
use lxfi_machine::{Trap, Word};

use crate::kernel::KernelCpu;
use crate::types::{bio, dm_target};

/// Annotation for target constructors: per-device principal, WRITE over
/// the `dm_target` so the module can stash its private pointer.
pub const DM_CTR_ANN: &str = "principal(ti) pre(copy(write, ti, 64))";

/// Annotation for the map callback: the bio's capabilities transfer to
/// the target for the duration of the call (returned on completion
/// status != 0, i.e. DM_MAPIO_REQUEUE).
pub const DM_MAP_ANN: &str = "principal(ti) \
     pre(check(write, ti, 64)) \
     pre(transfer(bio_caps(bio))) \
     post(if (return == 2) transfer(bio_caps(bio)))";

/// Device-mapper state.
#[derive(Debug, Default)]
pub struct DmState {
    /// Created targets: (dm_target address, module ops table address).
    pub targets: Vec<(Word, Word)>,
    /// Registered target types: (type id, ops table address).
    pub target_types: Vec<(u64, Word)>,
}

/// Registers device-mapper exports and interface annotations.
pub fn register(k: &mut KernelCpu) {
    k.rt.register_iterator(
        "bio_caps",
        Box::new(|mem, b, out| {
            out.push(EmittedCap::Write {
                addr: b,
                size: bio::SIZE,
            });
            let data = mem
                .read_word((b as i64 + bio::DATA) as u64)
                .map_err(|e| e.to_string())?;
            let len = mem
                .read_word((b as i64 + bio::LEN) as u64)
                .map_err(|e| e.to_string())?;
            if data != 0 && len > 0 {
                out.push(EmittedCap::Write {
                    addr: data,
                    size: len,
                });
            }
            Ok(())
        }),
    );

    k.define_sig(
        "dm_ctr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("arg")],
        DM_CTR_ANN,
    );
    k.define_sig(
        "dm_map",
        vec![Param::ptr("ti", "dm_target"), Param::ptr("bio", "bio")],
        DM_MAP_ANN,
    );
    k.define_sig(
        "dm_dtr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("unused")],
        "principal(ti)",
    );

    k.export(
        "dm_register_target",
        vec![Param::scalar("type_id"), Param::scalar("ops")],
        Some(""),
        Arc::new(|k, args| {
            k.dm().target_types.push((args[0], args[1]));
            Ok(0)
        }),
    );
}

impl KernelCpu {
    /// Creates a mapped device of the given registered type; dispatches
    /// the module's constructor (`ctr`, ops slot 0). Returns the
    /// `dm_target` address.
    pub fn dm_create(&mut self, type_id: u64, ctr_arg: u64) -> Result<Word, Trap> {
        let ops = self
            .dm()
            .target_types
            .iter()
            .find(|&&(t, _)| t == type_id)
            .map(|&(_, o)| o)
            .ok_or_else(|| Trap::BadRef(format!("dm target type {type_id}")))?;
        let ti = self.kstatic_alloc(dm_target::SIZE);
        self.mem
            .write_word((ti as i64 + dm_target::OPS) as u64, ops)?;
        let ret = self.indirect_call(ops, "dm_ctr", &[ti, ctr_arg])?;
        if (ret as i64) < 0 {
            return Err(Trap::BadRef("dm ctr failed".into()));
        }
        self.dm().targets.push((ti, ops));
        Ok(ti)
    }

    /// Submits one block I/O to a target: allocates a `bio` + buffer,
    /// fills it for writes, and dispatches the module's `map` callback
    /// (ops slot 8). Returns the bio address so callers can inspect the
    /// transformed data.
    pub fn dm_submit(&mut self, ti: Word, write: bool, len: u64, fill: u8) -> Result<Word, Trap> {
        let ops = self
            .dm()
            .targets
            .iter()
            .find(|&&(t, _)| t == ti)
            .map(|&(_, o)| o)
            .ok_or_else(|| Trap::BadRef("unknown dm target".into()))?;
        let b = self
            .kmalloc_cpu(bio::SIZE)
            .ok_or_else(|| Trap::BadRef("bio alloc".into()))?;
        self.mem.zero_range(b, bio::SIZE)?;
        self.rt.note_zeroed(b, bio::SIZE);
        let buf = self
            .kmalloc_cpu(len)
            .ok_or_else(|| Trap::BadRef("bio buf alloc".into()))?;
        for i in 0..len {
            self.mem
                .write(buf + i, u64::from(fill), lxfi_machine::Width::B1)?;
        }
        self.mem.write_word((b as i64 + bio::DATA) as u64, buf)?;
        self.mem.write_word((b as i64 + bio::LEN) as u64, len)?;
        self.mem
            .write_word((b as i64 + bio::RW) as u64, u64::from(write))?;
        let ret = self.indirect_call(ops + 8, "dm_map", &[ti, b])?;
        if (ret as i64) < 0 {
            return Err(Trap::BadRef("dm map failed".into()));
        }
        Ok(b)
    }

    /// Reads back a bio's payload (test observable).
    pub fn bio_payload(&self, b: Word) -> Result<Vec<u8>, Trap> {
        let data = self.mem.read_word((b as i64 + bio::DATA) as u64)?;
        let len = self.mem.read_word((b as i64 + bio::LEN) as u64)?;
        let mut out = vec![0u8; len as usize];
        self.mem.read_bytes(data, &mut out)?;
        Ok(out)
    }
}
