//! Per-CPU slab magazines over a sharded backing slab.
//!
//! The data-plane allocator is split in two layers so per-packet
//! `kmalloc`/`kfree` on different CPUs touches disjoint locks:
//!
//! - [`ShardedSlab`] carves the kmalloc heap into
//!   [`crate::layout::SLAB_SHARDS`] disjoint sub-regions, each backed by
//!   its own [`Slab`] behind its own mutex. Frees route to the shard
//!   owning the address; a CPU's refills come from "its" shard, so two
//!   CPUs running packet loops never meet on a slab lock.
//! - [`Magazines`] is a per-CPU, lock-free (plain `&mut`) LIFO cache of
//!   ready-to-hand-out slots per size class. A hit pops a slot and
//!   registers it live in the owning shard ([`Slab::adopt`] — one shard
//!   lock, usually this CPU's own); a miss refills a small batch from
//!   the preferred shard ([`Slab::reserve_batch`]).
//!
//! Two invariants carry over from the single-lock design:
//!
//! - **Two-phase free.** An object enters a magazine only *after* its
//!   capability sweep and zeroing completed (the kfree path runs
//!   `begin_free` → revoke → zero → `note_zeroed` → [`Magazines::release`]).
//!   A magazine slot is therefore always safe to hand out immediately.
//! - **SLUB adjacency.** `reserve_batch` returns ascending addresses and
//!   the magazine pushes them reversed, so back-to-back allocations of
//!   one class pop out ascending and adjacent — the layout property the
//!   CAN BCM exploit groom (§8.1) depends on, preserved through the
//!   cache.
//!
//! The live set stays authoritative in the shards: magazine-held slots
//! are *not* live (they were freed, or reserved and never handed out),
//! so teardown scans, leak gauges, and double-free detection see exactly
//! the same world as with the direct allocator.

use std::sync::{Mutex, MutexGuard};

use lxfi_machine::{AddressSpace, Word};

use crate::layout::{slab_shard_base, HEAP_BASE, KDATA_BASE, SLAB_SHARDS, SLAB_SHARD_SPAN};
use crate::slab::{Slab, SIZE_CLASSES};

/// Magazine depth per size class before a flush returns the cold half.
pub const MAGAZINE_CAP: usize = 32;

/// Slots reserved from the backing shard on a magazine miss.
pub const REFILL_BATCH: usize = 8;

/// Slots flushed (oldest first) when a magazine overflows.
pub const FLUSH_BATCH: usize = 16;

/// The kmalloc heap as [`SLAB_SHARDS`] independently locked [`Slab`]s.
///
/// The `&self` surface mirrors [`Slab`]'s so existing call sites compile
/// unchanged; each call locks only the shard owning the address it
/// touches.
#[derive(Debug)]
pub struct ShardedSlab {
    shards: Vec<Mutex<Slab>>,
}

impl Default for ShardedSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedSlab {
    /// One slab per heap shard, each growing from its shard base.
    pub fn new() -> Self {
        ShardedSlab {
            shards: (0..SLAB_SHARDS)
                .map(|i| Mutex::new(Slab::new(slab_shard_base(i))))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks shard `i` (wraps around, so any CPU index is valid).
    pub fn shard(&self, i: usize) -> MutexGuard<'_, Slab> {
        self.shards[i % self.shards.len()]
            .lock()
            .expect("slab shard lock")
    }

    /// The shard owning `addr`, or `None` for non-heap addresses (wild
    /// pointers must fail lookup, not panic).
    fn shard_index(addr: Word) -> Option<usize> {
        (HEAP_BASE..KDATA_BASE)
            .contains(&addr)
            .then(|| ((addr - HEAP_BASE) / SLAB_SHARD_SPAN) as usize)
    }

    fn owning(&self, addr: Word) -> Option<MutexGuard<'_, Slab>> {
        Some(self.shard(Self::shard_index(addr)?))
    }

    /// Allocates from shard 0 — the boot/control-plane path. Per-packet
    /// code allocates through a per-CPU [`Magazines`] instead.
    pub fn kmalloc(&self, mem: &AddressSpace, size: u64) -> Option<Word> {
        self.kmalloc_on(0, mem, size)
    }

    /// Allocates directly from a specific shard (no magazine).
    pub fn kmalloc_on(&self, shard: usize, mem: &AddressSpace, size: u64) -> Option<Word> {
        self.shard(shard).kmalloc(mem, size)
    }

    /// See [`Slab::kfree`]; routes to the owning shard.
    pub fn kfree(&self, addr: Word) -> Option<(u64, u64)> {
        self.owning(addr)?.kfree(addr)
    }

    /// See [`Slab::begin_free`]; routes to the owning shard.
    pub fn begin_free(&self, addr: Word) -> Option<(u64, u64)> {
        self.owning(addr)?.begin_free(addr)
    }

    /// See [`Slab::finish_free`]; routes to the owning shard.
    pub fn finish_free(&self, addr: Word, class: u64) {
        self.owning(addr)
            .expect("finish_free of a non-heap address")
            .finish_free(addr, class);
    }

    /// See [`Slab::adopt`]; routes to the owning shard.
    pub fn adopt(&self, addr: Word, size: u64, class: u64) {
        self.owning(addr)
            .expect("adopt of a non-heap address")
            .adopt(addr, size, class);
    }

    /// See [`Slab::reserve_batch`]; reserves from the given shard.
    pub fn reserve_batch(
        &self,
        shard: usize,
        mem: &AddressSpace,
        class: u64,
        n: usize,
        out: &mut Vec<Word>,
    ) {
        self.shard(shard).reserve_batch(mem, class, n, out);
    }

    /// See [`Slab::size_of`]; routes to the owning shard.
    pub fn size_of(&self, addr: Word) -> Option<u64> {
        self.owning(addr)?.size_of(addr)
    }

    /// Live allocations across all shards.
    pub fn live_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("slab shard lock").live_count())
            .sum()
    }

    /// Snapshot of live allocations across all shards.
    pub fn live_objects(&self) -> Vec<(Word, u64, u64)> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().expect("slab shard lock").live_objects())
            .collect()
    }

    /// Total bytes handed out across all shards (diagnostics).
    pub fn allocated(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("slab shard lock").allocated)
            .sum()
    }
}

/// A CPU's private allocation cache: one LIFO stack of ready slots per
/// size class, refilled from (and flushed to) a [`ShardedSlab`].
///
/// Plain `&mut self` — the owning [`crate::kernel::KernelCpu`] is the
/// only accessor, so hits and releases take no lock at all; only the
/// adopt/refill/flush edges touch a shard mutex.
#[derive(Debug)]
pub struct Magazines {
    /// Preferred backing shard for refills (`cpu % SLAB_SHARDS`).
    shard: usize,
    stacks: Vec<Vec<Word>>,
    scratch: Vec<Word>,
    /// Allocations served from a magazine (no refill needed).
    pub hits: u64,
    /// Allocations that refilled from the backing shard.
    pub misses: u64,
    /// Overflow flushes back to the backing shards.
    pub flushes: u64,
}

impl Magazines {
    /// Empty magazines preferring the given backing shard.
    pub fn new(shard: usize) -> Self {
        Magazines {
            shard: shard % SLAB_SHARDS as usize,
            stacks: vec![Vec::new(); SIZE_CLASSES.len()],
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    fn class_index(class: u64) -> usize {
        SIZE_CLASSES
            .iter()
            .position(|&c| c == class)
            .expect("known size class")
    }

    /// Allocates `size` bytes through the magazine. A hit pops the top
    /// slot and adopts it into the owning shard's live set; a miss
    /// reserves [`REFILL_BATCH`] ascending slots from the preferred
    /// shard, serves the first, and stacks the rest (reversed, so they
    /// pop out ascending — SLUB adjacency survives the cache).
    pub fn kmalloc(&mut self, slab: &ShardedSlab, mem: &AddressSpace, size: u64) -> Option<Word> {
        if size == 0 {
            return None;
        }
        let class = Slab::class_for(size)?;
        let ci = Self::class_index(class);
        if let Some(addr) = self.stacks[ci].pop() {
            self.hits += 1;
            slab.adopt(addr, size, class);
            return Some(addr);
        }
        self.misses += 1;
        self.scratch.clear();
        slab.reserve_batch(self.shard, mem, class, REFILL_BATCH, &mut self.scratch);
        let first = self.scratch[0];
        for &a in self.scratch[1..].iter().rev() {
            self.stacks[ci].push(a);
        }
        slab.adopt(first, size, class);
        Some(first)
    }

    /// Accepts a freed slot into the magazine. The caller has already
    /// run the two-phase free prologue (`begin_free`, capability sweep,
    /// zeroing, `note_zeroed`) — the slot is immediately reusable. On
    /// overflow the *cold* bottom [`FLUSH_BATCH`] slots return to their
    /// owning shards' free lists; the hot top stays cached.
    pub fn release(&mut self, slab: &ShardedSlab, addr: Word, class: u64) {
        let ci = Self::class_index(class);
        self.stacks[ci].push(addr);
        if self.stacks[ci].len() > MAGAZINE_CAP {
            self.flushes += 1;
            let hot = self.stacks[ci].split_off(FLUSH_BATCH);
            for a in std::mem::replace(&mut self.stacks[ci], hot) {
                slab.finish_free(a, class);
            }
        }
    }

    /// Returns every cached slot to the backing shards (CPU teardown,
    /// or tests that need the shards' free lists authoritative).
    pub fn drain(&mut self, slab: &ShardedSlab) {
        for (ci, stack) in self.stacks.iter_mut().enumerate() {
            for a in stack.drain(..) {
                slab.finish_free(a, SIZE_CLASSES[ci]);
            }
        }
    }

    /// Slots currently cached across all classes (diagnostics).
    pub fn cached(&self) -> usize {
        self.stacks.iter().map(Vec::len).sum()
    }

    /// Magazine hit rate over the allocations served so far, in
    /// [0.0, 1.0]; 1.0 when nothing was allocated yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ShardedSlab, Magazines, AddressSpace) {
        (ShardedSlab::new(), Magazines::new(0), AddressSpace::new())
    }

    #[test]
    fn magazine_allocations_stay_adjacent() {
        let (slab, mut mags, mem) = setup();
        let a = mags.kmalloc(&slab, &mem, 64).unwrap();
        let b = mags.kmalloc(&slab, &mem, 64).unwrap();
        let c = mags.kmalloc(&slab, &mem, 64).unwrap();
        assert_eq!(b, a + 64, "adjacency survives the magazine cache");
        assert_eq!(c, b + 64);
        assert_eq!(mags.hits, 2, "second and third allocs hit the magazine");
        assert_eq!(mags.misses, 1);
    }

    #[test]
    fn release_then_alloc_reuses_hot_slot() {
        let (slab, mut mags, mem) = setup();
        let a = mags.kmalloc(&slab, &mem, 128).unwrap();
        let (_, class) = slab.begin_free(a).unwrap();
        mags.release(&slab, a, class);
        let b = mags.kmalloc(&slab, &mem, 128).unwrap();
        assert_eq!(b, a, "freed slot is reused LIFO (heap grooming)");
    }

    #[test]
    fn live_set_stays_authoritative_across_magazines() {
        let (slab, mut mags, mem) = setup();
        let a = mags.kmalloc(&slab, &mem, 100).unwrap();
        assert_eq!(slab.size_of(a), Some(100));
        assert_eq!(slab.live_count(), 1);
        assert_eq!(slab.allocated(), 100);
        let (size, class) = slab.begin_free(a).unwrap();
        assert_eq!((size, class), (100, 128));
        mags.release(&slab, a, class);
        // Freed into the magazine: gone from the live set immediately.
        assert_eq!(slab.live_count(), 0);
        assert_eq!(slab.allocated(), 0);
        assert_eq!(slab.size_of(a), None);
        // Double free detected even while the slot sits in a magazine.
        assert!(slab.begin_free(a).is_none());
    }

    #[test]
    fn overflow_flush_returns_cold_slots() {
        let (slab, mut mags, mem) = setup();
        let mut addrs = Vec::new();
        for _ in 0..(MAGAZINE_CAP + 1) {
            addrs.push(mags.kmalloc(&slab, &mem, 64).unwrap());
        }
        for &a in &addrs {
            let (_, class) = slab.begin_free(a).unwrap();
            mags.release(&slab, a, class);
        }
        assert_eq!(mags.flushes, 1, "one overflow flush");
        // 33 allocs leave 7 unserved refill slots cached; 33 releases
        // push to 40, crossing MAGAZINE_CAP once, flushing FLUSH_BATCH.
        assert_eq!(
            mags.cached(),
            33 + (REFILL_BATCH - 1) - FLUSH_BATCH,
            "cold batch returned to the shard, hot slots cached"
        );
        // Flushed slots are allocatable again directly from the shard.
        assert!(slab.kmalloc(&mem, 64).is_some());
    }

    #[test]
    fn cross_shard_free_routes_by_address() {
        let (slab, mut mags, mem) = setup();
        // Allocate from shard 3 directly, free through a shard-0 magazine.
        let a = slab.kmalloc_on(3, &mem, 256).unwrap();
        assert_eq!(ShardedSlab::shard_index(a), Some(3));
        let (_, class) = slab.begin_free(a).unwrap();
        mags.release(&slab, a, class);
        // The cached slot serves the next 256-byte alloc on this CPU and
        // adopts into shard 3's live set (routed by address).
        let b = mags.kmalloc(&slab, &mem, 256).unwrap();
        assert_eq!(b, a);
        assert_eq!(slab.shard(3).live_count(), 1);
    }

    #[test]
    fn drain_empties_every_class() {
        let (slab, mut mags, mem) = setup();
        let a = mags.kmalloc(&slab, &mem, 32).unwrap();
        let b = mags.kmalloc(&slab, &mem, 2048).unwrap();
        for &x in &[a, b] {
            let (_, class) = slab.begin_free(x).unwrap();
            mags.release(&slab, x, class);
        }
        assert!(mags.cached() > 0);
        mags.drain(&slab);
        assert_eq!(mags.cached(), 0);
        // Drained slots live on the shard free lists again: same-class
        // allocation reuses rather than growing a fresh page.
        assert_eq!(slab.kmalloc(&mem, 32), Some(a));
    }

    #[test]
    fn wild_pointers_fail_lookup_without_panicking() {
        let (slab, _, _) = setup();
        assert!(slab.kfree(0xdead).is_none());
        assert!(slab.begin_free(0).is_none());
        assert!(slab.size_of(0xffff_ff00_0000_0000).is_none());
    }
}
