//! The exported-symbol registry.
//!
//! Each kernel export pairs a native implementation with an (optional)
//! annotated declaration. A module may only call annotated exports — a
//! function the developer forgot to annotate is *not callable* from
//! isolated modules, the paper's safe default (§2.2).

use std::sync::Arc;

use lxfi_core::iface::FnDecl;
use lxfi_machine::{Trap, Word};

use crate::kernel::KernelCpu;

/// A native kernel function: operates on the kernel world through the
/// calling CPU's execution context. `Send + Sync` so the export table
/// lives in the shared [`crate::kernel::KernelCore`] and any CPU may
/// dispatch it.
pub type NativeFn = Arc<dyn Fn(&mut KernelCpu, &[Word]) -> Result<Word, Trap> + Send + Sync>;

/// One exported kernel symbol.
pub struct Export {
    /// Symbol name (what modules import).
    pub name: String,
    /// Annotated prototype; `None` = unannotated (modules cannot call).
    /// Shared so the per-call wrapper path clones a reference count, not
    /// the declaration's strings.
    pub decl: Option<Arc<FnDecl>>,
    /// The implementation.
    pub imp: NativeFn,
    /// True for LXFI runtime entry points (`lxfi_princ_alias`,
    /// `lxfi_check_*`): these execute *in the caller's principal context*
    /// rather than switching to the kernel, because they operate on the
    /// calling principal (§3.4).
    pub runtime_call: bool,
}

impl std::fmt::Debug for Export {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Export")
            .field("name", &self.name)
            .field("annotated", &self.decl.is_some())
            .finish()
    }
}
