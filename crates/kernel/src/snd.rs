//! The sound subsystem: cards, PCM streams, DMA buffers.
//!
//! Exercised by the `snd-intel8x0` and `snd-ens1370` modules. The PCM
//! trigger callback is dispatched through a slot in *module* memory (the
//! ops table), so it goes down the checked indirect-call path.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_machine::{Trap, Word};

use crate::kernel::KernelCpu;
use crate::types::snd_pcm;

/// Annotation for the PCM trigger/pointer callbacks: per-stream principal.
pub const PCM_OP_ANN: &str = "principal(pcm) pre(copy(write, pcm, 64))";

/// Sound subsystem state.
#[derive(Debug, Default)]
pub struct SndState {
    /// Registered cards.
    pub cards: Vec<Word>,
    /// PCM streams: (pcm struct, module ops table address).
    pub pcms: Vec<(Word, Word)>,
}

/// Registers sound exports and interface annotations.
pub fn register(k: &mut KernelCpu) {
    k.define_sig(
        "pcm_trigger",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("cmd")],
        PCM_OP_ANN,
    );
    k.define_sig(
        "pcm_pointer",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("unused")],
        PCM_OP_ANN,
    );

    k.export(
        "snd_card_new",
        vec![],
        Some("post(if (return != 0) transfer(write, return, 64))"),
        Arc::new(|k, _args| {
            let card = k.kstatic_alloc(64);
            k.snd().cards.push(card);
            Ok(card)
        }),
    );

    k.export(
        "snd_pcm_new",
        vec![Param::scalar("card"), Param::scalar("ops")],
        Some("post(if (return != 0) transfer(write, return, 64))"),
        Arc::new(|k, args| {
            let pcm = k.kstatic_alloc(snd_pcm::SIZE);
            k.mem
                .write_word((pcm as i64 + snd_pcm::OPS) as u64, args[1])?;
            k.snd().pcms.push((pcm, args[1]));
            Ok(pcm)
        }),
    );

    k.export(
        "snd_dma_alloc",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("bytes")],
        Some(
            "pre(check(write, pcm, 64)) \
             post(if (return != 0) transfer(write, return, bytes))",
        ),
        Arc::new(|k, args| {
            let (pcm, bytes) = (args[0], args[1]);
            let buf = k.kstatic_alloc(bytes);
            k.mem
                .write_word((pcm as i64 + snd_pcm::DMA_AREA) as u64, buf)?;
            k.mem
                .write_word((pcm as i64 + snd_pcm::DMA_BYTES) as u64, bytes)?;
            Ok(buf)
        }),
    );

    k.export(
        "snd_card_register",
        vec![Param::scalar("card")],
        Some(""),
        Arc::new(|_k, _args| Ok(0)),
    );
}

impl KernelCpu {
    /// Dispatches a PCM trigger through the stream's ops table (module
    /// memory, offset 0 = trigger).
    pub fn snd_trigger(&mut self, pcm: Word, cmd: u64) -> Result<Word, Trap> {
        let (_, ops) = *self
            .snd()
            .pcms
            .iter()
            .find(|&&(p, _)| p == pcm)
            .ok_or_else(|| Trap::BadRef("unknown pcm".into()))?;
        self.indirect_call(ops, "pcm_trigger", &[pcm, cmd])
    }

    /// Dispatches a PCM pointer query (ops table offset 8).
    pub fn snd_pointer(&mut self, pcm: Word) -> Result<Word, Trap> {
        let (_, ops) = *self
            .snd()
            .pcms
            .iter()
            .find(|&&(p, _)| p == pcm)
            .ok_or_else(|| Trap::BadRef("unknown pcm".into()))?;
        self.indirect_call(ops + 8, "pcm_pointer", &[pcm, 0])
    }
}
