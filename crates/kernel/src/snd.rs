//! The sound subsystem: cards, PCM streams, DMA buffers.
//!
//! Exercised by the `snd-intel8x0` and `snd-ens1370` modules. The PCM
//! trigger callback is dispatched through a slot in *module* memory (the
//! ops table), so it goes down the checked indirect-call path.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_machine::{Trap, Word};

use crate::deferred::DeferredKind;
use crate::kernel::KernelCpu;
use crate::types::{snd_pcm, snd_pcm_ops};

/// Annotation for the PCM trigger/pointer callbacks: per-stream principal.
pub const PCM_OP_ANN: &str = "principal(pcm) pre(copy(write, pcm, 64))";

/// Sound subsystem state.
#[derive(Debug, Default)]
pub struct SndState {
    /// Registered cards.
    pub cards: Vec<Word>,
    /// PCM streams: (pcm struct, module ops table address).
    pub pcms: Vec<(Word, Word)>,
}

impl SndState {
    /// The ops table registered for a stream, if any.
    pub fn ops_of(&self, pcm: Word) -> Option<Word> {
        self.pcms.iter().find(|&&(p, _)| p == pcm).map(|&(_, o)| o)
    }
}

/// Registers sound exports and interface annotations.
pub fn register(k: &mut KernelCpu) {
    k.define_sig(
        "pcm_trigger",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("cmd")],
        PCM_OP_ANN,
    );
    k.define_sig(
        "pcm_pointer",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("unused")],
        PCM_OP_ANN,
    );
    k.define_sig(
        "pcm_capture",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("bytes")],
        PCM_OP_ANN,
    );

    k.export(
        "snd_card_new",
        vec![],
        Some("post(if (return != 0) transfer(write, return, 64))"),
        Arc::new(|k, _args| {
            let card = k.kstatic_alloc(64);
            k.snd().cards.push(card);
            Ok(card)
        }),
    );

    k.export(
        "snd_pcm_new",
        vec![Param::scalar("card"), Param::scalar("ops")],
        Some("post(if (return != 0) transfer(write, return, 64))"),
        Arc::new(|k, args| {
            let pcm = k.kstatic_alloc(snd_pcm::SIZE);
            k.mem
                .write_word((pcm as i64 + snd_pcm::OPS) as u64, args[1])?;
            k.snd().pcms.push((pcm, args[1]));
            Ok(pcm)
        }),
    );

    k.export(
        "snd_dma_alloc",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("bytes")],
        Some(
            "pre(check(write, pcm, 64)) \
             post(if (return != 0) transfer(write, return, bytes))",
        ),
        Arc::new(|k, args| {
            let (pcm, bytes) = (args[0], args[1]);
            let buf = k.kstatic_alloc(bytes);
            k.mem
                .write_word((pcm as i64 + snd_pcm::DMA_AREA) as u64, buf)?;
            k.mem
                .write_word((pcm as i64 + snd_pcm::DMA_BYTES) as u64, bytes)?;
            Ok(buf)
        }),
    );

    k.export(
        "snd_card_register",
        vec![Param::scalar("card")],
        Some(""),
        Arc::new(|_k, _args| Ok(0)),
    );
}

impl KernelCpu {
    /// Dispatches a PCM trigger through the stream's ops table (module
    /// memory).
    pub fn snd_trigger(&mut self, pcm: Word, cmd: u64) -> Result<Word, Trap> {
        let ops = self
            .snd()
            .ops_of(pcm)
            .ok_or_else(|| Trap::BadRef("unknown pcm".into()))?;
        self.indirect_call(
            ops + snd_pcm_ops::TRIGGER as u64,
            "pcm_trigger",
            &[pcm, cmd],
        )
    }

    /// Dispatches a PCM pointer query.
    pub fn snd_pointer(&mut self, pcm: Word) -> Result<Word, Trap> {
        let ops = self
            .snd()
            .ops_of(pcm)
            .ok_or_else(|| Trap::BadRef("unknown pcm".into()))?;
        self.indirect_call(ops + snd_pcm_ops::POINTER as u64, "pcm_pointer", &[pcm, 0])
    }

    /// Asserts a capture-period interrupt for a stream: the period's
    /// `pcm_capture` bottom half goes through the same deferred-call mux
    /// as NAPI polls, then is dispatched immediately (top half + softirq
    /// in one step). Returns the bytes the module captured, or 0 if the
    /// period was dropped (deferred ring overrun).
    pub fn snd_capture_period(&mut self, pcm: Word) -> Result<Word, Trap> {
        if self.snd().ops_of(pcm).is_none() {
            return Err(Trap::BadRef("unknown pcm".into()));
        }
        let id = self.deferred_register(pcm, DeferredKind::SndCapture);
        if !self.deferred_schedule(id, 32) {
            return Ok(0);
        }
        Ok(self.deferred_dispatch_one(id)?.unwrap_or(0))
    }
}
