//! The kernel world: module loading, wrapper execution, indirect-call
//! interposition, and the syscall surface exploits drive.
//!
//! # Execution model (multi-CPU)
//!
//! Since the SMP redesign the kernel is split in two, mirroring the
//! `RuntimeCore`/`GuardHandle` split one layer down:
//!
//! - [`KernelCore`] is the **shared machine**: the interior-mutable
//!   [`AddressSpace`], the shared `lxfi_core::RuntimeCore`, and every
//!   registry (exports, sig declarations, loaded modules, kernel data
//!   symbols, user shellcode) behind `RwLock`s, plus the slab,
//!   process table and subsystem states (net/pci/socket/sound/dm)
//!   behind `Mutex`es. It is `Send + Sync` and lives in an `Arc`.
//! - [`KernelCpu`] is **one simulated CPU**: it owns what is genuinely
//!   per-CPU — the per-thread guard lanes of its [`Runtime`] facade
//!   (shadow stack, private epoch cache, stats), a kernel-stack window
//!   and stack pointer, the interpreter's module execution stack, and
//!   the fuel/cycle accounting. It implements [`Env`], so real
//!   rewritten module code interprets concurrently on N OS threads,
//!   one `KernelCpu` each (see `Kernel::new_cpu`).
//! - [`Kernel`] is the thin single-threaded facade the existing tests,
//!   examples, and exploit scenarios drive: CPU 0 plus the shared core,
//!   `Deref`ing to [`KernelCpu`] so the historical API is unchanged.
//!
//! **Locking rules.** The guarded-store hot path takes no locks at all
//! (private epoch cache + one atomic epoch load + atomic page-radix
//! walk). Call dispatch takes short registry *read* locks; only module
//! load/unload (serialized by one load mutex) takes write locks.
//! Subsystem mutex guards are never held across a dispatch into module
//! code — natives lock, mutate, and release within one statement.
//! A module's `Arc<LoadedModule>` is cloned onto the CPU's execution
//! stack before interpretation, so unloading races safely: in-flight
//! CPUs keep the program alive, new dispatches no longer resolve it.
//!
//! Control-transfer interposition (§5, Figure 6):
//!
//! - **module → kernel** ([`KernelCpu::call_extern`] via the interpreter):
//!   CALL-capability check, wrapper entry (shadow stack, switch to kernel
//!   context), `pre` actions, native call, `post` actions, wrapper exit.
//! - **kernel → module** ([`KernelCpu::invoke_module_function`]): principal
//!   selection from the `principal(...)` annotation, wrapper entry,
//!   `pre` actions, interpretation of the module function, `post`
//!   actions, wrapper exit.
//! - **kernel indirect calls** ([`KernelCpu::indirect_call`] for native
//!   code, `GuardIndCall` for rewritten kernel thunks): writer-set bitmap
//!   check, then — on the slow path — the reverse writer index resolves
//!   the slot's writer principals (sublinear in principals, §5), each of
//!   which must hold CALL for the target, plus the annotation-hash match
//!   — then dispatch.
//!
//! Trap classification (fault containment — see `docs/fault-model.md`):
//! a trap raised while an **isolated module** executes (or a policy
//! violation whose culprit principal belongs to one) **quarantines that
//! module only** — name and function addresses unpublished, in-flight
//! executions drained through the RCU grace period, resources reclaimed,
//! principals retired with their WRITE coverage moved to the tombstone —
//! and the kernel keeps serving every other module. A policy violation
//! that cannot be attributed to any module is a violation of the
//! kernel's *own* invariants and still escalates to a **kernel panic**
//! shared by every CPU. A machine fault (NULL dereference) goes down the
//! **oops** path, which runs `do_exit` — including its CVE-2010-4258 bug
//! of zeroing the user-controlled `clear_child_tid` pointer; module
//! machine faults oops *and* quarantine (the interrupted process dies
//! either way).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use lxfi_annotations::parse_fn_annotations;
use lxfi_core::actions::{apply_actions, CallSite, Dir};
use lxfi_core::iface::{FnDecl, Param, TypeLayouts};
use lxfi_core::runtime::FnMeta;
use lxfi_core::shadow::PrincipalCtx;
use lxfi_core::{PrincipalId, RawCap, Runtime, RuntimeCore, ThreadId, Violation};
use lxfi_machine::program::ImportKind;
use lxfi_machine::{
    run_compiled, run_function, verify_soundness, AddressSpace, Backend, CompileStats,
    CompiledProgram, Env, FuncId, GlobalId, Program, SigId, SoundnessPolicy, SymbolId, Trap, Word,
};
use lxfi_rewriter::{
    propagate, rewrite_kernel_thunks, rewrite_module, InitGrant, InterfaceSpec, RewriteOptions,
};

use crate::exports::{Export, NativeFn};
use crate::layout::*;
use crate::magazine::{Magazines, ShardedSlab};
use crate::process::ProcessTable;
use crate::types;

/// Whether a module is loaded with LXFI enforcement or bare (stock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// No rewriting, no runtime checks — the baseline and the exploit
    /// victim configuration.
    Stock,
    /// Rewritten and enforced.
    Lxfi,
}

/// Index of a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadedModuleId(pub usize);

/// A module ready to load: program, interface annotations, capability
/// iterators, and an optional init function.
pub struct ModuleSpec {
    /// Module name.
    pub name: String,
    /// The module's KIR program.
    pub program: Program,
    /// Annotations for the module's function-pointer types and functions.
    pub iface: InterfaceSpec,
    /// Capability iterators this module's annotations reference.
    pub iterators: Vec<(String, lxfi_core::IteratorFn)>,
    /// Function run right after loading (the `module_init`).
    pub init_fn: Option<String>,
}

/// User-space "shellcode": runs with full kernel access if the kernel is
/// ever tricked into calling a user address (the payload of every exploit
/// here typically sets `uid = 0`).
pub type UserFn = Arc<dyn Fn(&mut KernelCpu) + Send + Sync>;

/// One loaded module: immutable after load except the per-`SigId`
/// annotation-hash array (refreshed when the sig registry grows) and the
/// unload flag. Shared as an `Arc` so executing CPUs never hold a
/// registry lock while interpreting.
pub(crate) struct LoadedModule {
    name: String,
    mode: IsolationMode,
    /// Index of this module in the registry vector (its window slot).
    /// Quarantine needs it to unpublish without a reverse scan, and
    /// teardown pushes it onto the free-slot list for window reuse.
    slot: usize,
    /// `None` for the core-kernel thunk pseudo-module.
    mid: Option<lxfi_core::ModuleId>,
    program: Arc<Program>,
    /// The program lowered for the compiled backend — populated once at
    /// load when the kernel booted with [`Backend::Compiled`], `None`
    /// under the interpreter. Dispatch picks the backend per call from
    /// this field, so a kernel never pays compilation it won't use.
    compiled: Option<Arc<CompiledProgram>>,
    global_addrs: Vec<Word>,
    fn_base: Word,
    decls: HashMap<FuncId, Arc<FnDecl>>,
    import_addrs: Vec<Word>,
    /// Annotation hash per program `SigId`, resolved against the sig
    /// registry whenever it changes — so the indirect-call guard indexes
    /// an array instead of hashing a sig name per call.
    sig_ahash: RwLock<Vec<u64>>,
    /// CPUs currently executing this module (exec-stack occurrences).
    /// `unload_module` waits for this to drain after unpublishing the
    /// function addresses — the RCU-style grace period that keeps a
    /// racing unload from revoking a running execution's capabilities
    /// out from under it.
    active: std::sync::atomic::AtomicUsize,
    /// Set by `unload_module`; in-flight executions finish on their
    /// cloned `Arc`, new dispatches no longer resolve the module.
    unloaded: AtomicBool,
}

/// An execution reference on a loaded module (the moral equivalent of
/// `try_module_get`): holds the module's `active` count up for as long
/// as the reference lives, which is what `unload_module`'s grace period
/// waits on. Acquired under the module-registry read lock so it can
/// never race the unload's unpublish.
pub(crate) struct ModuleRef(Arc<LoadedModule>);

impl ModuleRef {
    fn acquire(m: &Arc<LoadedModule>) -> ModuleRef {
        m.active.fetch_add(1, Ordering::AcqRel);
        ModuleRef(Arc::clone(m))
    }
}

impl std::ops::Deref for ModuleRef {
    type Target = Arc<LoadedModule>;
    fn deref(&self) -> &Arc<LoadedModule> {
        &self.0
    }
}

impl Drop for ModuleRef {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Resolves a program's per-`SigId` annotation hashes against the sig
/// registry — the one definition shared by module load, thunk load, and
/// the registry-growth refresh, so the load-time snapshot can never
/// diverge from the refresh path.
fn resolve_sig_hashes(
    sig_decls: &HashMap<String, Arc<FnDecl>>,
    program: &Program,
    empty_ahash: u64,
) -> Vec<u64> {
    program
        .sigs
        .iter()
        .map(|s| {
            sig_decls
                .get(&s.name)
                .map(|d| d.ahash)
                .unwrap_or(empty_ahash)
        })
        .collect()
}

/// A fault attributed to one module and contained there: the structured
/// record the supervisor and tests consume instead of string-matching a
/// panic message. Appended to the kernel-wide fault log (see
/// [`KernelCpu::last_fault`]) by the quarantine path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleFault {
    /// Registry slot of the quarantined module — `None` when the fault
    /// was attributed to state planted by a module that is already dead
    /// and reclaimed (its slot may have been reused).
    pub id: Option<LoadedModuleId>,
    /// Module name at fault time.
    pub module: String,
    /// The module's runtime principal namespace.
    pub mid: Option<lxfi_core::ModuleId>,
    /// The culprit principal, when the violation (or execution context)
    /// named one.
    pub principal: Option<PrincipalId>,
    /// The policy violation, when the trap was one.
    pub violation: Option<Violation>,
    /// Human-readable trap description.
    pub reason: String,
    /// Whether the trap was a machine fault, so the oops path (and its
    /// CVE-2010-4258 zero-write) also ran.
    pub oopsed: bool,
}

/// Outcome classification for public kernel entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// LXFI detected a violation of the kernel's own invariants and
    /// panicked the kernel.
    Panic(String),
    /// A machine fault (oops) killed the current process.
    Oops(String),
    /// A trap was attributed to one isolated module, which has been
    /// quarantined; the kernel keeps running. (Boxed: the fault record
    /// carries strings and must not fatten every `Result` in the API.)
    ModuleFault(Box<ModuleFault>),
    /// Plain failure (bad arguments etc.).
    Fail(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Panic(s) => write!(f, "kernel panic: {s}"),
            KernelError::Oops(s) => write!(f, "kernel oops: {s}"),
            KernelError::ModuleFault(m) => {
                write!(f, "module fault: {} quarantined: {}", m.module, m.reason)
            }
            KernelError::Fail(s) => write!(f, "error: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The exported-symbol registry (behind one `RwLock` in the core).
#[derive(Default)]
struct ExportTable {
    exports: Vec<Arc<Export>>,
    by_name: HashMap<String, usize>,
}

/// The loaded-module registry: the module vector, the name index, and
/// the function-address map, mutated together under one write lock so a
/// resolved `fn_addrs` entry always points at a present module.
#[derive(Default)]
struct ModuleTable {
    modules: Vec<Arc<LoadedModule>>,
    by_name: HashMap<String, usize>,
    fn_addrs: HashMap<Word, (usize, FuncId)>,
    /// Slots of torn-down modules, reusable by the next load (lowest
    /// first). The dead `Arc` stays in `modules` until then so indices
    /// remain stable; the window is scrubbed at reuse, not teardown —
    /// tombstone coverage must poison dead slots *until* the memory is
    /// re-initialized by a new tenant.
    free_slots: Vec<usize>,
}

/// The shared, `Send + Sync` half of the simulated kernel. See the
/// module docs for the state split and locking rules. Construct via
/// [`Kernel::boot`]; hand out execution contexts with
/// [`Kernel::new_cpu`].
pub struct KernelCore {
    /// Simulated physical memory (interior-mutable; see
    /// [`AddressSpace`]'s concurrency model).
    pub mem: Arc<AddressSpace>,
    rtc: Arc<RuntimeCore>,
    /// Global isolation mode (modules default to it).
    pub mode: IsolationMode,
    /// Execution backend every module (and the kernel thunks) is loaded
    /// for. Fixed at boot; `load_module` compiles once, every
    /// [`KernelCpu`] dispatches through the compiled form.
    pub backend: Backend,
    /// Rewriter options every LXFI `load_module` uses. Fixed at boot so
    /// benchmarks can compare rewrite strategies (e.g. guard hoisting
    /// on/off) across otherwise identical kernels.
    pub rewrite_opts: RewriteOptions,
    layouts: TypeLayouts,
    /// Hash of the empty annotation set (the default for unannotated
    /// functions and unknown sigs), computed once at boot.
    empty_ahash: u64,
    /// Shared declaration for unannotated module functions invoked
    /// directly by the kernel (e.g. `module_init`): empty annotations,
    /// compiled once at boot so the per-call fallback is an Arc clone.
    unannotated_decl: Arc<FnDecl>,

    exports: RwLock<ExportTable>,
    kdata: RwLock<HashMap<String, (Word, u64)>>,
    sig_decls: RwLock<HashMap<String, Arc<FnDecl>>>,
    modules: RwLock<ModuleTable>,
    /// Set once by `load_kernel_thunks`: the thunk pseudo-module and its
    /// name → function-id map, so per-packet thunk dispatch costs one
    /// `Arc` clone and one hash lookup instead of a registry read lock
    /// plus a linear name scan.
    thunks: std::sync::OnceLock<(Arc<LoadedModule>, HashMap<String, FuncId>)>,
    /// Serializes whole module load/unload transactions (loads are rare;
    /// dispatch only takes the registries' read locks).
    load_lock: Mutex<()>,

    slab: ShardedSlab,
    procs: Mutex<ProcessTable>,
    panic: Mutex<Option<(String, Option<Violation>)>>,
    /// Contained module faults, oldest first (the supervisor's and the
    /// tests' event source). Kernel-wide: any CPU's quarantine appends.
    faults: Mutex<Vec<ModuleFault>>,
    user_fns: RwLock<HashMap<Word, UserFn>>,

    kdata_next: AtomicU64,
    user_next: AtomicU64,
    kstatic_next: AtomicU64,
    /// Stack base per simulated kernel thread; index = `ThreadId`.
    threads: Mutex<Vec<Word>>,

    net: Mutex<crate::net::NetState>,
    pci: Mutex<crate::pci::PciState>,
    sock: Mutex<crate::socket::SocketState>,
    snd: Mutex<crate::snd::SndState>,
    dm: Mutex<crate::dm::DmState>,

    /// The deferred-call table (bottom halves; see [`crate::deferred`]).
    deferred: Mutex<crate::deferred::DeferredState>,
    /// Kernel-wide count of pending deferred calls — the lock-free probe
    /// every `enter` epilogue takes before deciding whether to drain, so
    /// entries with no bottom-half work never touch the deferred mutex.
    deferred_pending: AtomicUsize,
}

impl KernelCore {
    /// The shared runtime core backing this kernel's guards.
    pub fn runtime_core(&self) -> Arc<RuntimeCore> {
        Arc::clone(&self.rtc)
    }

    /// Struct layouts for `sizeof(*ptr)` defaults (immutable after boot).
    pub fn layouts(&self) -> &TypeLayouts {
        &self.layouts
    }

    /// The sharded slab allocator (each call locks only the shard it
    /// touches).
    pub fn slab(&self) -> &ShardedSlab {
        &self.slab
    }

    /// Locks the process table.
    pub fn procs(&self) -> MutexGuard<'_, ProcessTable> {
        self.procs.lock().expect("procs lock")
    }

    /// Locks the networking state.
    pub fn net(&self) -> MutexGuard<'_, crate::net::NetState> {
        self.net.lock().expect("net lock")
    }

    /// Locks the PCI state.
    pub fn pci(&self) -> MutexGuard<'_, crate::pci::PciState> {
        self.pci.lock().expect("pci lock")
    }

    /// Locks the socket-layer state.
    pub fn sock(&self) -> MutexGuard<'_, crate::socket::SocketState> {
        self.sock.lock().expect("sock lock")
    }

    /// Locks the sound state.
    pub fn snd(&self) -> MutexGuard<'_, crate::snd::SndState> {
        self.snd.lock().expect("snd lock")
    }

    /// Locks the device-mapper state.
    pub fn dm(&self) -> MutexGuard<'_, crate::dm::DmState> {
        self.dm.lock().expect("dm lock")
    }

    /// Locks the deferred-call table.
    pub fn deferred(&self) -> MutexGuard<'_, crate::deferred::DeferredState> {
        self.deferred.lock().expect("deferred lock")
    }

    /// Aggregated compiled-backend statistics across every loaded
    /// module (including the kernel-thunk pseudo-module): blocks
    /// compiled, fused guard sites, functions that fell back to the
    /// interpreter. All-zero under [`Backend::Interp`].
    pub fn compile_stats(&self) -> CompileStats {
        let mods = self.modules.read().expect("modules lock");
        let mut total = CompileStats::default();
        for m in &mods.modules {
            if let Some(cp) = &m.compiled {
                let s = cp.stats();
                total.funcs_compiled += s.funcs_compiled;
                total.blocks_compiled += s.blocks_compiled;
                total.fused_guard_sites += s.fused_guard_sites;
                total.fallback_funcs += s.fallback_funcs;
            }
        }
        total
    }

    /// Allocates a simulated kernel thread: maps its stack, grants
    /// already-loaded isolated modules WRITE to it (initial capability
    /// (2) of §3.2), returns `(id, stack base)`. Serialized with module
    /// loads (the load lock) so a concurrently loading module cannot
    /// miss the new stack: the load either committed before this (the
    /// module snapshot below includes it) or starts after (its
    /// thread-stack snapshot includes the new base) — exactly one side
    /// performs the grant.
    fn alloc_thread(&self) -> (ThreadId, Word) {
        let _load = self.load_lock.lock().expect("load lock");
        let base = {
            let mut th = self.threads.lock().expect("threads lock");
            let idx = th.len();
            if idx > 0 {
                // Going SMP: the single-threaded kfree-hint debug
                // cross-check is no longer race-free (see RuntimeCore).
                self.rtc.disable_kfree_cross_check();
            }
            let base = STACK_BASE + idx as u64 * STACK_STRIDE;
            th.push(base);
            base
        };
        self.mem.map_range(base, STACK_SIZE);
        let mids: Vec<_> = {
            let mods = self.modules.read().expect("modules lock");
            mods.modules
                .iter()
                // An unloaded module's principals must not regain
                // authority: no stack grant for dead modules.
                .filter(|m| !m.unloaded.load(Ordering::Acquire))
                .filter_map(|m| m.mid)
                .collect()
        };
        for mid in mids {
            let shared = self.rtc.shared_principal(mid);
            self.rtc.grant(shared, RawCap::write(base, STACK_SIZE));
        }
        let idx = ((base - STACK_BASE) / STACK_STRIDE) as u32;
        (ThreadId(idx), base)
    }

    /// Re-resolves every loaded module's per-`SigId` annotation hashes
    /// against the sig registry. Called whenever the registry gains an
    /// entry, so the indirect-call guards stay array-indexed.
    fn refresh_sig_hashes(&self) {
        let sig_decls = self.sig_decls.read().expect("sig lock");
        let mods = self.modules.read().expect("modules lock");
        for m in &mods.modules {
            *m.sig_ahash.write().expect("sig_ahash lock") =
                resolve_sig_hashes(&sig_decls, &m.program, self.empty_ahash);
        }
    }

    /// The export registered at `addr`, if any.
    fn export_at(&self, addr: Word) -> Option<Arc<Export>> {
        if addr < EXPORT_BASE {
            return None;
        }
        let idx = ((addr - EXPORT_BASE) / FN_SPACING) as usize;
        if addr != EXPORT_BASE + idx as u64 * FN_SPACING {
            return None;
        }
        let tab = self.exports.read().expect("exports lock");
        tab.exports.get(idx).cloned()
    }

    /// Resolves a function address to its module, taking an execution
    /// reference (module "get") **under the registry read lock** — so
    /// `unload_module`'s unpublish (under the write lock) strictly
    /// orders with every resolution: after unpublish, every live
    /// dispatcher is already counted in `active` and the grace period
    /// waits it out.
    fn module_of_fn(&self, addr: Word) -> Option<(ModuleRef, FuncId)> {
        let tab = self.modules.read().expect("modules lock");
        let &(midx, fid) = tab.fn_addrs.get(&addr)?;
        Some((ModuleRef::acquire(&tab.modules[midx]), fid))
    }
}

/// One simulated CPU: an [`Env`] implementation over the shared
/// [`KernelCore`]. Owns the per-CPU state (guard lanes via its
/// [`Runtime`] facade, kernel stack window, module execution stack,
/// fuel and cycle accounting); everything else delegates to the core.
/// `Send`, so workloads move CPUs onto OS threads.
pub struct KernelCpu {
    core: Arc<KernelCore>,
    /// Simulated physical memory (shared with every other CPU).
    pub mem: Arc<AddressSpace>,
    /// This CPU's runtime facade over the shared `RuntimeCore`: guard
    /// lanes (shadow stack + private epoch cache) for the simulated
    /// threads this CPU runs, plus this CPU's guard stats and costs.
    pub rt: Runtime,
    /// Global isolation mode (modules default to it).
    pub mode: IsolationMode,

    /// This CPU's private slab magazines (per-size-class caches refilled
    /// from the CPU's preferred heap shard). Public so benches and tests
    /// read the hit/miss counters.
    pub mags: Magazines,

    thread: ThreadId,
    stack_base: Word,
    sp: Word,
    exec_stack: Vec<Arc<LoadedModule>>,
    /// The innermost module executing when the trap now unwinding was
    /// raised — captured by the first `exec_module` frame to observe the
    /// `Err` (the exec stack has fully popped by the time `enter`
    /// classifies), consumed by fault classification.
    pending_fault: Option<Arc<LoadedModule>>,
    /// Deterministic seeded fault injection (`None` = off; see
    /// [`crate::fault_inject`]).
    fault_inject: Option<crate::fault_inject::FaultInjector>,
    /// True while this CPU dispatches a deferred call (a bottom half) —
    /// the context gate for [`crate::fault_inject::FaultSite::DeferredFuel`].
    in_deferred: bool,

    fuel: u64,
    /// Cycles consumed by interpreted instructions (monotonic).
    pub cycles: u64,
}

/// The simulated kernel: the single-threaded facade over the shared
/// [`KernelCore`] — CPU 0 plus the boot surface. `Deref`s to
/// [`KernelCpu`], so the historical `&mut Kernel` API (tests, examples,
/// exploit scenarios) is unchanged; multi-threaded workloads peel off
/// additional CPUs with [`Kernel::new_cpu`].
pub struct Kernel {
    cpu: KernelCpu,
}

impl std::ops::Deref for Kernel {
    type Target = KernelCpu;
    fn deref(&self) -> &KernelCpu {
        &self.cpu
    }
}

impl std::ops::DerefMut for Kernel {
    fn deref_mut(&mut self) -> &mut KernelCpu {
        &mut self.cpu
    }
}

impl Kernel {
    /// Boots a kernel in the given isolation mode: registers struct
    /// layouts, core exports, subsystems, kernel dispatch thunks, the
    /// process table, and CPU 0 on thread 0. Runs module code through
    /// the interpreter; use [`Kernel::boot_with_backend`] to pick the
    /// compiled backend.
    pub fn boot(mode: IsolationMode) -> Self {
        Self::boot_with_backend(mode, Backend::Interp)
    }

    /// [`Kernel::boot`] with an explicit execution backend. Under
    /// [`Backend::Compiled`] every `load_module` (and the kernel thunk
    /// pseudo-module) is translated once into direct-threaded block
    /// closures, and all CPUs dispatch through the compiled form; the
    /// interpreter remains available as the differential-testing oracle
    /// via [`Backend::Interp`].
    pub fn boot_with_backend(mode: IsolationMode, backend: Backend) -> Self {
        Self::boot_with_options(mode, backend, RewriteOptions::default())
    }

    /// [`Kernel::boot_with_backend`] with explicit rewriter options,
    /// used by benchmarks to measure a rewrite strategy (e.g. guard
    /// hoisting off) against the default.
    pub fn boot_with_options(
        mode: IsolationMode,
        backend: Backend,
        rewrite_opts: RewriteOptions,
    ) -> Self {
        let mut layouts = TypeLayouts::new();
        types::register_layouts(&mut layouts);

        let mem = Arc::new(AddressSpace::new());
        // The shared runtime core is born sharded along the address-space
        // regions (and the first module windows) before any capability
        // traffic, so grant/revoke splices stay bounded by the region
        // they touch — and so are the per-shard locks.
        let rtc = Arc::new(RuntimeCore::with_shard_boundaries(shard_boundaries()));
        // The tombstone principal exists from boot, so principal
        // numbering is deterministic whether or not a module ever
        // faults (quarantine would otherwise create it lazily).
        rtc.ensure_tombstone();
        let procs = ProcessTable::new(&mem, KSTATIC_BASE);

        let unannotated_decl = {
            let mut d = FnDecl::new("<unannotated>", Vec::new(), Default::default());
            let mut rt = Runtime::from_core(Arc::clone(&rtc));
            d.compile(&mut rt, &layouts);
            Arc::new(d)
        };

        let core = Arc::new(KernelCore {
            mem: Arc::clone(&mem),
            rtc,
            mode,
            backend,
            layouts,
            empty_ahash: lxfi_annotations::annotation_hash(&Default::default()),
            unannotated_decl,
            exports: RwLock::new(ExportTable::default()),
            kdata: RwLock::new(HashMap::new()),
            sig_decls: RwLock::new(HashMap::new()),
            rewrite_opts,
            modules: RwLock::new(ModuleTable::default()),
            thunks: std::sync::OnceLock::new(),
            load_lock: Mutex::new(()),
            slab: ShardedSlab::new(),
            procs: Mutex::new(procs),
            panic: Mutex::new(None),
            faults: Mutex::new(Vec::new()),
            user_fns: RwLock::new(HashMap::new()),
            kdata_next: AtomicU64::new(KDATA_BASE),
            user_next: AtomicU64::new(0x0000_1000_0000),
            kstatic_next: AtomicU64::new(KSTATIC_BASE + 0x10_0000),
            threads: Mutex::new(Vec::new()),
            net: Mutex::new(Default::default()),
            pci: Mutex::new(Default::default()),
            sock: Mutex::new(Default::default()),
            snd: Mutex::new(Default::default()),
            dm: Mutex::new(Default::default()),
            deferred: Mutex::new(Default::default()),
            deferred_pending: AtomicUsize::new(0),
        });

        let cpu = KernelCpu::new(Arc::clone(&core));
        let mut k = Kernel { cpu };
        crate::exports_base::register(&mut k);
        crate::pci::register(&mut k);
        crate::net::register(&mut k);
        crate::socket::register(&mut k);
        crate::snd::register(&mut k);
        crate::dm::register(&mut k);
        k.load_kernel_thunks();
        k
    }

    /// The shared kernel core.
    pub fn core(&self) -> Arc<KernelCore> {
        Arc::clone(&self.cpu.core)
    }

    /// Creates an additional simulated CPU over this kernel's shared
    /// core, pinned to a fresh kernel thread with its own stack, guard
    /// lane, and fuel budget. Move it to another OS thread to execute
    /// module code concurrently with this kernel.
    pub fn new_cpu(&self) -> KernelCpu {
        KernelCpu::new(Arc::clone(&self.cpu.core))
    }
}

impl KernelCpu {
    /// Creates a CPU over a shared core, allocating its kernel thread.
    pub fn new(core: Arc<KernelCore>) -> Self {
        let (thread, stack_base) = core.alloc_thread();
        let mut rt = Runtime::from_core(core.runtime_core());
        rt.register_thread(thread, stack_base, STACK_SIZE);
        KernelCpu {
            mem: Arc::clone(&core.mem),
            rt,
            mode: core.mode,
            mags: Magazines::new(thread.0 as usize),
            thread,
            stack_base,
            sp: stack_base + STACK_SIZE,
            exec_stack: Vec::new(),
            pending_fault: None,
            fault_inject: None,
            in_deferred: false,
            fuel: u64::MAX,
            cycles: 0,
            core,
        }
    }

    /// The shared kernel core.
    pub fn kernel_core(&self) -> &Arc<KernelCore> {
        &self.core
    }

    // ------------------------------------------------------------ threads

    /// The shared runtime core backing this kernel's guards. Worker
    /// threads outside the simulated kernel (benchmarks, stress tests)
    /// guard against the same capability world through handles from
    /// [`KernelCpu::guard_handle`].
    pub fn runtime_core(&self) -> Arc<RuntimeCore> {
        self.rt.share()
    }

    /// Hands out a fresh per-thread guard handle over this kernel's
    /// shared core: its own shadow stack, private epoch cache, and
    /// stats, suitable for moving to another OS thread. Full kernel
    /// execution contexts (interpreting module code) come from
    /// [`Kernel::new_cpu`] instead.
    pub fn guard_handle(&self) -> lxfi_core::GuardHandle {
        lxfi_core::GuardHandle::new(self.rt.share())
    }

    /// Creates an additional simulated kernel thread *on this CPU* with
    /// its own stack and guard lane; returns its id. (Distinct from
    /// [`Kernel::new_cpu`], which creates an independently schedulable
    /// execution context.)
    pub fn spawn_thread(&mut self) -> ThreadId {
        let (t, base) = self.core.alloc_thread();
        self.rt.register_thread(t, base, STACK_SIZE);
        t
    }

    /// `set_tid_address(2)`: records the user pointer `do_exit` will zero
    /// on process death — the CVE-2010-4258 primitive the Econet exploit
    /// aims.
    pub fn sys_set_tid_address(&mut self, tidptr: Word) {
        let task = self.procs().current_task();
        self.mem
            .write_word(
                (task as i64 + crate::process::task::CLEAR_CHILD_TID) as u64,
                tidptr,
            )
            .expect("task mapped");
    }

    /// The current thread id (the thread this CPU is pinned to).
    pub fn current_thread(&self) -> ThreadId {
        self.thread
    }

    // ----------------------------------------------- shared-state access

    /// Struct layouts for `sizeof(*ptr)` defaults.
    pub fn layouts(&self) -> &TypeLayouts {
        &self.core.layouts
    }

    /// The sharded slab allocator backing `kmalloc` (per-shard locking).
    pub fn slab(&self) -> &ShardedSlab {
        self.core.slab()
    }

    /// Per-packet `kmalloc`: serves from this CPU's magazine, refilling
    /// from the CPU's preferred heap shard on a miss. Falls back to the
    /// same `None` contract as the direct allocator for bad sizes.
    pub fn kmalloc_cpu(&mut self, size: u64) -> Option<Word> {
        self.mags.kmalloc(&self.core.slab, &self.mem, size)
    }

    /// Per-packet `kfree` epilogue: accepts a slot whose two-phase free
    /// prologue (`begin_free`, capability sweep, zeroing, `note_zeroed`)
    /// already ran, caching it in this CPU's magazine instead of
    /// returning it to the shard free list.
    pub fn kfree_cpu(&mut self, addr: Word, class: u64) {
        self.mags.release(&self.core.slab, addr, class);
    }

    /// Locks the process table (processes, credentials, pid hash).
    pub fn procs(&self) -> MutexGuard<'_, ProcessTable> {
        self.core.procs()
    }

    /// Locks the networking subsystem state.
    pub fn net(&self) -> MutexGuard<'_, crate::net::NetState> {
        self.core.net()
    }

    /// Locks the PCI subsystem state.
    pub fn pci(&self) -> MutexGuard<'_, crate::pci::PciState> {
        self.core.pci()
    }

    /// Locks the socket layer state.
    pub fn sock(&self) -> MutexGuard<'_, crate::socket::SocketState> {
        self.core.sock()
    }

    /// Locks the sound subsystem state.
    pub fn snd(&self) -> MutexGuard<'_, crate::snd::SndState> {
        self.core.snd()
    }

    /// Locks the device-mapper state.
    pub fn dm(&self) -> MutexGuard<'_, crate::dm::DmState> {
        self.core.dm()
    }

    /// Locks the deferred-call table (see [`crate::deferred`]).
    pub fn deferred(&self) -> MutexGuard<'_, crate::deferred::DeferredState> {
        self.core.deferred()
    }

    // ----------------------------------------------------------- exports

    /// Registers an exported kernel function. `ann` is annotation source
    /// text (`None` = unannotated: uncallable from isolated modules).
    pub fn export(&mut self, name: &str, params: Vec<Param>, ann: Option<&str>, imp: NativeFn) {
        self.export_full(name, params, ann, imp, false);
    }

    /// Registers an LXFI runtime entry point: callable like an export, but
    /// executed in the caller's principal context (§3.4).
    pub fn export_runtime(&mut self, name: &str, params: Vec<Param>, ann: &str, imp: NativeFn) {
        self.export_full(name, params, Some(ann), imp, true);
    }

    fn export_full(
        &mut self,
        name: &str,
        params: Vec<Param>,
        ann: Option<&str>,
        imp: NativeFn,
        runtime_call: bool,
    ) {
        let decl = ann.map(|src| {
            let mut d = FnDecl::new(
                name,
                params.clone(),
                parse_fn_annotations(src)
                    .unwrap_or_else(|e| panic!("bad annotation on {name}: {e}")),
            );
            d.compile(&mut self.rt, &self.core.layouts);
            Arc::new(d)
        });
        let ahash = decl
            .as_ref()
            .map(|d| d.ahash)
            .unwrap_or(self.core.empty_ahash);
        let addr = {
            let mut tab = self.core.exports.write().expect("exports lock");
            let idx = tab.exports.len();
            assert!(
                tab.by_name.insert(name.to_string(), idx).is_none(),
                "duplicate export {name}"
            );
            tab.exports.push(Arc::new(Export {
                name: name.to_string(),
                decl,
                imp,
                runtime_call,
            }));
            EXPORT_BASE + idx as u64 * FN_SPACING
        };
        self.rt.register_function(
            addr,
            FnMeta {
                name: name.to_string(),
                ahash,
                module: None,
            },
        );
    }

    /// Declares an annotated function-pointer type (interface annotation
    /// on a struct field, e.g. `net_device_ops.ndo_start_xmit`).
    pub fn define_sig(&mut self, name: &str, params: Vec<Param>, ann: &str) {
        let mut decl = FnDecl::new(
            name,
            params,
            parse_fn_annotations(ann).unwrap_or_else(|e| panic!("bad annotation on {name}: {e}")),
        );
        decl.compile(&mut self.rt, &self.core.layouts);
        // Decide under the write lock: a concurrent define_sig (or a
        // loading module merging the same name) must never let a
        // conflicting declaration silently replace an existing one
        // (§4.2 exact-match-on-collision).
        {
            let mut sig_decls = self.core.sig_decls.write().expect("sig lock");
            if let Some(prev) = sig_decls.get(name) {
                assert_eq!(
                    prev.ann.canonical(),
                    decl.ann.canonical(),
                    "conflicting sig declaration for {name}"
                );
                return;
            }
            sig_decls.insert(name.to_string(), Arc::new(decl));
        }
        self.core.refresh_sig_hashes();
    }

    /// The annotated declaration of a function-pointer type.
    pub fn sig_decl(&self, name: &str) -> Option<Arc<FnDecl>> {
        self.core
            .sig_decls
            .read()
            .expect("sig lock")
            .get(name)
            .cloned()
    }

    /// Exports a kernel data symbol of `size` bytes; returns its address.
    pub fn export_data(&mut self, name: &str, size: u64) -> Word {
        let addr = self
            .core
            .kdata_next
            .fetch_add((size + 0xfff) & !0xfff, Ordering::Relaxed);
        self.mem.map_range(addr, size);
        self.core
            .kdata
            .write()
            .expect("kdata lock")
            .insert(name.to_string(), (addr, size));
        addr
    }

    /// Address of an exported kernel function.
    pub fn export_addr(&self, name: &str) -> Option<Word> {
        self.core
            .exports
            .read()
            .expect("exports lock")
            .by_name
            .get(name)
            .map(|&i| EXPORT_BASE + i as u64 * FN_SPACING)
    }

    /// Allocates zeroed kernel-static memory (ops tables, device structs).
    pub fn kstatic_alloc(&mut self, size: u64) -> Word {
        let addr = self
            .core
            .kstatic_next
            .fetch_add((size + 63) & !63, Ordering::Relaxed);
        self.mem.map_range(addr, size);
        addr
    }

    // --------------------------------------------------------- user space

    /// Maps user memory at a caller-chosen address (`mmap`-with-MAP_FIXED;
    /// exploits use it to place payloads at crafted addresses).
    pub fn user_map(&mut self, addr: Word, len: u64) -> Result<(), KernelError> {
        if !is_user_addr(addr) || !is_user_addr(addr + len) {
            return Err(KernelError::Fail("user_map outside user space".into()));
        }
        self.mem.map_range(addr, len);
        Ok(())
    }

    /// Allocates fresh user memory.
    pub fn user_alloc(&mut self, len: u64) -> Word {
        let addr = self
            .core
            .user_next
            .fetch_add((len + 0xfff) & !0xfff, Ordering::Relaxed);
        self.mem.map_range(addr, len);
        addr
    }

    /// Registers user "code" at a user address.
    pub fn register_user_fn(&mut self, addr: Word, f: UserFn) {
        assert!(is_user_addr(addr));
        self.core
            .user_fns
            .write()
            .expect("user_fns lock")
            .insert(addr, f);
    }

    /// The kernel jumping to a user address: if shellcode is registered
    /// there it runs **with kernel privilege** (the exploit payoff);
    /// otherwise the machine faults.
    fn run_user_code(&mut self, addr: Word) -> Result<Word, Trap> {
        let f = self
            .core
            .user_fns
            .read()
            .expect("user_fns lock")
            .get(&addr)
            .cloned();
        match f {
            Some(f) => {
                f(self);
                Ok(0)
            }
            None => Err(Trap::MemFault {
                addr,
                len: 1,
                write: false,
            }),
        }
    }

    // ----------------------------------------------------- panic plumbing

    /// The recorded panic reason, if the kernel's *own* invariants were
    /// violated. Panics are kernel-wide: any CPU's panic halts every
    /// CPU's `enter`. Contained module faults do **not** set this —
    /// they are recorded in the fault log (see [`KernelCpu::last_fault`]).
    pub fn panic_reason(&self) -> Option<String> {
        self.core
            .panic
            .lock()
            .expect("panic lock")
            .as_ref()
            .map(|(s, _)| s.clone())
    }

    /// The violation behind the most recent containment event: the
    /// kernel panic if one is recorded, else the latest module fault
    /// (for precise assertions).
    pub fn last_violation(&self) -> Option<Violation> {
        if let Some((_, v)) = &*self.core.panic.lock().expect("panic lock") {
            return v.clone();
        }
        self.core
            .faults
            .lock()
            .expect("faults lock")
            .last()
            .and_then(|f| f.violation.clone())
    }

    /// Clears panic state (tests that probe multiple violations).
    pub fn clear_panic(&mut self) {
        *self.core.panic.lock().expect("panic lock") = None;
    }

    // ------------------------------------------------------ fault domain

    /// The most recent contained module fault, if any.
    pub fn last_fault(&self) -> Option<ModuleFault> {
        self.core
            .faults
            .lock()
            .expect("faults lock")
            .last()
            .cloned()
    }

    /// Number of contained module faults so far (cheap; the supervisor
    /// polls this between ticks).
    pub fn fault_count(&self) -> usize {
        self.core.faults.lock().expect("faults lock").len()
    }

    /// The contained module faults recorded at index `from` onward
    /// (oldest first) — incremental consumption for the supervisor.
    pub fn faults_since(&self, from: usize) -> Vec<ModuleFault> {
        let log = self.core.faults.lock().expect("faults lock");
        log.get(from..).unwrap_or(&[]).to_vec()
    }

    /// Clears the fault log (tests probing multiple fault sequences).
    pub fn clear_faults(&mut self) {
        self.core.faults.lock().expect("faults lock").clear();
    }

    /// Whether a module registry slot currently holds a live (not torn
    /// down) module.
    pub fn module_is_live(&self, id: LoadedModuleId) -> bool {
        self.core
            .modules
            .read()
            .expect("modules lock")
            .modules
            .get(id.0)
            .is_some_and(|m| !m.unloaded.load(Ordering::Acquire))
    }

    /// Runs a kernel entry point (syscall), classifying escaped traps by
    /// fault domain (`docs/fault-model.md`):
    ///
    /// - a trap raised while an **isolated module** executes — or a
    ///   policy violation whose culprit principal belongs to one —
    ///   quarantines that module only ([`KernelError::ModuleFault`]);
    ///   the kernel keeps running;
    /// - machine faults in kernel (or stock-module) context go down the
    ///   oops path, which runs `do_exit` (§8.1 Econet); module machine
    ///   faults oops *and* quarantine — the interrupted process dies
    ///   either way;
    /// - policy violations attributable to no module are violations of
    ///   the kernel's own invariants and panic the kernel.
    pub fn enter<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<R, Trap>,
    ) -> Result<R, KernelError> {
        if let Some((p, _)) = &*self.core.panic.lock().expect("panic lock") {
            return Err(KernelError::Panic(p.clone()));
        }
        self.pending_fault = None;
        match f(self) {
            Ok(r) => {
                // A trap may have been raised and swallowed mid-entry;
                // stale attribution must not outlive the entry.
                self.pending_fault = None;
                // Quiescent point on the way out: dispatch bottom halves
                // bound to this CPU (the softirq-on-syscall-exit
                // analogue). A bottom-half fault is contained inside the
                // drain — it never turns this entry's success into an
                // error, exactly as a real softirq crash does not fail
                // the syscall it interrupted. The lock-free pending probe
                // keeps bottom-half-free entries at one atomic load.
                if self.core.deferred_pending.load(Ordering::Acquire) != 0 {
                    self.deferred_drain();
                }
                Ok(r)
            }
            Err(trap) => {
                let executing = self.pending_fault.take();
                Err(self.contain_trap(trap, executing))
            }
        }
    }

    /// Classifies an escaped trap (see [`KernelCpu::enter`]) into a
    /// contained module fault, an oops, or a kernel panic.
    fn contain_trap(&mut self, trap: Trap, executing: Option<Arc<LoadedModule>>) -> KernelError {
        let violation = match &trap {
            Trap::Policy(e) => e.downcast_ref::<Violation>().cloned(),
            _ => None,
        };
        let is_policy = matches!(trap, Trap::Policy(_));
        let msg = trap.to_string();
        let culprit = violation.as_ref().and_then(|v| v.culprit());

        // Attribution 1: the innermost isolated module executing when
        // the trap was raised. Attribution 2: a policy violation raised
        // in *kernel* context can still name a module principal — e.g.
        // an indirect call through a slot a module planted (§4.1); the
        // module that put the kernel in this position is the culprit.
        let attributed = executing
            .filter(|m| m.mode == IsolationMode::Lxfi && m.mid.is_some())
            .or_else(|| {
                let mid = self.rt.principal_module(culprit?);
                self.loaded_module_of(mid)
            });

        if let Some(m) = attributed {
            let principal = culprit.or_else(|| m.mid.map(|mid| self.rt.shared_principal(mid)));
            // A machine fault still kills the interrupted process: the
            // oops path (and its CVE-2010-4258 zero-write) runs exactly
            // as it would have without LXFI. Policy violations and fuel
            // exhaustion are LXFI's own verdicts — no process dies.
            let oopsed = !is_policy && !matches!(trap, Trap::OutOfFuel);
            if oopsed {
                self.oops();
            }
            return KernelError::ModuleFault(Box::new(
                self.quarantine(&m, principal, violation, msg, oopsed),
            ));
        }

        // A violation naming a retired principal (or the tombstone) is
        // planted state from a module that is already dead and
        // reclaimed: record the fault, keep the kernel running.
        if let Some(p) = culprit {
            let rtc = self.core.runtime_core();
            if rtc.is_retired(p) || rtc.tombstone() == Some(p) {
                let mid = rtc.principal_module(p);
                let fault = ModuleFault {
                    id: None,
                    module: rtc.module_name(mid),
                    mid: Some(mid),
                    principal: Some(p),
                    violation,
                    reason: msg,
                    oopsed: false,
                };
                self.core
                    .faults
                    .lock()
                    .expect("faults lock")
                    .push(fault.clone());
                return KernelError::ModuleFault(Box::new(fault));
            }
        }

        // No module to blame: the kernel's own invariants are at stake.
        if is_policy {
            *self.core.panic.lock().expect("panic lock") = Some((msg.clone(), violation));
            KernelError::Panic(msg)
        } else {
            self.oops();
            KernelError::Oops(msg)
        }
    }

    /// The live registry entry backed by runtime module `mid`, if any.
    /// (After slot reuse a dead module's principals resolve to no entry;
    /// the retired-principal branch of [`KernelCpu::contain_trap`]
    /// handles them.)
    fn loaded_module_of(&self, mid: lxfi_core::ModuleId) -> Option<Arc<LoadedModule>> {
        let tab = self.core.modules.read().expect("modules lock");
        tab.modules.iter().find(|m| m.mid == Some(mid)).cloned()
    }

    /// Quarantines a faulted module: records the structured fault, then
    /// runs the shared teardown (unpublish → grace period → reclaim →
    /// retire). Idempotent — a second fault attributed to an
    /// already-dead module only appends its fault record.
    fn quarantine(
        &mut self,
        m: &Arc<LoadedModule>,
        principal: Option<PrincipalId>,
        violation: Option<Violation>,
        reason: String,
        oopsed: bool,
    ) -> ModuleFault {
        let fault = ModuleFault {
            id: Some(LoadedModuleId(m.slot)),
            module: m.name.clone(),
            mid: m.mid,
            principal,
            violation,
            reason,
            oopsed,
        };
        self.core
            .faults
            .lock()
            .expect("faults lock")
            .push(fault.clone());
        self.teardown_module(m);
        fault
    }

    /// The shared teardown quarantine and [`KernelCpu::unload_module`]
    /// both run: unpublish the module's name and function addresses,
    /// wait out the RCU grace period, then reclaim every resource the
    /// module pinned — CALL capabilities to its functions, the
    /// kernel-stack WRITE grants of §3.2, slab objects only its
    /// principals could still free — and retire its principals, moving
    /// their remaining WRITE coverage to the tombstone so slots the
    /// module wrote stay poisoned (the window itself is scrubbed at
    /// slot *reuse*, not here). Returns `false` if the module was
    /// already torn down.
    fn teardown_module(&mut self, m: &Arc<LoadedModule>) -> bool {
        let core = Arc::clone(&self.core);
        let _load = core.load_lock.lock().expect("load lock");
        {
            let mut tab = self.core.modules.write().expect("modules lock");
            if m.unloaded.swap(true, Ordering::AcqRel) {
                return false; // already torn down
            }
            if tab.by_name.get(&m.name) == Some(&m.slot) {
                tab.by_name.remove(&m.name);
            }
            for i in 0..m.program.funcs.len() {
                tab.fn_addrs.remove(&(m.fn_base + i as u64 * FN_SPACING));
            }
            tab.free_slots.push(m.slot);
        }
        // Grace period: the function addresses are unpublished, so no
        // NEW execution can enter; wait for in-flight executions on
        // other CPUs to drain before revoking the capabilities they are
        // actively using — otherwise a benign racing invocation would
        // die MissingWrite through no fault of its own. References held
        // by THIS CPU are already unwound on the normal quarantine path
        // (the exec stack pops before `enter` classifies); a nested
        // entry tolerates its own — waiting on ourselves would deadlock.
        let own = self.exec_stack.iter().filter(|e| Arc::ptr_eq(e, m)).count();
        while m.active.load(Ordering::Acquire) > own {
            std::thread::yield_now();
        }
        let Some(mid) = m.mid else {
            return true; // stock module: no principals, nothing to reclaim
        };
        // CALL capabilities to the dead functions die everywhere (§3.3
        // transfer semantics applied to the whole module).
        for i in 0..m.program.funcs.len() {
            self.rt
                .revoke_everywhere(RawCap::call(m.fn_base + i as u64 * FN_SPACING));
        }
        // Kernel-stack grants (§3.2 initial capability (2)) are
        // *returned*, not tombstoned: stacks outlive the module and are
        // legitimately rewritten by every later tenant.
        let rtc = self.core.runtime_core();
        let victims = rtc.module_principals(mid);
        let stacks: Vec<Word> = self.core.threads.lock().expect("threads lock").clone();
        for &p in &victims {
            for &base in &stacks {
                self.rt.revoke_write_overlapping(p, base, STACK_SIZE);
            }
        }
        // Slab objects only this module's principals cover are leaks the
        // module can no longer free itself (kfree demands WRITE on the
        // pointer): sweep them. Jointly-covered objects stay — the
        // surviving owner still frees them through the normal path.
        self.sweep_module_slab(&victims);
        // Everything left (window globals, kernel slots it was granted)
        // moves to the tombstone; the principals retire.
        self.rt.retire_module(mid);
        true
    }

    /// Frees live slab objects whose WRITE coverage belongs only to the
    /// dying module's principals (two-phase, mirroring the `kfree`
    /// native).
    fn sweep_module_slab(&mut self, victims: &[PrincipalId]) {
        let rtc = self.core.runtime_core();
        let ts = rtc.tombstone();
        let objects = self.slab().live_objects();
        for (addr, _size, class) in objects {
            let holders: Vec<PrincipalId> = rtc
                .present_over(addr, class)
                .into_iter()
                .filter(|&p| rtc.write_overlaps(p, addr, class))
                .collect();
            let dead_holds = holders.iter().any(|p| victims.contains(p));
            let live_holds = holders
                .iter()
                .any(|&p| !victims.contains(&p) && Some(p) != ts && !rtc.is_retired(p));
            if !dead_holds || live_holds {
                continue;
            }
            if self.slab().begin_free(addr).is_some() {
                self.rt.revoke_write_overlapping_everywhere(addr, class);
                let _ = self.mem.zero_range(addr, class);
                self.rt.note_zeroed(addr, class);
                self.slab().finish_free(addr, class);
            }
        }
    }

    /// The oops path: kill the current process via `do_exit`. Faithfully
    /// reproduces CVE-2010-4258: `do_exit` writes a zero through the
    /// user-supplied `clear_child_tid` pointer without resetting the
    /// "user access ok" context — an arbitrary kernel-memory zero-write.
    pub fn oops(&mut self) {
        let task = self.procs().current_task();
        let tid_ptr = self
            .mem
            .read_word((task as i64 + crate::process::task::CLEAR_CHILD_TID) as u64)
            .unwrap_or(0);
        if tid_ptr != 0 {
            // The kernel bug: a 4-byte zero store to an unchecked address,
            // performed in kernel context (no LXFI guard applies — this is
            // core-kernel code, which LXFI trusts).
            let _ = self.mem.write(tid_ptr, 0, lxfi_machine::Width::B4);
        }
        let _ = self
            .mem
            .write_word((task as i64 + crate::process::task::EXITED) as u64, 1);
    }

    /// Runs `handler` as a simulated interrupt: the interrupted module
    /// principal is saved on the shadow stack and restored afterwards
    /// (§3.1).
    pub fn interrupt<R>(&mut self, handler: impl FnOnce(&mut Self) -> R) -> R {
        let t = self.current_thread();
        let tok = self.rt.thread(t).interrupt_enter();
        let r = handler(self);
        self.rt
            .thread(t)
            .interrupt_exit(tok)
            .expect("interrupt tokens are runtime-managed");
        r
    }

    // ------------------------------------------------- deferred dispatch

    /// Registers the single deferred-call slot for `(owner, kind)`
    /// (idempotent; see [`crate::deferred::DeferredState::register`]).
    pub fn deferred_register(
        &mut self,
        owner: Word,
        kind: crate::deferred::DeferredKind,
    ) -> crate::deferred::DeferredId {
        self.core.deferred().register(owner, kind)
    }

    /// Schedules a deferred call (top-half side: e.g. the interrupt
    /// assertion in `net_rx_wire`). Returns `false` if the owner's ring
    /// was full and the call was dropped. Binds the slot to this CPU
    /// when its ring was empty — the determinism contract's anchor.
    pub fn deferred_schedule(&mut self, id: crate::deferred::DeferredId, arg: Word) -> bool {
        let ok = self.core.deferred().schedule(id, arg, self.thread.0);
        if ok {
            self.core.deferred_pending.fetch_add(1, Ordering::AcqRel);
        }
        ok
    }

    /// Dispatches one pending deferred call from `id`'s ring: pops it,
    /// runs the target callback as a simulated interrupt (saving and
    /// restoring the interrupted principal context, §3.1) with
    /// `in_deferred` set so [`crate::fault_inject::FaultSite::DeferredFuel`]
    /// can fire, and applies NAPI's softirq re-arm rule — a poll that
    /// consumed its whole budget is re-scheduled, one that returned
    /// early is expected to have called `napi_complete`.
    ///
    /// Returns `Ok(None)` when the ring was already empty, `Ok(Some(ret))`
    /// with the callback's return value otherwise. A trap propagates to
    /// the caller for ordinary classification — the popped call is
    /// consumed (its frames stay on the device ring for a post-recovery
    /// poll to replay; `docs/io-plane.md`).
    pub fn deferred_dispatch_one(
        &mut self,
        id: crate::deferred::DeferredId,
    ) -> Result<Option<Word>, Trap> {
        use crate::deferred::DeferredKind;
        let Some((owner, kind, arg)) = self.core.deferred().pop(id) else {
            return Ok(None);
        };
        self.core.deferred_pending.fetch_sub(1, Ordering::AcqRel);
        let ret = match kind {
            DeferredKind::NapiPoll => {
                // The device's registered poll slot; gone means the
                // owning module was unloaded between assert and dispatch
                // — the call evaporates (its frames stay on the ring).
                let slot = self.net().poll_slot(owner);
                let Some(slot) = slot else {
                    self.core.deferred().dispatched += 1;
                    return Ok(Some(0));
                };
                self.in_deferred = true;
                let r = self.interrupt(|k| k.indirect_call(slot, "napi_poll", &[owner, arg]));
                self.in_deferred = false;
                let polled = match r {
                    Ok(p) => p,
                    // The owning module was unloaded between the slot
                    // read and the dispatch (no attributed fault, just
                    // a dangling published pointer): the device
                    // vanished. Swallow the call — its frames stay on
                    // the ring for a post-recovery poll to replay.
                    Err(Trap::BadRef(_)) if self.pending_fault.is_none() => {
                        self.core.deferred().dispatched += 1;
                        return Ok(Some(0));
                    }
                    Err(t) => return Err(t),
                };
                if arg > 0 && polled >= arg {
                    // Budget exhausted: more frames may remain; re-arm
                    // (the interrupt stays masked until `napi_complete`).
                    self.deferred_schedule(id, arg);
                }
                polled
            }
            DeferredKind::SndCapture => {
                let ops = self.snd().ops_of(owner);
                let Some(ops) = ops else {
                    self.core.deferred().dispatched += 1;
                    return Ok(Some(0));
                };
                self.in_deferred = true;
                let r = self.interrupt(|k| {
                    k.indirect_call(
                        ops + crate::types::snd_pcm_ops::CAPTURE as u64,
                        "pcm_capture",
                        &[owner, arg],
                    )
                });
                self.in_deferred = false;
                r?
            }
        };
        self.core.deferred().dispatched += 1;
        Ok(Some(ret))
    }

    /// Drains this CPU's pending deferred calls — the quiescent point.
    /// Runs the zero-note flush first (the same family of deferred work
    /// this layer extends), then dispatches every pending call whose
    /// slot is bound to this CPU. A faulting bottom half is classified
    /// and contained right here ([`KernelCpu::contain_trap`]) and the
    /// drain continues with the next call; only a kernel panic stops it.
    /// Returns the number of calls dispatched.
    pub fn deferred_drain(&mut self) -> usize {
        self.rt.flush_zero_notes();
        let mut n = 0usize;
        // Hard bound: a misbehaving poll callback that re-arms forever
        // must not livelock the quiescent point; leftover work stays
        // pending for the next one.
        while n < 1024 {
            let next = self.core.deferred().next_for(self.thread.0);
            let Some(id) = next else { break };
            match self.deferred_dispatch_one(id) {
                Ok(Some(_)) => n += 1,
                Ok(None) => continue, // raced empty; re-probe
                Err(trap) => {
                    n += 1;
                    let executing = self.pending_fault.take();
                    if let KernelError::Panic(_) = self.contain_trap(trap, executing) {
                        break;
                    }
                }
            }
        }
        n
    }

    /// Deferred-dispatch counters `(dispatched, dropped, pending)` —
    /// the bench/table surface.
    pub fn deferred_stats(&self) -> (u64, u64, usize) {
        let d = self.core.deferred();
        (d.dispatched, d.dropped, d.pending_total())
    }

    // ------------------------------------------------------ module loading

    /// Loads a module in the kernel's global mode.
    pub fn load_module(&mut self, spec: ModuleSpec) -> Result<LoadedModuleId, KernelError> {
        self.load_module_with_mode(spec, self.mode)
    }

    /// Loads a module with an explicit mode. Whole loads are serialized
    /// by the core's load lock; dispatch on other CPUs proceeds
    /// concurrently against the registries' read locks and observes the
    /// module only after its commit point (name + function addresses
    /// inserted together).
    pub fn load_module_with_mode(
        &mut self,
        spec: ModuleSpec,
        mode: IsolationMode,
    ) -> Result<LoadedModuleId, KernelError> {
        let core = Arc::clone(&self.core);
        let load_guard = core.load_lock.lock().expect("load lock");

        lxfi_machine::verify_program(&spec.program)
            .map_err(|e| KernelError::Fail(format!("verify {}: {}", spec.name, e[0])))?;

        // Merge the module's interface declarations into the kernel's sig
        // registry (exact-match on collision, §4.2). The compile happens
        // optimistically outside the lock; the collision decision and the
        // insert happen together under the write lock so a concurrent
        // define_sig cannot interleave between check and insert.
        for (name, d) in &spec.iface.sig_decls {
            let mut compiled = d.clone();
            compiled.compile(&mut self.rt, &self.core.layouts);
            let mut sig_decls = self.core.sig_decls.write().expect("sig lock");
            if let Some(prev) = sig_decls.get(name) {
                if prev.ann.canonical() != d.ann.canonical() {
                    return Err(KernelError::Fail(format!(
                        "sig `{name}` conflicts with an existing declaration"
                    )));
                }
            } else {
                sig_decls.insert(name.clone(), Arc::new(compiled));
            }
        }

        let (program, decls, init_grants) = match mode {
            IsolationMode::Lxfi => {
                let rw = rewrite_module(&spec.program, self.core.rewrite_opts);
                // Don't trust the rewriter: prove on the *output* that
                // every reachable store is guard-dominated before the
                // program can reach either execution backend.
                verify_soundness(&rw.program, SoundnessPolicy::module())
                    .map_err(|e| KernelError::Fail(format!("soundness {}: {}", spec.name, e[0])))?;
                let decls = propagate(&rw.program, &spec.iface)
                    .map_err(|e| KernelError::Fail(format!("propagate {}: {e}", spec.name)))?;
                (rw.program, decls, rw.init_grants)
            }
            IsolationMode::Stock => (spec.program.clone(), HashMap::new(), Vec::new()),
        };
        // Compile the module declarations' enforcement IR once, at load.
        let decls: HashMap<FuncId, Arc<FnDecl>> = decls
            .into_iter()
            .map(|(fid, mut d)| {
                d.compile(&mut self.rt, &self.core.layouts);
                (fid, Arc::new(d))
            })
            .collect();

        // Reuse the lowest torn-down slot if one is free (loads are
        // serialized by the load lock, so peeking without popping is
        // safe; the slot leaves the free list only at the commit point).
        let (midx, reused) = {
            let tab = self.core.modules.read().expect("modules lock");
            match tab.free_slots.iter().copied().min() {
                Some(s) => (s, true),
                None => (tab.modules.len(), false),
            }
        };
        let window = MODULE_BASE + midx as u64 * MODULE_STRIDE;
        if reused {
            self.scrub_window(midx, window);
        }
        let mid = match mode {
            IsolationMode::Lxfi => Some(self.rt.register_module(&spec.name)),
            IsolationMode::Stock => None,
        };

        // Lay out globals in the module window; write init images.
        let mut global_addrs = Vec::new();
        let mut cursor = window;
        for g in &program.globals {
            cursor = (cursor + 63) & !63;
            self.mem.map_range(cursor, g.size);
            if let Some(init) = &g.init {
                let n = init.len().min(g.size as usize);
                self.mem
                    .write_bytes(cursor, &init[..n])
                    .expect("mapped above");
            }
            global_addrs.push(cursor);
            cursor += g.size;
        }

        // Register function addresses.
        let fn_base = window + MODULE_FN_OFFSET;
        // Apply static-initializer relocations (C ops-table initializers):
        // performed by the trusted loader, so they work for read-only
        // globals like `rds_proto_ops` too.
        for r in &program.fn_relocs {
            let addr = global_addrs[r.global.0 as usize] + r.offset;
            self.mem
                .write_word(addr, fn_base + u64::from(r.func.0) * FN_SPACING)
                .expect("reloc target mapped");
        }
        for (i, _f) in program.funcs.iter().enumerate() {
            let fid = FuncId(i as u32);
            let addr = fn_base + i as u64 * FN_SPACING;
            self.rt.register_function(
                addr,
                FnMeta {
                    name: format!("{}::{}", spec.name, program.funcs[i].name),
                    ahash: decls
                        .get(&fid)
                        .map(|d| d.ahash)
                        .unwrap_or(self.core.empty_ahash),
                    module: mid,
                },
            );
        }

        // Resolve imports.
        let mut import_addrs = Vec::new();
        for imp in &program.imports {
            let addr = match imp.kind {
                ImportKind::Func => self.export_addr(&imp.name).ok_or_else(|| {
                    KernelError::Fail(format!("{}: unresolved import {}", spec.name, imp.name))
                })?,
                ImportKind::Data => {
                    self.core
                        .kdata
                        .read()
                        .expect("kdata lock")
                        .get(&imp.name)
                        .ok_or_else(|| {
                            KernelError::Fail(format!(
                                "{}: unresolved data import {}",
                                spec.name, imp.name
                            ))
                        })?
                        .0
                }
            };
            import_addrs.push(addr);
        }

        // Initial capability grants to the shared principal (§3.2, §4.2).
        if let Some(mid) = mid {
            let shared = self.rt.shared_principal(mid);
            // A module may call (and hand out pointers to) its own
            // functions: "the module should be able to provide only
            // pointers to functions that the module itself can invoke"
            // (§2.2) — so it holds CALL capabilities for them.
            for i in 0..program.funcs.len() {
                self.rt
                    .grant(shared, RawCap::call(fn_base + i as u64 * FN_SPACING));
            }
            // Initial capability (2) of §3.2: WRITE to the kernel stacks,
            // so modules can pass addresses of stack locals to kernel
            // routines that fill them in.
            let stacks: Vec<Word> = self.core.threads.lock().expect("threads lock").clone();
            for base in stacks {
                self.rt.grant(shared, RawCap::write(base, STACK_SIZE));
            }
            for g in &init_grants {
                match g {
                    InitGrant::Call { name } => {
                        let addr = self.export_addr(name).expect("resolved above");
                        self.rt.grant(shared, RawCap::call(addr));
                    }
                    InitGrant::Write { name } => {
                        let (addr, size) = self.core.kdata.read().expect("kdata lock")[name];
                        self.rt.grant(shared, RawCap::write(addr, size));
                    }
                }
            }
            for (gi, g) in program.globals.iter().enumerate() {
                if g.writable {
                    // WRITE to .data/.bss; grant() also marks the
                    // writer-set map for these sections (§5).
                    self.rt
                        .grant(shared, RawCap::write(global_addrs[gi], g.size));
                } else {
                    // Read-only sections stay unwritable — this alone
                    // stops the stock RDS exploit (§8.1).
                    self.rt.mark_written(global_addrs[gi], g.size);
                }
            }
        }

        for (name, f) in spec.iterators {
            self.rt.register_iterator(&name, f);
        }

        // Resolve the module's per-SigId annotation hashes BEFORE the
        // commit: the module becomes dispatchable the moment the write
        // lock below is released, and a concurrent indirect call must
        // find the array populated.
        let sig_ahash = resolve_sig_hashes(
            &self.core.sig_decls.read().expect("sig lock"),
            &program,
            self.core.empty_ahash,
        );
        // Commit point: module vector, name index, and function-address
        // map change together under one write lock, so a concurrent
        // dispatch either sees the whole module or none of it.
        {
            let mut tab = self.core.modules.write().expect("modules lock");
            if reused {
                tab.free_slots.retain(|&s| s != midx);
            } else {
                debug_assert_eq!(tab.modules.len(), midx, "loads are serialized");
            }
            for (i, _f) in program.funcs.iter().enumerate() {
                tab.fn_addrs
                    .insert(fn_base + i as u64 * FN_SPACING, (midx, FuncId(i as u32)));
            }
            let program = Arc::new(program);
            let compiled = (self.core.backend == Backend::Compiled)
                .then(|| Arc::new(CompiledProgram::compile(Arc::clone(&program))));
            let module = Arc::new(LoadedModule {
                name: spec.name.clone(),
                mode,
                slot: midx,
                mid,
                program,
                compiled,
                global_addrs,
                fn_base,
                decls,
                import_addrs,
                sig_ahash: RwLock::new(sig_ahash),
                active: std::sync::atomic::AtomicUsize::new(0),
                unloaded: AtomicBool::new(false),
            });
            if reused {
                tab.modules[midx] = module;
            } else {
                tab.modules.push(module);
            }
            tab.by_name.insert(spec.name.clone(), midx);
        }
        // The merged sig declarations may concern earlier modules' call
        // sites too; refresh every module's per-SigId hash array (before
        // module_init runs and can take indirect calls).
        self.core.refresh_sig_hashes();

        drop(load_guard);
        if let Some(init) = &spec.init_fn {
            let m = self.core.modules.read().expect("modules lock").modules[midx].clone();
            let fid = m
                .program
                .func_by_name(init)
                .ok_or_else(|| KernelError::Fail(format!("no init function {init}")))?;
            let addr = m.fn_base + fid.0 as u64 * FN_SPACING;
            self.enter(|k| k.invoke_module_function(addr, &[], None))?;
        }
        Ok(LoadedModuleId(midx))
    }

    /// Unloads a module: its name is freed, its function addresses stop
    /// resolving, its resources are reclaimed, and its principals retire
    /// — their remaining WRITE coverage moves to the tombstone so slots
    /// the module wrote stay poisoned (the quarantine teardown, minus
    /// the fault record). Executions already in flight on other CPUs
    /// finish on their cloned `Arc` (like a real kernel waiting out an
    /// RCU grace period); the slot is scrubbed and reused by a later
    /// load.
    pub fn unload_module(&mut self, id: LoadedModuleId) -> Result<(), KernelError> {
        let m = self
            .core
            .modules
            .read()
            .expect("modules lock")
            .modules
            .get(id.0)
            .cloned()
            .ok_or_else(|| KernelError::Fail(format!("no module #{}", id.0)))?;
        // Refuse a self-unload: this CPU waiting out its own execution
        // would deadlock (the real kernel's "module busy").
        if self.exec_stack.iter().any(|e| Arc::ptr_eq(e, &m)) {
            return Err(KernelError::Fail(format!(
                "{} is executing on this CPU",
                m.name
            )));
        }
        if !self.teardown_module(&m) {
            return Err(KernelError::Fail(format!("{} already unloaded", m.name)));
        }
        Ok(())
    }

    /// Scrubs a dead module's window before a new tenant moves in: the
    /// tombstone's (and anyone's) residual WRITE coverage over the
    /// window is dropped — safe only now, because the new tenant
    /// re-initializes every byte it will expose — the old globals are
    /// zeroed, their writer-map marks cleared, and the old function
    /// registrations removed. This is the deferred half of teardown:
    /// tombstone coverage must poison a dead module's slots exactly
    /// until the memory is legitimately reused.
    fn scrub_window(&mut self, slot: usize, window: Word) {
        let old = Arc::clone(&self.core.modules.read().expect("modules lock").modules[slot]);
        debug_assert!(
            old.unloaded.load(Ordering::Acquire),
            "scrubbing a live slot"
        );
        self.rt
            .revoke_write_overlapping_everywhere(window, MODULE_STRIDE);
        for (gi, g) in old.program.globals.iter().enumerate() {
            let addr = old.global_addrs[gi];
            let _ = self.mem.zero_range(addr, g.size);
            self.rt.note_zeroed(addr, g.size);
        }
        let rtc = self.core.runtime_core();
        for i in 0..old.program.funcs.len() {
            rtc.unregister_function(old.fn_base + i as u64 * FN_SPACING);
        }
    }

    /// Loads the core kernel's KIR dispatch thunks, instrumented by the
    /// kernel rewriter when LXFI is on (§4.1).
    fn load_kernel_thunks(&mut self) {
        let thunks = crate::net::kernel_thunks();
        let program = match self.mode {
            IsolationMode::Lxfi => {
                let rep = rewrite_kernel_thunks(&thunks);
                assert!(
                    rep.untraceable.is_empty(),
                    "kernel thunks must be fully traceable: {:?}",
                    rep.untraceable
                );
                // Thunks run trusted (Stock mode), so the inserted
                // GuardIndCall is the only protection for the pointers
                // they dereference: prove each call is guard-dominated.
                verify_soundness(&rep.program, SoundnessPolicy::kernel_thunks())
                    .expect("kernel thunks must be guard-sound");
                rep.program
            }
            IsolationMode::Stock => thunks,
        };
        lxfi_machine::verify_program(&program).expect("kernel thunks verify");
        let _load = self.core.load_lock.lock().expect("load lock");
        let midx = self
            .core
            .modules
            .read()
            .expect("modules lock")
            .modules
            .len();
        let window = MODULE_BASE + midx as u64 * MODULE_STRIDE;
        let fn_base = window + MODULE_FN_OFFSET;
        let mut import_addrs = Vec::new();
        for imp in &program.imports {
            import_addrs.push(self.export_addr(&imp.name).expect("thunk import"));
        }
        // As in load_module_with_mode: publish with the hash array
        // already resolved (sigs declared so far; refresh below and on
        // later define_sig calls keep it current).
        let sig_ahash = resolve_sig_hashes(
            &self.core.sig_decls.read().expect("sig lock"),
            &program,
            self.core.empty_ahash,
        );
        {
            let mut tab = self.core.modules.write().expect("modules lock");
            for (i, _) in program.funcs.iter().enumerate() {
                tab.fn_addrs
                    .insert(fn_base + i as u64 * FN_SPACING, (midx, FuncId(i as u32)));
            }
            let program = Arc::new(program);
            let compiled = (self.core.backend == Backend::Compiled)
                .then(|| Arc::new(CompiledProgram::compile(Arc::clone(&program))));
            tab.modules.push(Arc::new(LoadedModule {
                name: "<kernel-thunks>".into(),
                mode: IsolationMode::Stock, // kernel code is trusted
                slot: midx,
                mid: None,
                program,
                compiled,
                global_addrs: Vec::new(),
                fn_base,
                decls: HashMap::new(),
                import_addrs,
                sig_ahash: RwLock::new(sig_ahash),
                active: std::sync::atomic::AtomicUsize::new(0),
                unloaded: AtomicBool::new(false),
            }));
            tab.by_name.insert("<kernel-thunks>".into(), midx);
            // Pre-resolve the per-packet thunk dispatch path: cache the
            // module handle and its name → id map so run_kernel_thunk
            // never takes the registry lock or scans names again.
            let m = tab.modules[midx].clone();
            let by_name: HashMap<String, FuncId> = m
                .program
                .funcs
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
                .collect();
            let _ = self.core.thunks.set((m, by_name));
        }
        self.core.refresh_sig_hashes();
    }

    /// Loaded-module lookup by name.
    pub fn module_id(&self, name: &str) -> Option<LoadedModuleId> {
        self.core
            .modules
            .read()
            .expect("modules lock")
            .by_name
            .get(name)
            .copied()
            .map(LoadedModuleId)
    }

    fn module_arc(&self, id: LoadedModuleId) -> Arc<LoadedModule> {
        Arc::clone(&self.core.modules.read().expect("modules lock").modules[id.0])
    }

    /// The runtime module id (principal namespace) of a loaded module.
    pub fn runtime_module(&self, id: LoadedModuleId) -> Option<lxfi_core::ModuleId> {
        self.module_arc(id).mid
    }

    /// Address of a module function by name.
    pub fn module_fn_addr(&self, id: LoadedModuleId, func: &str) -> Option<Word> {
        let m = self.module_arc(id);
        m.program
            .func_by_name(func)
            .map(|f| m.fn_base + f.0 as u64 * FN_SPACING)
    }

    /// Address of a module global by name.
    pub fn module_global_addr(&self, id: LoadedModuleId, global: &str) -> Option<Word> {
        let m = self.module_arc(id);
        m.program
            .global_by_name(global)
            .map(|g| m.global_addrs[g.0 as usize])
    }

    /// The isolation mode a module was loaded with.
    pub fn module_mode(&self, id: LoadedModuleId) -> IsolationMode {
        self.module_arc(id).mode
    }

    /// The name a module was loaded under.
    pub fn module_name(&self, id: LoadedModuleId) -> String {
        self.module_arc(id).name.clone()
    }

    /// The program a module was loaded with (post-rewrite for LXFI).
    pub fn module_program(&self, id: LoadedModuleId) -> Arc<Program> {
        Arc::clone(&self.module_arc(id).program)
    }

    // ------------------------------------------- kernel→module invocation

    /// Enters a module execution: bumps the module's active-execution
    /// count (the unload grace period waits on it) and pushes it on the
    /// interpreter's execution stack. Always pair with [`Self::exec_exit`].
    fn exec_enter(&mut self, m: Arc<LoadedModule>) {
        m.active.fetch_add(1, Ordering::AcqRel);
        self.exec_stack.push(m);
    }

    /// Leaves the innermost module execution.
    fn exec_exit(&mut self) {
        let m = self.exec_stack.pop().expect("balanced exec stack");
        m.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Runs a module function through whichever backend the module was
    /// loaded for, with the exec-stack/active-count bracket every
    /// dispatch site needs. The compiled form is per-module state set at
    /// load, so a kernel booted with [`Backend::Interp`] pays nothing.
    fn exec_module(
        &mut self,
        m: Arc<LoadedModule>,
        fid: FuncId,
        args: &[Word],
    ) -> Result<Word, Trap> {
        let compiled = m.compiled.clone();
        let prog = Arc::clone(&m.program);
        self.exec_enter(m);
        let r = match &compiled {
            Some(cp) => run_compiled(self, cp, fid, args),
            None => run_function(self, &prog, fid, args),
        };
        if r.is_err() && self.pending_fault.is_none() {
            // Fault attribution: the first frame to observe the trap
            // during unwind is the innermost one — the module that was
            // executing when the trap was raised. `enter` consumes this
            // after the exec stack has fully popped.
            let m = self.exec_stack.last().expect("balanced exec stack");
            self.pending_fault = Some(Arc::clone(m));
        }
        self.exec_exit();
        r
    }

    /// Runs a kernel thunk function (trusted KIR, e.g. the netif dispatch
    /// path) by name.
    pub fn run_kernel_thunk(&mut self, func: &str, args: &[Word]) -> Result<Word, Trap> {
        // Thunk dispatch is per-packet on the netperf path; the cache set
        // at boot replaces a registry read lock plus a linear name scan
        // with one Arc clone and one hash lookup.
        let (m, fid) = {
            let (m, by_name) = self.core.thunks.get().expect("thunks loaded at boot");
            let fid = *by_name
                .get(func)
                .ok_or_else(|| Trap::BadRef(format!("thunk {func}")))?;
            (Arc::clone(m), fid)
        };
        self.exec_module(m, fid, args)
    }

    /// Invokes a function address on behalf of the kernel (or, when
    /// `caller` is given, of another module): full wrapper semantics for
    /// isolated modules. This is the path used after an indirect-call
    /// check passes, and for direct kernel→module calls.
    pub fn invoke_module_function(
        &mut self,
        target: Word,
        args: &[Word],
        caller: Option<PrincipalCtx>,
    ) -> Result<Word, Trap> {
        let resolved = self.core.module_of_fn(target);
        self.invoke_resolved(resolved, target, args, caller)
    }

    /// [`Self::invoke_module_function`] with the module lookup already
    /// done — call sites that had to probe the registry anyway (e.g.
    /// `call_ptr`) pass their result through so the hot path takes the
    /// registry read lock once, not twice.
    fn invoke_resolved(
        &mut self,
        resolved: Option<(ModuleRef, FuncId)>,
        target: Word,
        args: &[Word],
        caller: Option<PrincipalCtx>,
    ) -> Result<Word, Trap> {
        let caller_ctx = caller.unwrap_or(None);
        // `mref` stays alive for the whole invocation, holding the
        // module's active count up (the unload grace period).
        let Some((mref, fid)) = resolved else {
            // Not module code: kernel export or user address.
            if let Some(export) = self.core.export_at(target) {
                let imp = Arc::clone(&export.imp);
                return imp(self, args);
            }
            if is_user_addr(target) {
                return self.run_user_code(target);
            }
            return Err(Trap::BadRef(format!("call target {target:#x}")));
        };
        let m: Arc<LoadedModule> = Arc::clone(&mref);
        match m.mode {
            IsolationMode::Stock => self.exec_module(m, fid, args),
            IsolationMode::Lxfi => {
                let mid = m.mid.expect("isolated module has runtime id");
                // Unannotated module functions (e.g. module_init) run as
                // the shared principal with no capability actions, via
                // the boot-compiled shared empty declaration.
                let decl = m
                    .decls
                    .get(&fid)
                    .cloned()
                    .unwrap_or_else(|| Arc::clone(&self.core.unannotated_decl));
                let callee_p = self.select_principal(mid, &decl, args)?;
                let t = self.current_thread();
                let token = self.rt.wrapper_enter(t, Some((mid, callee_p)));
                let result = (|| -> Result<Word, Trap> {
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller: caller_ctx,
                        callee: Some((mid, callee_p)),
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.core.layouts, &site, Dir::Pre)?;
                    let ret = self.exec_module(m, fid, args)?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller: caller_ctx,
                        callee: Some((mid, callee_p)),
                    };
                    apply_actions(
                        &mut self.rt,
                        &self.mem,
                        &self.core.layouts,
                        &site,
                        Dir::Post,
                    )?;
                    Ok(ret)
                })();
                // Always rebalance the shadow stack; on the success path
                // this validates the return token (control-flow integrity
                // on returns, §5).
                let exit = self.rt.wrapper_exit(t, token);
                match result {
                    Ok(v) => {
                        exit?;
                        Ok(v)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn select_principal(
        &mut self,
        mid: lxfi_core::ModuleId,
        decl: &FnDecl,
        args: &[Word],
    ) -> Result<PrincipalId, Trap> {
        // Compiled declarations resolved the principal parameter to an
        // argument position at registration; no name comparison per call.
        if let Some(c) = &decl.compiled {
            use lxfi_core::compiled::CPrincipal;
            return Ok(match &c.principal {
                None | Some(CPrincipal::Shared) => self.rt.shared_principal(mid),
                Some(CPrincipal::Global) => self.rt.global_principal(mid),
                Some(CPrincipal::Arg(i)) => {
                    let ptr = args.get(*i as usize).copied().unwrap_or(0);
                    self.rt.principal_for_name(mid, ptr)
                }
                Some(CPrincipal::UnknownArg(name)) => {
                    return Err(Trap::from(Violation::BadExpression {
                        why: format!("principal({name}) is not a parameter of {}", decl.name),
                    }))
                }
            });
        }
        use lxfi_annotations::PrincipalExpr;
        Ok(match &decl.ann.principal {
            None | Some(PrincipalExpr::Shared) => self.rt.shared_principal(mid),
            Some(PrincipalExpr::Global) => self.rt.global_principal(mid),
            Some(PrincipalExpr::Arg(name)) => {
                let idx = decl
                    .params
                    .iter()
                    .position(|p| &p.name == name)
                    .ok_or_else(|| {
                        Trap::from(Violation::BadExpression {
                            why: format!("principal({name}) is not a parameter of {}", decl.name),
                        })
                    })?;
                let ptr = args.get(idx).copied().unwrap_or(0);
                self.rt.principal_for_name(mid, ptr)
            }
        })
    }

    /// A kernel indirect call through a module-reachable function-pointer
    /// slot (native-code equivalent of the rewritten thunks' guards): load
    /// the target, run `lxfi_check_indcall`, dispatch.
    pub fn indirect_call(
        &mut self,
        slot: Word,
        sig_name: &str,
        args: &[Word],
    ) -> Result<Word, Trap> {
        let target = self.mem.read_word(slot)?;
        if target == 0 {
            return Err(Trap::MemFault {
                addr: 0,
                len: 8,
                write: false,
            });
        }
        if self.mode == IsolationMode::Lxfi {
            let ahash = self
                .core
                .sig_decls
                .read()
                .expect("sig lock")
                .get(sig_name)
                .map(|d| d.ahash)
                .unwrap_or(self.core.empty_ahash);
            self.rt.check_indcall(slot, target, ahash)?;
        }
        self.dispatch_checked_pointer(target, args)
    }

    /// Dispatches a function pointer that already passed (or was exempted
    /// from) the indirect-call check. The slot's annotation needs no
    /// separate enforcement here: for module targets the ahash check
    /// guaranteed the function's own annotation equals the slot's, so the
    /// function's declaration is used. `invoke_module_function`'s own
    /// fallback handles exports and user addresses identically, so this
    /// is one registry lookup, not two.
    fn dispatch_checked_pointer(&mut self, target: Word, args: &[Word]) -> Result<Word, Trap> {
        self.invoke_module_function(target, args, None)
    }

    /// `lxfi_princ_alias` entry point for module code (§3.4): only callable
    /// while a module executes; the current principal must already hold a
    /// REF or WRITE capability naming check responsibility rests with the
    /// preceding `lxfi_check` in module code.
    pub fn princ_alias_current(&mut self, existing: Word, new_name: Word) -> Result<(), Trap> {
        let t = self.current_thread();
        let Some((mid, _p)) = self.rt.current(t) else {
            if self.executing_stock_module() {
                // Stock builds compile LXFI runtime calls out; treat the
                // call as the no-op it would be.
                return Ok(());
            }
            return Err(Trap::from(Violation::PrincipalDenied {
                why: "lxfi_princ_alias outside module context".into(),
            }));
        };
        self.rt.princ_alias(mid, existing, new_name)?;
        Ok(())
    }

    /// True when the innermost executing program is a stock-mode module.
    pub fn executing_stock_module(&self) -> bool {
        self.exec_stack
            .last()
            .is_some_and(|m| m.mode == IsolationMode::Stock && m.mid.is_none())
    }

    // ----------------------------------------------------- fault injection

    /// Arms deterministic seeded fault injection on **this CPU** (see
    /// [`crate::fault_inject`]): rules fire while the named modules
    /// execute, at the configured sites and rates, from a per-CPU
    /// xorshift stream seeded by `plan.seed` and this CPU's thread id.
    pub fn set_fault_plan(&mut self, plan: Arc<crate::fault_inject::FaultPlan>) {
        self.fault_inject = Some(crate::fault_inject::FaultInjector::new(
            plan,
            self.thread.0 as u64,
        ));
    }

    /// Disarms fault injection on this CPU.
    pub fn clear_fault_plan(&mut self) {
        self.fault_inject = None;
    }

    /// True when an injection rule fires at `site` for the innermost
    /// executing isolated module. Allocation-free, and a single `None`
    /// check when no plan is armed.
    pub(crate) fn fault_fires(&mut self, site: crate::fault_inject::FaultSite) -> bool {
        let Some(inj) = self.fault_inject.as_mut() else {
            return false;
        };
        let Some(m) = self.exec_stack.last() else {
            return false;
        };
        if m.mode != IsolationMode::Lxfi || m.mid.is_none() {
            return false;
        }
        inj.fires(&m.name, site)
    }

    /// RX-path injection for [`crate::fault_inject::FaultSite::PollGuard`]:
    /// a synthetic policy violation against the skb the poll loop is
    /// handing to `netif_rx`. The native runs in kernel wrapper context,
    /// so the culprit is named explicitly: the innermost executing
    /// isolated module's shared principal — which is exactly who a real
    /// guard failure on the poll path would blame.
    pub(crate) fn inject_poll_guard(&mut self, skb: Word) -> Result<(), Trap> {
        if !self.fault_fires(crate::fault_inject::FaultSite::PollGuard) {
            return Ok(());
        }
        let m = self
            .exec_stack
            .last()
            .expect("fault_fires implies executing");
        let mid = m.mid.expect("fault_fires implies isolated");
        let p = self.rt.shared_principal(mid);
        Err(Trap::from(Violation::MissingWrite {
            principal: p,
            addr: skb,
            len: 1,
        }))
    }

    // -------------------------------------------------------------- fuel

    /// Caps interpreted-instruction budget (tests against runaway loops).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Total deterministic cost so far on **this CPU**: interpreted
    /// cycles plus this CPU's guard cycles (the quantity the netperf
    /// cost model consumes).
    pub fn total_cycles(&self) -> u64 {
        self.cycles + self.rt.stats.total_cycles()
    }
}

// ------------------------------------------------------------------ Env

impl Env for KernelCpu {
    fn mem(&self) -> &AddressSpace {
        &self.mem
    }

    fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
        if self.fault_inject.is_some() {
            use crate::fault_inject::FaultSite;
            if self.fault_fires(FaultSite::Fuel) {
                return Err(Trap::OutOfFuel);
            }
            // A runaway *bottom half*: fires only while this CPU is
            // dispatching a deferred call, so the chaos harness can
            // exhaust a poll loop specifically.
            if self.in_deferred && self.fault_fires(FaultSite::DeferredFuel) {
                return Err(Trap::OutOfFuel);
            }
        }
        if self.fuel < cycles {
            return Err(Trap::OutOfFuel);
        }
        self.fuel -= cycles;
        self.cycles += cycles;
        Ok(())
    }

    fn refund(&mut self, cycles: u64) {
        // Only the compiled backend refunds, and never more than it
        // consumed for the current block, so neither counter can wrap.
        self.fuel += cycles;
        self.cycles -= cycles;
    }

    fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
        let size = (u64::from(size) + 15) & !15;
        if self.sp < self.stack_base + size {
            return Err(Trap::StackOverflow);
        }
        self.sp -= size;
        let sp = self.sp;
        self.mem.zero_range(sp, size)?;
        Ok(sp)
    }

    fn pop_frame(&mut self, size: u32) {
        self.sp += (u64::from(size) + 15) & !15;
        debug_assert!(self.sp <= self.stack_base + STACK_SIZE);
    }

    fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap> {
        let t = self.current_thread();
        if self.fault_inject.is_some() {
            use crate::fault_inject::FaultSite;
            if self.fault_fires(FaultSite::RogueStore) {
                // Aim the store at protected kernel data instead: the
                // *real* guard machinery raises (and attributes) the
                // violation, exactly as for a genuine rogue store.
                self.rt.check_write(t, KDATA_BASE, 8)?;
            }
            if self.fault_fires(FaultSite::GuardWrite) {
                // Synthesize a guard failure for the real access.
                if let Some((_, p)) = self.rt.current(t) {
                    return Err(Trap::from(Violation::MissingWrite {
                        principal: p,
                        addr,
                        len,
                    }));
                }
            }
        }
        self.rt.check_write(t, addr, len)?;
        Ok(())
    }

    fn guard_indcall(&mut self, slot: Word, sig: SigId) -> Result<(), Trap> {
        // Hot path: the sig's annotation hash was resolved at load time
        // (refresh_sig_hashes); one array index under the module's
        // hash-array read lock replaces any name hashing.
        let m = self.exec_stack.last().expect("executing");
        let ahash = m.sig_ahash.read().expect("sig_ahash lock")[sig.0 as usize];
        let target = self.mem.read_word(slot)?;
        self.rt.check_indcall(slot, target, ahash)?;
        Ok(())
    }

    fn call_extern(&mut self, sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
        let m = Arc::clone(self.exec_stack.last().expect("executing"));
        let import = &m.program.imports[sym.0 as usize];
        if import.kind != ImportKind::Func {
            return Err(Trap::BadRef(format!("calling data import {}", import.name)));
        }
        let target = m.import_addrs[sym.0 as usize];
        let export = self
            .core
            .export_at(target)
            .ok_or_else(|| Trap::BadRef(format!("extern {}", import.name)))?;

        match m.mode {
            IsolationMode::Stock => {
                let imp = Arc::clone(&export.imp);
                imp(self, args)
            }
            IsolationMode::Lxfi => {
                let t = self.current_thread();
                // CALL capability for the export's wrapper (granted at
                // module init from the symbol table, §4.2).
                self.rt.check_call(t, target)?;
                // Success path is allocation-free: the declaration is an
                // Arc clone; the export name is only cloned on error.
                let decl = export.decl.clone().ok_or_else(|| {
                    Trap::from(Violation::UnannotatedFunction {
                        name: export.name.clone(),
                    })
                })?;
                let caller = self.rt.current(t);
                let imp = Arc::clone(&export.imp);
                if export.runtime_call {
                    // Runtime entry point: stays in the caller's principal
                    // context; still enforces the pre/post actions.
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.core.layouts, &site, Dir::Pre)?;
                    let ret = imp(self, args)?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller,
                        callee: None,
                    };
                    apply_actions(
                        &mut self.rt,
                        &self.mem,
                        &self.core.layouts,
                        &site,
                        Dir::Post,
                    )?;
                    return Ok(ret);
                }
                let token = self.rt.wrapper_enter(t, None); // kernel context
                let result = (|| -> Result<Word, Trap> {
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.core.layouts, &site, Dir::Pre)?;
                    let ret = imp(self, args)?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller,
                        callee: None,
                    };
                    apply_actions(
                        &mut self.rt,
                        &self.mem,
                        &self.core.layouts,
                        &site,
                        Dir::Post,
                    )?;
                    Ok(ret)
                })();
                let exit = self.rt.wrapper_exit(t, token);
                match result {
                    Ok(v) => {
                        exit?;
                        Ok(v)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn call_ptr(&mut self, target: Word, sig: SigId, args: &[Word]) -> Result<Word, Trap> {
        let m = Arc::clone(self.exec_stack.last().expect("executing"));
        // Load-time-resolved hash; the sig *name* plays no role at call
        // time (dispatch ignores it — the ahash check already pinned the
        // callee's annotations to the slot's).
        let site_hash = m.sig_ahash.read().expect("sig_ahash lock")[sig.0 as usize];
        match m.mode {
            IsolationMode::Stock => self.dispatch_checked_pointer(target, args),
            IsolationMode::Lxfi => {
                let t = self.current_thread();
                // The module may only call targets it holds CALL for.
                self.rt.check_call(t, target)?;
                // Annotation match between the call site's pointer type
                // and the invoked function (§4.1, module side). Hash-only
                // lookup: no FnMeta clone on the call hot path.
                let fn_hash = self
                    .rt
                    .function_ahash(target)
                    .ok_or(Violation::NotAFunction { target })
                    .map_err(Trap::from)?;
                if fn_hash != site_hash {
                    return Err(Trap::from(Violation::AnnotationMismatch {
                        sig_hash: site_hash,
                        fn_hash,
                    }));
                }
                let caller = self.rt.current(t);
                let resolved = self.core.module_of_fn(target);
                if resolved.is_some() {
                    self.invoke_resolved(resolved, target, args, Some(caller))
                } else if let Some(export) = self.core.export_at(target) {
                    // Same wrapper path as a direct extern call.
                    let decl = export.decl.clone().ok_or_else(|| {
                        Trap::from(Violation::UnannotatedFunction {
                            name: export.name.clone(),
                        })
                    })?;
                    let imp = Arc::clone(&export.imp);
                    let token = self.rt.wrapper_enter(t, None);
                    let result = (|| -> Result<Word, Trap> {
                        let site = CallSite {
                            decl: &decl,
                            args,
                            ret: None,
                            caller,
                            callee: None,
                        };
                        apply_actions(
                            &mut self.rt,
                            &self.mem,
                            &self.core.layouts,
                            &site,
                            Dir::Pre,
                        )?;
                        let ret = imp(self, args)?;
                        let site = CallSite {
                            decl: &decl,
                            args,
                            ret: Some(ret),
                            caller,
                            callee: None,
                        };
                        apply_actions(
                            &mut self.rt,
                            &self.mem,
                            &self.core.layouts,
                            &site,
                            Dir::Post,
                        )?;
                        Ok(ret)
                    })();
                    let exit = self.rt.wrapper_exit(t, token);
                    match result {
                        Ok(v) => {
                            exit?;
                            Ok(v)
                        }
                        Err(e) => Err(e),
                    }
                } else {
                    Err(Trap::from(Violation::NotAFunction { target }))
                }
            }
        }
    }

    fn global_addr(&self, global: GlobalId) -> Result<Word, Trap> {
        self.exec_stack
            .last()
            .expect("executing")
            .global_addrs
            .get(global.0 as usize)
            .copied()
            .ok_or_else(|| Trap::BadRef(format!("global {}", global.0)))
    }

    fn sym_addr(&self, sym: SymbolId) -> Result<Word, Trap> {
        self.exec_stack
            .last()
            .expect("executing")
            .import_addrs
            .get(sym.0 as usize)
            .copied()
            .ok_or_else(|| Trap::BadRef(format!("import {}", sym.0)))
    }

    fn func_addr(&self, func: FuncId) -> Result<Word, Trap> {
        Ok(self.exec_stack.last().expect("executing").fn_base + u64::from(func.0) * FN_SPACING)
    }
}
