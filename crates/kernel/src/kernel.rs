//! The kernel world: module loading, wrapper execution, indirect-call
//! interposition, and the syscall surface exploits drive.
//!
//! Control-transfer interposition (§5, Figure 6):
//!
//! - **module → kernel** ([`Kernel::call_extern`] via the interpreter):
//!   CALL-capability check, wrapper entry (shadow stack, switch to kernel
//!   context), `pre` actions, native call, `post` actions, wrapper exit.
//! - **kernel → module** ([`Kernel::invoke_module_function`]): principal
//!   selection from the `principal(...)` annotation, wrapper entry,
//!   `pre` actions, interpretation of the module function, `post`
//!   actions, wrapper exit.
//! - **kernel indirect calls** ([`Kernel::indirect_call`] for native code,
//!   `GuardIndCall` for rewritten kernel thunks): writer-set bitmap check,
//!   then — on the slow path — the reverse writer index resolves the
//!   slot's writer principals (sublinear in principals, §5), each of
//!   which must hold CALL for the target, plus the annotation-hash match
//!   — then dispatch.
//!
//! A policy violation anywhere escalates to a **kernel panic** (§3); a
//! machine fault (NULL dereference) goes down the **oops** path, which
//! runs `do_exit` — including its CVE-2010-4258 bug of zeroing the
//! user-controlled `clear_child_tid` pointer.

use std::collections::HashMap;
use std::rc::Rc;

use lxfi_annotations::parse_fn_annotations;
use lxfi_core::actions::{apply_actions, CallSite, Dir};
use lxfi_core::iface::{FnDecl, Param, TypeLayouts};
use lxfi_core::runtime::FnMeta;
use lxfi_core::shadow::PrincipalCtx;
use lxfi_core::{PrincipalId, RawCap, Runtime, ThreadId, Violation};
use lxfi_machine::program::ImportKind;
use lxfi_machine::{
    run_function, AddressSpace, Env, FuncId, GlobalId, Program, SigId, SymbolId, Trap, Word,
};
use lxfi_rewriter::{
    propagate, rewrite_kernel_thunks, rewrite_module, InitGrant, InterfaceSpec, RewriteOptions,
};

use crate::exports::{Export, NativeFn};
use crate::layout::*;
use crate::process::ProcessTable;
use crate::slab::Slab;
use crate::types;

/// Whether a module is loaded with LXFI enforcement or bare (stock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// No rewriting, no runtime checks — the baseline and the exploit
    /// victim configuration.
    Stock,
    /// Rewritten and enforced.
    Lxfi,
}

/// Index of a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadedModuleId(pub usize);

/// A module ready to load: program, interface annotations, capability
/// iterators, and an optional init function.
pub struct ModuleSpec {
    /// Module name.
    pub name: String,
    /// The module's KIR program.
    pub program: Program,
    /// Annotations for the module's function-pointer types and functions.
    pub iface: InterfaceSpec,
    /// Capability iterators this module's annotations reference.
    pub iterators: Vec<(String, lxfi_core::IteratorFn)>,
    /// Function run right after loading (the `module_init`).
    pub init_fn: Option<String>,
}

/// User-space "shellcode": runs with full kernel access if the kernel is
/// ever tricked into calling a user address (the payload of every exploit
/// here typically sets `uid = 0`).
pub type UserFn = Rc<dyn Fn(&mut Kernel)>;

struct LoadedModule {
    name: String,
    mode: IsolationMode,
    /// `None` for the core-kernel thunk pseudo-module.
    mid: Option<lxfi_core::ModuleId>,
    program: Rc<Program>,
    global_addrs: Vec<Word>,
    fn_base: Word,
    decls: HashMap<FuncId, Rc<FnDecl>>,
    import_addrs: Vec<Word>,
    /// Annotation hash per program `SigId`, resolved against the sig
    /// registry whenever it changes — so the indirect-call guard indexes
    /// an array instead of hashing a sig name per call.
    sig_ahash: Vec<u64>,
}

struct ThreadState {
    base: Word,
    sp: Word,
}

/// Outcome classification for public kernel entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// LXFI detected a policy violation and panicked the kernel.
    Panic(String),
    /// A machine fault (oops) killed the current process.
    Oops(String),
    /// Plain failure (bad arguments etc.).
    Fail(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Panic(s) => write!(f, "kernel panic: {s}"),
            KernelError::Oops(s) => write!(f, "kernel oops: {s}"),
            KernelError::Fail(s) => write!(f, "error: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The simulated kernel.
pub struct Kernel {
    /// Simulated physical memory.
    pub mem: AddressSpace,
    /// The LXFI runtime.
    pub rt: Runtime,
    /// Struct layouts for `sizeof(*ptr)` defaults.
    pub layouts: TypeLayouts,
    /// Global isolation mode (modules default to it).
    pub mode: IsolationMode,

    exports: Vec<Export>,
    export_idx: HashMap<String, usize>,
    kdata: HashMap<String, (Word, u64)>,
    kdata_next: Word,
    sig_decls: HashMap<String, FnDecl>,
    modules: Vec<LoadedModule>,
    module_idx: HashMap<String, usize>,
    fn_addrs: HashMap<Word, (usize, FuncId)>,
    threads: Vec<ThreadState>,
    cur_thread: usize,
    exec_stack: Vec<usize>,

    /// Slab allocator backing `kmalloc`.
    pub slab: Slab,
    /// Processes, credentials, pid hash.
    pub procs: ProcessTable,

    /// Hash of the empty annotation set (the default for unannotated
    /// functions and unknown sigs), computed once at boot.
    empty_ahash: u64,
    /// Shared declaration for unannotated module functions invoked
    /// directly by the kernel (e.g. `module_init`): empty annotations,
    /// compiled once at boot so the per-call fallback is an Rc clone.
    unannotated_decl: Rc<FnDecl>,

    fuel: u64,
    /// Cycles consumed by interpreted instructions (monotonic).
    pub cycles: u64,

    panic: Option<String>,
    last_violation: Option<Violation>,

    user_fns: HashMap<Word, UserFn>,
    user_next: Word,
    kstatic_next: Word,

    /// Networking subsystem state.
    pub net: crate::net::NetState,
    /// PCI subsystem state.
    pub pci: crate::pci::PciState,
    /// Socket layer state.
    pub sock: crate::socket::SocketState,
    /// Sound subsystem state.
    pub snd: crate::snd::SndState,
    /// Device-mapper state.
    pub dm: crate::dm::DmState,
}

impl Kernel {
    /// Boots a kernel in the given isolation mode: registers struct
    /// layouts, core exports, subsystems, kernel dispatch thunks, the
    /// process table, and thread 0.
    pub fn boot(mode: IsolationMode) -> Self {
        let mut mem = AddressSpace::new();
        let procs = ProcessTable::new(&mut mem, KSTATIC_BASE);
        // The shared runtime core is born sharded along the address-space
        // regions (and the first module windows) before any capability
        // traffic, so grant/revoke splices stay bounded by the region
        // they touch — and, in the concurrent runtime, so do the locks.
        let mut k = Kernel {
            mem,
            rt: Runtime::with_shard_boundaries(shard_boundaries()),
            layouts: TypeLayouts::new(),
            mode,
            exports: Vec::new(),
            export_idx: HashMap::new(),
            kdata: HashMap::new(),
            kdata_next: KDATA_BASE,
            sig_decls: HashMap::new(),
            modules: Vec::new(),
            module_idx: HashMap::new(),
            fn_addrs: HashMap::new(),
            threads: Vec::new(),
            cur_thread: 0,
            exec_stack: Vec::new(),
            slab: Slab::new(HEAP_BASE),
            procs,
            empty_ahash: lxfi_annotations::annotation_hash(&Default::default()),
            unannotated_decl: Rc::new(FnDecl::new("<unannotated>", Vec::new(), Default::default())),
            fuel: u64::MAX,
            cycles: 0,
            panic: None,
            last_violation: None,
            user_fns: HashMap::new(),
            user_next: 0x0000_1000_0000,
            kstatic_next: KSTATIC_BASE + 0x10_0000,
            net: Default::default(),
            pci: Default::default(),
            sock: Default::default(),
            snd: Default::default(),
            dm: Default::default(),
        };
        types::register_layouts(&mut k.layouts);
        {
            let mut d = (*k.unannotated_decl).clone();
            d.compile(&mut k.rt, &k.layouts);
            k.unannotated_decl = Rc::new(d);
        }
        k.spawn_thread();
        crate::exports_base::register(&mut k);
        crate::pci::register(&mut k);
        crate::net::register(&mut k);
        crate::socket::register(&mut k);
        crate::snd::register(&mut k);
        crate::dm::register(&mut k);
        k.load_kernel_thunks();
        k
    }

    // ------------------------------------------------------------ threads

    /// The shared runtime core backing this kernel's guards. Worker
    /// threads outside the simulated kernel (benchmarks, stress tests)
    /// guard against the same capability world through handles from
    /// [`Kernel::guard_handle`].
    pub fn runtime_core(&self) -> std::sync::Arc<lxfi_core::RuntimeCore> {
        self.rt.share()
    }

    /// Hands out a fresh per-thread guard handle over this kernel's
    /// shared core: its own shadow stack, private epoch cache, and
    /// stats, suitable for moving to another OS thread. The simulated
    /// kernel's own (simulated) threads get the same per-thread guard
    /// state via the runtime facade's lanes.
    pub fn guard_handle(&self) -> lxfi_core::GuardHandle {
        lxfi_core::GuardHandle::new(self.rt.share())
    }

    /// Creates a kernel thread with its own stack; returns its id.
    pub fn spawn_thread(&mut self) -> ThreadId {
        let idx = self.threads.len();
        let base = STACK_BASE + idx as u64 * STACK_STRIDE;
        self.mem.map_range(base, STACK_SIZE);
        self.threads.push(ThreadState {
            base,
            sp: base + STACK_SIZE,
        });
        let t = ThreadId(idx as u32);
        self.rt.register_thread(t, base, STACK_SIZE);
        // Already-loaded isolated modules get WRITE to the new stack too
        // (initial capability (2) of §3.2).
        let mids: Vec<_> = self.modules.iter().filter_map(|m| m.mid).collect();
        for mid in mids {
            let shared = self.rt.shared_principal(mid);
            self.rt.grant(shared, RawCap::write(base, STACK_SIZE));
        }
        t
    }

    /// `set_tid_address(2)`: records the user pointer `do_exit` will zero
    /// on process death — the CVE-2010-4258 primitive the Econet exploit
    /// aims.
    pub fn sys_set_tid_address(&mut self, tidptr: Word) {
        let task = self.procs.current_task();
        self.mem
            .write_word(
                (task as i64 + crate::process::task::CLEAR_CHILD_TID) as u64,
                tidptr,
            )
            .expect("task mapped");
    }

    /// The current thread id.
    pub fn current_thread(&self) -> ThreadId {
        ThreadId(self.cur_thread as u32)
    }

    // ----------------------------------------------------------- exports

    /// Registers an exported kernel function. `ann` is annotation source
    /// text (`None` = unannotated: uncallable from isolated modules).
    pub fn export(&mut self, name: &str, params: Vec<Param>, ann: Option<&str>, imp: NativeFn) {
        self.export_full(name, params, ann, imp, false);
    }

    /// Registers an LXFI runtime entry point: callable like an export, but
    /// executed in the caller's principal context (§3.4).
    pub fn export_runtime(&mut self, name: &str, params: Vec<Param>, ann: &str, imp: NativeFn) {
        self.export_full(name, params, Some(ann), imp, true);
    }

    fn export_full(
        &mut self,
        name: &str,
        params: Vec<Param>,
        ann: Option<&str>,
        imp: NativeFn,
        runtime_call: bool,
    ) {
        let decl = ann.map(|src| {
            let mut d = FnDecl::new(
                name,
                params.clone(),
                parse_fn_annotations(src)
                    .unwrap_or_else(|e| panic!("bad annotation on {name}: {e}")),
            );
            d.compile(&mut self.rt, &self.layouts);
            Rc::new(d)
        });
        let idx = self.exports.len();
        assert!(
            self.export_idx.insert(name.to_string(), idx).is_none(),
            "duplicate export {name}"
        );
        let addr = EXPORT_BASE + idx as u64 * FN_SPACING;
        let ahash = decl.as_ref().map(|d| d.ahash).unwrap_or(self.empty_ahash);
        self.rt.register_function(
            addr,
            FnMeta {
                name: name.to_string(),
                ahash,
                module: None,
            },
        );
        self.exports.push(Export {
            name: name.to_string(),
            decl,
            imp,
            runtime_call,
        });
    }

    /// Declares an annotated function-pointer type (interface annotation
    /// on a struct field, e.g. `net_device_ops.ndo_start_xmit`).
    pub fn define_sig(&mut self, name: &str, params: Vec<Param>, ann: &str) {
        let mut decl = FnDecl::new(
            name,
            params,
            parse_fn_annotations(ann).unwrap_or_else(|e| panic!("bad annotation on {name}: {e}")),
        );
        if let Some(prev) = self.sig_decls.get(name) {
            assert_eq!(
                prev.ann.canonical(),
                decl.ann.canonical(),
                "conflicting sig declaration for {name}"
            );
            return;
        }
        decl.compile(&mut self.rt, &self.layouts);
        self.sig_decls.insert(name.to_string(), decl);
        self.refresh_sig_hashes();
    }

    /// Re-resolves every loaded module's per-`SigId` annotation hashes
    /// against the sig registry. Called whenever the registry gains an
    /// entry, so the indirect-call guards stay array-indexed.
    fn refresh_sig_hashes(&mut self) {
        for i in 0..self.modules.len() {
            let prog = Rc::clone(&self.modules[i].program);
            let hashes = prog
                .sigs
                .iter()
                .map(|s| {
                    self.sig_decls
                        .get(&s.name)
                        .map(|d| d.ahash)
                        .unwrap_or(self.empty_ahash)
                })
                .collect();
            self.modules[i].sig_ahash = hashes;
        }
    }

    /// The annotated declaration of a function-pointer type.
    pub fn sig_decl(&self, name: &str) -> Option<&FnDecl> {
        self.sig_decls.get(name)
    }

    /// Exports a kernel data symbol of `size` bytes; returns its address.
    pub fn export_data(&mut self, name: &str, size: u64) -> Word {
        let addr = self.kdata_next;
        self.kdata_next += (size + 0xfff) & !0xfff;
        self.mem.map_range(addr, size);
        self.kdata.insert(name.to_string(), (addr, size));
        addr
    }

    /// Address of an exported kernel function.
    pub fn export_addr(&self, name: &str) -> Option<Word> {
        self.export_idx
            .get(name)
            .map(|&i| EXPORT_BASE + i as u64 * FN_SPACING)
    }

    /// Allocates zeroed kernel-static memory (ops tables, device structs).
    pub fn kstatic_alloc(&mut self, size: u64) -> Word {
        let addr = self.kstatic_next;
        self.kstatic_next += (size + 63) & !63;
        self.mem.map_range(addr, size);
        addr
    }

    // --------------------------------------------------------- user space

    /// Maps user memory at a caller-chosen address (`mmap`-with-MAP_FIXED;
    /// exploits use it to place payloads at crafted addresses).
    pub fn user_map(&mut self, addr: Word, len: u64) -> Result<(), KernelError> {
        if !is_user_addr(addr) || !is_user_addr(addr + len) {
            return Err(KernelError::Fail("user_map outside user space".into()));
        }
        self.mem.map_range(addr, len);
        Ok(())
    }

    /// Allocates fresh user memory.
    pub fn user_alloc(&mut self, len: u64) -> Word {
        let addr = self.user_next;
        self.user_next += (len + 0xfff) & !0xfff;
        self.mem.map_range(addr, len);
        addr
    }

    /// Registers user "code" at a user address.
    pub fn register_user_fn(&mut self, addr: Word, f: UserFn) {
        assert!(is_user_addr(addr));
        self.user_fns.insert(addr, f);
    }

    /// The kernel jumping to a user address: if shellcode is registered
    /// there it runs **with kernel privilege** (the exploit payoff);
    /// otherwise the machine faults.
    fn run_user_code(&mut self, addr: Word) -> Result<Word, Trap> {
        match self.user_fns.get(&addr).cloned() {
            Some(f) => {
                f(self);
                Ok(0)
            }
            None => Err(Trap::MemFault {
                addr,
                len: 1,
                write: false,
            }),
        }
    }

    // ----------------------------------------------------- panic plumbing

    /// The recorded panic reason, if LXFI panicked the kernel.
    pub fn panic_reason(&self) -> Option<&str> {
        self.panic.as_deref()
    }

    /// The violation that caused the panic (for precise assertions).
    pub fn last_violation(&self) -> Option<&Violation> {
        self.last_violation.as_ref()
    }

    /// Clears panic state (tests that probe multiple violations).
    pub fn clear_panic(&mut self) {
        self.panic = None;
        self.last_violation = None;
    }

    /// Runs a kernel entry point (syscall), classifying traps: policy
    /// violations panic the kernel; machine faults go down the oops path
    /// (which runs `do_exit`, §8.1 Econet).
    pub fn enter<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<R, Trap>,
    ) -> Result<R, KernelError> {
        if let Some(p) = &self.panic {
            return Err(KernelError::Panic(p.clone()));
        }
        match f(self) {
            Ok(r) => Ok(r),
            Err(Trap::Policy(e)) => {
                let msg = e.to_string();
                if let Some(v) = e.downcast_ref::<Violation>() {
                    self.last_violation = Some(v.clone());
                }
                self.panic = Some(msg.clone());
                Err(KernelError::Panic(msg))
            }
            Err(trap) => {
                let msg = trap.to_string();
                self.oops();
                Err(KernelError::Oops(msg))
            }
        }
    }

    /// The oops path: kill the current process via `do_exit`. Faithfully
    /// reproduces CVE-2010-4258: `do_exit` writes a zero through the
    /// user-supplied `clear_child_tid` pointer without resetting the
    /// "user access ok" context — an arbitrary kernel-memory zero-write.
    pub fn oops(&mut self) {
        let task = self.procs.current_task();
        let tid_ptr = self
            .mem
            .read_word((task as i64 + crate::process::task::CLEAR_CHILD_TID) as u64)
            .unwrap_or(0);
        if tid_ptr != 0 {
            // The kernel bug: a 4-byte zero store to an unchecked address,
            // performed in kernel context (no LXFI guard applies — this is
            // core-kernel code, which LXFI trusts).
            let _ = self.mem.write(tid_ptr, 0, lxfi_machine::Width::B4);
        }
        let _ = self
            .mem
            .write_word((task as i64 + crate::process::task::EXITED) as u64, 1);
    }

    /// Runs `handler` as a simulated interrupt: the interrupted module
    /// principal is saved on the shadow stack and restored afterwards
    /// (§3.1).
    pub fn interrupt<R>(&mut self, handler: impl FnOnce(&mut Self) -> R) -> R {
        let t = self.current_thread();
        let tok = self.rt.thread(t).interrupt_enter();
        let r = handler(self);
        self.rt
            .thread(t)
            .interrupt_exit(tok)
            .expect("interrupt tokens are runtime-managed");
        r
    }

    // ------------------------------------------------------ module loading

    /// Loads a module in the kernel's global mode.
    pub fn load_module(&mut self, spec: ModuleSpec) -> Result<LoadedModuleId, KernelError> {
        self.load_module_with_mode(spec, self.mode)
    }

    /// Loads a module with an explicit mode.
    pub fn load_module_with_mode(
        &mut self,
        spec: ModuleSpec,
        mode: IsolationMode,
    ) -> Result<LoadedModuleId, KernelError> {
        lxfi_machine::verify_program(&spec.program)
            .map_err(|e| KernelError::Fail(format!("verify {}: {}", spec.name, e[0])))?;

        // Merge the module's interface declarations into the kernel's sig
        // registry (exact-match on collision, §4.2).
        for (name, d) in &spec.iface.sig_decls {
            if let Some(prev) = self.sig_decls.get(name) {
                if prev.ann.canonical() != d.ann.canonical() {
                    return Err(KernelError::Fail(format!(
                        "sig `{name}` conflicts with an existing declaration"
                    )));
                }
            } else {
                let mut d = d.clone();
                d.compile(&mut self.rt, &self.layouts);
                self.sig_decls.insert(name.clone(), d);
            }
        }

        let (program, decls, init_grants) = match mode {
            IsolationMode::Lxfi => {
                let rw = rewrite_module(&spec.program, RewriteOptions::default());
                let decls = propagate(&rw.program, &spec.iface)
                    .map_err(|e| KernelError::Fail(format!("propagate {}: {e}", spec.name)))?;
                (rw.program, decls, rw.init_grants)
            }
            IsolationMode::Stock => (spec.program.clone(), HashMap::new(), Vec::new()),
        };
        // Compile the module declarations' enforcement IR once, at load.
        let decls: HashMap<FuncId, Rc<FnDecl>> = decls
            .into_iter()
            .map(|(fid, mut d)| {
                d.compile(&mut self.rt, &self.layouts);
                (fid, Rc::new(d))
            })
            .collect();

        let midx = self.modules.len();
        let window = MODULE_BASE + midx as u64 * MODULE_STRIDE;
        let mid = match mode {
            IsolationMode::Lxfi => Some(self.rt.register_module(&spec.name)),
            IsolationMode::Stock => None,
        };

        // Lay out globals in the module window; write init images.
        let mut global_addrs = Vec::new();
        let mut cursor = window;
        for g in &program.globals {
            cursor = (cursor + 63) & !63;
            self.mem.map_range(cursor, g.size);
            if let Some(init) = &g.init {
                let n = init.len().min(g.size as usize);
                self.mem
                    .write_bytes(cursor, &init[..n])
                    .expect("mapped above");
            }
            global_addrs.push(cursor);
            cursor += g.size;
        }

        // Register function addresses.
        let fn_base = window + MODULE_FN_OFFSET;
        // Apply static-initializer relocations (C ops-table initializers):
        // performed by the trusted loader, so they work for read-only
        // globals like `rds_proto_ops` too.
        for r in &program.fn_relocs {
            let addr = global_addrs[r.global.0 as usize] + r.offset;
            self.mem
                .write_word(addr, fn_base + u64::from(r.func.0) * FN_SPACING)
                .expect("reloc target mapped");
        }
        for (i, _f) in program.funcs.iter().enumerate() {
            let fid = FuncId(i as u32);
            let addr = fn_base + i as u64 * FN_SPACING;
            self.fn_addrs.insert(addr, (midx, fid));
            self.rt.register_function(
                addr,
                FnMeta {
                    name: format!("{}::{}", spec.name, program.funcs[i].name),
                    ahash: decls.get(&fid).map(|d| d.ahash).unwrap_or(self.empty_ahash),
                    module: mid,
                },
            );
        }

        // Resolve imports.
        let mut import_addrs = Vec::new();
        for imp in &program.imports {
            let addr = match imp.kind {
                ImportKind::Func => self.export_addr(&imp.name).ok_or_else(|| {
                    KernelError::Fail(format!("{}: unresolved import {}", spec.name, imp.name))
                })?,
                ImportKind::Data => {
                    self.kdata
                        .get(&imp.name)
                        .ok_or_else(|| {
                            KernelError::Fail(format!(
                                "{}: unresolved data import {}",
                                spec.name, imp.name
                            ))
                        })?
                        .0
                }
            };
            import_addrs.push(addr);
        }

        // Initial capability grants to the shared principal (§3.2, §4.2).
        if let Some(mid) = mid {
            let shared = self.rt.shared_principal(mid);
            // A module may call (and hand out pointers to) its own
            // functions: "the module should be able to provide only
            // pointers to functions that the module itself can invoke"
            // (§2.2) — so it holds CALL capabilities for them.
            for i in 0..program.funcs.len() {
                self.rt
                    .grant(shared, RawCap::call(fn_base + i as u64 * FN_SPACING));
            }
            // Initial capability (2) of §3.2: WRITE to the kernel stacks,
            // so modules can pass addresses of stack locals to kernel
            // routines that fill them in.
            for (ti, _) in self.threads.iter().enumerate() {
                let base = STACK_BASE + ti as u64 * STACK_STRIDE;
                self.rt.grant(shared, RawCap::write(base, STACK_SIZE));
            }
            for g in &init_grants {
                match g {
                    InitGrant::Call { name } => {
                        let addr = self.export_addr(name).expect("resolved above");
                        self.rt.grant(shared, RawCap::call(addr));
                    }
                    InitGrant::Write { name } => {
                        let (addr, size) = self.kdata[name];
                        self.rt.grant(shared, RawCap::write(addr, size));
                    }
                }
            }
            for (gi, g) in program.globals.iter().enumerate() {
                if g.writable {
                    // WRITE to .data/.bss; grant() also marks the
                    // writer-set map for these sections (§5).
                    self.rt
                        .grant(shared, RawCap::write(global_addrs[gi], g.size));
                } else {
                    // Read-only sections stay unwritable — this alone
                    // stops the stock RDS exploit (§8.1).
                    self.rt.mark_written(global_addrs[gi], g.size);
                }
            }
        }

        for (name, f) in spec.iterators {
            self.rt.register_iterator(&name, f);
        }

        self.modules.push(LoadedModule {
            name: spec.name.clone(),
            mode,
            mid,
            program: Rc::new(program),
            global_addrs,
            fn_base,
            decls,
            import_addrs,
            sig_ahash: Vec::new(),
        });
        self.module_idx.insert(spec.name.clone(), midx);
        // The merged sig declarations may concern earlier modules' call
        // sites too; refresh every module's per-SigId hash array (before
        // module_init runs and can take indirect calls).
        self.refresh_sig_hashes();

        if let Some(init) = &spec.init_fn {
            let fid = self.modules[midx]
                .program
                .func_by_name(init)
                .ok_or_else(|| KernelError::Fail(format!("no init function {init}")))?;
            let addr = fn_base + fid.0 as u64 * FN_SPACING;
            self.enter(|k| k.invoke_module_function(addr, &[], None))?;
        }
        Ok(LoadedModuleId(midx))
    }

    /// Loads the core kernel's KIR dispatch thunks, instrumented by the
    /// kernel rewriter when LXFI is on (§4.1).
    fn load_kernel_thunks(&mut self) {
        let thunks = crate::net::kernel_thunks();
        let program = match self.mode {
            IsolationMode::Lxfi => {
                let rep = rewrite_kernel_thunks(&thunks);
                assert!(
                    rep.untraceable.is_empty(),
                    "kernel thunks must be fully traceable: {:?}",
                    rep.untraceable
                );
                rep.program
            }
            IsolationMode::Stock => thunks,
        };
        lxfi_machine::verify_program(&program).expect("kernel thunks verify");
        let midx = self.modules.len();
        let window = MODULE_BASE + midx as u64 * MODULE_STRIDE;
        let fn_base = window + MODULE_FN_OFFSET;
        for (i, _) in program.funcs.iter().enumerate() {
            self.fn_addrs
                .insert(fn_base + i as u64 * FN_SPACING, (midx, FuncId(i as u32)));
        }
        let mut import_addrs = Vec::new();
        for imp in &program.imports {
            import_addrs.push(self.export_addr(&imp.name).expect("thunk import"));
        }
        self.modules.push(LoadedModule {
            name: "<kernel-thunks>".into(),
            mode: IsolationMode::Stock, // kernel code is trusted
            mid: None,
            program: Rc::new(program),
            global_addrs: Vec::new(),
            fn_base,
            decls: HashMap::new(),
            import_addrs,
            sig_ahash: Vec::new(),
        });
        self.module_idx.insert("<kernel-thunks>".into(), midx);
        self.refresh_sig_hashes();
    }

    /// Loaded-module lookup by name.
    pub fn module_id(&self, name: &str) -> Option<LoadedModuleId> {
        self.module_idx.get(name).copied().map(LoadedModuleId)
    }

    /// The runtime module id (principal namespace) of a loaded module.
    pub fn runtime_module(&self, id: LoadedModuleId) -> Option<lxfi_core::ModuleId> {
        self.modules[id.0].mid
    }

    /// Address of a module function by name.
    pub fn module_fn_addr(&self, id: LoadedModuleId, func: &str) -> Option<Word> {
        let m = &self.modules[id.0];
        m.program
            .func_by_name(func)
            .map(|f| m.fn_base + f.0 as u64 * FN_SPACING)
    }

    /// Address of a module global by name.
    pub fn module_global_addr(&self, id: LoadedModuleId, global: &str) -> Option<Word> {
        let m = &self.modules[id.0];
        m.program
            .global_by_name(global)
            .map(|g| m.global_addrs[g.0 as usize])
    }

    /// The isolation mode a module was loaded with.
    pub fn module_mode(&self, id: LoadedModuleId) -> IsolationMode {
        self.modules[id.0].mode
    }

    /// The name a module was loaded under.
    pub fn module_name(&self, id: LoadedModuleId) -> &str {
        &self.modules[id.0].name
    }

    /// The program a module was loaded with (post-rewrite for LXFI).
    pub fn module_program(&self, id: LoadedModuleId) -> &Program {
        &self.modules[id.0].program
    }

    // ------------------------------------------- kernel→module invocation

    /// Runs a kernel thunk function (trusted KIR, e.g. the netif dispatch
    /// path) by name.
    pub fn run_kernel_thunk(&mut self, func: &str, args: &[Word]) -> Result<Word, Trap> {
        let midx = self.module_idx["<kernel-thunks>"];
        let prog = self.modules[midx].program.clone();
        let fid = prog
            .func_by_name(func)
            .ok_or_else(|| Trap::BadRef(format!("thunk {func}")))?;
        self.exec_stack.push(midx);
        let r = run_function(self, &prog, fid, args);
        self.exec_stack.pop();
        r
    }

    /// Invokes a function address on behalf of the kernel (or, when
    /// `caller` is given, of another module): full wrapper semantics for
    /// isolated modules. This is the path used after an indirect-call
    /// check passes, and for direct kernel→module calls.
    pub fn invoke_module_function(
        &mut self,
        target: Word,
        args: &[Word],
        caller: Option<PrincipalCtx>,
    ) -> Result<Word, Trap> {
        let caller_ctx = caller.unwrap_or(None);
        let Some(&(midx, fid)) = self.fn_addrs.get(&target) else {
            // Not module code: kernel export or user address.
            if let Some(idx) = self.addr_to_export(target) {
                let imp = self.exports[idx].imp.clone();
                return imp(self, args);
            }
            if is_user_addr(target) {
                return self.run_user_code(target);
            }
            return Err(Trap::BadRef(format!("call target {target:#x}")));
        };
        let m = &self.modules[midx];
        let prog = m.program.clone();
        match m.mode {
            IsolationMode::Stock => {
                self.exec_stack.push(midx);
                let r = run_function(self, &prog, fid, args);
                self.exec_stack.pop();
                r
            }
            IsolationMode::Lxfi => {
                let mid = m.mid.expect("isolated module has runtime id");
                // Unannotated module functions (e.g. module_init) run as
                // the shared principal with no capability actions, via
                // the boot-compiled shared empty declaration.
                let decl = m
                    .decls
                    .get(&fid)
                    .cloned()
                    .unwrap_or_else(|| Rc::clone(&self.unannotated_decl));
                let callee_p = self.select_principal(mid, &decl, args)?;
                let t = self.current_thread();
                let token = self.rt.wrapper_enter(t, Some((mid, callee_p)));
                let result = (|| -> Result<Word, Trap> {
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller: caller_ctx,
                        callee: Some((mid, callee_p)),
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Pre)?;
                    self.exec_stack.push(midx);
                    let r = run_function(self, &prog, fid, args);
                    self.exec_stack.pop();
                    let ret = r?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller: caller_ctx,
                        callee: Some((mid, callee_p)),
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Post)?;
                    Ok(ret)
                })();
                // Always rebalance the shadow stack; on the success path
                // this validates the return token (control-flow integrity
                // on returns, §5).
                let exit = self.rt.wrapper_exit(t, token);
                match result {
                    Ok(v) => {
                        exit?;
                        Ok(v)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn select_principal(
        &mut self,
        mid: lxfi_core::ModuleId,
        decl: &FnDecl,
        args: &[Word],
    ) -> Result<PrincipalId, Trap> {
        // Compiled declarations resolved the principal parameter to an
        // argument position at registration; no name comparison per call.
        if let Some(c) = &decl.compiled {
            use lxfi_core::compiled::CPrincipal;
            return Ok(match &c.principal {
                None | Some(CPrincipal::Shared) => self.rt.shared_principal(mid),
                Some(CPrincipal::Global) => self.rt.global_principal(mid),
                Some(CPrincipal::Arg(i)) => {
                    let ptr = args.get(*i as usize).copied().unwrap_or(0);
                    self.rt.principal_for_name(mid, ptr)
                }
                Some(CPrincipal::UnknownArg(name)) => {
                    return Err(Trap::from(Violation::BadExpression {
                        why: format!("principal({name}) is not a parameter of {}", decl.name),
                    }))
                }
            });
        }
        use lxfi_annotations::PrincipalExpr;
        Ok(match &decl.ann.principal {
            None | Some(PrincipalExpr::Shared) => self.rt.shared_principal(mid),
            Some(PrincipalExpr::Global) => self.rt.global_principal(mid),
            Some(PrincipalExpr::Arg(name)) => {
                let idx = decl
                    .params
                    .iter()
                    .position(|p| &p.name == name)
                    .ok_or_else(|| {
                        Trap::from(Violation::BadExpression {
                            why: format!("principal({name}) is not a parameter of {}", decl.name),
                        })
                    })?;
                let ptr = args.get(idx).copied().unwrap_or(0);
                self.rt.principal_for_name(mid, ptr)
            }
        })
    }

    /// A kernel indirect call through a module-reachable function-pointer
    /// slot (native-code equivalent of the rewritten thunks' guards): load
    /// the target, run `lxfi_check_indcall`, dispatch.
    pub fn indirect_call(
        &mut self,
        slot: Word,
        sig_name: &str,
        args: &[Word],
    ) -> Result<Word, Trap> {
        let target = self.mem.read_word(slot)?;
        if target == 0 {
            return Err(Trap::MemFault {
                addr: 0,
                len: 8,
                write: false,
            });
        }
        if self.mode == IsolationMode::Lxfi {
            let ahash = self
                .sig_decls
                .get(sig_name)
                .map(|d| d.ahash)
                .unwrap_or(self.empty_ahash);
            self.rt.check_indcall(slot, target, ahash)?;
        }
        self.dispatch_checked_pointer(target, args)
    }

    /// Dispatches a function pointer that already passed (or was exempted
    /// from) the indirect-call check. The slot's annotation needs no
    /// separate enforcement here: for module targets the ahash check
    /// guaranteed the function's own annotation equals the slot's, so the
    /// function's declaration is used.
    fn dispatch_checked_pointer(&mut self, target: Word, args: &[Word]) -> Result<Word, Trap> {
        if self.fn_addrs.contains_key(&target) {
            self.invoke_module_function(target, args, None)
        } else if let Some(idx) = self.addr_to_export(target) {
            let imp = self.exports[idx].imp.clone();
            imp(self, args)
        } else if is_user_addr(target) {
            self.run_user_code(target)
        } else {
            Err(Trap::BadRef(format!("indirect target {target:#x}")))
        }
    }

    fn addr_to_export(&self, addr: Word) -> Option<usize> {
        if addr < EXPORT_BASE {
            return None;
        }
        let idx = ((addr - EXPORT_BASE) / FN_SPACING) as usize;
        (addr == EXPORT_BASE + idx as u64 * FN_SPACING && idx < self.exports.len()).then_some(idx)
    }

    /// `lxfi_princ_alias` entry point for module code (§3.4): only callable
    /// while a module executes; the current principal must already hold a
    /// REF or WRITE capability naming check responsibility rests with the
    /// preceding `lxfi_check` in module code.
    pub fn princ_alias_current(&mut self, existing: Word, new_name: Word) -> Result<(), Trap> {
        let t = self.current_thread();
        let Some((mid, _p)) = self.rt.current(t) else {
            if self.executing_stock_module() {
                // Stock builds compile LXFI runtime calls out; treat the
                // call as the no-op it would be.
                return Ok(());
            }
            return Err(Trap::from(Violation::PrincipalDenied {
                why: "lxfi_princ_alias outside module context".into(),
            }));
        };
        self.rt.princ_alias(mid, existing, new_name)?;
        Ok(())
    }

    /// True when the innermost executing program is a stock-mode module.
    pub fn executing_stock_module(&self) -> bool {
        self.exec_stack.last().is_some_and(|&m| {
            self.modules[m].mode == IsolationMode::Stock && self.modules[m].mid.is_none()
        })
    }

    // -------------------------------------------------------------- fuel

    /// Caps interpreted-instruction budget (tests against runaway loops).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Total deterministic cost so far: interpreted cycles plus guard
    /// cycles (the quantity the netperf cost model consumes).
    pub fn total_cycles(&self) -> u64 {
        self.cycles + self.rt.stats.total_cycles()
    }
}

// ------------------------------------------------------------------ Env

impl Env for Kernel {
    fn mem(&mut self) -> &mut AddressSpace {
        &mut self.mem
    }

    fn mem_ref(&self) -> &AddressSpace {
        &self.mem
    }

    fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
        if self.fuel < cycles {
            return Err(Trap::OutOfFuel);
        }
        self.fuel -= cycles;
        self.cycles += cycles;
        Ok(())
    }

    fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
        let t = &mut self.threads[self.cur_thread];
        let size = (u64::from(size) + 15) & !15;
        if t.sp < t.base + size {
            return Err(Trap::StackOverflow);
        }
        t.sp -= size;
        let sp = t.sp;
        self.mem.zero_range(sp, size)?;
        Ok(sp)
    }

    fn pop_frame(&mut self, size: u32) {
        let t = &mut self.threads[self.cur_thread];
        t.sp += (u64::from(size) + 15) & !15;
        debug_assert!(t.sp <= t.base + STACK_SIZE);
    }

    fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap> {
        let t = self.current_thread();
        self.rt.check_write(t, addr, len)?;
        Ok(())
    }

    fn guard_indcall(&mut self, slot: Word, sig: SigId) -> Result<(), Trap> {
        // Hot path: the sig's annotation hash was resolved at load time
        // (refresh_sig_hashes); a single array index replaces the former
        // name clone + string-keyed registry lookup.
        let midx = *self.exec_stack.last().expect("executing");
        let ahash = self.modules[midx].sig_ahash[sig.0 as usize];
        let target = self.mem.read_word(slot)?;
        self.rt.check_indcall(slot, target, ahash)?;
        Ok(())
    }

    fn call_extern(&mut self, sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
        let midx = *self.exec_stack.last().expect("executing");
        let m = &self.modules[midx];
        let import = &m.program.imports[sym.0 as usize];
        if import.kind != ImportKind::Func {
            return Err(Trap::BadRef(format!("calling data import {}", import.name)));
        }
        let target = m.import_addrs[sym.0 as usize];
        let mode = m.mode;
        let idx = self.addr_to_export(target).ok_or_else(|| {
            Trap::BadRef(format!(
                "extern {}",
                self.modules[midx].program.imports[sym.0 as usize].name
            ))
        })?;

        match mode {
            IsolationMode::Stock => {
                let imp = self.exports[idx].imp.clone();
                imp(self, args)
            }
            IsolationMode::Lxfi => {
                let t = self.current_thread();
                // CALL capability for the export's wrapper (granted at
                // module init from the symbol table, §4.2).
                self.rt.check_call(t, target)?;
                // Success path is allocation-free: the declaration is an
                // Rc clone; the import name is only cloned on error.
                let decl = self.exports[idx].decl.clone().ok_or_else(|| {
                    Trap::from(Violation::UnannotatedFunction {
                        name: self.exports[idx].name.clone(),
                    })
                })?;
                let caller = self.rt.current(t);
                let imp = self.exports[idx].imp.clone();
                if self.exports[idx].runtime_call {
                    // Runtime entry point: stays in the caller's principal
                    // context; still enforces the pre/post actions.
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Pre)?;
                    let ret = imp(self, args)?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Post)?;
                    return Ok(ret);
                }
                let token = self.rt.wrapper_enter(t, None); // kernel context
                let result = (|| -> Result<Word, Trap> {
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: None,
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Pre)?;
                    let ret = imp(self, args)?;
                    let site = CallSite {
                        decl: &decl,
                        args,
                        ret: Some(ret),
                        caller,
                        callee: None,
                    };
                    apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Post)?;
                    Ok(ret)
                })();
                let exit = self.rt.wrapper_exit(t, token);
                match result {
                    Ok(v) => {
                        exit?;
                        Ok(v)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn call_ptr(&mut self, target: Word, sig: SigId, args: &[Word]) -> Result<Word, Trap> {
        let midx = *self.exec_stack.last().expect("executing");
        let m = &self.modules[midx];
        let mode = m.mode;
        // Load-time-resolved hash; the sig *name* plays no role at call
        // time (dispatch ignores it — the ahash check already pinned the
        // callee's annotations to the slot's).
        let site_hash = m.sig_ahash[sig.0 as usize];
        match mode {
            IsolationMode::Stock => self.dispatch_checked_pointer(target, args),
            IsolationMode::Lxfi => {
                let t = self.current_thread();
                // The module may only call targets it holds CALL for.
                self.rt.check_call(t, target)?;
                // Annotation match between the call site's pointer type
                // and the invoked function (§4.1, module side). Hash-only
                // lookup: no FnMeta clone on the call hot path.
                let fn_hash = self
                    .rt
                    .function_ahash(target)
                    .ok_or(Violation::NotAFunction { target })
                    .map_err(Trap::from)?;
                if fn_hash != site_hash {
                    return Err(Trap::from(Violation::AnnotationMismatch {
                        sig_hash: site_hash,
                        fn_hash,
                    }));
                }
                let caller = self.rt.current(t);
                if self.fn_addrs.contains_key(&target) {
                    self.invoke_module_function(target, args, Some(caller))
                } else if let Some(idx) = self.addr_to_export(target) {
                    // Same wrapper path as a direct extern call.
                    let decl = self.exports[idx].decl.clone().ok_or_else(|| {
                        Trap::from(Violation::UnannotatedFunction {
                            name: self.exports[idx].name.clone(),
                        })
                    })?;
                    let imp = self.exports[idx].imp.clone();
                    let token = self.rt.wrapper_enter(t, None);
                    let result = (|| -> Result<Word, Trap> {
                        let site = CallSite {
                            decl: &decl,
                            args,
                            ret: None,
                            caller,
                            callee: None,
                        };
                        apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Pre)?;
                        let ret = imp(self, args)?;
                        let site = CallSite {
                            decl: &decl,
                            args,
                            ret: Some(ret),
                            caller,
                            callee: None,
                        };
                        apply_actions(&mut self.rt, &self.mem, &self.layouts, &site, Dir::Post)?;
                        Ok(ret)
                    })();
                    let exit = self.rt.wrapper_exit(t, token);
                    match result {
                        Ok(v) => {
                            exit?;
                            Ok(v)
                        }
                        Err(e) => Err(e),
                    }
                } else {
                    Err(Trap::from(Violation::NotAFunction { target }))
                }
            }
        }
    }

    fn global_addr(&self, global: GlobalId) -> Result<Word, Trap> {
        let midx = *self.exec_stack.last().expect("executing");
        self.modules[midx]
            .global_addrs
            .get(global.0 as usize)
            .copied()
            .ok_or_else(|| Trap::BadRef(format!("global {}", global.0)))
    }

    fn sym_addr(&self, sym: SymbolId) -> Result<Word, Trap> {
        let midx = *self.exec_stack.last().expect("executing");
        self.modules[midx]
            .import_addrs
            .get(sym.0 as usize)
            .copied()
            .ok_or_else(|| Trap::BadRef(format!("import {}", sym.0)))
    }

    fn func_addr(&self, func: FuncId) -> Result<Word, Trap> {
        let midx = *self.exec_stack.last().expect("executing");
        Ok(self.modules[midx].fn_base + u64::from(func.0) * FN_SPACING)
    }
}
