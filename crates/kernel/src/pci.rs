//! The PCI subsystem (Figure 1 / Figure 4 of the paper).
//!
//! Drivers register a `probe` callback; the kernel invokes it once per
//! matching device with the Figure 4 annotations: the callee principal is
//! named by the `pci_dev` pointer, a `REF(struct pci_dev)` capability is
//! copied in, and transferred back if probing fails.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_machine::{Trap, Word};

use crate::kernel::KernelCpu;
use crate::types::pci_dev;

/// The Figure 4 annotation for `pci_driver.probe`.
pub const PCI_PROBE_ANN: &str = "principal(pcidev) \
     pre(copy(ref(struct pci_dev), pcidev)) \
     post(if (return < 0) transfer(ref(struct pci_dev), pcidev))";

#[derive(Debug, Default)]
/// PCI subsystem state.
pub struct PciState {
    /// Registered devices (`pci_dev` addresses).
    pub devices: Vec<Word>,
    /// Registered drivers: kernel-static slots holding the probe pointer.
    pub driver_slots: Vec<Word>,
    /// (device, driver slot) pairs already bound.
    pub bound: Vec<(Word, Word)>,
}

/// Registers PCI exports and interface annotations.
pub fn register(k: &mut KernelCpu) {
    k.define_sig(
        "pci_probe",
        vec![Param::ptr("pcidev", "struct pci_dev")],
        PCI_PROBE_ANN,
    );

    k.export(
        "pci_register_driver",
        vec![Param::scalar("probe")],
        Some("pre(check(call, probe))"),
        Arc::new(|k, args| {
            // The kernel stores the (capability-checked) probe pointer in
            // its own memory; the slot is kernel-written, so later
            // dispatches take the writer-set fast path.
            let slot = k.kstatic_alloc(8);
            k.mem.write_word(slot, args[0])?;
            k.pci().driver_slots.push(slot);
            Ok(0)
        }),
    );

    k.export(
        "pci_enable_device",
        vec![Param::ptr("pcidev", "struct pci_dev")],
        Some("pre(check(ref(struct pci_dev), pcidev))"),
        Arc::new(|k, args| {
            let dev = args[0];
            let cur = k.mem.read_word((dev as i64 + pci_dev::ENABLED) as u64)?;
            k.mem
                .write_word((dev as i64 + pci_dev::ENABLED) as u64, cur + 1)?;
            Ok(0)
        }),
    );

    k.export(
        "pci_iomap",
        vec![Param::ptr("pcidev", "struct pci_dev")],
        Some(
            "pre(check(ref(struct pci_dev), pcidev)) \
             post(if (return != 0) transfer(write, return, 4096))",
        ),
        Arc::new(|k, args| {
            let dev = args[0];
            k.mem.read_word((dev as i64 + pci_dev::MMIO_BASE) as u64)
        }),
    );

    // The statically-coupled check preceding `lxfi_princ_alias` in
    // Figure 4 (line 72): verifies the current principal holds the
    // REF(struct pci_dev) capability it is about to alias.
    k.export_runtime(
        "lxfi_check_pcidev",
        vec![Param::ptr("pcidev", "struct pci_dev")],
        "pre(check(ref(struct pci_dev), pcidev))",
        Arc::new(|_k, _args| Ok(0)),
    );
}

impl KernelCpu {
    /// Creates a PCI device (platform discovery); allocates its struct
    /// and a 4 KiB simulated MMIO window.
    pub fn pci_add_device(&mut self, vendor: u32, device: u32, irq: u32) -> Word {
        let dev = self.kstatic_alloc(pci_dev::SIZE);
        let mmio = self.kstatic_alloc(4096);
        self.mem
            .write(
                (dev as i64 + pci_dev::VENDOR) as u64,
                u64::from(vendor),
                lxfi_machine::Width::B4,
            )
            .unwrap();
        self.mem
            .write(
                (dev as i64 + pci_dev::DEVICE) as u64,
                u64::from(device),
                lxfi_machine::Width::B4,
            )
            .unwrap();
        self.mem
            .write_word((dev as i64 + pci_dev::IRQ) as u64, u64::from(irq))
            .unwrap();
        self.mem
            .write_word((dev as i64 + pci_dev::MMIO_BASE) as u64, mmio)
            .unwrap();
        self.mem
            .write_word((dev as i64 + pci_dev::MMIO_LEN) as u64, 4096)
            .unwrap();
        self.pci().devices.push(dev);
        dev
    }

    /// Binds unbound devices to registered drivers by invoking each
    /// driver's `probe` through its kernel slot (the Figure 1 line 20
    /// dispatch). Returns the number of successful probes.
    pub fn pci_probe_all(&mut self) -> Result<u64, Trap> {
        let mut ok = 0;
        let devices = self.pci().devices.clone();
        let slots = self.pci().driver_slots.clone();
        for dev in devices {
            if self.pci().bound.iter().any(|&(d, _)| d == dev) {
                continue;
            }
            // Reset the device before offering it to a driver: residual
            // WRITE coverage over its BAR or config struct — a crashed
            // previous tenant's grants, parked on the tombstone since
            // its teardown — is scrubbed now that the hardware is being
            // reused, mirroring `scrub_window`'s rule that tombstone
            // poison lifts exactly at legitimate reuse. A no-op on
            // first probe (nothing granted yet).
            let mmio = self
                .mem
                .read_word((dev as i64 + pci_dev::MMIO_BASE) as u64)
                .unwrap_or(0);
            let mmio_len = self
                .mem
                .read_word((dev as i64 + pci_dev::MMIO_LEN) as u64)
                .unwrap_or(0);
            if mmio != 0 && mmio_len != 0 {
                self.rt.revoke_write_overlapping_everywhere(mmio, mmio_len);
            }
            self.rt
                .revoke_write_overlapping_everywhere(dev, pci_dev::SIZE);
            for slot in &slots {
                // Snapshot so the net devices this probe registers are
                // identifiable afterwards for RX binding.
                let ndevs_before = self.net().devices.len();
                let ret = self.indirect_call(*slot, "pci_probe", &[dev])?;
                if (ret as i64) >= 0 {
                    self.pci().bound.push((dev, *slot));
                    // Bind the RX ring of every NAPI net device the
                    // probe registered (no-op for non-NAPI drivers).
                    let new_ndevs: Vec<Word> = self.net().devices[ndevs_before..].to_vec();
                    for ndev in new_ndevs {
                        self.net_rx_bind(ndev, dev);
                    }
                    ok += 1;
                    break;
                }
            }
        }
        Ok(ok)
    }

    /// Reads a device's enable count (test observable).
    pub fn pci_enabled_count(&self, dev: Word) -> u64 {
        self.mem
            .read_word((dev as i64 + pci_dev::ENABLED) as u64)
            .unwrap_or(0)
    }
}
