//! Deferred-call dispatch — the kernel's bottom-half layer.
//!
//! Interrupt assertion must do almost nothing: the wire (or a sound
//! card's period timer) marks work *pending* and returns; the work
//! itself — dispatching the device's NAPI poll or capture callback into
//! guarded module code — runs later, at a quiescent point. This module
//! is the table that carries that pending work between the two halves.
//!
//! The design is the single-owner deferred-call mux (as in Tock's
//! `deferred_call` layer): every client that can have deferred work —
//! one per `(owner object, kind)` pair, e.g. one per NAPI device —
//! registers exactly **once** and owns its slot for the kernel's
//! lifetime. Scheduling a call after registration allocates nothing:
//! each slot carries a fixed-capacity ring of pending call arguments,
//! so the interrupt path is a bump of a head/len pair under the
//! subsystem mutex, never a heap allocation. A full ring drops the call
//! and counts the drop (like a NIC dropping frames on an overrun) —
//! pending work is otherwise never lost and never duplicated, and one
//! owner's calls dispatch in exactly the order they were scheduled.
//!
//! **CPU affinity / determinism.** A slot binds to the CPU that
//! scheduled its first pending call (re-armed when the ring drains
//! empty) and the ambient quiescent-point drain on each CPU only
//! dispatches its own slots. That keeps interrupt delivery
//! batch-reproducible under `kernel_mt`: the CPU that observed the wire
//! event runs the bottom half, so per-CPU cycle counts never depend on
//! which CPU happened to reach a quiescent point first (the contract is
//! documented with netsim's cycle model in [`crate::netsim`]). An
//! *explicit* flush of one slot (e.g. `net_deliver_rx` draining the
//! device it just injected frames for) ignores affinity — the caller is
//! the observing CPU by construction.
//!
//! The state itself is dispatch-free: the [`crate::KernelCpu`] methods
//! (`deferred_dispatch_one`, `deferred_drain`) pop from here and run
//! the actual `interrupt(...) → indirect_call(...)` sequence, with the
//! kernel's `in_deferred` flag set so the chaos harness can inject
//! fuel exhaustion specifically inside bottom halves.

use lxfi_machine::Word;

/// Fixed pending-call capacity per slot. Beyond this the schedule is
/// dropped and counted — bounded memory is the point of the design.
pub const RING_CAP: usize = 64;

/// What a slot's pending calls dispatch into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferredKind {
    /// NAPI bottom half: `napi_poll(owner /*dev*/, arg /*budget*/)`
    /// through the device's kernel-held poll slot.
    NapiPoll,
    /// Sound capture period: `pcm_capture(owner /*pcm*/, arg /*bytes*/)`
    /// through the stream's ops table.
    SndCapture,
}

/// Index of a registered deferred-call slot (stable for the kernel's
/// lifetime; slots are never unregistered, mirroring static ownership
/// in the mux pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredId(pub usize);

/// One single-owner slot: the owning object, the dispatch kind, and the
/// FIFO ring of pending call arguments.
#[derive(Debug)]
struct DeferredSlot {
    owner: Word,
    kind: DeferredKind,
    ring: [Word; RING_CAP],
    head: usize,
    len: usize,
    /// CPU (thread id) whose quiescent points drain this slot; bound at
    /// the empty→pending transition.
    affine: u32,
}

/// The kernel-wide deferred-call table (one, behind the core's
/// `deferred` mutex; the hot "anything pending?" probe is the lock-free
/// atomic counter the kernel keeps beside it).
#[derive(Debug, Default)]
pub struct DeferredState {
    slots: Vec<DeferredSlot>,
    /// Calls dispatched since boot (bumped by the kernel dispatch path).
    pub dispatched: u64,
    /// Calls dropped because an owner's ring was full.
    pub dropped: u64,
}

impl DeferredState {
    /// Registers the single slot for `(owner, kind)`. Idempotent: a
    /// re-registration (e.g. a driver restarted after quarantine on the
    /// same object) returns the existing slot — there is never more
    /// than one owner per slot or one slot per owner.
    pub fn register(&mut self, owner: Word, kind: DeferredKind) -> DeferredId {
        if let Some(id) = self.lookup(owner, kind) {
            return id;
        }
        self.slots.push(DeferredSlot {
            owner,
            kind,
            ring: [0; RING_CAP],
            head: 0,
            len: 0,
            affine: 0,
        });
        DeferredId(self.slots.len() - 1)
    }

    /// The slot registered for `(owner, kind)`, if any.
    pub fn lookup(&self, owner: Word, kind: DeferredKind) -> Option<DeferredId> {
        self.slots
            .iter()
            .position(|s| s.owner == owner && s.kind == kind)
            .map(DeferredId)
    }

    /// Appends a pending call to a slot's ring from CPU `cpu`. Returns
    /// `false` (and counts the drop) when the ring is full. The first
    /// call into an empty ring binds the slot's CPU affinity.
    pub fn schedule(&mut self, id: DeferredId, arg: Word, cpu: u32) -> bool {
        let s = &mut self.slots[id.0];
        if s.len == RING_CAP {
            self.dropped += 1;
            return false;
        }
        if s.len == 0 {
            s.affine = cpu;
        }
        s.ring[(s.head + s.len) % RING_CAP] = arg;
        s.len += 1;
        true
    }

    /// Pops the oldest pending call from a slot.
    pub fn pop(&mut self, id: DeferredId) -> Option<(Word, DeferredKind, Word)> {
        let s = &mut self.slots[id.0];
        if s.len == 0 {
            return None;
        }
        let arg = s.ring[s.head];
        s.head = (s.head + 1) % RING_CAP;
        s.len -= 1;
        Some((s.owner, s.kind, arg))
    }

    /// The lowest-index slot with pending work affine to `cpu` (the
    /// ambient quiescent-point drain's work source).
    pub fn next_for(&self, cpu: u32) -> Option<DeferredId> {
        self.slots
            .iter()
            .position(|s| s.len > 0 && s.affine == cpu)
            .map(DeferredId)
    }

    /// Pending calls queued on one slot.
    pub fn pending(&self, id: DeferredId) -> usize {
        self.slots[id.0].len
    }

    /// Pending calls queued across all slots.
    pub fn pending_total(&self) -> usize {
        self.slots.iter().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_single_owner_and_idempotent() {
        let mut d = DeferredState::default();
        let a = d.register(0x1000, DeferredKind::NapiPoll);
        let b = d.register(0x2000, DeferredKind::NapiPoll);
        assert_ne!(a, b);
        // Same owner, same kind: the same slot comes back.
        assert_eq!(d.register(0x1000, DeferredKind::NapiPoll), a);
        // Same owner, different kind: a distinct client.
        let c = d.register(0x1000, DeferredKind::SndCapture);
        assert_ne!(c, a);
        assert_eq!(d.lookup(0x2000, DeferredKind::NapiPoll), Some(b));
        assert_eq!(d.lookup(0x3000, DeferredKind::NapiPoll), None);
    }

    #[test]
    fn rings_are_fifo_and_bounded() {
        let mut d = DeferredState::default();
        let id = d.register(0xd0, DeferredKind::NapiPoll);
        for i in 0..RING_CAP as u64 {
            assert!(d.schedule(id, i, 0));
        }
        // Full: the overflow is dropped and counted, nothing is lost.
        assert!(!d.schedule(id, 999, 0));
        assert_eq!(d.dropped, 1);
        for i in 0..RING_CAP as u64 {
            assert_eq!(d.pop(id), Some((0xd0, DeferredKind::NapiPoll, i)));
        }
        assert_eq!(d.pop(id), None);
        // Wrap-around keeps FIFO order.
        for round in 0..3u64 {
            for i in 0..10 {
                assert!(d.schedule(id, round * 100 + i, 0));
            }
            for i in 0..10 {
                assert_eq!(d.pop(id).unwrap().2, round * 100 + i);
            }
        }
    }

    #[test]
    fn affinity_binds_on_first_pending_and_rearms_when_drained() {
        let mut d = DeferredState::default();
        let a = d.register(0xa0, DeferredKind::NapiPoll);
        let b = d.register(0xb0, DeferredKind::SndCapture);
        d.schedule(a, 1, 3);
        d.schedule(a, 2, 7); // non-empty: affinity stays with CPU 3
        d.schedule(b, 9, 7);
        assert_eq!(d.next_for(3), Some(a));
        assert_eq!(d.next_for(7), Some(b));
        assert_eq!(d.next_for(0), None);
        d.pop(a);
        d.pop(a);
        assert_eq!(d.next_for(3), None);
        // Empty ring re-arms: the next scheduler owns the slot.
        d.schedule(a, 5, 7);
        assert_eq!(d.next_for(7), Some(a));
        assert_eq!(d.pending_total(), 2);
    }
}
