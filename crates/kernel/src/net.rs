//! The network stack: sk_buffs, net devices, NAPI, and the kernel's
//! transmit dispatch thunk (the running example of Figures 1 and 4).
//!
//! The interesting annotations:
//!
//! - `ndo_start_xmit` (function-pointer type on `net_device_ops`):
//!   `principal(dev)` names the callee principal by the device pointer;
//!   `pre(transfer(skb_caps(skb)))` hands the packet's capabilities to
//!   the driver; the `post(if (return == -NETDEV_BUSY) ...)` clause gives
//!   them back when the driver rejects the packet.
//! - `netif_rx`: `pre(transfer(skb_caps(skb)))` — once a received packet
//!   is handed to the kernel, the driver (and anyone it shared with)
//!   loses access (§3.3).
//! - `skb_caps` is the paper's example capability iterator: it walks the
//!   `sk_buff` header and emits WRITE capabilities for the header and the
//!   payload buffer.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_core::runtime::EmittedCap;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Program, ProgramBuilder, Trap, Word};

use crate::kernel::KernelCpu;
use crate::types::{net_device, qdisc, sk_buff, sock};

/// `NETDEV_BUSY` — drivers return `-NETDEV_BUSY` to push back.
pub const NETDEV_BUSY: i64 = 16;

/// Base protocol-stack cost per transmitted packet, cycles. The KIR
/// interpreter only executes the driver and dispatch code; the socket
/// layer, qdisc, and checksum work of a real kernel is represented by
/// this charge, applied identically under Stock and LXFI (calibrated so
/// the stock UDP TX path costs what §8.4's testbed implies).
pub const NET_TX_BASE_COST: u64 = 290;

/// Base protocol-stack cost per received packet, cycles (softirq +
/// protocol demux; same calibration rationale as [`NET_TX_BASE_COST`]).
pub const NET_RX_BASE_COST: u64 = 376;

/// The Figure 4 annotation for `net_device_ops.ndo_start_xmit`.
pub const NDO_START_XMIT_ANN: &str = "principal(dev) \
     pre(transfer(skb_caps(skb))) \
     post(if (return == -NETDEV_BUSY) transfer(skb_caps(skb)))";

/// Annotation for the NAPI poll callback.
pub const NAPI_POLL_ANN: &str = "principal(dev)";

/// Networking state.
#[derive(Debug, Default)]
pub struct NetState {
    /// Registered devices.
    pub devices: Vec<Word>,
    /// Packets the stack received from drivers (`netif_rx`).
    pub rx_queue: Vec<Word>,
    /// NAPI registrations: (device, kernel slot holding the poll pointer).
    pub napi: Vec<(Word, Word)>,
    /// Count of packets handed to `netif_rx` since boot.
    pub rx_total: u64,
}

/// Registers network exports, sigs, constants, and the skb iterator.
pub fn register(k: &mut KernelCpu) {
    k.rt.define_const("NETDEV_BUSY", NETDEV_BUSY);

    // The paper's skb_caps iterator (Figure 4, lines 51-54): WRITE over
    // the header and over [skb->data, +skb->len).
    k.rt.register_iterator(
        "skb_caps",
        Box::new(|mem, skb, out| {
            out.push(EmittedCap::Write {
                addr: skb,
                size: sk_buff::SIZE,
            });
            let data = mem
                .read_word((skb as i64 + sk_buff::DATA) as u64)
                .map_err(|e| e.to_string())?;
            let len = mem
                .read_word((skb as i64 + sk_buff::LEN) as u64)
                .map_err(|e| e.to_string())?;
            if data != 0 && len > 0 {
                out.push(EmittedCap::Write {
                    addr: data,
                    size: len,
                });
            }
            Ok(())
        }),
    );

    k.define_sig(
        "ndo_start_xmit",
        vec![
            Param::ptr("skb", "sk_buff"),
            Param::ptr("dev", "net_device"),
        ],
        NDO_START_XMIT_ANN,
    );
    k.define_sig(
        "napi_poll",
        vec![Param::ptr("dev", "net_device"), Param::scalar("budget")],
        NAPI_POLL_ANN,
    );
    k.define_sig(
        "qdisc_enqueue",
        vec![Param::ptr("skb", "sk_buff"), Param::ptr("q", "Qdisc")],
        // Guideline 7: assigning a scheduler to a device implicitly hands
        // the module the Qdisc — the annotation makes the grant explicit.
        "pre(check(write, skb, 1)) pre(copy(write, q, 64))",
    );

    k.export(
        "alloc_etherdev",
        vec![Param::scalar("priv_size")],
        // As in Linux, the driver-private area is appended to the
        // net_device allocation, so one WRITE capability covers both.
        Some("post(if (return != 0) transfer(write, return, 128 + priv_size))"),
        Arc::new(|k, args| {
            let priv_size = args.first().copied().unwrap_or(0);
            let dev = k.kstatic_alloc(net_device::SIZE + priv_size);
            if priv_size > 0 {
                k.mem.write_word(
                    (dev as i64 + net_device::PRIV) as u64,
                    dev + net_device::SIZE,
                )?;
            }
            Ok(dev)
        }),
    );

    k.export(
        "register_netdev",
        vec![Param::ptr("dev", "net_device")],
        Some("pre(check(write, dev, 128))"),
        Arc::new(|k, args| {
            k.net().devices.push(args[0]);
            Ok(0)
        }),
    );

    k.export(
        "netif_napi_add",
        vec![Param::ptr("dev", "net_device"), Param::scalar("poll")],
        Some("pre(check(write, dev, 128)) pre(check(call, poll))"),
        Arc::new(|k, args| {
            // As with PCI probe: the checked pointer lands in a
            // kernel-written slot, so dispatch takes the fast path.
            let slot = k.kstatic_alloc(8);
            k.mem.write_word(slot, args[1])?;
            k.net().napi.push((args[0], slot));
            Ok(0)
        }),
    );

    k.export(
        "alloc_skb",
        vec![Param::scalar("len")],
        Some("post(if (return != 0) transfer(skb_caps(return)))"),
        Arc::new(|k, args| {
            let len = args.first().copied().unwrap_or(0);
            match alloc_skb_raw(k, len) {
                Some(skb) => Ok(skb),
                None => Ok(0),
            }
        }),
    );

    k.export(
        "kfree_skb",
        vec![Param::ptr("skb", "sk_buff")],
        Some("pre(if (skb != 0) check(write, skb, 1))"),
        Arc::new(|k, args| {
            let skb = args[0];
            if skb != 0 {
                free_skb_raw(k, skb)?;
            }
            Ok(0)
        }),
    );

    k.export(
        "netif_rx",
        vec![Param::ptr("skb", "sk_buff")],
        Some("pre(transfer(skb_caps(skb)))"),
        Arc::new(|k, args| {
            use lxfi_machine::Env;
            k.consume(NET_RX_BASE_COST)?;
            let mut net = k.net();
            net.rx_queue.push(args[0]);
            net.rx_total += 1;
            Ok(0)
        }),
    );

    k.export(
        "napi_complete",
        vec![Param::ptr("dev", "net_device")],
        Some(""),
        Arc::new(|_k, _args| Ok(0)),
    );
}

/// Allocates an sk_buff header + payload buffer through this CPU's slab
/// magazines (the per-packet hot path: no lock on a magazine hit beyond
/// the owning shard's adopt).
pub fn alloc_skb_raw(k: &mut KernelCpu, len: u64) -> Option<Word> {
    let skb = k.kmalloc_cpu(sk_buff::SIZE)?;
    let data = if len > 0 {
        match k.kmalloc_cpu(len) {
            Some(d) => d,
            None => {
                k.slab().kfree(skb);
                return None;
            }
        }
    } else {
        0
    };
    k.mem.zero_range(skb, sk_buff::SIZE).ok()?;
    k.rt.note_zeroed(skb, sk_buff::SIZE);
    k.mem
        .write_word((skb as i64 + sk_buff::DATA) as u64, data)
        .ok()?;
    k.mem
        .write_word((skb as i64 + sk_buff::LEN) as u64, len)
        .ok()?;
    Some(skb)
}

/// Frees an sk_buff and its payload; strips all WRITE coverage. Both
/// frees are two-phase (sweep and zero before the slot re-enters the
/// allocator) so a concurrent allocation on another CPU can never be
/// granted a recycled address mid-sweep.
pub fn free_skb_raw(k: &mut KernelCpu, skb: Word) -> Result<(), Trap> {
    let data = k.mem.read_word((skb as i64 + sk_buff::DATA) as u64)?;
    if data != 0 {
        let freed = k.slab().begin_free(data);
        if let Some((_s, class)) = freed {
            k.rt.revoke_write_overlapping_everywhere(data, class);
            k.mem.zero_range(data, class)?;
            k.rt.note_zeroed(data, class);
            k.kfree_cpu(data, class);
        }
    }
    let freed = k.slab().begin_free(skb);
    if let Some((_s, class)) = freed {
        k.rt.revoke_write_overlapping_everywhere(skb, class);
        k.mem.zero_range(skb, class)?;
        k.rt.note_zeroed(skb, class);
        k.kfree_cpu(skb, class);
    }
    Ok(())
}

/// Builds the core kernel's KIR dispatch thunks — the code the kernel
/// rewriter instruments (§4.1). One program covers all subsystems.
pub fn kernel_thunks() -> Program {
    let mut pb = ProgramBuilder::new("kernel-thunks");
    let ndo = pb.sig("ndo_start_xmit", 2);
    let ioctl = pb.sig("proto_ioctl", 3);
    let sendmsg = pb.sig("proto_sendmsg", 3);
    let recvmsg = pb.sig("proto_recvmsg", 3);
    let bind = pb.sig("proto_bind", 2);
    let shm = pb.sig("shm_ops", 1);
    let qenq = pb.sig("qdisc_enqueue", 2);

    // dev_queue_xmit(skb, dev): the Figure 1 line 27 dispatch.
    pb.define("dev_queue_xmit", 2, 0, |f| {
        f.load8(R2, R1, net_device::DEV_OPS);
        f.load8(R3, R2, crate::types::net_device_ops::NDO_START_XMIT);
        f.call_ptr(R3, ndo, &[R0.into(), R1.into()], Some(R0));
        f.ret(R0);
    });

    // qdisc_run(q, skb): Guideline 7's implicit-transfer interface.
    pb.define("qdisc_run", 2, 0, |f| {
        f.load8(R2, R0, qdisc::ENQUEUE);
        f.call_ptr(R2, qenq, &[R1.into(), R0.into()], Some(R0));
        f.ret(R0);
    });

    // sock_* dispatchers: socket syscalls land here.
    pb.define("sock_ioctl", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::IOCTL);
        f.call_ptr(R4, ioctl, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_sendmsg", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::SENDMSG);
        f.call_ptr(R4, sendmsg, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_recvmsg", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::RECVMSG);
        f.call_ptr(R4, recvmsg, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_bind", 2, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::BIND);
        f.call_ptr(R4, bind, &[R0.into(), R1.into()], Some(R0));
        f.ret(R0);
    });

    // shm_invoke(shmid): the CAN BCM exploit's trigger — the kernel
    // invoking a function pointer reached from a shmid_kernel object.
    pb.define("shm_invoke", 1, 0, |f| {
        f.load8(R1, R0, crate::types::shmid_kernel::OPS);
        f.call_ptr(R1, shm, &[R0.into()], Some(R0));
        f.ret(R0);
    });

    pb.finish()
}

impl KernelCpu {
    /// Kernel-side packet transmission (what a socket write bottoms out
    /// in): allocates the packet, fills a trivial payload, and runs the
    /// `dev_queue_xmit` thunk. Returns the driver's status.
    pub fn net_send_packet(&mut self, dev: Word, len: u64) -> Result<Word, Trap> {
        use lxfi_machine::Env;
        self.consume(NET_TX_BASE_COST)?;
        let skb =
            alloc_skb_raw(self, len).ok_or_else(|| Trap::BadRef(format!("alloc_skb({len})")))?;
        self.run_kernel_thunk("dev_queue_xmit", &[skb, dev])
    }

    /// Simulates `count` received frames: raises an interrupt and invokes
    /// the device's NAPI poll callback, which pulls frames from the
    /// device and feeds them to `netif_rx`. Returns packets delivered —
    /// the poll callback's own return value, not a shared-counter delta,
    /// so concurrent RX on other CPUs is never misattributed to this
    /// call.
    pub fn net_deliver_rx(&mut self, dev: Word, count: u64) -> Result<u64, Trap> {
        let slot = self
            .net()
            .napi
            .iter()
            .find(|&&(d, _)| d == dev)
            .map(|&(_, s)| s)
            .ok_or_else(|| Trap::BadRef("no NAPI registration".into()))?;
        self.interrupt(|k| k.indirect_call(slot, "napi_poll", &[dev, count]))
    }

    /// Drains and frees packets queued by `netif_rx` (the protocol layer
    /// consuming driver-delivered frames). Returns the number drained.
    pub fn net_drain_rx(&mut self) -> Result<u64, Trap> {
        let skbs = std::mem::take(&mut self.net().rx_queue);
        let n = skbs.len() as u64;
        for skb in skbs {
            free_skb_raw(self, skb)?;
        }
        Ok(n)
    }

    /// A device's transmit counter (drivers increment it; tests read it).
    pub fn net_tx_packets(&self, dev: Word) -> u64 {
        self.mem
            .read_word((dev as i64 + net_device::TX_PACKETS) as u64)
            .unwrap_or(0)
    }
}
