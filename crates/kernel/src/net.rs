//! The network stack: sk_buffs, net devices, NAPI, and the kernel's
//! transmit dispatch thunk (the running example of Figures 1 and 4).
//!
//! The interesting annotations:
//!
//! - `ndo_start_xmit` (function-pointer type on `net_device_ops`):
//!   `principal(dev)` names the callee principal by the device pointer;
//!   `pre(transfer(skb_caps(skb)))` hands the packet's capabilities to
//!   the driver; the `post(if (return == -NETDEV_BUSY) ...)` clause gives
//!   them back when the driver rejects the packet.
//! - `netif_rx`: `pre(transfer(skb_caps(skb)))` — once a received packet
//!   is handed to the kernel, the driver (and anyone it shared with)
//!   loses access (§3.3).
//! - `skb_caps` is the paper's example capability iterator: it walks the
//!   `sk_buff` header and emits WRITE capabilities for the header and the
//!   payload buffer.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_core::runtime::EmittedCap;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Program, ProgramBuilder, Trap, Word};

use crate::deferred::{DeferredId, DeferredKind};
use crate::kernel::KernelCpu;
use crate::types::{net_device, pci_dev, qdisc, sk_buff, sock};

/// `NETDEV_BUSY` — drivers return `-NETDEV_BUSY` to push back.
pub const NETDEV_BUSY: i64 = 16;

/// Base protocol-stack cost per transmitted packet, cycles. The KIR
/// interpreter only executes the driver and dispatch code; the socket
/// layer, qdisc, and checksum work of a real kernel is represented by
/// this charge, applied identically under Stock and LXFI (calibrated so
/// the stock UDP TX path costs what §8.4's testbed implies).
pub const NET_TX_BASE_COST: u64 = 290;

/// Base protocol-stack cost per received packet, cycles (softirq +
/// protocol demux; same calibration rationale as [`NET_TX_BASE_COST`]).
pub const NET_RX_BASE_COST: u64 = 376;

/// The Figure 4 annotation for `net_device_ops.ndo_start_xmit`.
pub const NDO_START_XMIT_ANN: &str = "principal(dev) \
     pre(transfer(skb_caps(skb))) \
     post(if (return == -NETDEV_BUSY) transfer(skb_caps(skb)))";

/// Annotation for the NAPI poll callback.
pub const NAPI_POLL_ANN: &str = "principal(dev)";

// --------------------------------------------------- RX MMIO contract
//
// The receive half of the simulated e1000's 4 KiB MMIO window (the TX
// half — descriptor ring at 256, FIFO at 1280 — is laid out by the
// driver; see `modules/src/e1000.rs`). The RX descriptor ring is a
// hardware-owned producer/consumer queue: the wire (`net_rx_wire`)
// writes frames at `head` and advances the head register; the driver's
// poll loop consumes at `tail` and stores the tail register back — a
// guarded MMIO store, which is what makes the RX hot loop an LXFI
// measurement and not just a simulation detail.

/// MMIO offset of the RX head register (hardware-written).
pub const RX_HEAD_REG: u64 = 32;
/// MMIO offset of the RX tail register (driver-written, guarded).
pub const RX_TAIL_REG: u64 = 40;
/// MMIO offset of the RX descriptor ring.
pub const RX_RING_OFFSET: u64 = 2048;
/// RX descriptor slots (ring occupies `2048..4096` of the window).
pub const RX_RING_SLOTS: u64 = 16;
/// Bytes per RX descriptor slot: 8-byte frame length, then frame data.
pub const RX_SLOT_SIZE: u64 = 128;
/// Per-dispatch NAPI poll budget (frames per bottom-half invocation).
pub const NAPI_BUDGET: u64 = 16;
/// Wire frame size (minimum Ethernet frame, as the TX side uses).
pub const RX_FRAME_BYTES: u64 = 60;
/// Copybreak: the driver copies this many bytes of each frame into the
/// freshly allocated skb instead of remapping the ring buffer.
pub const RX_COPYBREAK: u64 = 32;

/// One bound RX ring: the per-device state the kernel (as "hardware")
/// keeps about a device's receive path. Established at PCI probe time
/// by [`KernelCpu::net_rx_bind`].
#[derive(Debug)]
pub struct RxRing {
    /// The net device.
    pub dev: Word,
    /// The device's MMIO window base.
    pub mmio: Word,
    /// The device's NAPI deferred-call slot.
    pub deferred: DeferredId,
    /// Interrupt mask: set when the RX interrupt asserts, cleared by
    /// `napi_complete`. While masked, new frames land on the ring but
    /// assert no further interrupt (NAPI's point).
    pub masked: bool,
    /// Producer mirror of the head register.
    pub head: u64,
    /// Next wire sequence number (stamped into each injected frame).
    pub wire_seq: u64,
    /// Frames dropped because the ring was full (overrun).
    pub dropped: u64,
}

/// Networking state.
#[derive(Debug, Default)]
pub struct NetState {
    /// Registered devices.
    pub devices: Vec<Word>,
    /// Packets the stack received from drivers (`netif_rx`).
    pub rx_queue: Vec<Word>,
    /// NAPI registrations: (device, kernel slot holding the poll pointer).
    pub napi: Vec<(Word, Word)>,
    /// Count of packets handed to `netif_rx` since boot.
    pub rx_total: u64,
    /// Bound RX rings, one per probed NAPI device.
    pub rx: Vec<RxRing>,
    /// `alloc_etherdev` allocations: (device, total bytes including the
    /// appended priv area). Consulted by
    /// [`KernelCpu::net_remove_dead_device`] to scrub the exact range.
    pub netdev_allocs: Vec<(Word, u64)>,
}

impl NetState {
    /// The kernel slot holding a device's checked NAPI poll pointer.
    pub fn poll_slot(&self, dev: Word) -> Option<Word> {
        self.napi.iter().find(|&&(d, _)| d == dev).map(|&(_, s)| s)
    }

    /// The bound RX ring for a device.
    pub fn rx_ring(&self, dev: Word) -> Option<&RxRing> {
        self.rx.iter().find(|r| r.dev == dev)
    }

    /// Total frames dropped to ring overruns, across devices.
    pub fn rx_dropped(&self) -> u64 {
        self.rx.iter().map(|r| r.dropped).sum()
    }
}

/// Registers network exports, sigs, constants, and the skb iterator.
pub fn register(k: &mut KernelCpu) {
    k.rt.define_const("NETDEV_BUSY", NETDEV_BUSY);

    // The paper's skb_caps iterator (Figure 4, lines 51-54): WRITE over
    // the header and over [skb->data, +skb->len).
    k.rt.register_iterator(
        "skb_caps",
        Box::new(|mem, skb, out| {
            out.push(EmittedCap::Write {
                addr: skb,
                size: sk_buff::SIZE,
            });
            let data = mem
                .read_word((skb as i64 + sk_buff::DATA) as u64)
                .map_err(|e| e.to_string())?;
            let len = mem
                .read_word((skb as i64 + sk_buff::LEN) as u64)
                .map_err(|e| e.to_string())?;
            if data != 0 && len > 0 {
                out.push(EmittedCap::Write {
                    addr: data,
                    size: len,
                });
            }
            Ok(())
        }),
    );

    k.define_sig(
        "ndo_start_xmit",
        vec![
            Param::ptr("skb", "sk_buff"),
            Param::ptr("dev", "net_device"),
        ],
        NDO_START_XMIT_ANN,
    );
    k.define_sig(
        "napi_poll",
        vec![Param::ptr("dev", "net_device"), Param::scalar("budget")],
        NAPI_POLL_ANN,
    );
    k.define_sig(
        "qdisc_enqueue",
        vec![Param::ptr("skb", "sk_buff"), Param::ptr("q", "Qdisc")],
        // Guideline 7: assigning a scheduler to a device implicitly hands
        // the module the Qdisc — the annotation makes the grant explicit.
        "pre(check(write, skb, 1)) pre(copy(write, q, 64))",
    );

    k.export(
        "alloc_etherdev",
        vec![Param::scalar("priv_size")],
        // As in Linux, the driver-private area is appended to the
        // net_device allocation, so one WRITE capability covers both.
        Some("post(if (return != 0) transfer(write, return, 128 + priv_size))"),
        Arc::new(|k, args| {
            let priv_size = args.first().copied().unwrap_or(0);
            let dev = k.kstatic_alloc(net_device::SIZE + priv_size);
            if priv_size > 0 {
                k.mem.write_word(
                    (dev as i64 + net_device::PRIV) as u64,
                    dev + net_device::SIZE,
                )?;
            }
            k.net()
                .netdev_allocs
                .push((dev, net_device::SIZE + priv_size));
            Ok(dev)
        }),
    );

    k.export(
        "register_netdev",
        vec![Param::ptr("dev", "net_device")],
        Some("pre(check(write, dev, 128))"),
        Arc::new(|k, args| {
            k.net().devices.push(args[0]);
            Ok(0)
        }),
    );

    k.export(
        "netif_napi_add",
        vec![Param::ptr("dev", "net_device"), Param::scalar("poll")],
        Some("pre(check(write, dev, 128)) pre(check(call, poll))"),
        Arc::new(|k, args| {
            // As with PCI probe: the checked pointer lands in a
            // kernel-written slot, so dispatch takes the fast path.
            let slot = k.kstatic_alloc(8);
            k.mem.write_word(slot, args[1])?;
            k.net().napi.push((args[0], slot));
            Ok(0)
        }),
    );

    k.export(
        "alloc_skb",
        vec![Param::scalar("len")],
        Some("post(if (return != 0) transfer(skb_caps(return)))"),
        Arc::new(|k, args| {
            let len = args.first().copied().unwrap_or(0);
            match alloc_skb_raw(k, len) {
                Some(skb) => Ok(skb),
                None => Ok(0),
            }
        }),
    );

    k.export(
        "kfree_skb",
        vec![Param::ptr("skb", "sk_buff")],
        Some("pre(if (skb != 0) check(write, skb, 1))"),
        Arc::new(|k, args| {
            let skb = args[0];
            if skb != 0 {
                free_skb_raw(k, skb)?;
            }
            Ok(0)
        }),
    );

    k.export(
        "netif_rx",
        vec![Param::ptr("skb", "sk_buff")],
        Some("pre(transfer(skb_caps(skb)))"),
        Arc::new(|k, args| {
            use lxfi_machine::Env;
            // FaultSite::PollGuard: a synthetic guard failure against
            // the skb mid-poll. The pre-transfer already ran, so the
            // kernel owns the packet — free it on the error path like
            // the protocol layer dropping a malformed frame, keeping
            // the slab leak-balanced under chaos.
            if let Err(v) = k.inject_poll_guard(args[0]) {
                free_skb_raw(k, args[0])?;
                return Err(v);
            }
            k.consume(NET_RX_BASE_COST)?;
            let mut net = k.net();
            net.rx_queue.push(args[0]);
            net.rx_total += 1;
            Ok(0)
        }),
    );

    k.export(
        "napi_complete",
        vec![Param::ptr("dev", "net_device")],
        Some(""),
        Arc::new(|k, args| {
            // Poll done with budget to spare: unmask the device's RX
            // interrupt so the next wire frame asserts again.
            let mut net = k.net();
            if let Some(r) = net.rx.iter_mut().find(|r| r.dev == args[0]) {
                r.masked = false;
            }
            Ok(0)
        }),
    );
}

/// Allocates an sk_buff header + payload buffer through this CPU's slab
/// magazines (the per-packet hot path: no lock on a magazine hit beyond
/// the owning shard's adopt).
pub fn alloc_skb_raw(k: &mut KernelCpu, len: u64) -> Option<Word> {
    let skb = k.kmalloc_cpu(sk_buff::SIZE)?;
    let data = if len > 0 {
        match k.kmalloc_cpu(len) {
            Some(d) => d,
            None => {
                k.slab().kfree(skb);
                return None;
            }
        }
    } else {
        0
    };
    k.mem.zero_range(skb, sk_buff::SIZE).ok()?;
    k.rt.note_zeroed(skb, sk_buff::SIZE);
    k.mem
        .write_word((skb as i64 + sk_buff::DATA) as u64, data)
        .ok()?;
    k.mem
        .write_word((skb as i64 + sk_buff::LEN) as u64, len)
        .ok()?;
    Some(skb)
}

/// Frees an sk_buff and its payload; strips all WRITE coverage. Both
/// frees are two-phase (sweep and zero before the slot re-enters the
/// allocator) so a concurrent allocation on another CPU can never be
/// granted a recycled address mid-sweep.
pub fn free_skb_raw(k: &mut KernelCpu, skb: Word) -> Result<(), Trap> {
    let data = k.mem.read_word((skb as i64 + sk_buff::DATA) as u64)?;
    if data != 0 {
        let freed = k.slab().begin_free(data);
        if let Some((_s, class)) = freed {
            k.rt.revoke_write_overlapping_everywhere(data, class);
            k.mem.zero_range(data, class)?;
            k.rt.note_zeroed(data, class);
            k.kfree_cpu(data, class);
        }
    }
    let freed = k.slab().begin_free(skb);
    if let Some((_s, class)) = freed {
        k.rt.revoke_write_overlapping_everywhere(skb, class);
        k.mem.zero_range(skb, class)?;
        k.rt.note_zeroed(skb, class);
        k.kfree_cpu(skb, class);
    }
    Ok(())
}

/// Builds the core kernel's KIR dispatch thunks — the code the kernel
/// rewriter instruments (§4.1). One program covers all subsystems.
pub fn kernel_thunks() -> Program {
    let mut pb = ProgramBuilder::new("kernel-thunks");
    let ndo = pb.sig("ndo_start_xmit", 2);
    let ioctl = pb.sig("proto_ioctl", 3);
    let sendmsg = pb.sig("proto_sendmsg", 3);
    let recvmsg = pb.sig("proto_recvmsg", 3);
    let bind = pb.sig("proto_bind", 2);
    let shm = pb.sig("shm_ops", 1);
    let qenq = pb.sig("qdisc_enqueue", 2);

    // dev_queue_xmit(skb, dev): the Figure 1 line 27 dispatch.
    pb.define("dev_queue_xmit", 2, 0, |f| {
        f.load8(R2, R1, net_device::DEV_OPS);
        f.load8(R3, R2, crate::types::net_device_ops::NDO_START_XMIT);
        f.call_ptr(R3, ndo, &[R0.into(), R1.into()], Some(R0));
        f.ret(R0);
    });

    // qdisc_run(q, skb): Guideline 7's implicit-transfer interface.
    pb.define("qdisc_run", 2, 0, |f| {
        f.load8(R2, R0, qdisc::ENQUEUE);
        f.call_ptr(R2, qenq, &[R1.into(), R0.into()], Some(R0));
        f.ret(R0);
    });

    // sock_* dispatchers: socket syscalls land here.
    pb.define("sock_ioctl", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::IOCTL);
        f.call_ptr(R4, ioctl, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_sendmsg", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::SENDMSG);
        f.call_ptr(R4, sendmsg, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_recvmsg", 3, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::RECVMSG);
        f.call_ptr(R4, recvmsg, &[R0.into(), R1.into(), R2.into()], Some(R0));
        f.ret(R0);
    });
    pb.define("sock_bind", 2, 0, |f| {
        f.load8(R3, R0, sock::OPS);
        f.load8(R4, R3, crate::types::proto_ops::BIND);
        f.call_ptr(R4, bind, &[R0.into(), R1.into()], Some(R0));
        f.ret(R0);
    });

    // shm_invoke(shmid): the CAN BCM exploit's trigger — the kernel
    // invoking a function pointer reached from a shmid_kernel object.
    pb.define("shm_invoke", 1, 0, |f| {
        f.load8(R1, R0, crate::types::shmid_kernel::OPS);
        f.call_ptr(R1, shm, &[R0.into()], Some(R0));
        f.ret(R0);
    });

    pb.finish()
}

impl KernelCpu {
    /// Kernel-side packet transmission (what a socket write bottoms out
    /// in): allocates the packet, fills a trivial payload, and runs the
    /// `dev_queue_xmit` thunk. Returns the driver's status.
    pub fn net_send_packet(&mut self, dev: Word, len: u64) -> Result<Word, Trap> {
        use lxfi_machine::Env;
        self.consume(NET_TX_BASE_COST)?;
        let skb =
            alloc_skb_raw(self, len).ok_or_else(|| Trap::BadRef(format!("alloc_skb({len})")))?;
        self.run_kernel_thunk("dev_queue_xmit", &[skb, dev])
    }

    /// Binds a probed NAPI device's RX ring: records the MMIO window
    /// the driver and the "hardware" share and registers the device's
    /// deferred-call slot. Called by `pci_probe_all` for each net
    /// device a successful probe registered; returns `false` (and binds
    /// nothing) for devices without a NAPI registration or MMIO window.
    pub fn net_rx_bind(&mut self, dev: Word, pcidev: Word) -> bool {
        if self.net().poll_slot(dev).is_none() {
            return false;
        }
        let mmio = self
            .mem
            .read_word((pcidev as i64 + pci_dev::MMIO_BASE) as u64)
            .unwrap_or(0);
        if mmio == 0 {
            return false;
        }
        if self.net().rx.iter().any(|r| r.dev == dev) {
            return true; // re-probe of a bound device
        }
        // Device reset, as a real probe would: zero the RX cursor
        // registers so a ring inherited from a previous binding of this
        // pci_dev (a crashed driver's instance) does not read as full.
        if self.mem.write_word(mmio + RX_HEAD_REG, 0).is_err()
            || self.mem.write_word(mmio + RX_TAIL_REG, 0).is_err()
        {
            return false;
        }
        let id = self.deferred_register(dev, DeferredKind::NapiPoll);
        let mut net = self.net();
        net.rx.push(RxRing {
            dev,
            mmio,
            deferred: id,
            masked: false,
            head: 0,
            wire_seq: 0,
            dropped: 0,
        });
        true
    }

    /// Operator-side teardown of a dead driver's published device (the
    /// inverse of probe-time registration): unpublishes the net_device
    /// from the device list, its NAPI registration, and its RX ring,
    /// then scrubs residual WRITE coverage over the device allocation —
    /// the dead tenant's `alloc_etherdev` grant, parked on the
    /// tombstone since quarantine. Tombstone poison lifts at legitimate
    /// reuse, and "the operator unplugs the device" is exactly that
    /// point. Returns whether the device was known.
    pub fn net_remove_dead_device(&mut self, dev: Word) -> bool {
        let (found, size) = {
            let mut net = self.net();
            let found = net.devices.contains(&dev);
            net.devices.retain(|&d| d != dev);
            net.napi.retain(|&(d, _)| d != dev);
            net.rx.retain(|r| r.dev != dev);
            let size = net
                .netdev_allocs
                .iter()
                .find(|&&(d, _)| d == dev)
                .map(|&(_, s)| s)
                .unwrap_or(net_device::SIZE);
            net.netdev_allocs.retain(|&(d, _)| d != dev);
            (found, size)
        };
        self.rt.revoke_write_overlapping_everywhere(dev, size);
        found
    }

    /// The simulated wire: DMAs up to `count` frames onto a device's RX
    /// ring and asserts the RX interrupt (top half) — which only marks
    /// the device's NAPI poll *pending* on this CPU's deferred-call
    /// slot; the poll itself runs at the next quiescent point (or an
    /// explicit [`KernelCpu::net_rx_flush`]). Frames that do not fit
    /// (head would lap the driver's tail) are dropped and counted, as
    /// real hardware drops on overrun. Returns frames accepted.
    ///
    /// One wire per device: concurrent producers on one ring are not
    /// modeled (matches how the workloads drive per-CPU devices).
    pub fn net_rx_wire(&mut self, dev: Word, count: u64) -> Result<u64, Trap> {
        let (mmio, mut head, mut seq) = {
            let net = self.net();
            let r = net
                .rx_ring(dev)
                .ok_or_else(|| Trap::BadRef("no RX ring bound".into()))?;
            (r.mmio, r.head, r.wire_seq)
        };
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for _ in 0..count {
            // The driver's consumer cursor, read fresh per frame — a
            // concurrently running poll frees slots as it advances.
            let tail = self.mem.read_word(mmio + RX_TAIL_REG)?;
            if head.wrapping_sub(tail) >= RX_RING_SLOTS {
                dropped += 1;
                continue;
            }
            let slot = mmio + RX_RING_OFFSET + (head % RX_RING_SLOTS) * RX_SLOT_SIZE;
            // Descriptor: length, then frame data. Word 0 of the frame
            // is the broadcast dst the driver overwrites with its eth
            // header; word 1 carries the wire sequence number the
            // replay oracles (and the echo server) track end-to-end.
            self.mem.write_word(slot, RX_FRAME_BYTES)?;
            self.mem.write_word(slot + 8, 0x00ff_ffff)?;
            self.mem.write_word(slot + 16, seq)?;
            seq += 1;
            head += 1;
            self.mem.write_word(mmio + RX_HEAD_REG, head)?;
            accepted += 1;
        }
        let assert_irq = {
            let mut net = self.net();
            let Some(r) = net.rx.iter_mut().find(|r| r.dev == dev) else {
                return Err(Trap::BadRef("RX ring unbound mid-wire".into()));
            };
            r.head = head;
            r.wire_seq = seq;
            r.dropped += dropped;
            if accepted > 0 && !r.masked {
                // Interrupt assertion: mask until napi_complete.
                r.masked = true;
                true
            } else {
                false
            }
        };
        if assert_irq {
            let id = self.net().rx_ring(dev).expect("bound above").deferred;
            self.deferred_schedule(id, NAPI_BUDGET);
        }
        Ok(accepted)
    }

    /// Explicitly dispatches a device's pending NAPI polls to
    /// completion (caller-driven flush; the ambient alternative is the
    /// quiescent-point drain in `enter`). Returns frames delivered —
    /// the sum of the poll callbacks' own return values, not a
    /// shared-counter delta, so concurrent RX on other CPUs is never
    /// misattributed to this call.
    pub fn net_rx_flush(&mut self, dev: Word) -> Result<u64, Trap> {
        let id = self.net().rx_ring(dev).map(|r| r.deferred);
        let Some(id) = id else { return Ok(0) };
        let mut delivered = 0;
        while let Some(polled) = self.deferred_dispatch_one(id)? {
            delivered += polled;
        }
        Ok(delivered)
    }

    /// Simulates `count` received frames end-to-end: wires them onto
    /// the device's RX ring (asserting the interrupt) and immediately
    /// flushes the resulting polls — the synchronous convenience the
    /// TX-style workloads use. Returns packets delivered.
    ///
    /// Devices without a bound RX ring (NAPI registered outside the PCI
    /// probe path) fall back to one direct poll dispatch with `count`
    /// as the budget, preserving the legacy caller-driven contract.
    pub fn net_deliver_rx(&mut self, dev: Word, count: u64) -> Result<u64, Trap> {
        if self.net().rx_ring(dev).is_some() {
            self.net_rx_wire(dev, count)?;
            return self.net_rx_flush(dev);
        }
        let slot = self
            .net()
            .poll_slot(dev)
            .ok_or_else(|| Trap::BadRef("no NAPI registration".into()))?;
        self.interrupt(|k| k.indirect_call(slot, "napi_poll", &[dev, count]))
    }

    /// Drains and frees packets queued by `netif_rx` (the protocol layer
    /// consuming driver-delivered frames). Returns the number drained.
    pub fn net_drain_rx(&mut self) -> Result<u64, Trap> {
        let skbs = std::mem::take(&mut self.net().rx_queue);
        let n = skbs.len() as u64;
        for skb in skbs {
            free_skb_raw(self, skb)?;
        }
        Ok(n)
    }

    /// A device's transmit counter (drivers increment it; tests read it).
    pub fn net_tx_packets(&self, dev: Word) -> u64 {
        self.mem
            .read_word((dev as i64 + net_device::TX_PACKETS) as u64)
            .unwrap_or(0)
    }
}
