//! Process table, credentials, and the `pid_hash` used by the rootkit
//! experiment (§8.1).
//!
//! Tasks live in simulated memory so that their fields (notably `uid`)
//! are concrete attack targets: the paper's motivating `spin_lock_init`
//! attack (§1) tricks the kernel into zeroing the uid field of `current`.

use lxfi_machine::{AddressSpace, Word};

/// Field offsets of the simulated `struct task_struct`.
pub mod task {
    /// Process id.
    pub const PID: i64 = 0;
    /// Effective uid — **0 means root**; the prize of every exploit here.
    pub const UID: i64 = 8;
    /// `clear_child_tid`: user-supplied pointer the kernel zeroes in
    /// `do_exit` (CVE-2010-4258's primitive).
    pub const CLEAR_CHILD_TID: i64 = 16;
    /// Exit flag.
    pub const EXITED: i64 = 24;
    /// Total size.
    pub const SIZE: u64 = 64;
}

/// The process table.
#[derive(Debug)]
pub struct ProcessTable {
    base: Word,
    tasks: Vec<Word>,
    /// pids present in the `pid_hash` (what `ps` lists). A task can be
    /// scheduled yet missing here — that is a hidden (rootkit) process.
    pid_hash: Vec<u64>,
    current: usize,
    next_pid: u64,
}

impl ProcessTable {
    /// Creates the table at `base` with an initial root task (pid 1) and
    /// an unprivileged task (pid 1000, uid 1000) as `current`.
    pub fn new(mem: &AddressSpace, base: Word) -> Self {
        let mut t = ProcessTable {
            base,
            tasks: Vec::new(),
            pid_hash: Vec::new(),
            current: 0,
            next_pid: 1,
        };
        let init = t.spawn(mem, 0);
        debug_assert_eq!(t.pid_of(mem, init), 1);
        t.next_pid = 1000;
        let user = t.spawn(mem, 1000);
        t.current = t.tasks.iter().position(|&a| a == user).unwrap();
        t
    }

    /// Creates a task with the given uid; returns its `task_struct`
    /// address. The task is linked into `pid_hash`.
    pub fn spawn(&mut self, mem: &AddressSpace, uid: u64) -> Word {
        let addr = self.base + self.tasks.len() as u64 * task::SIZE;
        mem.map_range(addr, task::SIZE);
        let pid = self.next_pid;
        self.next_pid += 1;
        mem.write_word((addr as i64 + task::PID) as u64, pid)
            .unwrap();
        mem.write_word((addr as i64 + task::UID) as u64, uid)
            .unwrap();
        mem.write_word((addr as i64 + task::CLEAR_CHILD_TID) as u64, 0)
            .unwrap();
        self.tasks.push(addr);
        self.pid_hash.push(pid);
        addr
    }

    /// Address of the current task's `task_struct`.
    pub fn current_task(&self) -> Word {
        self.tasks[self.current]
    }

    /// Reads a task's pid.
    pub fn pid_of(&self, mem: &AddressSpace, t: Word) -> u64 {
        mem.read_word((t as i64 + task::PID) as u64).unwrap()
    }

    /// Reads a task's uid.
    pub fn uid_of(&self, mem: &AddressSpace, t: Word) -> u64 {
        mem.read_word((t as i64 + task::UID) as u64).unwrap()
    }

    /// Reads the current task's uid — the observable for privilege
    /// escalation tests.
    pub fn current_uid(&self, mem: &AddressSpace) -> u64 {
        self.uid_of(mem, self.current_task())
    }

    /// `detach_pid`: unlinks a task from the pid hash. The task keeps
    /// running but is no longer visible to `ps` — the rootkit primitive.
    pub fn detach_pid(&mut self, mem: &AddressSpace, t: Word) {
        let pid = self.pid_of(mem, t);
        self.pid_hash.retain(|&p| p != pid);
    }

    /// What `ps` would list: pids present in the hash.
    pub fn visible_pids(&self) -> &[u64] {
        &self.pid_hash
    }

    /// All scheduled tasks (scheduler view, independent of `pid_hash`).
    pub fn all_tasks(&self) -> &[Word] {
        &self.tasks
    }

    /// True if some runnable task is missing from `pid_hash` — i.e. a
    /// hidden process exists.
    pub fn has_hidden_process(&self, mem: &AddressSpace) -> bool {
        self.tasks
            .iter()
            .any(|&t| !self.pid_hash.contains(&self.pid_of(mem, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProcessTable, AddressSpace) {
        let mem = AddressSpace::new();
        let t = ProcessTable::new(&mem, crate::layout::KSTATIC_BASE);
        (t, mem)
    }

    #[test]
    fn current_task_is_unprivileged() {
        let (t, mem) = setup();
        assert_eq!(t.current_uid(&mem), 1000);
        assert_eq!(t.pid_of(&mem, t.current_task()), 1000);
    }

    #[test]
    fn uid_field_is_a_real_memory_location() {
        let (t, mem) = setup();
        let uid_addr = (t.current_task() as i64 + task::UID) as u64;
        // The spin_lock_init attack: zeroing this address grants root.
        mem.write_word(uid_addr, 0).unwrap();
        assert_eq!(t.current_uid(&mem), 0);
    }

    #[test]
    fn detach_pid_hides_a_running_process() {
        let (mut t, mem) = setup();
        let victim = t.spawn(&mem, 1000);
        assert!(!t.has_hidden_process(&mem));
        t.detach_pid(&mem, victim);
        assert!(t.has_hidden_process(&mem));
        assert!(t.all_tasks().contains(&victim), "still scheduled");
        let pid = t.pid_of(&mem, victim);
        assert!(!t.visible_pids().contains(&pid), "not listed by ps");
    }
}
