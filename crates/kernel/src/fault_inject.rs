//! Deterministic seeded fault injection — the chaos harness's hammer.
//!
//! A [`FaultPlan`] names modules, sites, and rates; each CPU armed with
//! the plan ([`crate::KernelCpu::set_fault_plan`]) draws from its own
//! xorshift64* stream (seeded by `plan.seed` and the CPU's thread id),
//! so a chaos run is reproducible bit-for-bit: no wall clock, no OS
//! randomness. Injection only fires while an **isolated** module
//! executes — a stock module has no guards to fail — and the injected
//! traps flow through the ordinary classification in `Kernel::enter`,
//! so they exercise the exact quarantine/recovery machinery a genuine
//! module bug would.

use std::sync::Arc;

/// Where a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The write guard reports a synthetic policy violation for the
    /// real access (a "guard failure").
    GuardWrite,
    /// The guarded store is redirected at protected kernel data, so the
    /// *real* guard machinery raises the violation (a "rogue store").
    RogueStore,
    /// The fuel meter reports exhaustion (a runaway loop).
    Fuel,
    /// `kmalloc`/`kzalloc` return NULL (allocation failure — exercises
    /// the module's error paths, which may themselves then trap).
    Alloc,
    /// `netif_rx` reports a synthetic policy violation against the skb
    /// the poll loop is delivering — a guard failure *inside* a NAPI
    /// bottom half, so quarantine fires mid-poll with frames still on
    /// the RX ring.
    PollGuard,
    /// The fuel meter reports exhaustion, but only while the CPU is
    /// dispatching a deferred call (`in_deferred`) — a runaway bottom
    /// half, distinct from [`FaultSite::Fuel`] which can fire anywhere.
    DeferredFuel,
}

/// One injection rule: while `module` executes, fire at `site` once
/// every `one_in` opportunities on average (deterministically, from
/// the seeded stream).
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Name of the (isolated) module to target.
    pub module: String,
    /// Where to inject.
    pub site: FaultSite,
    /// Fire when a draw lands on 0 mod `one_in` (1 = every time).
    pub one_in: u64,
}

/// A complete injection plan, shared read-only across CPUs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Base seed for every CPU's stream.
    pub seed: u64,
    /// The rules; all are consulted per opportunity.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with one rule.
    pub fn single(seed: u64, module: &str, site: FaultSite, one_in: u64) -> Self {
        FaultPlan {
            seed,
            rules: vec![FaultRule {
                module: module.to_string(),
                site,
                one_in,
            }],
        }
    }
}

/// Per-CPU injector state: the shared plan plus this CPU's stream.
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    state: u64,
}

impl FaultInjector {
    /// Builds the injector for one CPU lane; distinct lanes get
    /// decorrelated (but deterministic) streams.
    pub(crate) fn new(plan: Arc<FaultPlan>, lane: u64) -> Self {
        // Never zero (xorshift's absorbing state); splitmix-style lane
        // decorrelation keeps CPU 0 and CPU 1 from injecting in lockstep.
        let state = (plan.seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        FaultInjector { plan, state }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — small, fast, and entirely ours (no dependency).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Whether a rule fires for (module, site) at this opportunity. One
    /// draw is consumed per *matching* rule, so unrelated sites do not
    /// perturb each other's streams.
    pub(crate) fn fires(&mut self, module: &str, site: FaultSite) -> bool {
        let mut hit = false;
        for i in 0..self.plan.rules.len() {
            let matches = {
                let r = &self.plan.rules[i];
                r.site == site && r.module == module
            };
            if matches {
                let one_in = self.plan.rules[i].one_in.max(1);
                hit |= self.next().is_multiple_of(one_in);
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_lane_decorrelated() {
        let plan = Arc::new(FaultPlan::single(42, "m", FaultSite::Fuel, 3));
        let draw = |lane: u64| -> Vec<bool> {
            let mut inj = FaultInjector::new(Arc::clone(&plan), lane);
            (0..64).map(|_| inj.fires("m", FaultSite::Fuel)).collect()
        };
        assert_eq!(draw(0), draw(0), "same lane, same stream");
        assert_ne!(draw(0), draw(1), "lanes decorrelate");
        let hits = draw(0).iter().filter(|&&h| h).count();
        assert!(hits > 0, "a 1-in-3 rule fires within 64 draws");
    }

    #[test]
    fn unmatched_rules_do_not_fire_or_advance() {
        let plan = Arc::new(FaultPlan::single(7, "target", FaultSite::Alloc, 1));
        let mut inj = FaultInjector::new(Arc::clone(&plan), 0);
        assert!(!inj.fires("other", FaultSite::Alloc), "wrong module");
        assert!(!inj.fires("target", FaultSite::Fuel), "wrong site");
        let before = inj.state;
        assert!(!inj.fires("other", FaultSite::Alloc));
        assert_eq!(inj.state, before, "non-matching rules consume no draw");
        assert!(inj.fires("target", FaultSite::Alloc), "1-in-1 always fires");
    }
}
