//! Core kernel exports: allocator, locks, memory and user-space copies.
//!
//! Annotations here are the canonical examples from the paper:
//!
//! - `kmalloc` grants the module a WRITE capability **for the actual
//!   allocation size** (`post(if (return != 0) transfer(write, return,
//!   size))`) — this is precisely what defeats the CAN BCM integer
//!   overflow (§8.1): the module asked for a small (wrapped) size, so
//!   that is all it can write.
//! - `spin_lock_init` demands WRITE over the lock
//!   (`pre(check(write, lock))`), killing the §1 attack of passing the
//!   address of `current->uid` as a "lock".
//! - `kfree` revokes every outstanding WRITE capability overlapping the
//!   freed object, so no principal retains access to recycled memory.

use std::sync::Arc;

use lxfi_core::iface::Param;
use lxfi_machine::{Trap, Width};

use crate::kernel::KernelCpu;
use crate::layout::is_user_addr;

/// Cycle cost charged per native kernel call (base kernel work).
pub const NATIVE_CALL_COST: u64 = 40;

/// Extra per-byte cost of kernel memory copies.
pub const COPY_BYTE_COST_NUM: u64 = 1;
/// Divisor for per-byte copy cost (1/4 cycle per byte).
pub const COPY_BYTE_COST_DEN: u64 = 4;

fn charge(k: &mut KernelCpu, bytes: u64) -> Result<(), Trap> {
    use lxfi_machine::Env;
    k.consume(NATIVE_CALL_COST + bytes * COPY_BYTE_COST_NUM / COPY_BYTE_COST_DEN)
}

/// Registers the base exports.
pub fn register(k: &mut KernelCpu) {
    k.export(
        "kmalloc",
        vec![Param::scalar("size")],
        Some("post(if (return != 0) transfer(write, return, size))"),
        Arc::new(|k, args| {
            charge(k, 0)?;
            if k.fault_fires(crate::fault_inject::FaultSite::Alloc) {
                return Ok(0);
            }
            let size = args.first().copied().unwrap_or(0);
            Ok(k.kmalloc_cpu(size).unwrap_or(0))
        }),
    );

    k.export(
        "kzalloc",
        vec![Param::scalar("size")],
        Some("post(if (return != 0) transfer(write, return, size))"),
        Arc::new(|k, args| {
            let size = args.first().copied().unwrap_or(0);
            charge(k, size)?;
            if k.fault_fires(crate::fault_inject::FaultSite::Alloc) {
                return Ok(0);
            }
            let alloc = k.kmalloc_cpu(size);
            match alloc {
                Some(addr) => {
                    k.mem.zero_range(addr, size)?;
                    k.rt.note_zeroed(addr, size);
                    Ok(addr)
                }
                None => Ok(0),
            }
        }),
    );

    k.export(
        "kfree",
        vec![Param::scalar("ptr")],
        Some("pre(if (ptr != 0) check(write, ptr, 1))"),
        Arc::new(|k, args| {
            charge(k, 0)?;
            let ptr = args.first().copied().unwrap_or(0);
            if ptr == 0 {
                return Ok(0);
            }
            // Two-phase free: the slot becomes allocatable only AFTER
            // the capability sweep and zeroing, so a concurrent kmalloc
            // on another CPU cannot be granted the recycled address and
            // then have its fresh grant swept away.
            let freed = k.slab().begin_free(ptr);
            if let Some((_size, class)) = freed {
                // No capability may outlive the allocation (§3.3): strip
                // WRITE coverage from every principal, then mark the slot
                // zeroed so the writer-set fast path recovers.
                k.rt.revoke_write_overlapping_everywhere(ptr, class);
                k.mem.zero_range(ptr, class)?;
                k.rt.note_zeroed(ptr, class);
                k.kfree_cpu(ptr, class);
            }
            Ok(0)
        }),
    );

    k.export(
        "spin_lock_init",
        vec![Param::ptr("lock", "spinlock_t")],
        Some("pre(check(write, lock))"),
        Arc::new(|k, args| {
            charge(k, 0)?;
            // Writes zero through the pointer — the §1 attack surface.
            k.mem.write_word(args[0], 0)?;
            Ok(0)
        }),
    );

    k.export(
        "spin_lock",
        vec![Param::ptr("lock", "spinlock_t")],
        Some("pre(check(write, lock))"),
        Arc::new(|k, args| {
            charge(k, 0)?;
            k.mem.write_word(args[0], 1)?;
            Ok(0)
        }),
    );

    k.export(
        "spin_unlock",
        vec![Param::ptr("lock", "spinlock_t")],
        Some("pre(check(write, lock))"),
        Arc::new(|k, args| {
            charge(k, 0)?;
            k.mem.write_word(args[0], 0)?;
            Ok(0)
        }),
    );

    k.export(
        "memset_k",
        vec![
            Param::scalar("ptr"),
            Param::scalar("val"),
            Param::scalar("n"),
        ],
        Some("pre(check(write, ptr, n))"),
        Arc::new(|k, args| {
            let (ptr, val, n) = (args[0], args[1] as u8, args[2]);
            charge(k, n)?;
            for i in 0..n {
                k.mem.write(ptr + i, u64::from(val), Width::B1)?;
            }
            if val == 0 {
                k.rt.note_zeroed(ptr, n);
            }
            Ok(0)
        }),
    );

    k.export(
        "memcpy_k",
        vec![
            Param::scalar("dst"),
            Param::scalar("src"),
            Param::scalar("n"),
        ],
        Some("pre(check(write, dst, n))"),
        Arc::new(|k, args| {
            let (dst, src, n) = (args[0], args[1], args[2]);
            charge(k, n)?;
            let mut buf = vec![0u8; n as usize];
            k.mem.read_bytes(src, &mut buf)?;
            k.mem.write_bytes(dst, &buf)?;
            Ok(0)
        }),
    );

    k.export(
        "copy_from_user",
        vec![
            Param::scalar("dst"),
            Param::scalar("src"),
            Param::scalar("n"),
        ],
        Some("pre(check(write, dst, n))"),
        Arc::new(|k, args| {
            let (dst, src, n) = (args[0], args[1], args[2]);
            charge(k, n)?;
            // The kernel-side check the RDS module *lacks* in its own
            // copy loop: the source must be a user address.
            if !is_user_addr(src) || !is_user_addr(src + n) {
                return Ok((-14i64) as u64); // -EFAULT
            }
            let mut buf = vec![0u8; n as usize];
            k.mem.read_bytes(src, &mut buf)?;
            k.mem.write_bytes(dst, &buf)?;
            Ok(0)
        }),
    );

    k.export(
        "copy_to_user",
        vec![
            Param::scalar("dst"),
            Param::scalar("src"),
            Param::scalar("n"),
        ],
        Some(""),
        Arc::new(|k, args| {
            let (dst, src, n) = (args[0], args[1], args[2]);
            charge(k, n)?;
            if !is_user_addr(dst) || !is_user_addr(dst + n) {
                return Ok((-14i64) as u64); // -EFAULT
            }
            let mut buf = vec![0u8; n as usize];
            k.mem.read_bytes(src, &mut buf)?;
            k.mem.write_bytes(dst, &buf)?;
            Ok(0)
        }),
    );

    k.export(
        "printk",
        vec![Param::scalar("msg")],
        Some(""),
        Arc::new(|k, _args| {
            charge(k, 0)?;
            Ok(0)
        }),
    );

    k.export(
        "bug",
        vec![],
        Some(""),
        Arc::new(|_k, _args| Err(Trap::Bug(0))),
    );

    // `lxfi_princ_alias` / `lxfi_check`: the runtime's privileged entry
    // points exposed to module code (§3.4). Only statically-coupled calls
    // exist in KIR (CallExtern), satisfying the paper's "only direct
    // control flow transfers are allowed" requirement.
    k.export_runtime(
        "lxfi_princ_alias",
        vec![Param::scalar("existing"), Param::scalar("new_name")],
        "",
        Arc::new(|k, args| {
            k.princ_alias_current(args[0], args[1])?;
            Ok(0)
        }),
    );

    // Privileged principal switch to the module's global principal
    // (Guideline 6). Module code must precede this with adequate checks;
    // LXFI's CFI guarantees the checks cannot be bypassed because only
    // statically-coupled direct calls to this entry exist.
    k.export_runtime(
        "lxfi_switch_global",
        vec![],
        "",
        Arc::new(|k, _args| {
            let t = k.current_thread();
            match k.rt.current(t) {
                Some((mid, _p)) => {
                    let g = k.rt.global_principal(mid);
                    k.rt.thread(t).set_current(Some((mid, g)));
                    Ok(0)
                }
                None if k.executing_stock_module() => Ok(0), // compiled out
                None => Err(lxfi_machine::Trap::from(
                    lxfi_core::Violation::PrincipalDenied {
                        why: "lxfi_switch_global outside module context".into(),
                    },
                )),
            }
        }),
    );

    // `detach_pid`: unlinks a task from the pid hash. Exported to the
    // core kernel only — it carries **no annotation**, and no module
    // imports it, so no module principal ever holds a CALL capability
    // for it. The pid-hash rootkit (§8.1) tries to reach it anyway.
    k.export(
        "detach_pid",
        vec![Param::scalar("task")],
        None,
        Arc::new(|k, args| {
            let task = args[0];
            k.procs().detach_pid(&k.mem, task);
            Ok(0)
        }),
    );

    k.export_data("jiffies", 8);
}
