//! Differential property test: the deferred-call mux against a
//! queue-per-slot model.
//!
//! Random sequences of registrations, schedules (from random CPUs),
//! single pops, and per-CPU drains are driven through both worlds:
//!
//! - world D: the real [`DeferredState`] (fixed-capacity rings, CPU
//!   affinity bound at the empty→pending transition);
//! - world M: one `VecDeque` per slot with the same capacity rule (the
//!   oracle — a queue is FIFO, lossless below capacity, and duplicates
//!   nothing by construction).
//!
//! Agreement at every step proves the mux's contract: per-owner FIFO
//! order, no call lost below `RING_CAP`, no call duplicated, overflow
//! dropped and counted exactly, registration single-owner/idempotent,
//! and the ambient drain (`next_for`) seeing exactly the slots whose
//! first pending call came from that CPU.

use std::collections::VecDeque;

use proptest::prelude::*;

use lxfi_kernel::deferred::{DeferredKind, DeferredState, RING_CAP};

const NCPU: u32 = 3;

#[derive(Debug, Clone)]
enum Op {
    /// Register owner `0x1000 * (i+1)` with one of the two kinds.
    Register(u64, bool),
    /// Schedule `arg` on the `i % slots`-th registered slot from a CPU.
    Schedule(usize, u64, u32),
    /// Pop one call from the `i % slots`-th registered slot.
    Pop(usize),
    /// Ambient quiescent-point drain: pop everything `next_for(cpu)`
    /// yields, in order.
    DrainFor(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4, any::<bool>()).prop_map(|(o, k)| Op::Register(o, k)),
        // Schedule-heavy mix so rings actually fill and overflow.
        (any::<usize>(), any::<u64>(), 0..NCPU).prop_map(|(i, a, c)| Op::Schedule(i, a, c)),
        (any::<usize>(), any::<u64>(), 0..NCPU).prop_map(|(i, a, c)| Op::Schedule(i, a, c)),
        (any::<usize>(), any::<u64>(), 0..NCPU).prop_map(|(i, a, c)| Op::Schedule(i, a, c)),
        any::<usize>().prop_map(Op::Pop),
        (0..NCPU).prop_map(Op::DrainFor),
    ]
}

/// World M: one slot of the model.
struct ModelSlot {
    owner: u64,
    kind: DeferredKind,
    q: VecDeque<u64>,
    affine: u32,
}

/// Model-side `next_for`: lowest-index non-empty slot bound to `cpu`.
fn model_next_for(slots: &[ModelSlot], cpu: u32) -> Option<usize> {
    slots
        .iter()
        .position(|s| !s.q.is_empty() && s.affine == cpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mux_agrees_with_queue_model(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut d = DeferredState::default();
        let mut model: Vec<ModelSlot> = Vec::new();
        let mut model_dropped = 0u64;

        for op in ops {
            match op {
                Op::Register(o, snd) => {
                    let owner = 0x1000 * (o + 1);
                    let kind = if snd {
                        DeferredKind::SndCapture
                    } else {
                        DeferredKind::NapiPoll
                    };
                    let id = d.register(owner, kind);
                    let midx = model
                        .iter()
                        .position(|s| s.owner == owner && s.kind == kind)
                        .unwrap_or_else(|| {
                            model.push(ModelSlot { owner, kind, q: VecDeque::new(), affine: 0 });
                            model.len() - 1
                        });
                    // Slot ids are stable indices; re-registration must
                    // return the original (single-owner, idempotent).
                    prop_assert_eq!(id.0, midx, "slot identity diverged");
                    prop_assert_eq!(d.lookup(owner, kind), Some(id));
                }
                Op::Schedule(i, arg, cpu) => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = i % model.len();
                    let (owner, kind) = (model[i].owner, model[i].kind);
                    let id = d.lookup(owner, kind).expect("registered");
                    let ok = d.schedule(id, arg, cpu);
                    let s = &mut model[i];
                    let mok = if s.q.len() == RING_CAP {
                        model_dropped += 1;
                        false
                    } else {
                        if s.q.is_empty() {
                            s.affine = cpu;
                        }
                        s.q.push_back(arg);
                        true
                    };
                    prop_assert_eq!(ok, mok, "accept/drop diverged");
                }
                Op::Pop(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = i % model.len();
                    let id = d.lookup(model[i].owner, model[i].kind).expect("registered");
                    let got = d.pop(id);
                    let want = model[i]
                        .q
                        .pop_front()
                        .map(|a| (model[i].owner, model[i].kind, a));
                    prop_assert_eq!(got, want, "pop diverged (FIFO / dup / loss)");
                }
                Op::DrainFor(cpu) => {
                    // The two worlds must walk the same slots in the
                    // same order and surface the same calls.
                    loop {
                        let did = d.next_for(cpu);
                        let midx = model_next_for(&model, cpu);
                        prop_assert_eq!(did.map(|x| x.0), midx, "drain source diverged");
                        let Some(idx) = midx else { break };
                        let got = d.pop(did.unwrap());
                        let want = model[idx]
                            .q
                            .pop_front()
                            .map(|a| (model[idx].owner, model[idx].kind, a));
                        prop_assert_eq!(got, want, "drained call diverged");
                    }
                }
            }
            // Gauges agree after every op.
            let mpending: usize = model.iter().map(|s| s.q.len()).sum();
            prop_assert_eq!(d.pending_total(), mpending);
            prop_assert_eq!(d.dropped, model_dropped, "drop accounting diverged");
        }

        // Quiesce: drain every slot; both worlds end empty with every
        // remaining call surfacing exactly once, in FIFO order.
        for (i, s) in model.iter_mut().enumerate() {
            let id = d.lookup(s.owner, s.kind).expect("registered");
            prop_assert_eq!(d.pending(id), s.q.len(), "slot {} gauge", i);
            while let Some(want) = s.q.pop_front() {
                prop_assert_eq!(d.pop(id), Some((s.owner, s.kind, want)));
            }
            prop_assert_eq!(d.pop(id), None);
        }
        prop_assert_eq!(d.pending_total(), 0);
    }
}
