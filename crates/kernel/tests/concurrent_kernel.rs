//! Races of the multi-CPU kernel: syscall-style module invocations on
//! two worker `KernelCpu`s against module load/unload and capability
//! revocation — plus a post-quiescence oracle comparing the surviving
//! kernel state (slab, process table, reverse writer index) with a
//! single-threaded replay of the same work.
//!
//! These tests stress the redesign's commit points: the module-registry
//! write lock (load/unload) against concurrent dispatch, the shared
//! slab under concurrent kmalloc/kfree from interpreted module code,
//! and epoch-based revocation landing between another CPU's guarded
//! stores. A policy violation anywhere panics the shared kernel, so
//! "the run completes" is itself the isolation assertion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use lxfi_core::RawCap;
use lxfi_kernel::{IsolationMode, Kernel, KernelCpu, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Word};
use lxfi_rewriter::InterfaceSpec;

/// A worker module with a heap-churn loop and a global-fill loop:
/// - `churn_mem(n)`: n rounds of kmalloc(96) → store → kfree (slab +
///   capability transfer + kfree revocation sweep per round);
/// - `fill_global(n)`: n guarded 8-byte stores into its own .data.
fn worker_spec(name: &str) -> ModuleSpec {
    let mut pb = ProgramBuilder::new(name);
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");
    let scratch = pb.global("scratch", 256);

    pb.define("churn_mem", 1, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.mov(R5, R0);
        f.bind(top);
        f.br(lxfi_machine::Cond::Eq, R5, 0i64, done);
        f.call_extern(kmalloc, &[96i64.into()], Some(R1));
        f.store8(R5, R1, 0);
        f.store8(R5, R1, 88);
        f.call_extern(kfree, &[R1.into()], None);
        f.sub(R5, R5, 1i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
    });

    pb.define("violate", 0, 0, |f| {
        // A store to an address nobody granted: the policy violation
        // that quarantines this module.
        f.mov(R1, 0x5000i64);
        f.store8(1i64, R1, 0);
        f.ret(0i64);
    });

    pb.define("fill_global", 1, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.mov(R5, 0i64);
        f.global_addr(R1, scratch);
        f.bind(top);
        f.br(lxfi_machine::Cond::Eq, R5, R0, done);
        f.bin(lxfi_machine::BinOp::Rem, R2, R5, 32i64);
        f.bin(lxfi_machine::BinOp::Mul, R2, R2, 8i64);
        f.add(R2, R2, R1);
        f.store8(R5, R2, 0);
        f.add(R5, R5, 1i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
    });

    ModuleSpec {
        name: name.into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

/// A tiny module the loader thread loads, runs, and unloads.
fn churn_spec(seq: u64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new("churn");
    let state = pb.global("state", 64);
    pb.define("touch", 1, 0, |f| {
        f.global_addr(R1, state);
        f.store8(R0, R1, 0);
        f.ret(0i64);
    });
    ModuleSpec {
        name: format!("churn-{seq}"),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

fn invoke(cpu: &mut KernelCpu, module: &str, func: &str, args: &[Word]) {
    let id = cpu.module_id(module).expect("module loaded");
    let addr = cpu.module_fn_addr(id, func).expect("function exists");
    cpu.enter(|k| k.invoke_module_function(addr, args, None))
        .unwrap_or_else(|e| panic!("{module}::{func} must not violate policy: {e}"));
}

/// Barrier-phased chaos: two worker CPUs invoking module code, a loader
/// CPU cycling load → invoke → unload, and a revoker stripping and
/// re-granting spare capabilities on the workers' principals — phase by
/// phase, so every phase really overlaps all four actors.
#[test]
fn barrier_phased_syscall_vs_load_vs_revoke() {
    const PHASES: usize = 8;
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let a = k.load_module(worker_spec("worker-a")).unwrap();
    let b = k.load_module(worker_spec("worker-b")).unwrap();
    let mid_a = k.runtime_module(a).unwrap();
    let mid_b = k.runtime_module(b).unwrap();
    let core = k.runtime_core();
    let spare_a = RawCap::write(0x7100_0000, 0x100);
    let spare_b = RawCap::write(0x7200_0000, 0x100);
    core.grant(core.shared_principal(mid_a), spare_a);
    core.grant(core.shared_principal(mid_b), spare_b);

    let barrier = Arc::new(Barrier::new(4));
    let stop = Arc::new(AtomicBool::new(false));

    let worker = |mut cpu: KernelCpu, name: &'static str| {
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            for _ in 0..PHASES {
                barrier.wait();
                invoke(&mut cpu, name, "churn_mem", &[8]);
                invoke(&mut cpu, name, "fill_global", &[64]);
            }
        })
    };
    let wa = worker(k.new_cpu(), "worker-a");
    let wb = worker(k.new_cpu(), "worker-b");

    let loader = {
        let mut cpu = k.new_cpu();
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            for phase in 0..PHASES {
                barrier.wait();
                let id = cpu.load_module(churn_spec(phase as u64)).unwrap();
                let addr = cpu.module_fn_addr(id, "touch").unwrap();
                cpu.enter(|k| k.invoke_module_function(addr, &[7], None))
                    .unwrap();
                cpu.unload_module(id).unwrap();
            }
        })
    };

    let revoker = {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let pa = core.shared_principal(mid_a);
            let pb = core.shared_principal(mid_b);
            for _ in 0..PHASES {
                barrier.wait();
                for _ in 0..64 {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    core.revoke(pa, spare_a);
                    core.grant(pa, spare_a);
                    core.revoke(pb, spare_b);
                    core.grant(pb, spare_b);
                }
            }
        })
    };

    wa.join().unwrap();
    wb.join().unwrap();
    loader.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    revoker.join().unwrap();

    assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
    // Workers' globals hold the last fill values.
    let ga = k.module_global_addr(a, "scratch").unwrap();
    let gb = k.module_global_addr(b, "scratch").unwrap();
    assert_eq!(
        k.mem.read_word(ga + 8).unwrap(),
        33,
        "fill(64): last i%32==1 is 33"
    );
    assert_eq!(k.mem.read_word(gb + 8).unwrap(), 33);
    // No module-churn heap leaks; the writer index still agrees with
    // the capability tables.
    assert_eq!(k.slab().live_count(), 0, "all churned allocations freed");
    k.rt.check_index_invariants();
    assert_eq!(k.rt.writers_of(ga), k.rt.writers_of_linear(ga));
    // The workers kept their spares (revoker always re-grants).
    assert!(core.owns(core.shared_principal(mid_a), spare_a));
}

/// Runs the canonical workload either concurrently (3 extra CPUs) or
/// single-threaded on the facade, and returns the post-quiescence
/// observables the oracle compares.
fn run_workload(concurrent: bool) -> (Vec<u64>, Vec<Vec<lxfi_core::PrincipalId>>) {
    const A_ROUNDS: u64 = 40;
    const B_ROUNDS: u64 = 60;
    const LOADS: u64 = 5;

    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let a = k.load_module(worker_spec("worker-a")).unwrap();
    let b = k.load_module(worker_spec("worker-b")).unwrap();

    if concurrent {
        let mut cpu_a = k.new_cpu();
        let mut cpu_b = k.new_cpu();
        let mut cpu_l = k.new_cpu();
        let barrier = Arc::new(Barrier::new(3));
        let ba = Arc::clone(&barrier);
        let bb = Arc::clone(&barrier);
        let bl = Arc::clone(&barrier);
        let ta = thread::spawn(move || {
            ba.wait();
            for _ in 0..A_ROUNDS {
                invoke(&mut cpu_a, "worker-a", "churn_mem", &[4]);
                invoke(&mut cpu_a, "worker-a", "fill_global", &[32]);
            }
        });
        let tb = thread::spawn(move || {
            bb.wait();
            for _ in 0..B_ROUNDS {
                invoke(&mut cpu_b, "worker-b", "churn_mem", &[4]);
                invoke(&mut cpu_b, "worker-b", "fill_global", &[32]);
            }
        });
        let tl = thread::spawn(move || {
            bl.wait();
            for i in 0..LOADS {
                let id = cpu_l.load_module(churn_spec(i)).unwrap();
                let addr = cpu_l.module_fn_addr(id, "touch").unwrap();
                cpu_l
                    .enter(|k| k.invoke_module_function(addr, &[i], None))
                    .unwrap();
                cpu_l.unload_module(id).unwrap();
            }
        });
        ta.join().unwrap();
        tb.join().unwrap();
        tl.join().unwrap();
    } else {
        // The replay allocates the same number of simulated threads so
        // per-thread stack grants (coverage every module receives)
        // match the concurrent world's.
        let _c1 = k.new_cpu();
        let _c2 = k.new_cpu();
        let _c3 = k.new_cpu();
        for _ in 0..A_ROUNDS {
            invoke(&mut k, "worker-a", "churn_mem", &[4]);
            invoke(&mut k, "worker-a", "fill_global", &[32]);
        }
        for _ in 0..B_ROUNDS {
            invoke(&mut k, "worker-b", "churn_mem", &[4]);
            invoke(&mut k, "worker-b", "fill_global", &[32]);
        }
        for i in 0..LOADS {
            let id = k.load_module(churn_spec(i)).unwrap();
            let addr = k.module_fn_addr(id, "touch").unwrap();
            k.enter(|k| k.invoke_module_function(addr, &[i], None))
                .unwrap();
            k.unload_module(id).unwrap();
        }
    }

    assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
    k.rt.check_index_invariants();

    let ga = k.module_global_addr(a, "scratch").unwrap();
    let gb = k.module_global_addr(b, "scratch").unwrap();
    let heap_probe = lxfi_kernel::HEAP_BASE;
    let stack_probe = lxfi_kernel::STACK_BASE;
    // Index and linear walk must agree post-quiescence at every probe.
    for addr in [ga, gb, heap_probe, stack_probe] {
        assert_eq!(
            k.rt.writers_of(addr),
            k.rt.writers_of_linear(addr),
            "index/table agreement at {addr:#x}"
        );
    }
    // Each accessor locks; take them one statement at a time (a guard
    // temporary lives to the end of its whole statement).
    let (live, allocated) = {
        let slab = k.slab();
        (slab.live_count() as u64, slab.allocated())
    };
    let pids = k.procs().visible_pids().len() as u64;
    let scalars = vec![
        live,
        allocated,
        pids,
        k.rt.index_interval_count() as u64,
        u64::from(
            k.rt.core()
                .index_overlaps(lxfi_kernel::HEAP_BASE, 0x10_0000),
        ),
        k.mem.read_word(ga + 8).unwrap(),
        k.mem.read_word(gb + 16).unwrap(),
    ];
    let writers = vec![
        k.rt.writers_of(ga),
        k.rt.writers_of(gb),
        k.rt.writers_of(stack_probe),
        k.rt.writers_of(heap_probe),
    ];
    (scalars, writers)
}

/// The post-quiescence oracle: after the concurrent run settles, the
/// kernel's surviving state — slab occupancy, process table, writer
/// index coverage, module globals — must equal a single-threaded replay
/// of the same work (the workload is designed interleaving-independent:
/// per-CPU work touches per-module objects, and every transient grant
/// is released before quiescence).
#[test]
fn post_quiescence_state_agrees_with_single_threaded_replay() {
    let (concurrent_scalars, concurrent_writers) = run_workload(true);
    let (replay_scalars, replay_writers) = run_workload(false);
    assert_eq!(
        concurrent_scalars, replay_scalars,
        "slab/procs/index scalars must match the replay"
    );
    assert_eq!(
        concurrent_writers, replay_writers,
        "writer sets must match the replay"
    );
}

/// The redesign's type-level acceptance bar: the shared kernel half is
/// `Send + Sync`, and an execution context can move to another thread.
#[test]
fn kernel_core_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<lxfi_kernel::KernelCore>();
    assert_send::<KernelCpu>();
}

/// Unloading a module another CPU is executing must wait out the
/// in-flight execution (the RCU-style grace period) instead of
/// revoking its capabilities mid-run: every racing invocation either
/// completes in full or is rejected cleanly at dispatch (the function
/// address no longer resolves) — never killed mid-run by a spurious
/// MissingWrite panic.
#[test]
fn unload_waits_for_in_flight_execution() {
    for _ in 0..8 {
        let mut k = Kernel::boot(IsolationMode::Lxfi);
        let id = k.load_module(worker_spec("worker-a")).unwrap();
        let addr = k.module_fn_addr(id, "churn_mem").unwrap();
        let mut cpu = k.new_cpu();
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let runner = thread::spawn(move || {
            b2.wait();
            let mut completed = 0u64;
            loop {
                // Heap churn + guarded stores: the racing unload lands
                // somewhere inside one of these.
                match cpu.enter(|k| k.invoke_module_function(addr, &[16], None)) {
                    Ok(_) => completed += 1,
                    // Dispatch rejected: the module is unpublished. A
                    // machine-fault classification (oops) is the
                    // expected shape for a dangling call target.
                    Err(lxfi_kernel::KernelError::Oops(_)) => break completed,
                    Err(e) => panic!("in-flight execution killed mid-run: {e}"),
                }
            }
        });
        barrier.wait();
        k.unload_module(id).unwrap();
        let completed = runner.join().expect("runner must not panic");
        let _ = completed; // 0 is legal: unload may win before the first dispatch
        assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
        assert_eq!(k.slab().live_count(), 0);
    }
}

/// A CPU cannot unload the module it is itself executing ("module
/// busy" — waiting on itself would deadlock).
#[test]
fn self_unload_is_refused() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    // A native that tries to unload while the caller module executes.
    k.export(
        "try_self_unload",
        vec![],
        Some(""),
        std::sync::Arc::new(|k, _args| {
            let id = k.module_id("worker-a").expect("loaded");
            match k.unload_module(id) {
                Err(lxfi_kernel::KernelError::Fail(msg)) => {
                    assert!(msg.contains("executing"), "unexpected error: {msg}");
                    Ok(0)
                }
                other => panic!("self-unload must be refused, got {other:?}"),
            }
        }),
    );
    let mut pb = ProgramBuilder::new("worker-a");
    let unload = pb.import_func("try_self_unload");
    pb.define("call_unload", 0, 0, |f| {
        f.call_extern(unload, &[], Some(R0));
        f.ret(R0);
    });
    let spec = ModuleSpec {
        name: "worker-a".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    };
    let id = k.load_module(spec).unwrap();
    let addr = k.module_fn_addr(id, "call_unload").unwrap();
    k.enter(|k| k.invoke_module_function(addr, &[], None))
        .unwrap();
}

/// A module crashing on one CPU must not kill another CPU's in-flight
/// call into the SAME module: quarantine unpublishes the name, then
/// waits out the grace period before reclaiming capabilities, so every
/// racing invocation either completes in full or is rejected cleanly at
/// dispatch — and only the faulting module dies, never the kernel.
#[test]
fn crash_on_one_cpu_spares_in_flight_call_on_another() {
    for round in 0..8 {
        let mut k = Kernel::boot(IsolationMode::Lxfi);
        let id = k.load_module(worker_spec("worker-a")).unwrap();
        let addr = k.module_fn_addr(id, "churn_mem").unwrap();
        let mut cpu = k.new_cpu();
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let runner = thread::spawn(move || {
            b2.wait();
            let mut completed = 0u64;
            loop {
                match cpu.enter(|k| k.invoke_module_function(addr, &[16], None)) {
                    Ok(_) => completed += 1,
                    // Dispatch rejected: the module is gone (dangling
                    // target in kernel context → oops, as for unload).
                    Err(lxfi_kernel::KernelError::Oops(_)) => break completed,
                    Err(e) => panic!("in-flight call killed by the crash: {e}"),
                }
            }
        });
        barrier.wait();
        // Crash the module from the main CPU while the runner is (very
        // likely) mid-call.
        let vaddr = k.module_fn_addr(id, "violate").unwrap();
        match k.enter(|k| k.invoke_module_function(vaddr, &[], None)) {
            Err(lxfi_kernel::KernelError::ModuleFault(f)) => {
                assert_eq!(f.module, "worker-a");
                assert_eq!(f.id, Some(id), "fault attributed by id, round {round}");
            }
            other => panic!("expected a module fault, got {other:?}"),
        }
        runner.join().expect("runner must not panic");
        assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
        assert!(!k.module_is_live(id));
        assert_eq!(k.slab().live_count(), 0, "churned allocations reclaimed");
        k.rt.check_index_invariants();
    }
}

/// Crash-recovery workload for the replay oracle: a healthy module
/// serves traffic on its own CPU while the main CPU repeatedly loads,
/// crashes, and reloads a faulty sibling. Observables are taken after
/// quiescence.
fn run_crash_workload(concurrent: bool) -> (Vec<u64>, Vec<Vec<lxfi_core::PrincipalId>>) {
    const ROUNDS: u64 = 24;
    const CRASHES: u64 = 12;

    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let a = k.load_module(worker_spec("worker-a")).unwrap();

    let crash_once = |k: &mut KernelCpu| {
        let id = k.load_module(worker_spec("faulty")).unwrap();
        invoke(k, "faulty", "churn_mem", &[2]);
        invoke(k, "faulty", "fill_global", &[8]);
        let vaddr = k.module_fn_addr(id, "violate").unwrap();
        match k.enter(|kk| kk.invoke_module_function(vaddr, &[], None)) {
            Err(lxfi_kernel::KernelError::ModuleFault(_)) => {}
            other => panic!("expected a module fault, got {other:?}"),
        }
    };

    if concurrent {
        let mut cpu_a = k.new_cpu();
        let mut cpu_c = k.new_cpu();
        let barrier = Arc::new(Barrier::new(2));
        let ba = Arc::clone(&barrier);
        let bc = Arc::clone(&barrier);
        let ta = thread::spawn(move || {
            ba.wait();
            for _ in 0..ROUNDS {
                invoke(&mut cpu_a, "worker-a", "churn_mem", &[4]);
                invoke(&mut cpu_a, "worker-a", "fill_global", &[32]);
            }
        });
        let tc = thread::spawn(move || {
            bc.wait();
            for _ in 0..CRASHES {
                crash_once(&mut cpu_c);
            }
        });
        ta.join().unwrap();
        tc.join().unwrap();
    } else {
        let _c1 = k.new_cpu();
        let _c2 = k.new_cpu();
        for _ in 0..ROUNDS {
            invoke(&mut k, "worker-a", "churn_mem", &[4]);
            invoke(&mut k, "worker-a", "fill_global", &[32]);
        }
        for _ in 0..CRASHES {
            crash_once(&mut k);
        }
    }

    assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
    assert_eq!(k.fault_count(), CRASHES as usize);
    k.rt.check_index_invariants();

    let ga = k.module_global_addr(a, "scratch").unwrap();
    let core = k.runtime_core();
    let (principals_live, principals_retired) = core.principal_gauges();
    let (live, allocated) = {
        let slab = k.slab();
        (slab.live_count() as u64, slab.allocated())
    };
    let scalars = vec![
        live,
        allocated,
        principals_live,
        principals_retired,
        core.index_set_count() as u64,
        k.rt.index_interval_count() as u64,
        k.mem.read_word(ga + 8).unwrap(),
    ];
    let writers = vec![
        k.rt.writers_of(ga),
        k.rt.writers_of(lxfi_kernel::STACK_BASE),
        k.rt.writers_of(lxfi_kernel::HEAP_BASE),
    ];
    (scalars, writers)
}

/// The post-recovery oracle: after concurrent crash/recover churn
/// settles, the surviving kernel state — slab occupancy, principal
/// gauges, writer-index coverage, the healthy module's globals — must
/// equal a fresh single-threaded replay of the same work.
#[test]
fn post_crash_recovery_state_agrees_with_single_threaded_replay() {
    let (concurrent_scalars, concurrent_writers) = run_crash_workload(true);
    let (replay_scalars, replay_writers) = run_crash_workload(false);
    assert_eq!(
        concurrent_scalars, replay_scalars,
        "gauges match the replay"
    );
    assert_eq!(concurrent_writers, replay_writers, "writer sets match");
}
