//! Edge-case tests: the qdisc dispatch thunk (Guideline 7), slab churn
//! under capability tracking, and deep wrapper nesting.

use lxfi_core::Violation;
use lxfi_kernel::types::qdisc;
use lxfi_kernel::{IsolationMode, Kernel, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Trap};
use lxfi_rewriter::InterfaceSpec;

/// A module providing a qdisc enqueue callback (Guideline 7's packet
/// scheduler) plus nesting and allocation helpers.
fn sched_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("sched");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");

    let enqueue = pb.declare("sched_enqueue", 2);
    // sched_enqueue(skb, q): counts the packet on the qdisc.
    pb.define("sched_enqueue", 2, 0, |f| {
        f.load8(R2, R1, qdisc::QLEN);
        f.add(R2, R2, 1i64);
        f.store8(R2, R1, qdisc::QLEN);
        f.ret(0i64);
    });

    // A deeply nested local call chain ending in a kernel call.
    let leaf = pb.declare("leaf", 1);
    pb.define("leaf", 1, 0, |f| {
        f.call_extern(kmalloc, &[R0.into()], Some(R1));
        f.call_extern(kfree, &[R1.into()], None);
        f.ret(R1);
    });
    let mut prev = leaf;
    for i in 0..24 {
        let name = format!("nest{i}");
        let id = pb.declare(&name, 1);
        let inner = prev;
        pb.define(&name, 1, 16, move |f| {
            f.store_frame(R0, 0, lxfi_machine::Width::B8);
            f.call_local(inner, &[R0.into()], Some(R0));
            f.ret(R0);
        });
        prev = id;
    }
    let top = prev;
    pb.define("nest_top", 1, 0, move |f| {
        f.call_local(top, &[R0.into()], Some(R0));
        f.ret(R0);
    });

    // Allocation churn: n rounds of alloc/free at mixed sizes.
    pb.define("churn", 1, 0, |f| {
        let topl = f.label();
        let done = f.label();
        f.mov(R10, R0);
        f.bind(topl);
        f.br(lxfi_machine::Cond::Le, R10, 0i64, done);
        f.bin(lxfi_machine::BinOp::And, R2, R10, 0xffi64);
        f.add(R2, R2, 1i64);
        f.call_extern(kmalloc, &[R2.into()], Some(R3));
        f.store(0x7fi64, R3, 0, lxfi_machine::Width::B1);
        f.call_extern(kfree, &[R3.into()], None);
        f.sub(R10, R10, 1i64);
        f.jmp(topl);
        f.bind(done);
        f.ret(0i64);
    });

    let sig = pb.sig("qdisc_enqueue", 2);
    pb.assign_sig(enqueue, sig);
    let mut iface = InterfaceSpec::new();
    iface.declare_sig(lxfi_core::FnDecl::new(
        "qdisc_enqueue",
        vec![
            lxfi_core::Param::ptr("skb", "sk_buff"),
            lxfi_core::Param::ptr("q", "Qdisc"),
        ],
        lxfi_annotations::parse_fn_annotations("pre(check(write, skb, 1)) pre(copy(write, q, 64))")
            .unwrap(),
    ));

    ModuleSpec {
        name: "sched".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: None,
    }
}

/// Builds a kernel-side Qdisc whose enqueue slot points at the module's
/// callback, then runs the `qdisc_run` thunk.
fn run_qdisc(mode: IsolationMode) -> Result<u64, Trap> {
    let mut k = Kernel::boot(mode);
    let id = k.load_module(sched_spec()).unwrap();
    let enq = k.module_fn_addr(id, "sched_enqueue").unwrap();
    let q = k.kstatic_alloc(qdisc::SIZE);
    k.mem.write_word((q as i64 + qdisc::ENQUEUE) as u64, enq)?;
    // A kernel-owned skb (the kernel can pass any packet).
    let skb = lxfi_kernel::net::alloc_skb_raw(&mut k, 64).unwrap();
    // Under LXFI, the module must own WRITE(skb) to pass the sig's check
    // annotation; transfer it the way the stack would.
    if mode == IsolationMode::Lxfi {
        let mid = k.runtime_module(id).unwrap();
        let shared = k.rt.shared_principal(mid);
        k.rt.grant(shared, lxfi_core::RawCap::write(skb, 64));
    }
    k.run_kernel_thunk("qdisc_run", &[q, skb])?;
    k.mem.read_word((q as i64 + qdisc::QLEN) as u64)
}

#[test]
fn qdisc_dispatch_works_in_both_modes() {
    assert_eq!(run_qdisc(IsolationMode::Stock).unwrap(), 1);
    assert_eq!(run_qdisc(IsolationMode::Lxfi).unwrap(), 1);
}

#[test]
fn qdisc_slot_is_checked_under_lxfi() {
    // Pointing the enqueue slot at user space: the kernel pass's guard
    // on the thunk's load slot rejects the call... but only when a
    // module could have written the slot. Here the slot is kernel
    // memory written by us (the kernel), so simulate the corruption the
    // way a module would reach it: grant the module WRITE over the
    // qdisc (mirroring a driver-owned qdisc) and let it scribble.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(sched_spec()).unwrap();
    let mid = k.runtime_module(id).unwrap();
    let q = k.kstatic_alloc(qdisc::SIZE);
    let shared = k.rt.shared_principal(mid);
    k.rt.grant(shared, lxfi_core::RawCap::write(q, qdisc::SIZE));
    k.mem
        .write_word((q as i64 + qdisc::ENQUEUE) as u64, 0x4000)
        .unwrap();
    let skb = lxfi_kernel::net::alloc_skb_raw(&mut k, 64).unwrap();
    let err = k.run_kernel_thunk("qdisc_run", &[q, skb]).unwrap_err();
    let v = err.policy_as::<Violation>().unwrap();
    assert!(matches!(v, Violation::IndCallUnauthorized { .. }), "{v:?}");
}

#[test]
fn deep_local_nesting_with_kernel_calls() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let mut k = Kernel::boot(mode);
        let id = k.load_module(sched_spec()).unwrap();
        let addr = k.module_fn_addr(id, "nest_top").unwrap();
        let r = k
            .enter(|k| k.invoke_module_function(addr, &[128], None))
            .unwrap();
        assert_ne!(r, 0, "allocation succeeded through 25 frames");
        assert_eq!(k.slab().live_count(), 0, "freed on the way out");
    }
}

#[test]
fn allocation_churn_leaves_no_capabilities_or_leaks() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(sched_spec()).unwrap();
    let mid = k.runtime_module(id).unwrap();
    let shared = k.rt.shared_principal(mid);
    let caps_before = k.rt.cap_count(shared);
    let addr = k.module_fn_addr(id, "churn").unwrap();
    k.enter(|k| k.invoke_module_function(addr, &[200], None))
        .unwrap();
    assert_eq!(k.slab().live_count(), 0, "no leaked allocations");
    assert_eq!(
        k.rt.cap_count(shared),
        caps_before,
        "kfree's transfer stripped every granted WRITE capability"
    );
}
