//! Differential property test: magazine-backed allocation against the
//! direct sharded slab.
//!
//! Two worlds are driven through identical random sequences of
//! allocations, frees (including cross-CPU frees: allocated on one
//! CPU's magazine, freed into another's), and magazine drains:
//!
//! - world M: a [`ShardedSlab`] fronted by one [`Magazines`] per CPU
//!   (the data-plane configuration);
//! - world D: the same [`ShardedSlab`] called directly (the oracle).
//!
//! Addresses may differ between the worlds — the magazine changes *where*
//! an object lands, never *what* the allocator state means — so the
//! oracle compares semantic state after every op: live count, the
//! `allocated` byte gauge, and the multiset of live `(size, class)`
//! pairs, plus per-object `size_of` agreement and double-free rejection
//! in both worlds.

use proptest::prelude::*;

use lxfi_kernel::magazine::{Magazines, ShardedSlab};
use lxfi_machine::AddressSpace;

const NCPU: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes on a CPU (0-indexed into the handle list).
    Alloc(usize, u64),
    /// Free the `i % live`-th handle through a CPU's free path.
    Free(usize, usize),
    /// Drain a CPU's magazines back to the shards (world D: no-op).
    Drain(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let cpu = 0usize..NCPU;
    // Mostly valid sizes; a few invalid (0 / oversized) that must fail
    // identically in both worlds.
    let size = prop_oneof![
        1u64..4097,
        1u64..4097,
        1u64..4097,
        Just(0u64),
        4097u64..10_000,
    ];
    prop_oneof![
        (cpu.clone(), size.clone()).prop_map(|(c, s)| Op::Alloc(c, s)),
        (cpu.clone(), size).prop_map(|(c, s)| Op::Alloc(c, s)),
        (cpu.clone(), any::<usize>()).prop_map(|(c, i)| Op::Free(c, i)),
        (cpu.clone(), any::<usize>()).prop_map(|(c, i)| Op::Free(c, i)),
        cpu.prop_map(Op::Drain),
    ]
}

/// Sorted multiset of live `(size, class)` pairs.
fn shape(slab: &ShardedSlab) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = slab
        .live_objects()
        .into_iter()
        .map(|(_, s, c)| (s, c))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn magazines_preserve_allocator_semantics(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mem = AddressSpace::new();
        let slab_m = ShardedSlab::new();
        let mut mags: Vec<Magazines> = (0..NCPU).map(Magazines::new).collect();
        let slab_d = ShardedSlab::new();
        // Parallel handle lists: index i in both worlds is the same
        // logical object (same requested size, same op history).
        let mut live_m: Vec<u64> = Vec::new();
        let mut live_d: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(cpu, size) => {
                    let am = mags[cpu].kmalloc(&slab_m, &mem, size);
                    let ad = slab_d.kmalloc_on(cpu, &mem, size);
                    prop_assert_eq!(am.is_some(), ad.is_some(),
                        "alloc viability diverged for size {}", size);
                    if let (Some(am), Some(ad)) = (am, ad) {
                        prop_assert_eq!(slab_m.size_of(am), Some(size));
                        prop_assert_eq!(slab_d.size_of(ad), Some(size));
                        live_m.push(am);
                        live_d.push(ad);
                    }
                }
                Op::Free(cpu, i) => {
                    if live_m.is_empty() {
                        continue;
                    }
                    let i = i % live_m.len();
                    let am = live_m.swap_remove(i);
                    let ad = live_d.swap_remove(i);
                    // World M: two-phase free into the CPU's magazine —
                    // possibly a different CPU than allocated on.
                    let (sm, cm) = slab_m.begin_free(am).expect("live handle");
                    mags[cpu].release(&slab_m, am, cm);
                    // World D: direct free to the owning shard.
                    let (sd, cd) = slab_d.kfree(ad).expect("live handle");
                    prop_assert_eq!((sm, cm), (sd, cd), "size/class diverged");
                    // Double frees rejected identically in both worlds.
                    prop_assert!(slab_m.begin_free(am).is_none());
                    prop_assert!(slab_d.kfree(ad).is_none());
                }
                Op::Drain(cpu) => {
                    mags[cpu].drain(&slab_m);
                }
            }
            prop_assert_eq!(slab_m.live_count(), slab_d.live_count());
            prop_assert_eq!(slab_m.allocated(), slab_d.allocated());
            prop_assert_eq!(shape(&slab_m), shape(&slab_d), "live shape diverged");
        }

        // Quiesce: drain every magazine; the worlds must still agree,
        // and world M's live objects must never overlap (magazine slots
        // were never double-handed-out).
        for m in &mut mags {
            m.drain(&slab_m);
        }
        prop_assert_eq!(slab_m.allocated(), slab_d.allocated());
        let mut objs = slab_m.live_objects();
        objs.sort_unstable();
        for w in objs.windows(2) {
            let (a, _, ca) = w[0];
            let (b, _, _) = w[1];
            prop_assert!(a + ca <= b, "live objects overlap: {a:#x}+{ca} vs {b:#x}");
        }
    }
}
