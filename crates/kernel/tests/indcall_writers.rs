//! Kernel-level integration test for the reverse writer index on the
//! indirect-call slow path (§4.1/§5): three modules hold *overlapping*
//! WRITE grants over one function-pointer slot, and `check_indcall`
//! must reject exactly when any writer lacks the CALL capability for
//! the stored target — before and after revocations that split and
//! merge the index's intervals through the real grant path.

use lxfi_core::{RawCap, Violation};
use lxfi_kernel::{IsolationMode, Kernel, ModuleSpec};
use lxfi_machine::ProgramBuilder;
use lxfi_rewriter::InterfaceSpec;

/// A minimal module with one callable function.
fn tiny_spec(name: &str, ret: i64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new(name);
    pb.define("cb", 0, 0, |f| {
        f.ret(ret);
    });
    ModuleSpec {
        name: name.into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

struct World {
    k: Kernel,
    /// Shared principals of the three modules.
    principals: Vec<lxfi_core::PrincipalId>,
    slot: u64,
    target: u64,
    ahash: u64,
}

/// Boots a kernel with three LXFI modules whose WRITE grants overlap one
/// function-pointer slot with different extents (the real `Runtime::grant`
/// path, so the writer bitmap and the reverse index both see them):
///
/// ```text
///   alpha: [slot-16, slot+16)
///   beta:  [slot,    slot+8)
///   gamma: [slot+4,  slot+32)
/// ```
fn boot_world() -> World {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(tiny_spec("alpha", 1)).unwrap();
    k.load_module(tiny_spec("beta", 2)).unwrap();
    k.load_module(tiny_spec("gamma", 3)).unwrap();

    let principals: Vec<_> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|n| {
            let mid = k.runtime_module(k.module_id(n).unwrap()).unwrap();
            k.rt.shared_principal(mid)
        })
        .collect();

    // A kernel-static function-pointer slot, storing alpha::cb.
    let slot = k.kstatic_alloc(64) + 16;
    let target = k
        .module_fn_addr(k.module_id("alpha").unwrap(), "cb")
        .unwrap();
    k.mem.write_word(slot, target).unwrap();
    let ahash = k.rt.function_at(target).unwrap().ahash;

    k.rt.grant(principals[0], RawCap::write(slot - 16, 32));
    k.rt.grant(principals[1], RawCap::write(slot, 8));
    k.rt.grant(principals[2], RawCap::write(slot + 4, 28));
    k.rt.check_index_invariants();

    World {
        k,
        principals,
        slot,
        target,
        ahash,
    }
}

#[test]
fn rejects_exactly_while_any_writer_lacks_call() {
    let mut w = boot_world();
    let (slot, target, ahash) = (w.slot, w.target, w.ahash);

    // All three principals are writers of the slot (overlap semantics:
    // gamma's grant starts mid-slot and still counts).
    let mut writers = w.k.rt.writers_of(slot);
    writers.sort();
    let mut expect = w.principals.clone();
    expect.sort();
    assert_eq!(writers, expect, "all three modules write the slot");

    // alpha holds CALL for its own function (module-load grant), but
    // beta and gamma do not: the call must be refused.
    let err = w.k.rt.check_indcall(slot, target, ahash).unwrap_err();
    assert!(matches!(err, Violation::IndCallUnauthorized { .. }));

    // Grant CALL to beta only — gamma still lacks it.
    w.k.rt.grant(w.principals[1], RawCap::call(target));
    let err = w.k.rt.check_indcall(slot, target, ahash).unwrap_err();
    match err {
        Violation::IndCallUnauthorized { writer, .. } => {
            assert_eq!(writer, w.principals[2], "gamma is the writer refused")
        }
        other => panic!("expected IndCallUnauthorized, got {other:?}"),
    }

    // Grant CALL to gamma too: every writer can call the target.
    w.k.rt.grant(w.principals[2], RawCap::call(target));
    w.k.rt.check_indcall(slot, target, ahash).unwrap();

    // The full kernel dispatch path agrees and runs alpha::cb.
    let ret = w.k.indirect_call(slot, "cb_sig", &[]).unwrap();
    assert_eq!(ret, 1);
}

#[test]
fn revocations_split_and_merge_through_the_grant_path() {
    let mut w = boot_world();
    let (slot, target, ahash) = (w.slot, w.target, w.ahash);
    let [alpha, beta, gamma] = [w.principals[0], w.principals[1], w.principals[2]];

    // Make the call legal, then peel writers off one revocation at a
    // time; the index must track exactly who remains.
    w.k.rt.grant(beta, RawCap::call(target));
    w.k.rt.grant(gamma, RawCap::call(target));
    w.k.rt.check_indcall(slot, target, ahash).unwrap();

    // Revoke gamma's CALL: its WRITE still overlaps, so the check fails
    // again — revocation must not linger in any cached writer set.
    assert!(w.k.rt.revoke(gamma, RawCap::call(target)));
    let err = w.k.rt.check_indcall(slot, target, ahash).unwrap_err();
    assert!(matches!(
        err,
        Violation::IndCallUnauthorized { writer, .. } if writer == gamma
    ));

    // Revoke gamma's WRITE instead: gamma stops being a writer, so the
    // remaining writers (alpha, beta) all hold CALL and the call passes.
    assert!(w.k.rt.revoke(gamma, RawCap::write(slot + 4, 28)));
    w.k.rt.check_index_invariants();
    let mut writers = w.k.rt.writers_of(slot);
    writers.sort();
    let mut expect = vec![alpha, beta];
    expect.sort();
    assert_eq!(writers, expect);
    w.k.rt.check_indcall(slot, target, ahash).unwrap();

    // kfree-style overlapping revocation strips beta's exact-slot grant
    // AND alpha's covering grant in one sweep (both intersect the slot),
    // leaving no writers: the slow path then passes vacuously.
    w.k.rt.revoke_write_overlapping_everywhere(slot, 8);
    w.k.rt.check_index_invariants();
    assert!(w.k.rt.writers_of(slot).is_empty());
    w.k.rt.check_indcall(slot, target, ahash).unwrap();

    // Re-grant beta WRITE over the slot without CALL: rejected again —
    // the index picks up post-revocation grants (merge after split).
    w.k.rt.revoke(beta, RawCap::call(target));
    w.k.rt.grant(beta, RawCap::write(slot - 4, 12));
    let err = w.k.rt.check_indcall(slot, target, ahash).unwrap_err();
    assert!(matches!(
        err,
        Violation::IndCallUnauthorized { writer, .. } if writer == beta
    ));
}

#[test]
fn overlapping_stack_grants_stay_consistent() {
    // Module loading itself produces heavily overlapping WRITE grants
    // (every module's shared principal gets the kernel stacks); the
    // index and the linear walk must agree on those regions too.
    let w = boot_world();
    for t in 0..2u64 {
        let stack_probe = 0xffff_8800_0000_0000u64 + t * 0x10000;
        let mut a = w.k.rt.writers_of(stack_probe);
        a.sort();
        assert_eq!(a, w.k.rt.writers_of_linear(stack_probe));
    }
    // And on the slot arena.
    for d in [0u64, 4, 8, 16, 24] {
        let mut a = w.k.rt.writers_of(w.slot + d);
        a.sort();
        assert_eq!(a, w.k.rt.writers_of_linear(w.slot + d), "probe +{d}");
    }
}
