//! Fault containment and supervised recovery: a trap raised while a
//! module executes quarantines ONLY that module — unpublish, grace
//! period, complete resource reclamation — while the kernel keeps
//! serving; the kernel-wide panic flag stays reserved for the kernel's
//! own invariants. The seeded fault injector drives every trap class
//! through the same classification a genuine module bug would take,
//! and the resource gauges assert that a hundred crash/recover cycles
//! leak nothing.

use std::sync::Arc;

use lxfi_core::{RawCap, Violation};
use lxfi_kernel::{
    FaultPlan, FaultSite, IsolationMode, Kernel, KernelCpu, KernelError, ModuleSpec, RestartPolicy,
    SupervisedState, Supervisor, SupervisorEvent,
};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Word};
use lxfi_rewriter::InterfaceSpec;

/// An address no principal ever holds WRITE over (user range).
const FORBIDDEN: i64 = 0x5000;

/// A module exercising every fault class on demand:
/// - `work(v)`: kmalloc(64), store, and LEAK the object (quarantine's
///   slab sweep must reclaim it);
/// - `tidy(v)`: kmalloc + store + kfree (benign churn);
/// - `touch(v)`: guarded store into its own global (healthy traffic,
///   and the vehicle for injected guard/fuel faults);
/// - `violate()`: store to an unowned address (policy violation);
/// - `badread()`: load from unmapped memory (machine fault);
/// - `plant(slot, val)`: store `val` through `slot` (fn-ptr planting;
///   needs an explicit WRITE grant over the slot).
fn faulty_spec(name: &str) -> ModuleSpec {
    let mut pb = ProgramBuilder::new(name);
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");
    let state = pb.global("state", 64);

    pb.define("work", 1, 0, |f| {
        f.call_extern(kmalloc, &[64i64.into()], Some(R1));
        f.store8(R0, R1, 0);
        f.ret(R1);
    });
    pb.define("tidy", 1, 0, |f| {
        f.call_extern(kmalloc, &[64i64.into()], Some(R1));
        f.store8(R0, R1, 0);
        f.call_extern(kfree, &[R1.into()], None);
        f.ret(0i64);
    });
    pb.define("touch", 1, 0, |f| {
        f.global_addr(R1, state);
        f.store8(R0, R1, 0);
        f.load8(R0, R1, 0);
        f.ret(R0);
    });
    pb.define("violate", 0, 0, |f| {
        f.mov(R1, FORBIDDEN);
        f.store8(1i64, R1, 0);
        f.ret(0i64);
    });
    pb.define("badread", 0, 0, |f| {
        f.mov(R1, FORBIDDEN);
        f.load8(R0, R1, 0);
        f.ret(R0);
    });
    pb.define("plant", 2, 0, |f| {
        f.store8(R1, R0, 0);
        f.ret(0i64);
    });

    ModuleSpec {
        name: name.into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

fn call(k: &mut KernelCpu, module: &str, func: &str, args: &[Word]) -> Result<Word, KernelError> {
    let id = k.module_id(module).expect("module published");
    let addr = k.module_fn_addr(id, func).expect("function exists");
    k.enter(|k| k.invoke_module_function(addr, args, None))
}

fn expect_fault(r: Result<Word, KernelError>) -> lxfi_kernel::ModuleFault {
    match r {
        Err(KernelError::ModuleFault(f)) => *f,
        other => panic!("expected a module fault, got {other:?}"),
    }
}

#[test]
fn fuel_exhaustion_quarantines_without_oops() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(faulty_spec("m")).unwrap();
    k.set_fault_plan(Arc::new(FaultPlan::single(1, "m", FaultSite::Fuel, 1)));
    let fault = expect_fault(call(&mut k, "m", "touch", &[7]));
    assert_eq!(fault.id, Some(id));
    assert_eq!(fault.module, "m");
    assert!(
        !fault.oopsed,
        "fuel exhaustion is the module's bug, no oops"
    );
    assert!(fault.violation.is_none(), "not a policy violation");
    assert!(k.panic_reason().is_none());
    assert!(!k.module_is_live(id));
    // The kernel keeps serving: a fresh instance loads into the freed
    // slot (injection still targets "m", so disarm first).
    k.clear_fault_plan();
    let id2 = k.load_module(faulty_spec("m")).unwrap();
    assert_eq!(id2, id, "slot scrubbed and reused");
    assert_eq!(call(&mut k, "m", "touch", &[7]).unwrap(), 7);
}

#[test]
fn machine_fault_oopses_and_quarantines() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(faulty_spec("m")).unwrap();
    let fault = expect_fault(call(&mut k, "m", "badread", &[]));
    assert_eq!(fault.id, Some(id));
    assert!(fault.oopsed, "a machine fault still runs the oops handler");
    assert!(k.panic_reason().is_none(), "oops is not a kernel panic");
    assert!(!k.module_is_live(id));
}

#[test]
fn guard_write_injection_raises_a_real_violation() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(faulty_spec("m")).unwrap();
    let mid = k.runtime_module(id).unwrap();
    let principal = k.runtime_core().shared_principal(mid);
    k.set_fault_plan(Arc::new(FaultPlan::single(
        2,
        "m",
        FaultSite::GuardWrite,
        1,
    )));
    let fault = expect_fault(call(&mut k, "m", "touch", &[7]));
    assert_eq!(fault.module, "m");
    assert_eq!(fault.principal, Some(principal), "attributed by principal");
    assert!(
        matches!(fault.violation, Some(Violation::MissingWrite { principal: p, .. }) if p == principal),
        "synthesized violation names the real executing principal: {:?}",
        fault.violation
    );
    assert!(k.panic_reason().is_none());
}

#[test]
fn rogue_store_injection_is_attributed_and_contained() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(faulty_spec("m")).unwrap();
    k.set_fault_plan(Arc::new(FaultPlan::single(
        3,
        "m",
        FaultSite::RogueStore,
        1,
    )));
    let fault = expect_fault(call(&mut k, "m", "touch", &[7]));
    assert_eq!(fault.id, Some(id));
    assert!(
        matches!(
            fault.violation,
            Some(Violation::MissingWrite { addr, .. }) if addr == lxfi_kernel::KDATA_BASE
        ),
        "the rogue store went through the REAL guard machinery: {:?}",
        fault.violation
    );
    assert!(k.panic_reason().is_none());
}

#[test]
fn alloc_injection_returns_null_without_faulting() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(faulty_spec("m")).unwrap();
    k.set_fault_plan(Arc::new(FaultPlan::single(4, "m", FaultSite::Alloc, 1)));
    // `tidy` stores through the NULL pointer, which IS a policy
    // violation — allocation-failure injection exercises the module's
    // (absent) error path and containment catches the consequence.
    let fault = expect_fault(call(&mut k, "m", "tidy", &[7]));
    assert!(
        matches!(
            fault.violation,
            Some(Violation::MissingWrite { addr: 0, .. })
        ),
        "store through injected NULL: {:?}",
        fault.violation
    );
    assert_eq!(k.slab().live_count(), 0, "no allocation was handed out");
    assert!(k.panic_reason().is_none());
}

#[test]
fn poisoned_fn_ptr_slot_stays_dead_forever() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(faulty_spec("m")).unwrap();
    let mid = k.runtime_module(id).unwrap();
    let core = k.runtime_core();
    let slot = k.kstatic_alloc(8);
    core.grant(core.shared_principal(mid), RawCap::write(slot, 8));
    let target = k.module_fn_addr(id, "touch").unwrap();
    call(&mut k, "m", "plant", &[slot, target]).unwrap();
    assert_eq!(k.mem.read_word(slot).unwrap(), target, "pointer planted");

    // Crash the module. Its WRITE coverage of the slot moves to the
    // tombstone principal, which holds CALL to nothing.
    let fault = expect_fault(call(&mut k, "m", "violate", &[]));
    assert_eq!(fault.id, Some(id));

    // The kernel now trips over the planted pointer: refused, and the
    // refusal is a fault record blamed on dead code — not a panic, not
    // a quarantine of anyone alive.
    let r = k.enter(|k| k.indirect_call(slot, "poisoned_t", &[7]));
    let fault = expect_fault(r);
    assert_eq!(fault.id, None, "no live module to blame");
    assert!(
        matches!(fault.violation, Some(Violation::IndCallUnauthorized { slot: s, .. }) if s == slot),
        "{:?}",
        fault.violation
    );
    assert!(k.panic_reason().is_none());

    // Even after a new tenant occupies the slot's window, the kstatic
    // slot stays poisoned: the tombstone's coverage there is permanent.
    let id2 = k.load_module(faulty_spec("m")).unwrap();
    assert_eq!(id2, id);
    let r = k.enter(|k| k.indirect_call(slot, "poisoned_t", &[7]));
    let fault = expect_fault(r);
    assert_eq!(fault.id, None);
    assert!(k.panic_reason().is_none());
}

#[test]
fn unattributable_policy_violation_still_panics() {
    // `lxfi_princ_alias` from kernel context: a policy violation with no
    // module on the stack and no culprit principal — the kernel's OWN
    // invariant broke, so the kernel-wide panic flag is correct.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let r = k.enter(|k| k.princ_alias_current(1, 2));
    assert!(matches!(r, Err(KernelError::Panic(_))), "{r:?}");
    assert!(k.panic_reason().is_some());
}

/// One load → traffic → crash cycle; returns nothing, asserts the fault
/// was contained.
fn crash_cycle(k: &mut Kernel) {
    let id = k.load_module(faulty_spec("m")).unwrap();
    call(k, "m", "tidy", &[3]).unwrap();
    let leaked = call(k, "m", "work", &[5]).unwrap();
    assert_ne!(leaked, 0);
    call(k, "m", "touch", &[9]).unwrap();
    let fault = expect_fault(call(k, "m", "violate", &[]));
    assert_eq!(fault.id, Some(id));
    assert!(k.panic_reason().is_none());
}

/// The resource levels the leak gate compares (all gauges, no
/// monotonic counters): live principals, live slab objects, interned
/// writer sets, and writer-index intervals.
fn gauges(k: &Kernel) -> (u64, u64, usize, usize) {
    let core = k.runtime_core();
    let (live, _retired) = core.principal_gauges();
    (
        live,
        k.slab().live_count() as u64,
        core.index_set_count(),
        k.rt.index_interval_count(),
    )
}

#[test]
fn hundred_crash_recover_cycles_leak_nothing() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    // One cycle to reach steady state: the first crash leaves the
    // tombstone covering the dead window until the slot is reused, and
    // every later cycle ends in exactly that state.
    crash_cycle(&mut k);
    let steady = gauges(&k);
    let (_, retired_per_cycle) = k.runtime_core().principal_gauges();
    for cycle in 0..100 {
        crash_cycle(&mut k);
        assert_eq!(
            gauges(&k),
            steady,
            "resource gauges must return to steady state (cycle {cycle})"
        );
    }
    let (_, retired) = k.runtime_core().principal_gauges();
    assert_eq!(
        retired,
        retired_per_cycle * 101,
        "each crash retires exactly the module's own principals"
    );
    assert_eq!(k.fault_count(), 101, "one fault record per crash");
    k.rt.check_index_invariants();
}

#[test]
fn supervisor_restarts_after_backoff() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut sup = Supervisor::new(RestartPolicy {
        max_consecutive_failures: 3,
        base_backoff: 2,
        max_backoff: 8,
        probation: 4,
    });
    sup.supervise(
        &mut k,
        "m",
        IsolationMode::Lxfi,
        Box::new(|| faulty_spec("m")),
    )
    .unwrap();
    expect_fault(call(&mut k, "m", "violate", &[]));

    // Tick 1 sees the fault and schedules the restart 2 ticks out.
    let ev = sup.tick(&mut k);
    assert!(matches!(
        ev[0],
        SupervisorEvent::Faulted { consecutive: 1, .. }
    ));
    assert!(matches!(
        sup.state("m"),
        Some(SupervisedState::Backoff { .. })
    ));
    assert!(k.module_id("m").is_none(), "dead during backoff");

    // Not due yet.
    assert!(sup.tick(&mut k).is_empty());
    // Due: restarted from the pristine spec.
    let ev = sup.tick(&mut k);
    assert!(
        matches!(
            ev[0],
            SupervisorEvent::Restarted {
                after_backoff: 2,
                ..
            }
        ),
        "{ev:?}"
    );
    assert_eq!(sup.restarts("m"), 1);
    assert_eq!(call(&mut k, "m", "touch", &[11]).unwrap(), 11);
}

#[test]
fn crash_loop_detection_gives_up_and_kernel_degrades_gracefully() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let healthy = k.load_module(faulty_spec("healthy")).unwrap();
    let mut sup = Supervisor::new(RestartPolicy {
        max_consecutive_failures: 3,
        base_backoff: 1,
        max_backoff: 4,
        probation: 100, // never forgiven within this test
    });
    sup.supervise(
        &mut k,
        "m",
        IsolationMode::Lxfi,
        Box::new(|| faulty_spec("m")),
    )
    .unwrap();

    let mut crash_looping = false;
    for _ in 0..64 {
        if matches!(sup.state("m"), Some(SupervisedState::Running(_))) && k.module_id("m").is_some()
        {
            expect_fault(call(&mut k, "m", "violate", &[]));
        }
        for e in sup.tick(&mut k) {
            if matches!(e, SupervisorEvent::CrashLooping { .. }) {
                crash_looping = true;
            }
        }
        // Healthy traffic continues throughout the crash loop.
        assert_eq!(call(&mut k, "healthy", "touch", &[5]).unwrap(), 5);
    }
    assert!(crash_looping, "the crash loop was detected");
    assert_eq!(sup.state("m"), Some(SupervisedState::Dead));
    assert_eq!(sup.restarts("m"), 2, "restarted twice, then given up on");
    assert!(k.module_id("m").is_none(), "left dead");
    assert!(k.panic_reason().is_none());
    assert!(k.module_is_live(healthy));
}

#[test]
fn probation_resets_the_failure_streak() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut sup = Supervisor::new(RestartPolicy {
        max_consecutive_failures: 2,
        base_backoff: 1,
        max_backoff: 4,
        probation: 3,
    });
    sup.supervise(
        &mut k,
        "m",
        IsolationMode::Lxfi,
        Box::new(|| faulty_spec("m")),
    )
    .unwrap();
    // Crash once, recover, then stay healthy past probation: the streak
    // clears, so a LATER crash is "first offense" again, not the fatal
    // second strike.
    expect_fault(call(&mut k, "m", "violate", &[]));
    sup.tick(&mut k); // fault seen, backoff 1
    sup.tick(&mut k); // restarted
    assert!(matches!(sup.state("m"), Some(SupervisedState::Running(_))));
    for _ in 0..4 {
        call(&mut k, "m", "touch", &[1]).unwrap();
        sup.tick(&mut k);
    }
    expect_fault(call(&mut k, "m", "violate", &[]));
    sup.tick(&mut k);
    assert!(
        matches!(sup.state("m"), Some(SupervisedState::Backoff { .. })),
        "streak was reset by probation; module is restartable, not dead: {:?}",
        sup.state("m")
    );
}
