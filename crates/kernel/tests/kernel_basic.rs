//! End-to-end tests of the kernel substrate with a toy module: wrapper
//! semantics, capability grants from annotations, guard enforcement, the
//! §1 `spin_lock_init` attack, and the PCI probe/alias flow of Figure 4.

use lxfi_core::Violation;
use lxfi_kernel::{IsolationMode, Kernel, KernelCpu, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Trap, Word};
use lxfi_rewriter::InterfaceSpec;

/// A toy module:
/// - `alloc_and_fill(n)`: kmalloc(n), write n bytes, return the pointer.
/// - `overflow(n)`: kmalloc(n), then write at offset n (one past the end).
/// - `attack_lock(addr)`: call spin_lock_init(addr) — the §1 attack when
///   addr is `&current->uid`.
/// - `free(p)`: kfree(p).
/// - `wild_write(addr, v)`: raw 8-byte store to an arbitrary address.
fn toy_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("toy");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");
    let spin_lock_init = pb.import_func("spin_lock_init");

    pb.define("alloc_and_fill", 1, 0, |f| {
        let out = f.label();
        let loop_top = f.label();
        f.mov(R5, R0); // n
        f.call_extern(kmalloc, &[R0.into()], Some(R1));
        f.br(lxfi_machine::Cond::Eq, R1, 0i64, out);
        f.mov(R2, 0i64); // i
        f.bind(loop_top);
        f.br(lxfi_machine::Cond::Eq, R2, R5, out);
        f.add(R3, R1, R2);
        f.store(0xabi64, R3, 0, lxfi_machine::Width::B1);
        f.add(R2, R2, 1i64);
        f.jmp(loop_top);
        f.bind(out);
        f.ret(R1);
    });

    pb.define("overflow", 1, 0, |f| {
        f.mov(R5, R0);
        f.call_extern(kmalloc, &[R0.into()], Some(R1));
        f.add(R2, R1, R5);
        f.store(0xeei64, R2, 0, lxfi_machine::Width::B1); // one past end
        f.ret(R1);
    });

    pb.define("attack_lock", 1, 0, |f| {
        f.call_extern(spin_lock_init, &[R0.into()], None);
        f.ret(0i64);
    });

    pb.define("free", 1, 0, |f| {
        f.call_extern(kfree, &[R0.into()], None);
        f.ret(0i64);
    });

    pb.define("wild_write", 2, 0, |f| {
        f.store8(R1, R0, 0);
        f.ret(0i64);
    });

    ModuleSpec {
        name: "toy".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

fn call(k: &mut KernelCpu, module: &str, func: &str, args: &[Word]) -> Result<Word, Trap> {
    let id = k.module_id(module).unwrap();
    let addr = k.module_fn_addr(id, func).unwrap();
    k.invoke_module_function(addr, args, None)
}

#[test]
fn stock_module_runs_unchecked() {
    let mut k = Kernel::boot(IsolationMode::Stock);
    k.load_module(toy_spec()).unwrap();
    let p = call(&mut k, "toy", "alloc_and_fill", &[64]).unwrap();
    assert_ne!(p, 0);
    assert_eq!(k.mem.read(p, lxfi_machine::Width::B1).unwrap(), 0xab);
    // Stock: overflowing the allocation silently corrupts the heap.
    let q = call(&mut k, "toy", "overflow", &[64]).unwrap();
    assert_eq!(k.mem.read(q + 64, lxfi_machine::Width::B1).unwrap(), 0xee);
}

#[test]
fn lxfi_module_can_use_granted_memory() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let p = call(&mut k, "toy", "alloc_and_fill", &[64]).unwrap();
    assert_ne!(p, 0);
    assert_eq!(k.mem.read(p, lxfi_machine::Width::B1).unwrap(), 0xab);
    assert_eq!(
        k.mem.read(p + 63, lxfi_machine::Width::B1).unwrap(),
        0xab,
        "last in-bounds byte written"
    );
}

#[test]
fn lxfi_blocks_heap_overflow_at_first_byte() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let err = call(&mut k, "toy", "overflow", &[64]).unwrap_err();
    let v = err.policy_as::<Violation>().expect("policy violation");
    assert!(
        matches!(v, Violation::MissingWrite { len: 1, .. }),
        "got {v:?}"
    );
}

#[test]
fn lxfi_blocks_wild_writes() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let victim = k.kstatic_alloc(64);
    let err = call(&mut k, "toy", "wild_write", &[victim, 0xdead]).unwrap_err();
    assert!(err.policy_as::<Violation>().is_some());
    // Stock lets the same write through.
    let mut k = Kernel::boot(IsolationMode::Stock);
    k.load_module(toy_spec()).unwrap();
    let victim = k.kstatic_alloc(64);
    call(&mut k, "toy", "wild_write", &[victim, 0xdead]).unwrap();
    assert_eq!(k.mem.read_word(victim).unwrap(), 0xdead);
}

#[test]
fn section_one_spin_lock_init_attack() {
    // The module passes &current->uid to spin_lock_init, which would
    // write 0 (root) there. Stock: escalation. LXFI: MissingWrite.
    let mut k = Kernel::boot(IsolationMode::Stock);
    k.load_module(toy_spec()).unwrap();
    let uid_addr = (k.procs().current_task() as i64 + lxfi_kernel::process::task::UID) as u64;
    assert_eq!(k.procs().current_uid(&k.mem), 1000);
    call(&mut k, "toy", "attack_lock", &[uid_addr]).unwrap();
    assert_eq!(k.procs().current_uid(&k.mem), 0, "stock kernel: root!");

    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let uid_addr = (k.procs().current_task() as i64 + lxfi_kernel::process::task::UID) as u64;
    let err = call(&mut k, "toy", "attack_lock", &[uid_addr]).unwrap_err();
    assert!(matches!(
        err.policy_as::<Violation>(),
        Some(Violation::MissingWrite { .. })
    ));
    assert_eq!(k.procs().current_uid(&k.mem), 1000, "uid intact");
}

#[test]
fn legitimate_spin_lock_init_works() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    // A lock inside module-owned memory is fine.
    let p = call(&mut k, "toy", "alloc_and_fill", &[64]).unwrap();
    call(&mut k, "toy", "attack_lock", &[p + 8]).unwrap();
    assert_eq!(k.mem.read_word(p + 8).unwrap(), 0);
}

#[test]
fn kfree_strips_capabilities() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let p = call(&mut k, "toy", "alloc_and_fill", &[64]).unwrap();
    call(&mut k, "toy", "free", &[p]).unwrap();
    // After free, writing through the stale pointer must be denied.
    let err = call(&mut k, "toy", "wild_write", &[p, 1]).unwrap_err();
    assert!(matches!(
        err.policy_as::<Violation>(),
        Some(Violation::MissingWrite { .. })
    ));
}

#[test]
fn double_free_of_unowned_memory_denied() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    let p = call(&mut k, "toy", "alloc_and_fill", &[64]).unwrap();
    call(&mut k, "toy", "free", &[p]).unwrap();
    let err = call(&mut k, "toy", "free", &[p]).unwrap_err();
    assert!(
        matches!(
            err.policy_as::<Violation>(),
            Some(Violation::MissingWrite { .. })
        ),
        "kfree's check(write, ptr) rejects freeing unowned memory"
    );
}

#[test]
fn unannotated_exports_are_uncallable() {
    // Register an unannotated export, import it from a module: the safe
    // default denies the call (§2.2).
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.export(
        "forgot_to_annotate",
        vec![],
        None,
        std::sync::Arc::new(|_k, _a| Ok(7)),
    );
    let mut pb = ProgramBuilder::new("m");
    let sym = pb.import_func("forgot_to_annotate");
    pb.define("go", 0, 0, |f| {
        f.call_extern(sym, &[], Some(R0));
        f.ret(R0);
    });
    k.load_module(ModuleSpec {
        name: "m".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    })
    .unwrap();
    let err = call(&mut k, "m", "go", &[]).unwrap_err();
    assert!(matches!(
        err.policy_as::<Violation>(),
        Some(Violation::UnannotatedFunction { .. })
    ));
}

#[test]
fn module_cannot_call_unimported_exports() {
    // detach_pid-style: a module with no import of `spin_lock_init` makes
    // an indirect call to its address; no CALL capability → denied.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut pb = ProgramBuilder::new("m");
    let sig = pb.sig("lockinit_t", 1);
    pb.define("sneak", 2, 0, |f| {
        // r0 = target address (smuggled in as data), r1 = lock addr.
        f.call_ptr(R0, sig, &[R1.into()], Some(R0));
        f.ret(R0);
    });
    let mut iface = InterfaceSpec::new();
    iface.declare_sig(lxfi_core::FnDecl::new(
        "lockinit_t",
        vec![lxfi_core::Param::ptr("lock", "spinlock_t")],
        lxfi_annotations::parse_fn_annotations("pre(check(write, lock))").unwrap(),
    ));
    k.load_module(ModuleSpec {
        name: "m".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: None,
    })
    .unwrap();
    let target = k.export_addr("spin_lock_init").unwrap();
    let err = call(&mut k, "m", "sneak", &[target, 0x5000]).unwrap_err();
    assert!(matches!(
        err.policy_as::<Violation>(),
        Some(Violation::MissingCall { .. })
    ));
}

#[test]
fn enter_quarantines_module_violations_without_panicking() {
    // A policy violation raised while a module executes is the MODULE's
    // fault: the kernel quarantines it and keeps serving — the kernel
    // panic flag is reserved for the kernel's own invariants.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(toy_spec()).unwrap();
    let r = k.enter(|k| call(k, "toy", "overflow", &[64]));
    let fault = match r {
        Err(lxfi_kernel::KernelError::ModuleFault(f)) => *f,
        other => panic!("expected ModuleFault, got {other:?}"),
    };
    assert_eq!(fault.module, "toy");
    assert_eq!(fault.id, Some(id));
    assert!(!fault.oopsed, "policy violations do not oops");
    assert!(
        matches!(fault.violation, Some(Violation::MissingWrite { .. })),
        "structured violation travels in the fault record: {:?}",
        fault.violation
    );
    assert!(k.panic_reason().is_none(), "kernel did not panic");
    assert!(k.last_violation().is_some(), "violation still reportable");
    assert!(!k.module_is_live(id), "the faulting module is quarantined");
    // The kernel keeps serving: the quarantined module's name is gone,
    // and a fresh instance can be loaded and used immediately.
    assert!(k.module_id("toy").is_none(), "name unpublished");
    let id2 = k.load_module(toy_spec()).unwrap();
    assert_eq!(id2, id, "the quarantined slot is scrubbed and reused");
    assert!(k.enter(|k| call(k, "toy", "alloc_and_fill", &[8])).is_ok());
}

#[test]
fn oops_path_zeroes_clear_child_tid() {
    // CVE-2010-4258's primitive, reproduced by the oops handler.
    let mut k = Kernel::boot(IsolationMode::Stock);
    k.load_module(toy_spec()).unwrap();
    let victim = k.kstatic_alloc(8);
    k.mem.write_word(victim, 0xffff_ffff_ffff_ffff).unwrap();
    let task = k.procs().current_task();
    k.mem
        .write_word(
            (task as i64 + lxfi_kernel::process::task::CLEAR_CHILD_TID) as u64,
            victim,
        )
        .unwrap();
    // Trigger a NULL dereference inside the module.
    let r = k.enter(|k| call(k, "toy", "wild_write", &[0, 1]));
    assert!(matches!(r, Err(lxfi_kernel::KernelError::Oops(_))));
    // do_exit wrote a 4-byte zero through clear_child_tid.
    assert_eq!(k.mem.read_word(victim).unwrap(), 0xffff_ffff_0000_0000);
}

#[test]
fn thread_stack_is_writable_without_explicit_caps() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let mut pb = ProgramBuilder::new("m");
    pb.define("stackuse", 0, 32, |f| {
        // Taking the address of a local and storing through it exercises
        // the dynamic stack-write path (not the elided StoreFrame path).
        f.frame_addr(R1, 8);
        f.store8(42i64, R1, 0);
        f.load8(R0, R1, 0);
        f.ret(R0);
    });
    k.load_module(ModuleSpec {
        name: "m".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    })
    .unwrap();
    assert_eq!(call(&mut k, "m", "stackuse", &[]).unwrap(), 42);
}

#[test]
fn guard_stats_are_recorded() {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.load_module(toy_spec()).unwrap();
    call(&mut k, "toy", "alloc_and_fill", &[16]).unwrap();
    use lxfi_core::GuardKind;
    assert!(k.rt.stats.count(GuardKind::MemWrite) >= 16);
    assert!(k.rt.stats.count(GuardKind::FunctionEntry) >= 1);
    assert!(k.rt.stats.count(GuardKind::FunctionExit) >= 1);
    assert!(k.rt.stats.count(GuardKind::AnnotationAction) >= 1);
    assert!(k.rt.stats.total_cycles() > 0);
}
