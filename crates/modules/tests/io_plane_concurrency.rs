//! Races of the async I/O plane: one CPU drives wire RX traffic through
//! the real e1000 driver's NAPI poll loop while another CPU unloads the
//! module mid-stream.
//!
//! The exactness oracle is frame accounting by wire sequence number.
//! `net_rx_wire` stamps every accepted frame with a monotonically
//! increasing seq (word 1 of the frame payload, which the driver's
//! copybreak preserves into the delivered skb), so after quiescence
//! every accepted frame must be **exactly once** either
//!
//! - delivered: sitting in the protocol layer's `rx_queue`, or
//! - parked: still on the device ring between the driver's published
//!   tail and the hardware head (the driver died before consuming it).
//!
//! A frame in both places means a poll was killed between `netif_rx`
//! and its tail publication (the unload grace period failed to wait out
//! an in-flight bottom half); a frame in neither means the mux dropped
//! scheduled work. Both are isolation bugs, not flake.

use std::sync::{Arc, Barrier};
use std::thread;

use lxfi_kernel::net::{RX_RING_OFFSET, RX_RING_SLOTS, RX_SLOT_SIZE, RX_TAIL_REG};
use lxfi_kernel::types::sk_buff;
use lxfi_kernel::{IsolationMode, Kernel};
use lxfi_modules as mods;

/// Frames wired per racer burst (under the ring's 16 slots, so bursts
/// only drop once the dead driver stops consuming).
const BURST: u64 = 4;
/// Racer bursts after the barrier; bounded so the racer terminates even
/// when the unload wins instantly and every poll evaporates.
const RACER_ROUNDS: u64 = 64;
/// Warmup bursts before the race (guarantees a non-empty delivered set).
const WARMUP: u64 = 2;

fn boot_e1000() -> (Kernel, u64) {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(mods::e1000::spec()).unwrap();
    let n = k.enter(|k| k.pci_probe_all()).unwrap();
    assert_eq!(n, 1, "e1000 bound to the NIC");
    let dev = *k.net().devices.last().unwrap();
    (k, dev)
}

/// Barrier-phased race: the racer CPU loops wire→flush bursts while the
/// main CPU unloads the driver. Every burst must complete cleanly —
/// after the unload lands, wires still hit the (kernel-owned) ring and
/// the scheduled polls evaporate at dispatch, never trap. Repeats so
/// the unload lands at different points of the poll loop.
#[test]
fn rx_poll_races_unload_with_exact_frame_accounting() {
    for round in 0..8 {
        let (mut k, dev) = boot_e1000();
        let id = k.module_id("e1000").unwrap();
        for _ in 0..WARMUP {
            k.enter(|k| k.net_deliver_rx(dev, BURST)).unwrap();
        }

        let mut cpu = k.new_cpu();
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let racer = thread::spawn(move || {
            b2.wait();
            for _ in 0..RACER_ROUNDS {
                cpu.enter(|k| k.net_deliver_rx(dev, BURST))
                    .unwrap_or_else(|e| panic!("RX burst killed by the unload: {e}"));
            }
        });
        barrier.wait();
        k.unload_module(id).unwrap();
        racer.join().expect("racer must not panic");

        assert!(k.panic_reason().is_none(), "{:?}", k.panic_reason());
        assert_eq!(k.fault_count(), 0, "a clean unload attributes no fault");

        // Delivered seqs, in protocol-queue order (copybreak preserves
        // the wire seq at data word 1).
        let skbs = k.net().rx_queue.clone();
        let mut delivered = Vec::with_capacity(skbs.len());
        for skb in skbs {
            let data = k.mem.read_word(skb + sk_buff::DATA as u64).unwrap();
            delivered.push(k.mem.read_word(data + 8).unwrap());
        }
        assert!(
            delivered.len() as u64 >= WARMUP * BURST,
            "warmup bursts were delivered pre-race"
        );
        assert!(
            delivered.windows(2).all(|w| w[0] < w[1]),
            "polls deliver in wire order, round {round}: {delivered:?}"
        );

        // Ring residue: frames accepted but unconsumed when the driver
        // died — the ring (kernel state) outlives its driver.
        let (mmio, head, wire_seq) = {
            let net = k.net();
            let r = net.rx_ring(dev).expect("ring survives the driver");
            (r.mmio, r.head, r.wire_seq)
        };
        let tail = k.mem.read_word(mmio + RX_TAIL_REG).unwrap();
        let mut on_ring = Vec::new();
        for i in tail..head {
            let slot = mmio + RX_RING_OFFSET + (i % RX_RING_SLOTS) * RX_SLOT_SIZE;
            on_ring.push(k.mem.read_word(slot + 16).unwrap());
        }

        // The accounting oracle: delivered ⊎ on-ring = accepted, as a
        // multiset — which also proves no duplicate delivery and no
        // frame both delivered and left on the ring.
        let mut seen = delivered.clone();
        seen.extend(&on_ring);
        seen.sort_unstable();
        let expect: Vec<u64> = (0..wire_seq).collect();
        assert_eq!(
            seen, expect,
            "delivered ∪ on-ring must equal the accepted frames, round {round}"
        );

        // Overrun accounting closes the books: every wired frame was
        // accepted or counted as dropped (the dead driver stops
        // consuming, so late bursts overrun the 16-slot ring).
        let attempted = (WARMUP + RACER_ROUNDS) * BURST;
        assert_eq!(
            wire_seq + k.net().rx_dropped(),
            attempted,
            "accepted + dropped = wired, round {round}"
        );

        // Draining the survivors leaves no slab residue: the dead
        // driver's own objects were swept at unload, and every
        // delivered skb is accounted for above.
        k.enter(|k| k.net_drain_rx()).unwrap();
        assert_eq!(k.slab().live_count(), 0, "no leaked skbs, round {round}");
        k.rt.check_index_invariants();
    }
}

/// The evaporation contract in isolation (single-threaded, exact): work
/// scheduled before an unload but dispatched after it returns cleanly,
/// and the frames it would have consumed stay parked on the ring.
#[test]
fn polls_scheduled_before_unload_evaporate_after_it() {
    let (mut k, dev) = boot_e1000();
    let id = k.module_id("e1000").unwrap();
    // Wire without flushing: the interrupt asserts and the poll goes
    // pending on the deferred mux.
    k.net_rx_wire(dev, 3).unwrap();
    let ring = k.net().rx_ring(dev).map(|r| (r.head, r.wire_seq)).unwrap();
    assert_eq!(ring, (3, 3));
    k.unload_module(id).unwrap();
    // The pending poll dispatches against a dead module: it evaporates
    // (Ok, zero frames) rather than trapping, and the frames survive.
    let delivered = k.net_rx_flush(dev).unwrap();
    assert_eq!(delivered, 0, "a dead driver's poll delivers nothing");
    assert!(k.panic_reason().is_none());
    assert_eq!(k.fault_count(), 0);
    let r_head = k.net().rx_ring(dev).map(|r| r.head).unwrap();
    let tail = {
        let mmio = k.net().rx_ring(dev).map(|r| r.mmio).unwrap();
        k.mem.read_word(mmio + RX_TAIL_REG).unwrap()
    };
    assert_eq!(r_head - tail, 3, "all three frames still parked");
    assert!(k.net().rx_queue.is_empty());
}
