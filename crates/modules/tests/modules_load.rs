//! Loads all ten modules under Stock and LXFI and exercises their main
//! data paths: the e1000 TX/RX cycle, socket protocol traffic, PCM
//! triggers, and device-mapper I/O.

use lxfi_kernel::{IsolationMode, Kernel, KernelCpu};
use lxfi_modules as mods;

fn boot_with_all(mode: IsolationMode) -> Kernel {
    let mut k = Kernel::boot(mode);
    k.pci_add_device(0x8086, 0x100e, 11); // an e1000 NIC
    for spec in mods::all_specs() {
        k.load_module(spec).unwrap_or_else(|e| panic!("load: {e}"));
    }
    k
}

#[test]
fn all_modules_load_in_both_modes() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let k = boot_with_all(mode);
        for name in [
            "e1000",
            "snd-intel8x0",
            "snd-ens1370",
            "rds",
            "can",
            "can-bcm",
            "econet",
            "dm-crypt",
            "dm-zero",
            "dm-snapshot",
        ] {
            assert!(k.module_id(name).is_some(), "{name} loaded under {mode:?}");
        }
    }
}

fn e1000_up(k: &mut KernelCpu) -> u64 {
    let n = k.enter(|k| k.pci_probe_all()).unwrap();
    assert_eq!(n, 1, "e1000 bound to the NIC");
    *k.net().devices.last().unwrap()
}

#[test]
fn e1000_tx_rx_cycle_both_modes() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let mut k = boot_with_all(mode);
        let dev = e1000_up(&mut k);
        // TX: 32 packets through the rewritten kernel thunk and the
        // module's xmit, which writes the MMIO descriptor ring.
        for i in 0..32 {
            let ret = k.enter(|k| k.net_send_packet(dev, 64 + i)).unwrap();
            assert_eq!(ret, 0, "NETDEV_TX_OK under {mode:?}");
        }
        assert_eq!(k.net_tx_packets(dev), 32, "driver counted TX packets");
        // RX: NAPI poll delivers frames to netif_rx inside an interrupt.
        let delivered = k.enter(|k| k.net_deliver_rx(dev, 16)).unwrap();
        assert_eq!(delivered, 16, "poll delivered the budget under {mode:?}");
        assert_eq!(k.enter(|k| k.net_drain_rx()).unwrap(), 16);
        assert!(k.panic_reason().is_none(), "no panic under {mode:?}");
    }
}

/// The NAPI mechanics, observed directly: interrupt assertion masks
/// further assertion, frames that would lap the tail drop and count, a
/// budget-exhausting poll re-arms (the second dispatch finds the ring
/// empty and `napi_complete` unmasks), and an early-returning poll
/// completes in one dispatch.
#[test]
fn napi_masking_budget_rearm_and_overrun() {
    use lxfi_kernel::net::{NAPI_BUDGET, RX_RING_SLOTS};
    let mut k = boot_with_all(IsolationMode::Lxfi);
    let dev = e1000_up(&mut k);

    // Fill the ring without flushing: the first frame asserts (and
    // masks) the RX interrupt, the rest land silently.
    assert_eq!(k.net_rx_wire(dev, RX_RING_SLOTS).unwrap(), RX_RING_SLOTS);
    assert!(k.net().rx_ring(dev).unwrap().masked, "assertion masks");
    assert_eq!(k.deferred_stats().2, 1, "one pending poll, not sixteen");
    // A full ring overruns: drops are counted, nothing is scheduled.
    assert_eq!(k.net_rx_wire(dev, 4).unwrap(), 0);
    assert_eq!(k.net().rx_dropped(), 4);
    assert_eq!(k.deferred_stats().2, 1, "masked: no further assertion");

    // Flush: poll #1 consumes exactly its budget and re-arms; poll #2
    // finds the ring empty, returns early, and napi_complete unmasks.
    let before = k.deferred_stats().0;
    assert_eq!(k.net_rx_flush(dev).unwrap(), NAPI_BUDGET);
    assert_eq!(k.deferred_stats().0 - before, 2, "budget poll + re-arm");
    assert!(!k.net().rx_ring(dev).unwrap().masked, "complete unmasks");

    // Below budget: one assertion, one dispatch, done.
    let before = k.deferred_stats().0;
    assert_eq!(k.net_deliver_rx(dev, 2).unwrap(), 2);
    assert_eq!(k.deferred_stats().0 - before, 1, "no spurious re-arm");
    assert!(!k.net().rx_ring(dev).unwrap().masked);

    assert_eq!(
        k.enter(|k| k.net_drain_rx()).unwrap(),
        RX_RING_SLOTS + 2,
        "every accepted frame was delivered exactly once"
    );
    assert!(k.panic_reason().is_none());
}

#[test]
fn e1000_guard_traffic_only_under_lxfi() {
    use lxfi_core::GuardKind;
    let mut k = boot_with_all(IsolationMode::Lxfi);
    let dev = e1000_up(&mut k);
    k.rt.stats.reset();
    k.enter(|k| k.net_send_packet(dev, 512)).unwrap();
    assert!(k.rt.stats.count(GuardKind::MemWrite) > 0);
    assert!(k.rt.stats.count(GuardKind::AnnotationAction) > 0);
    assert!(k.rt.stats.count(GuardKind::KernelIndCall) > 0);

    let mut k = boot_with_all(IsolationMode::Stock);
    let dev = e1000_up(&mut k);
    k.rt.stats.reset();
    k.enter(|k| k.net_send_packet(dev, 512)).unwrap();
    assert_eq!(k.rt.stats.total_count(), 0, "stock runs guard-free");
}

#[test]
fn socket_protocols_speak() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let mut k = boot_with_all(mode);
        // econet: send accounting.
        let esock = k
            .enter(|k| k.sys_socket(mods::econet::ECONET_FAMILY))
            .unwrap();
        let buf = k.user_alloc(64);
        k.mem.write_word(buf, 7).unwrap(); // a benign tag
        let sent = k.enter(|k| k.sys_sendmsg(esock, buf, 48)).unwrap();
        assert_eq!(sent, 48, "econet sendmsg under {mode:?}");
        let q = k.enter(|k| k.sys_ioctl(esock, 0, 0)).unwrap();
        assert_eq!(q, 48, "ioctl reports queued bytes");

        // can: frame counting via the global stats.
        let csock = k.enter(|k| k.sys_socket(mods::can::CAN_FAMILY)).unwrap();
        k.mem.write_word(buf, 0x123).unwrap();
        k.enter(|k| k.sys_sendmsg(csock, buf, 16)).unwrap();
        k.enter(|k| k.sys_sendmsg(csock, buf, 16)).unwrap();
        assert_eq!(k.enter(|k| k.sys_ioctl(csock, 0, 0)).unwrap(), 2);

        // rds: benign send/recv round trip delivering to a user address.
        let rsock = k.enter(|k| k.sys_socket(mods::rds::RDS_FAMILY)).unwrap();
        let dest = k.user_alloc(8);
        k.mem.write_word(buf, dest).unwrap(); // header.dest = user addr
        k.mem.write_word(buf + 8, 0xfeed).unwrap(); // header.value
        k.enter(|k| k.sys_sendmsg(rsock, buf, 16)).unwrap();
        let r = k.enter(|k| k.sys_recvmsg(rsock, 0, 0));
        match mode {
            IsolationMode::Stock => {
                r.unwrap();
                assert_eq!(k.mem.read_word(dest).unwrap(), 0xfeed);
            }
            IsolationMode::Lxfi => {
                // The module's own store to user memory is not covered by
                // any WRITE capability: LXFI (correctly) rejects the
                // unchecked-copy implementation even for benign targets.
                assert!(r.is_err());
                k.clear_panic();
            }
        }
        assert!(k.panic_reason().is_none(), "no stray panic under {mode:?}");
    }
}

#[test]
fn sound_triggers_both_modes() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let mut k = boot_with_all(mode);
        assert_eq!(k.snd().pcms.len(), 2, "both sound drivers created PCMs");
        let pcms: Vec<_> = k.snd().pcms.iter().map(|&(p, _)| p).collect();
        for pcm in pcms {
            let r = k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            assert_eq!(r, 0, "trigger start under {mode:?}");
            let pos1 = k.enter(|k| k.snd_pointer(pcm)).unwrap();
            let pos2 = k.enter(|k| k.snd_pointer(pcm)).unwrap();
            assert!(pos2 > pos1, "hw pointer advances");
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
    }
}

#[test]
fn device_mapper_targets_work() {
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let mut k = boot_with_all(mode);

        // dm-crypt: the payload must change (it is "encrypted").
        let ti = k
            .enter(|k| k.dm_create(mods::dm_crypt::TARGET_TYPE, 0x1234))
            .unwrap();
        let b = k.enter(|k| k.dm_submit(ti, true, 128, 0x11)).unwrap();
        let payload = k.bio_payload(b).unwrap();
        assert!(payload.iter().any(|&x| x != 0x11), "payload transformed");

        // dm-zero: reads come back zeroed.
        let tz = k
            .enter(|k| k.dm_create(mods::dm_zero::TARGET_TYPE, 0))
            .unwrap();
        let b = k.enter(|k| k.dm_submit(tz, false, 64, 0xaa)).unwrap();
        assert!(k.bio_payload(b).unwrap().iter().all(|&x| x == 0));

        // dm-snapshot: writes bump the COW counter.
        let ts = k
            .enter(|k| k.dm_create(mods::dm_snapshot::TARGET_TYPE, 4))
            .unwrap();
        k.enter(|k| k.dm_submit(ts, true, 64, 0xbb)).unwrap();
        k.enter(|k| k.dm_submit(ts, true, 64, 0xcc)).unwrap();
        let id = k.module_id("dm-snapshot").unwrap();
        let stats = k.module_global_addr(id, "snap_stats").unwrap();
        assert_eq!(k.mem.read_word(stats).unwrap(), 2, "COW copies counted");
        assert!(k.panic_reason().is_none(), "no panic under {mode:?}");
    }
}

#[test]
fn dm_instances_are_isolated_principals() {
    // Two dm-crypt devices: their targets are distinct principals; the
    // capabilities granted while serving device A never include B's
    // dm_target.
    let mut k = boot_with_all(IsolationMode::Lxfi);
    let ta = k
        .enter(|k| k.dm_create(mods::dm_crypt::TARGET_TYPE, 1))
        .unwrap();
    let tb = k
        .enter(|k| k.dm_create(mods::dm_crypt::TARGET_TYPE, 2))
        .unwrap();
    let mid = k.runtime_module(k.module_id("dm-crypt").unwrap()).unwrap();
    let pa = k.rt.principal_for_name(mid, ta);
    let pb = k.rt.principal_for_name(mid, tb);
    assert_ne!(pa, pb);
    use lxfi_core::RawCap;
    assert!(k.rt.owns(pa, RawCap::write(ta, 64)));
    assert!(!k.rt.owns(pa, RawCap::write(tb, 64)), "A cannot write B");
    assert!(k.rt.owns(pb, RawCap::write(tb, 64)));
}

#[test]
fn econet_global_principal_list_management() {
    let mut k = boot_with_all(IsolationMode::Lxfi);
    let s1 = k
        .enter(|k| k.sys_socket(mods::econet::ECONET_FAMILY))
        .unwrap();
    let s2 = k
        .enter(|k| k.sys_socket(mods::econet::ECONET_FAMILY))
        .unwrap();
    let addr = k.user_alloc(16);
    k.mem.write_word(addr, 42).unwrap();
    k.enter(|k| k.sys_bind(s1, addr)).unwrap();
    k.enter(|k| k.sys_bind(s2, addr)).unwrap();
    // List: head -> s2 -> s1.
    let id = k.module_id("econet").unwrap();
    let head = k.module_global_addr(id, "econet_sklist").unwrap();
    assert_eq!(k.mem.read_word(head).unwrap(), s2);

    // Unlinking s1 requires writing s2's link field: works through the
    // global-principal path...
    let unlink = k.module_fn_addr(id, "econet_unlink").unwrap();
    k.enter(|k| k.invoke_module_function(unlink, &[s1], None))
        .unwrap();
    assert_eq!(
        k.mem
            .read_word((s2 as i64 + mods::econet::LIST_NEXT) as u64)
            .unwrap(),
        0,
        "s1 unlinked from s2"
    );

    // ...but NOT as a plain instance principal: the sibling's sock field
    // is off-limits (§3.1).
    k.enter(|k| k.sys_bind(s1, addr)).unwrap(); // re-link s1 (head -> s1)
    let noglobal = k.module_fn_addr(id, "econet_unlink_noglobal").unwrap();
    let r = k.enter(|k| k.invoke_module_function(noglobal, &[s2, s1], None));
    assert!(r.is_err(), "instance principal cannot write sibling sock");
    assert!(matches!(
        k.last_violation(),
        Some(lxfi_core::Violation::MissingWrite { .. })
    ));
}
