//! The e1000 network device driver — the paper's benchmark module (§8.4)
//! and the running example of Figures 1 and 4.
//!
//! Lifecycle, exactly as in Figure 4:
//!
//! 1. `e1000_init` registers the PCI driver.
//! 2. `e1000_probe(pcidev)` runs as the principal named `pcidev` (from
//!    the `principal(pcidev)` annotation on the probe pointer type),
//!    allocates the net_device, performs the statically-coupled
//!    `lxfi_check_pcidev` + `lxfi_princ_alias(pcidev, ndev)` pair so the
//!    same logical principal answers to both names, enables the device,
//!    maps its MMIO ring, installs `e1000_xmit` in the ops table, and
//!    registers NAPI polling.
//! 3. `e1000_xmit(skb, dev)` runs as the principal named `dev` — the
//!    *same* principal thanks to the alias — consumes the packet's
//!    capabilities (transferred by the `ndo_start_xmit` annotation),
//!    copies the payload into the adapter's TX FIFO, writes a TX
//!    descriptor into the MMIO ring, and frees the skb.
//! 4. `e1000_poll(dev, budget)` is the NAPI bottom half: it walks the
//!    RX descriptor ring the "wire" produces into (`net_rx_wire`),
//!    copybreaks each frame into a fresh skb, hands it to `netif_rx`
//!    (which transfers the capabilities away again), and publishes its
//!    consumer cursor back to the tail register — a guarded MMIO store
//!    whose base is loop-invariant, so it hoists like the TX doorbell.
//!    The tail is published *after* `netif_rx`, so a mid-poll crash
//!    leaves the in-flight frame on the ring: delivery is at-least-once
//!    across quarantine/recovery (`docs/io-plane.md`).

use lxfi_core::iface::Param;
use lxfi_kernel::net::{
    NAPI_POLL_ANN, NDO_START_XMIT_ANN, RX_COPYBREAK, RX_FRAME_BYTES, RX_HEAD_REG, RX_RING_OFFSET,
    RX_RING_SLOTS, RX_SLOT_SIZE, RX_TAIL_REG,
};
use lxfi_kernel::pci::PCI_PROBE_ANN;
use lxfi_kernel::types::{net_device, net_device_ops, sk_buff};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder, Width};
use lxfi_rewriter::InterfaceSpec;

/// Driver-private layout (appended to the net_device allocation):
/// `priv[0]` = MMIO base, `priv[8]` = TX ring index.
pub const PRIV_SIZE: u64 = 64;

const PRIV_MMIO: i64 = 0;
const PRIV_RING_IDX: i64 = 8;
/// TX descriptor ring: 16-byte descriptors starting at MMIO+256.
const RING_OFFSET: i64 = 256;
const RING_SLOTS: i64 = 64;
/// TX FIFO staging area at MMIO+1280 (after the ring): `e1000_xmit`
/// copies the payload here 8 bytes at a time before posting the
/// descriptor, like the hardware's copybreak path. The copy is the
/// packet-size-proportional part of transmit — a run of guarded stores
/// into device memory — so per-packet cost tracks execution speed, not
/// just fixed crossing overhead.
const FIFO_OFFSET: i64 = 1280;
/// FIFO write-pointer doorbell in the MMIO register file (below the
/// ring): the copy loop publishes its progress here each chunk, like
/// hardware tail-pointer doorbells. Its base (the MMIO window) and span
/// are loop-invariant, so this is the store whose guard the rewriter's
/// loop-invariant hoisting pass lifts out of the copy loop.
const FIFO_WPTR: i64 = 16;

/// Builds the e1000 module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("e1000");

    let pci_register_driver = pb.import_func("pci_register_driver");
    let pci_enable_device = pb.import_func("pci_enable_device");
    let pci_iomap = pb.import_func("pci_iomap");
    let lxfi_check_pcidev = pb.import_func("lxfi_check_pcidev");
    let lxfi_princ_alias = pb.import_func("lxfi_princ_alias");
    let alloc_etherdev = pb.import_func("alloc_etherdev");
    let register_netdev = pb.import_func("register_netdev");
    let netif_napi_add = pb.import_func("netif_napi_add");
    let netif_rx = pb.import_func("netif_rx");
    let alloc_skb = pb.import_func("alloc_skb");
    let kfree_skb = pb.import_func("kfree_skb");
    let napi_complete = pb.import_func("napi_complete");
    let spin_lock_init = pb.import_func("spin_lock_init");
    let printk = pb.import_func("printk");

    // .data: the ops table (Figure 1's net_device_ops) and a lock.
    let dev_ops = pb.global("e1000_dev_ops", net_device_ops::SIZE);
    let tx_lock = pb.global("e1000_tx_lock", 8);

    let probe = pb.declare("e1000_probe", 1);
    let xmit = pb.declare("e1000_xmit", 2);
    let poll = pb.declare("e1000_poll", 2);

    // module_init: register with the PCI core.
    pb.define("e1000_init", 0, 0, |f| {
        f.func_addr(R0, probe);
        f.call_extern(pci_register_driver, &[R0.into()], None);
        f.ret(0i64);
    });

    // int e1000_probe(struct pci_dev *pcidev) — Figure 4 lines 69-78.
    pb.define("e1000_probe", 1, 0, |f| {
        let fail = f.label();
        f.mov(R10, R0); // pcidev
        f.call_extern(alloc_etherdev, &[(PRIV_SIZE as i64).into()], Some(R11));
        f.br(Cond::Eq, R11, 0i64, fail);
        // The statically-coupled check + alias (Figure 4 lines 72-73):
        // after this, `ndev` names the same principal as `pcidev`.
        f.call_extern(lxfi_check_pcidev, &[R10.into()], None);
        f.call_extern(lxfi_princ_alias, &[R10.into(), R11.into()], None);
        f.call_extern(pci_enable_device, &[R10.into()], None);
        f.call_extern(pci_iomap, &[R10.into()], Some(R12));
        // priv[PRIV_MMIO] = mmio; priv[PRIV_RING_IDX] = 0.
        f.load8(R13, R11, net_device::PRIV);
        f.store8(R12, R13, PRIV_MMIO);
        f.store8(0i64, R13, PRIV_RING_IDX);
        // ndev->dev_ops = &e1000_dev_ops; dev_ops.ndo_start_xmit = myxmit
        // (Figure 1 line 36 — a module write to its own .data).
        f.global_addr(R14, dev_ops);
        f.store8(R14, R11, net_device::DEV_OPS);
        f.func_addr(R15, xmit);
        f.store8(R15, R14, net_device_ops::NDO_START_XMIT);
        // Init the TX lock (legitimate spin_lock_init use).
        f.global_addr(R9, tx_lock);
        f.call_extern(spin_lock_init, &[R9.into()], None);
        // netif_napi_add(ndev, napi, my_poll_cb) — Figure 1 line 37.
        f.func_addr(R8, poll);
        f.call_extern(netif_napi_add, &[R11.into(), R8.into()], None);
        f.call_extern(register_netdev, &[R11.into()], None);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64); // -ENOMEM
        f.ret(R0);
    });

    // netdev_tx_t e1000_xmit(struct sk_buff *skb, struct net_device *dev).
    pb.define("e1000_xmit", 2, 0, |f| {
        // Load payload pointer and length from the skb (we own it now).
        f.load8(R2, R0, sk_buff::DATA);
        f.load8(R3, R0, sk_buff::LEN);
        // priv = dev->priv; mmio = priv[0]; idx = priv[8].
        f.load8(R4, R1, net_device::PRIV);
        f.load8(R5, R4, PRIV_MMIO);
        f.load8(R6, R4, PRIV_RING_IDX);
        // Stage the payload through the adapter TX FIFO (copybreak):
        // copy len bytes, 8 at a time, from skb data into device memory.
        let fifo_top = f.label();
        let fifo_done = f.label();
        f.mov(R9, 0i64);
        f.br(Cond::Eq, R3, 0i64, fifo_done);
        f.bind(fifo_top);
        f.bin(lxfi_machine::BinOp::Add, R10, R2, R9);
        f.load8(R11, R10, 0);
        f.bin(lxfi_machine::BinOp::Add, R12, R5, R9);
        f.store8(R11, R12, FIFO_OFFSET);
        // Publish the copy progress to the doorbell register (mmio is
        // loop-invariant: this guard hoists to the loop header).
        f.store8(R9, R5, FIFO_WPTR);
        f.add(R9, R9, 8i64);
        f.br(Cond::Lt, R9, R3, fifo_top);
        f.bind(fifo_done);
        // slot = mmio + RING_OFFSET + (idx % RING_SLOTS) * 16.
        f.bin(lxfi_machine::BinOp::Rem, R7, R6, RING_SLOTS);
        f.bin(lxfi_machine::BinOp::Mul, R7, R7, 16i64);
        f.add(R7, R7, RING_OFFSET);
        f.add(R7, R7, R5);
        // Write the TX descriptor (address, length) into device memory.
        f.store8(R2, R7, 0);
        f.store8(R3, R7, 8);
        // priv[8] = idx + 1.
        f.add(R6, R6, 1i64);
        f.store8(R6, R4, PRIV_RING_IDX);
        // dev->tx_packets += 1 (we hold WRITE on the whole net_device).
        f.load8(R8, R1, net_device::TX_PACKETS);
        f.add(R8, R8, 1i64);
        f.store8(R8, R1, net_device::TX_PACKETS);
        // TX completes immediately in the simulation: free the skb.
        f.call_extern(kfree_skb, &[R0.into()], None);
        f.ret(0i64); // NETDEV_TX_OK
    });

    // int e1000_poll(struct net_device *dev, int budget) — the NAPI
    // bottom half, consuming the RX descriptor ring at MMIO+2048.
    pb.define("e1000_poll", 2, 0, |f| {
        let top = f.label();
        let done = f.label();
        let out = f.label();
        f.mov(R10, R1); // budget
        f.mov(R11, 0i64); // delivered
        f.mov(R12, R0); // dev
                        // mmio = dev->priv[PRIV_MMIO].
        f.load8(R14, R0, net_device::PRIV);
        f.load8(R14, R14, PRIV_MMIO);
        // Consumer cursor: loaded once, kept in a register across the
        // loop, published back through the tail register per frame.
        f.load8(R13, R14, RX_TAIL_REG as i64);
        f.bind(top);
        // Budget exhausted: stop WITHOUT napi_complete — the kernel
        // re-arms the poll (softirq re-run) while the IRQ stays masked.
        f.br(Cond::Ule, R10, R11, out);
        // Producer cursor, re-read per frame: the wire may append while
        // the poll runs. tail == head means the ring is drained.
        f.load8(R9, R14, RX_HEAD_REG as i64);
        f.br(Cond::Eq, R13, R9, done);
        // slot = mmio + RX_RING_OFFSET + (tail % RX_RING_SLOTS) * SLOT.
        f.bin(lxfi_machine::BinOp::Rem, R7, R13, RX_RING_SLOTS as i64);
        f.bin(lxfi_machine::BinOp::Mul, R7, R7, RX_SLOT_SIZE as i64);
        f.add(R7, R7, RX_RING_OFFSET as i64);
        f.add(R7, R7, R14);
        f.call_extern(alloc_skb, &[(RX_FRAME_BYTES as i64).into()], Some(R2));
        f.br(Cond::Eq, R2, 0i64, done);
        f.load8(R3, R2, sk_buff::DATA);
        // Copybreak: frame data starts at slot+8; copy RX_COPYBREAK
        // bytes into the skb payload we now own, 8 at a time.
        let rx_top = f.label();
        f.mov(R5, 0i64);
        f.bind(rx_top);
        f.bin(lxfi_machine::BinOp::Add, R6, R7, R5);
        f.load8(R8, R6, 8);
        f.bin(lxfi_machine::BinOp::Add, R6, R3, R5);
        f.store8(R8, R6, 0);
        f.add(R5, R5, 8i64);
        f.br(Cond::Lt, R5, RX_COPYBREAK as i64, rx_top);
        // Overwrite the front with a minimal Ethernet header (the wire
        // sequence word at data+8 survives from the copy).
        f.store8(0x00ff_ffffi64, R3, 0);
        f.store(0x0800i64, R2, sk_buff::PROTOCOL, Width::B8);
        // Hand the frame to the stack; its capabilities transfer away.
        f.call_extern(netif_rx, &[R2.into()], None);
        // Only now is the slot consumed: publish tail (guarded MMIO
        // store, loop-invariant base — hoists like the TX doorbell). A
        // crash inside netif_rx leaves the frame on the ring for a
        // post-recovery poll: at-least-once delivery.
        f.add(R13, R13, 1i64);
        f.store8(R13, R14, RX_TAIL_REG as i64);
        // dev->rx_packets += 1.
        f.load8(R4, R12, net_device::RX_PACKETS);
        f.add(R4, R4, 1i64);
        f.store8(R4, R12, net_device::RX_PACKETS);
        f.add(R11, R11, 1i64);
        f.jmp(top);
        f.bind(done);
        // Ring drained with budget to spare: unmask the interrupt.
        f.call_extern(napi_complete, &[R12.into()], None);
        f.jmp(out);
        f.bind(out);
        f.ret(R11);
    });

    // Diagnostics function exercising printk (annotation-free export).
    pb.define("e1000_log", 0, 0, |f| {
        f.call_extern(printk, &[0i64.into()], None);
        f.ret(0i64);
    });

    // Annotation propagation facts (§4.2): probe/xmit/poll acquire their
    // annotations from the pointer types they are assigned to.
    let sig_probe = pb.sig("pci_probe", 1);
    let sig_xmit = pb.sig("ndo_start_xmit", 2);
    let sig_poll = pb.sig("napi_poll", 2);
    pb.assign_sig(probe, sig_probe);
    pb.assign_sig(xmit, sig_xmit);
    pb.assign_sig(poll, sig_poll);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "pci_probe",
        vec![Param::ptr("pcidev", "struct pci_dev")],
        PCI_PROBE_ANN,
    ));
    iface.declare_sig(crate::decl(
        "ndo_start_xmit",
        vec![
            Param::ptr("skb", "sk_buff"),
            Param::ptr("dev", "net_device"),
        ],
        NDO_START_XMIT_ANN,
    ));
    iface.declare_sig(crate::decl(
        "napi_poll",
        vec![Param::ptr("dev", "net_device"), Param::scalar("budget")],
        NAPI_POLL_ANN,
    ));

    ModuleSpec {
        name: "e1000".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("e1000_init".into()),
    }
}
