//! The snd-intel8x0 sound driver (AC'97 controller).
//!
//! Each PCM stream is a principal named by the `snd_pcm` pointer; the
//! trigger and pointer callbacks are dispatched through the module's ops
//! table, exercising the checked indirect-call path.

use lxfi_core::iface::Param;
use lxfi_kernel::snd::PCM_OP_ANN;
use lxfi_kernel::types::snd_pcm;
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// Builds the snd-intel8x0 module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("snd-intel8x0");

    let snd_card_new = pb.import_func("snd_card_new");
    let snd_pcm_new = pb.import_func("snd_pcm_new");
    let snd_dma_alloc = pb.import_func("snd_dma_alloc");
    let snd_card_register = pb.import_func("snd_card_register");
    let spin_lock_init = pb.import_func("spin_lock_init");

    // Ops table: trigger at +0, pointer at +8.
    let ops = pb.global("intel8x0_ops", 64);
    let lock = pb.global("intel8x0_lock", 8);

    let trigger = pb.declare("intel8x0_trigger", 2);
    let pointer = pb.declare("intel8x0_pointer", 2);

    pb.fn_reloc(ops, 0, trigger);
    pb.fn_reloc(ops, 8, pointer);

    pb.define("intel8x0_init", 0, 0, |f| {
        let fail = f.label();
        f.global_addr(R1, lock);
        f.call_extern(spin_lock_init, &[R1.into()], None);
        f.call_extern(snd_card_new, &[], Some(R10));
        f.br(Cond::Eq, R10, 0i64, fail);
        f.global_addr(R2, ops);
        f.call_extern(snd_pcm_new, &[R10.into(), R2.into()], Some(R11));
        f.br(Cond::Eq, R11, 0i64, fail);
        f.call_extern(snd_dma_alloc, &[R11.into(), 4096i64.into()], Some(R12));
        f.call_extern(snd_card_register, &[R10.into()], None);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64);
        f.ret(R0);
    });

    // trigger(pcm, cmd): cmd 1 = start (fill a silence block), 0 = stop.
    pb.define("intel8x0_trigger", 2, 0, |f| {
        let stop = f.label();
        let top = f.label();
        let done = f.label();
        f.br(Cond::Eq, R1, 0i64, stop);
        f.store8(1i64, R0, snd_pcm::STATE);
        // Write 128 bytes of silence into the DMA area.
        f.load8(R2, R0, snd_pcm::DMA_AREA);
        f.mov(R3, 0i64);
        f.bind(top);
        f.br(Cond::Ule, 128i64, R3, done);
        f.add(R4, R2, R3);
        f.store8(0i64, R4, 0);
        f.add(R3, R3, 8i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
        f.bind(stop);
        f.store8(0i64, R0, snd_pcm::STATE);
        f.ret(0i64);
    });

    // pointer(pcm): advance and report the hardware position.
    pb.define("intel8x0_pointer", 2, 0, |f| {
        f.load8(R2, R0, snd_pcm::HW_PTR);
        f.add(R2, R2, 64i64);
        f.bin(lxfi_machine::BinOp::Rem, R2, R2, 4096i64);
        f.store8(R2, R0, snd_pcm::HW_PTR);
        f.ret(R2);
    });

    let sig_trigger = pb.sig("pcm_trigger", 2);
    let sig_pointer = pb.sig("pcm_pointer", 2);
    pb.assign_sig(trigger, sig_trigger);
    pb.assign_sig(pointer, sig_pointer);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "pcm_trigger",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("cmd")],
        PCM_OP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "pcm_pointer",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("unused")],
        PCM_OP_ANN,
    ));

    ModuleSpec {
        name: "snd-intel8x0".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("intel8x0_init".into()),
    }
}
