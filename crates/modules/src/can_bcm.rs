//! The CAN broadcast-manager module, with CVE-2010-2959.
//!
//! `bcm_rx_setup` computes its buffer size as `nframes * 16` **in 32
//! bits**: a large `nframes` wraps the size, `kmalloc` returns an
//! under-sized object, and the later frame-delivery path writes
//! `nframes`-worth of data into it — a classic slab overflow. Oberheide's
//! exploit grooms the slab so a `shmid_kernel` object sits directly after
//! the buffer and overwrites its function pointer.
//!
//! Under LXFI, `kmalloc`'s annotation grants a WRITE capability only for
//! the (wrapped) size actually requested, so the overflowing store is
//! denied at the first out-of-bounds byte (§8.1).

use lxfi_core::iface::Param;
use lxfi_kernel::socket::PROTO_SOCK_ANN;
use lxfi_kernel::types::{proto_ops, sock};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{BinOp, Cond, ProgramBuilder, Width};
use lxfi_rewriter::InterfaceSpec;

/// The protocol family number CAN-BCM registers.
pub const CAN_BCM_FAMILY: u64 = 30;

/// `sendmsg` opcode: rx_setup (allocate the frame buffer).
pub const OP_RX_SETUP: u64 = 1;
/// `sendmsg` opcode: deliver frames (fill the buffer).
pub const OP_DELIVER: u64 = 2;

/// Builds the can-bcm module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("can-bcm");

    let sock_register = pb.import_func("sock_register");
    let copy_from_user = pb.import_func("copy_from_user");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");

    let ops = pb.global("bcm_proto_ops", proto_ops::SIZE);

    let ioctl = pb.declare("bcm_ioctl", 3);
    let sendmsg = pb.declare("bcm_sendmsg", 3);
    let recvmsg = pb.declare("bcm_recvmsg", 3);
    let bind = pb.declare("bcm_bind", 2);
    let rx_setup = pb.declare("bcm_rx_setup", 2);
    let deliver = pb.declare("bcm_deliver", 2);

    pb.fn_reloc(ops, proto_ops::IOCTL as u64, ioctl);
    pb.fn_reloc(ops, proto_ops::SENDMSG as u64, sendmsg);
    pb.fn_reloc(ops, proto_ops::RECVMSG as u64, recvmsg);
    pb.fn_reloc(ops, proto_ops::BIND as u64, bind);

    pb.define("bcm_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            sock_register,
            &[(CAN_BCM_FAMILY as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    pb.define("bcm_ioctl", 3, 0, |f| {
        f.load8(R0, R0, sock::QUEUED);
        f.ret(R0);
    });

    // bcm_sendmsg(sock, buf, len): header = { op, nframes, fill_len, val }.
    pb.define("bcm_sendmsg", 3, 32, |f| {
        let setup = f.label();
        let deliver_l = f.label();
        let bad = f.label();
        f.mov(R10, R0); // sock
        f.frame_addr(R3, 0);
        f.call_extern(
            copy_from_user,
            &[R3.into(), R1.into(), 32i64.into()],
            Some(R4),
        );
        f.br(Cond::Ne, R4, 0i64, bad);
        f.load_frame(R5, 0, Width::B8); // op
        f.br(Cond::Eq, R5, OP_RX_SETUP as i64, setup);
        f.br(Cond::Eq, R5, OP_DELIVER as i64, deliver_l);
        f.jmp(bad);
        f.bind(setup);
        f.load_frame(R1, 8, Width::B8); // nframes
        f.call_local(rx_setup, &[R10.into(), R1.into()], Some(R0));
        f.ret(R0);
        f.bind(deliver_l);
        f.frame_addr(R1, 16); // &{fill_len, val}
        f.call_local(deliver, &[R10.into(), R1.into()], Some(R0));
        f.ret(R0);
        f.bind(bad);
        f.mov(R0, -22i64); // -EINVAL
        f.ret(R0);
    });

    // bcm_rx_setup(sock, nframes): THE BUG — the size computation
    // `nframes * 16` is performed in 32 bits (CVE-2010-2959).
    pb.define("bcm_rx_setup", 2, 0, |f| {
        let fail = f.label();
        f.mov(R10, R0);
        f.bin(BinOp::Mul, R2, R1, 16i64);
        f.bin(BinOp::And, R2, R2, 0xffff_ffffi64); // 32-bit truncation
        f.call_extern(kmalloc, &[R2.into()], Some(R3));
        f.br(Cond::Eq, R3, 0i64, fail);
        // Stash the buffer pointer and frame count on our socket.
        f.store8(R3, R10, sock::PRIV);
        f.store8(R1, R10, sock::QUEUED);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64);
        f.ret(R0);
    });

    // bcm_deliver(sock, &{fill_len, val}): writes `fill_len` bytes of
    // frame data into the rx buffer — 8 bytes of `val` at a time. The
    // buffer may be (much) smaller than fill_len after the overflow.
    pb.define("bcm_deliver", 2, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.load8(R2, R1, 0); // fill_len
        f.load8(R3, R1, 8); // val
        f.load8(R4, R0, sock::PRIV); // buffer
        f.mov(R5, 0i64); // offset
        f.bind(top);
        f.br(Cond::Ule, R2, R5, done);
        f.add(R6, R4, R5);
        f.store8(R3, R6, 0);
        f.add(R5, R5, 8i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
    });

    pb.define("bcm_recvmsg", 3, 0, |f| {
        f.load8(R0, R0, sock::QUEUED);
        f.ret(R0);
    });

    pb.define("bcm_bind", 2, 0, |f| {
        f.load8(R2, R1, 0);
        f.store8(R2, R0, sock::PRIV);
        f.ret(0i64);
    });

    pb.define("bcm_release", 1, 0, |f| {
        let out = f.label();
        f.load8(R1, R0, sock::PRIV);
        f.br(Cond::Eq, R1, 0i64, out);
        f.call_extern(kfree, &[R1.into()], None);
        f.store8(0i64, R0, sock::PRIV);
        f.bind(out);
        f.ret(0i64);
    });

    let sig_ioctl = pb.sig("proto_ioctl", 3);
    let sig_sendmsg = pb.sig("proto_sendmsg", 3);
    let sig_recvmsg = pb.sig("proto_recvmsg", 3);
    let sig_bind = pb.sig("proto_bind", 2);
    pb.assign_sig(ioctl, sig_ioctl);
    pb.assign_sig(sendmsg, sig_sendmsg);
    pb.assign_sig(recvmsg, sig_recvmsg);
    pb.assign_sig(bind, sig_bind);

    let mut iface = InterfaceSpec::new();
    for name in ["proto_ioctl", "proto_sendmsg", "proto_recvmsg"] {
        iface.declare_sig(crate::decl(
            name,
            vec![
                Param::ptr("sock", "sock"),
                Param::scalar("a"),
                Param::scalar("b"),
            ],
            PROTO_SOCK_ANN,
        ));
    }
    iface.declare_sig(crate::decl(
        "proto_bind",
        vec![Param::ptr("sock", "sock"), Param::scalar("addr")],
        PROTO_SOCK_ANN,
    ));
    iface.declare_fn(crate::decl(
        "bcm_release",
        vec![Param::ptr("sock", "sock")],
        "principal(sock)",
    ));

    ModuleSpec {
        name: "can-bcm".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("bcm_init".into()),
    }
}
