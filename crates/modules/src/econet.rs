//! The econet protocol module, with CVE-2010-3849/3850 reproduced.
//!
//! Econet is the paper's example of a *multi-principal* module (§3.1):
//! every socket is a separate principal named by the `sock` pointer, and
//! the module keeps a global linked list of sockets whose links live
//! inside the socket objects themselves — so list surgery requires the
//! module's **global** principal (Guideline 6).
//!
//! The vulnerabilities, as in the 2010 exploit chain:
//!
//! - `econet_sendmsg` dereferences a NULL "device" pointer when a crafted
//!   message arrives (standing in for the missing `capable()` check and
//!   NULL dereference of CVE-2010-3849/3850);
//! - combined with the kernel's `do_exit` zero-write (CVE-2010-4258) the
//!   attacker redirects `econet_ops.ioctl` into user space.

use lxfi_core::iface::Param;
use lxfi_kernel::socket::PROTO_SOCK_ANN;
use lxfi_kernel::types::{proto_ops, sock};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// The protocol family number econet registers.
pub const ECONET_FAMILY: u64 = 9;

/// Byte offset inside `sock` used for the module's intrusive list link.
pub const LIST_NEXT: i64 = 40;

/// The message tag that triggers the NULL dereference.
pub const CRASH_MAGIC: u64 = 0xdead;

/// Builds the econet module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("econet");

    let sock_register = pb.import_func("sock_register");
    let copy_from_user = pb.import_func("copy_from_user");
    let copy_to_user = pb.import_func("copy_to_user");
    let spin_lock = pb.import_func("spin_lock");
    let spin_unlock = pb.import_func("spin_unlock");
    let spin_lock_init = pb.import_func("spin_lock_init");
    let lxfi_switch_global = pb.import_func("lxfi_switch_global");

    // .data: the ops table (the exploit's corruption target), the list
    // head, and a lock.
    let ops = pb.global("econet_ops", proto_ops::SIZE);
    let head = pb.global("econet_sklist", 8);
    let lock = pb.global("econet_lock", 8);

    let ioctl = pb.declare("econet_ioctl", 3);
    let sendmsg = pb.declare("econet_sendmsg", 3);
    let recvmsg = pb.declare("econet_recvmsg", 3);
    let bind = pb.declare("econet_bind", 2);

    // Static initializer: struct proto_ops econet_ops = { ... }.
    pb.fn_reloc(ops, proto_ops::IOCTL as u64, ioctl);
    pb.fn_reloc(ops, proto_ops::SENDMSG as u64, sendmsg);
    pb.fn_reloc(ops, proto_ops::RECVMSG as u64, recvmsg);
    pb.fn_reloc(ops, proto_ops::BIND as u64, bind);

    pb.define("econet_init", 0, 0, |f| {
        f.global_addr(R1, lock);
        f.call_extern(spin_lock_init, &[R1.into()], None);
        f.global_addr(R0, ops);
        f.call_extern(
            sock_register,
            &[(ECONET_FAMILY as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    pb.define("econet_ioctl", 3, 0, |f| {
        // Benign: report the socket's queued byte count.
        f.load8(R0, R0, sock::QUEUED);
        f.ret(R0);
    });

    // econet_sendmsg(sock, buf, len): reads an 8-byte tag from user
    // memory; the CRASH_MAGIC tag reaches the unchecked NULL-device path.
    pb.define("econet_sendmsg", 3, 16, |f| {
        let crash = f.label();
        let out = f.label();
        f.mov(R10, R0); // sock
        f.frame_addr(R3, 0);
        f.call_extern(
            copy_from_user,
            &[R3.into(), R1.into(), 8i64.into()],
            Some(R4),
        );
        f.br(Cond::Ne, R4, 0i64, out);
        f.load_frame(R5, 0, lxfi_machine::Width::B8);
        f.br(Cond::Eq, R5, CRASH_MAGIC as i64, crash);
        // Normal path: account the queued bytes on this socket (we hold
        // WRITE on our own sock object from the annotation's copy).
        f.load8(R6, R10, sock::QUEUED);
        f.add(R6, R6, R2);
        f.store8(R6, R10, sock::QUEUED);
        f.ret(R2);
        f.bind(crash);
        // CVE-2010-3849/3850: the missing check leaves a NULL device
        // pointer that is then dereferenced.
        f.mov(R7, 0i64);
        f.load8(R8, R7, 0); // *NULL — kernel oops
        f.ret(R8);
        f.bind(out);
        f.mov(R0, -14i64); // -EFAULT
        f.ret(R0);
    });

    pb.define("econet_recvmsg", 3, 0, |f| {
        // Return queued bytes to the user (bounded by len).
        let small = f.label();
        f.load8(R3, R0, sock::QUEUED);
        f.br(Cond::Ule, R3, R2, small);
        f.mov(R3, R2);
        f.bind(small);
        // copy_to_user(buf, &sock->queued-as-data, n) — we just copy from
        // the sock struct itself as the "payload".
        f.call_extern(copy_to_user, &[R1.into(), R0.into(), R3.into()], Some(R4));
        f.ret(R3);
    });

    // econet_bind(sock, addr): links the socket into the module-global
    // list. Dereferences `addr` (NULL bind faults, as in the CVE chain).
    pb.define("econet_bind", 2, 0, |f| {
        f.mov(R10, R0);
        f.load8(R2, R1, 0); // station number from sockaddr (NULL → oops)
        f.store8(R2, R10, sock::PRIV); // remember our station
                                       // Guideline 6: cross-instance list work needs the global
                                       // principal. The preceding writes double as the "adequate check"
                                       // (they fault unless this really is our socket).
        f.global_addr(R3, lock);
        f.call_extern(spin_lock, &[R3.into()], None);
        f.call_extern(lxfi_switch_global, &[], None);
        // sock->next = head; head = sock.
        f.global_addr(R4, head);
        f.load8(R5, R4, 0);
        f.store8(R5, R10, LIST_NEXT);
        f.store8(R10, R4, 0);
        f.call_extern(spin_unlock, &[R3.into()], None);
        f.ret(0i64);
    });

    // econet_unlink(victim): removes a socket from the global list —
    // requires writing *another* socket's link field, which only the
    // global principal may do. Called from release paths.
    pb.define("econet_unlink", 1, 0, |f| {
        let scan = f.label();
        let found = f.label();
        let out = f.label();
        let step = f.label();
        f.mov(R10, R0); // victim
        f.call_extern(lxfi_switch_global, &[], None);
        f.global_addr(R1, head);
        f.load8(R2, R1, 0); // cur = head
                            // If head == victim: head = victim->next.
        f.br(Cond::Ne, R2, R10, scan);
        f.load8(R3, R10, LIST_NEXT);
        f.store8(R3, R1, 0);
        f.ret(0i64);
        f.bind(scan);
        f.br(Cond::Eq, R2, 0i64, out);
        f.load8(R3, R2, LIST_NEXT);
        f.br(Cond::Eq, R3, R10, found);
        f.jmp(step);
        f.bind(step);
        f.mov(R2, R3);
        f.jmp(scan);
        f.bind(found);
        // cur->next = victim->next — a write into a *different* socket.
        f.load8(R4, R10, LIST_NEXT);
        f.store8(R4, R2, LIST_NEXT);
        f.ret(0i64);
        f.bind(out);
        f.mov(R0, -2i64); // -ENOENT
        f.ret(R0);
    });

    // A deliberately under-privileged variant of unlink that does NOT
    // switch to the global principal — used by tests to show that an
    // instance principal cannot touch a sibling socket's fields (§3.1).
    pb.define("econet_unlink_noglobal", 2, 0, |f| {
        // args: (victim_prev, victim) — writes prev->next directly.
        f.load8(R2, R1, LIST_NEXT);
        f.store8(R2, R0, LIST_NEXT);
        f.ret(0i64);
    });

    let sig_ioctl = pb.sig("proto_ioctl", 3);
    let sig_sendmsg = pb.sig("proto_sendmsg", 3);
    let sig_recvmsg = pb.sig("proto_recvmsg", 3);
    let sig_bind = pb.sig("proto_bind", 2);
    pb.assign_sig(ioctl, sig_ioctl);
    pb.assign_sig(sendmsg, sig_sendmsg);
    pb.assign_sig(recvmsg, sig_recvmsg);
    pb.assign_sig(bind, sig_bind);

    let mut iface = InterfaceSpec::new();
    for name in ["proto_ioctl", "proto_sendmsg", "proto_recvmsg"] {
        iface.declare_sig(crate::decl(
            name,
            vec![
                Param::ptr("sock", "sock"),
                Param::scalar("a"),
                Param::scalar("b"),
            ],
            PROTO_SOCK_ANN,
        ));
    }
    iface.declare_sig(crate::decl(
        "proto_bind",
        vec![Param::ptr("sock", "sock"), Param::scalar("addr")],
        PROTO_SOCK_ANN,
    ));
    // Direct annotations for the internal entry points tests drive:
    // unlink runs as the socket principal named by its argument.
    iface.declare_fn(crate::decl(
        "econet_unlink",
        vec![Param::ptr("sock", "sock")],
        "principal(sock)",
    ));
    iface.declare_fn(crate::decl(
        "econet_unlink_noglobal",
        vec![Param::ptr("prev", "sock"), Param::ptr("sock", "sock")],
        "principal(sock)",
    ));

    ModuleSpec {
        name: "econet".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("econet_init".into()),
    }
}
