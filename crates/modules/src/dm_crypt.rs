//! The dm-crypt device-mapper target: transparent block encryption.
//!
//! §2.1's motivating example for module principals: one dm-crypt module
//! instance manages the system disk *and* any USB stick the user plugs
//! in. Each created device is a separate principal named by its
//! `dm_target`, so a compromise via one device's data path cannot write
//! another device's key or buffers.

use lxfi_core::iface::Param;
use lxfi_kernel::dm::{DM_CTR_ANN, DM_MAP_ANN};
use lxfi_kernel::types::{bio, dm_target};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{BinOp, Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// dm target-type id for dm-crypt.
pub const TARGET_TYPE: u64 = 1;

/// Builds the dm-crypt module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("dm-crypt");

    let dm_register_target = pb.import_func("dm_register_target");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");

    // Ops table: ctr at +0, map at +8, dtr at +16.
    let ops = pb.global("crypt_ops", 64);

    let ctr = pb.declare("crypt_ctr", 2);
    let map = pb.declare("crypt_map", 2);
    let dtr = pb.declare("crypt_dtr", 2);

    pb.fn_reloc(ops, 0, ctr);
    pb.fn_reloc(ops, 8, map);
    pb.fn_reloc(ops, 16, dtr);

    pb.define("crypt_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            dm_register_target,
            &[(TARGET_TYPE as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    // crypt_ctr(ti, key): allocate per-device key material.
    pb.define("crypt_ctr", 2, 0, |f| {
        let fail = f.label();
        f.mov(R10, R0);
        f.call_extern(kmalloc, &[32i64.into()], Some(R2));
        f.br(Cond::Eq, R2, 0i64, fail);
        // Expand the user key into the key schedule.
        f.bin(BinOp::Xor, R3, R1, 0x5a5a_5a5ai64);
        f.store8(R3, R2, 0);
        f.bin(BinOp::Rotl, R4, R3, 17i64);
        f.store8(R4, R2, 8);
        f.store8(R10, R2, 16); // bind schedule to this target
        f.store8(R2, R10, dm_target::PRIV);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64);
        f.ret(R0);
    });

    // crypt_map(ti, bio): XOR-"encrypt" the payload in place.
    pb.define("crypt_map", 2, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.load8(R2, R0, dm_target::PRIV); // key schedule
        f.load8(R3, R2, 0); // key word
        f.load8(R4, R1, bio::DATA);
        f.load8(R5, R1, bio::LEN);
        f.mov(R6, 0i64);
        f.bind(top);
        f.br(Cond::Ule, R5, R6, done);
        f.add(R7, R4, R6);
        f.load8(R8, R7, 0);
        f.bin(BinOp::Xor, R8, R8, R3);
        f.store8(R8, R7, 0);
        f.add(R6, R6, 8i64);
        f.jmp(top);
        f.bind(done);
        f.store8(1i64, R1, bio::STATUS);
        f.ret(0i64); // DM_MAPIO_SUBMITTED
    });

    pb.define("crypt_dtr", 2, 0, |f| {
        let out = f.label();
        f.load8(R2, R0, dm_target::PRIV);
        f.br(Cond::Eq, R2, 0i64, out);
        f.call_extern(kfree, &[R2.into()], None);
        f.store8(0i64, R0, dm_target::PRIV);
        f.bind(out);
        f.ret(0i64);
    });

    let sig_ctr = pb.sig("dm_ctr", 2);
    let sig_map = pb.sig("dm_map", 2);
    let sig_dtr = pb.sig("dm_dtr", 2);
    pb.assign_sig(ctr, sig_ctr);
    pb.assign_sig(map, sig_map);
    pb.assign_sig(dtr, sig_dtr);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "dm_ctr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("arg")],
        DM_CTR_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_map",
        vec![Param::ptr("ti", "dm_target"), Param::ptr("bio", "bio")],
        DM_MAP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_dtr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("unused")],
        "principal(ti)",
    ));

    ModuleSpec {
        name: "dm-crypt".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("crypt_init".into()),
    }
}
