//! The ten annotated kernel modules of the paper's evaluation (Figure 9).
//!
//! | category            | modules                                   |
//! |---------------------|-------------------------------------------|
//! | net device driver   | [`e1000`]                                 |
//! | sound device driver | [`snd_intel8x0`], [`snd_ens1370`]         |
//! | net protocol driver | [`rds`], [`can`], [`can_bcm`], [`econet`] |
//! | block device driver | [`dm_crypt`], [`dm_zero`], [`dm_snapshot`]|
//!
//! Each module is a KIR program built against the simulated kernel's
//! exports, with the interface annotations required to load it under
//! LXFI. Three of them faithfully reproduce their 2010 CVEs:
//!
//! - [`can_bcm`]: the `bcm_rx_setup` integer overflow (CVE-2010-2959);
//! - [`econet`]: the NULL-dereference / missed-check pair
//!   (CVE-2010-3849/3850), exploitable together with the kernel's
//!   `do_exit` bug (CVE-2010-4258);
//! - [`rds`]: the unchecked user-pointer page copy (CVE-2010-3904).

pub mod can;
pub mod can_bcm;
pub mod dm_crypt;
pub mod dm_snapshot;
pub mod dm_zero;
pub mod e1000;
pub mod econet;
pub mod rds;
pub mod snd_ens1370;
pub mod snd_intel8x0;

use lxfi_annotations::parse_fn_annotations;
use lxfi_core::iface::{FnDecl, Param};
use lxfi_kernel::ModuleSpec;

/// Builds an annotated declaration (helper for module interface specs).
pub fn decl(name: &str, params: Vec<Param>, ann: &str) -> FnDecl {
    FnDecl::new(
        name,
        params,
        parse_fn_annotations(ann).unwrap_or_else(|e| panic!("bad annotation on {name}: {e}")),
    )
}

/// All ten module specs, in the order of Figure 9.
pub fn all_specs() -> Vec<ModuleSpec> {
    vec![
        e1000::spec(),
        snd_intel8x0::spec(),
        snd_ens1370::spec(),
        rds::spec(),
        can::spec(),
        can_bcm::spec(),
        econet::spec(),
        dm_crypt::spec(),
        dm_zero::spec(),
        dm_snapshot::spec(),
    ]
}

/// The Figure 9 category of each module, for the annotation census.
pub fn category(module: &str) -> &'static str {
    match module {
        "e1000" => "net device driver",
        "snd-intel8x0" | "snd-ens1370" => "sound device driver",
        "rds" | "can" | "can-bcm" | "econet" => "net protocol driver",
        "dm-crypt" | "dm-zero" | "dm-snapshot" => "block device driver",
        _ => "other",
    }
}
