//! The dm-zero target — the smallest module in Figure 9 (6 functions in
//! the paper's count): reads return zeros, writes are discarded.

use lxfi_core::iface::Param;
use lxfi_kernel::dm::{DM_CTR_ANN, DM_MAP_ANN};
use lxfi_kernel::types::bio;
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// dm target-type id for dm-zero.
pub const TARGET_TYPE: u64 = 2;

/// Builds the dm-zero module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("dm-zero");

    let dm_register_target = pb.import_func("dm_register_target");

    let ops = pb.global("zero_ops", 64);

    let ctr = pb.declare("zero_ctr", 2);
    let map = pb.declare("zero_map", 2);
    let dtr = pb.declare("zero_dtr", 2);

    pb.fn_reloc(ops, 0, ctr);
    pb.fn_reloc(ops, 8, map);
    pb.fn_reloc(ops, 16, dtr);

    pb.define("zero_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            dm_register_target,
            &[(TARGET_TYPE as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    pb.define("zero_ctr", 2, 0, |f| f.ret(0i64));

    // zero_map(ti, bio): reads see zeros; writes vanish.
    pb.define("zero_map", 2, 0, |f| {
        let top = f.label();
        let done = f.label();
        let write = f.label();
        f.load8(R2, R1, bio::RW);
        f.br(Cond::Ne, R2, 0i64, write);
        // Read: fill the payload with zeros.
        f.load8(R3, R1, bio::DATA);
        f.load8(R4, R1, bio::LEN);
        f.mov(R5, 0i64);
        f.bind(top);
        f.br(Cond::Ule, R4, R5, done);
        f.add(R6, R3, R5);
        f.store8(0i64, R6, 0);
        f.add(R5, R5, 8i64);
        f.jmp(top);
        f.bind(write);
        f.bind(done);
        f.store8(1i64, R1, bio::STATUS);
        f.ret(0i64);
    });

    pb.define("zero_dtr", 2, 0, |f| f.ret(0i64));

    let sig_ctr = pb.sig("dm_ctr", 2);
    let sig_map = pb.sig("dm_map", 2);
    let sig_dtr = pb.sig("dm_dtr", 2);
    pb.assign_sig(ctr, sig_ctr);
    pb.assign_sig(map, sig_map);
    pb.assign_sig(dtr, sig_dtr);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "dm_ctr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("arg")],
        DM_CTR_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_map",
        vec![Param::ptr("ti", "dm_target"), Param::ptr("bio", "bio")],
        DM_MAP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_dtr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("unused")],
        "principal(ti)",
    ));

    ModuleSpec {
        name: "dm-zero".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("zero_init".into()),
    }
}
