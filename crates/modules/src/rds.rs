//! The RDS (Reliable Datagram Sockets) module, with CVE-2010-3904.
//!
//! The vulnerability: RDS's page-copy routine writes message payloads to
//! a *user-supplied destination pointer without checking it points to
//! user space*. An attacker sends a message whose header names a kernel
//! address, then receives it — the module's own store loop writes
//! attacker-controlled bytes anywhere in the kernel.
//!
//! In the published exploit the attacker overwrites
//! `rds_proto_ops.ioctl` with a user-space function address and invokes
//! `ioctl(2)`. LXFI stops this twice over (§8.1):
//!
//! 1. `rds_proto_ops` lives in the module's **read-only** section, and
//!    LXFI (unlike stock Linux) grants no WRITE capability for it — the
//!    store loop faults immediately;
//! 2. with the table deliberately made writable
//!    ([`spec_writable_ops`]), the corrupting store succeeds but the
//!    kernel's next indirect call through the slot fails the writer
//!    CALL-capability check.

use lxfi_core::iface::Param;
use lxfi_kernel::socket::PROTO_SOCK_ANN;
use lxfi_kernel::types::{proto_ops, sock};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder, Width};
use lxfi_rewriter::InterfaceSpec;

/// The protocol family number RDS registers.
pub const RDS_FAMILY: u64 = 21;

/// Builds the RDS module (ops table in rodata, as in the real module).
pub fn spec() -> ModuleSpec {
    build(false)
}

/// Builds the variant with a writable ops table — the paper's second
/// experiment, exercising the indirect-call defense instead of the
/// read-only-section defense.
pub fn spec_writable_ops() -> ModuleSpec {
    build(true)
}

fn build(writable_ops: bool) -> ModuleSpec {
    let mut pb = ProgramBuilder::new(if writable_ops { "rds-wops" } else { "rds" });

    let sock_register = pb.import_func("sock_register");
    let copy_from_user = pb.import_func("copy_from_user");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");

    // The ops table: read-only in the real module.
    let ops = if writable_ops {
        pb.global("rds_proto_ops", proto_ops::SIZE)
    } else {
        pb.rodata("rds_proto_ops", proto_ops::SIZE)
    };
    // Pending-message state: dest pointer, value, valid flag.
    let pending = pb.global("rds_pending", 24);

    let ioctl = pb.declare("rds_ioctl", 3);
    let sendmsg = pb.declare("rds_sendmsg", 3);
    let recvmsg = pb.declare("rds_recvmsg", 3);
    let bind = pb.declare("rds_bind", 2);

    pb.fn_reloc(ops, proto_ops::IOCTL as u64, ioctl);
    pb.fn_reloc(ops, proto_ops::SENDMSG as u64, sendmsg);
    pb.fn_reloc(ops, proto_ops::RECVMSG as u64, recvmsg);
    pb.fn_reloc(ops, proto_ops::BIND as u64, bind);

    pb.define("rds_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            sock_register,
            &[(RDS_FAMILY as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    pb.define("rds_ioctl", 3, 0, |f| {
        f.load8(R0, R0, sock::QUEUED);
        f.ret(R0);
    });

    // rds_sendmsg(sock, buf, len): header = { dest_ptr, value } copied
    // from user space into the module's pending-message state.
    pb.define("rds_sendmsg", 3, 16, |f| {
        let out = f.label();
        f.frame_addr(R3, 0);
        f.call_extern(
            copy_from_user,
            &[R3.into(), R1.into(), 16i64.into()],
            Some(R4),
        );
        f.br(Cond::Ne, R4, 0i64, out);
        f.load_frame(R5, 0, Width::B8); // dest
        f.load_frame(R6, 8, Width::B8); // value
        f.global_addr(R7, pending);
        f.store8(R5, R7, 0);
        f.store8(R6, R7, 8);
        f.store8(1i64, R7, 16);
        f.ret(16i64);
        f.bind(out);
        f.mov(R0, -14i64);
        f.ret(R0);
    });

    // rds_recvmsg(sock, buf, len): delivers the pending message — by
    // writing `value` to `dest`. CVE-2010-3904: no check that `dest` is
    // a user address (the correct code would use copy_to_user).
    pb.define("rds_recvmsg", 3, 0, |f| {
        let none = f.label();
        f.global_addr(R3, pending);
        f.load8(R4, R3, 16);
        f.br(Cond::Eq, R4, 0i64, none);
        f.load8(R5, R3, 0); // dest (user-controlled!)
        f.load8(R6, R3, 8); // value
        f.store8(R6, R5, 0); // ← the missing-check write
        f.store8(0i64, R3, 16);
        f.ret(8i64);
        f.bind(none);
        f.mov(R0, -11i64); // -EAGAIN
        f.ret(R0);
    });

    pb.define("rds_bind", 2, 0, |f| {
        f.load8(R2, R1, 0);
        f.store8(R2, R0, sock::PRIV);
        f.ret(0i64);
    });

    // A congestion-map scratch allocator (gives RDS some legitimate
    // allocator traffic for the benchmarks and census).
    pb.define("rds_cong_alloc", 1, 0, |f| {
        f.call_extern(kmalloc, &[R0.into()], Some(R1));
        f.ret(R1);
    });
    pb.define("rds_cong_free", 1, 0, |f| {
        f.call_extern(kfree, &[R0.into()], None);
        f.ret(0i64);
    });

    let sig_ioctl = pb.sig("proto_ioctl", 3);
    let sig_sendmsg = pb.sig("proto_sendmsg", 3);
    let sig_recvmsg = pb.sig("proto_recvmsg", 3);
    let sig_bind = pb.sig("proto_bind", 2);
    pb.assign_sig(ioctl, sig_ioctl);
    pb.assign_sig(sendmsg, sig_sendmsg);
    pb.assign_sig(recvmsg, sig_recvmsg);
    pb.assign_sig(bind, sig_bind);

    let mut iface = InterfaceSpec::new();
    for name in ["proto_ioctl", "proto_sendmsg", "proto_recvmsg"] {
        iface.declare_sig(crate::decl(
            name,
            vec![
                Param::ptr("sock", "sock"),
                Param::scalar("a"),
                Param::scalar("b"),
            ],
            PROTO_SOCK_ANN,
        ));
    }
    iface.declare_sig(crate::decl(
        "proto_bind",
        vec![Param::ptr("sock", "sock"), Param::scalar("addr")],
        PROTO_SOCK_ANN,
    ));

    ModuleSpec {
        name: if writable_ops { "rds-wops" } else { "rds" }.into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("rds_init".into()),
    }
}
