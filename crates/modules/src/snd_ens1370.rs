//! The snd-ens1370 sound driver (Ensoniq AudioPCI).
//!
//! Structurally a sibling of [`crate::snd_intel8x0`] — Figure 9 shows the
//! second sound driver needs almost no *new* annotations because the
//! sound interface is shared. This one adds a sample-rate register and a
//! reset path.

use lxfi_core::iface::Param;
use lxfi_kernel::snd::PCM_OP_ANN;
use lxfi_kernel::types::{snd_pcm, snd_pcm_ops};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// Builds the snd-ens1370 module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("snd-ens1370");

    let snd_card_new = pb.import_func("snd_card_new");
    let snd_pcm_new = pb.import_func("snd_pcm_new");
    let snd_dma_alloc = pb.import_func("snd_dma_alloc");
    let snd_card_register = pb.import_func("snd_card_register");
    let kzalloc = pb.import_func("kzalloc");

    let ops = pb.global("ens1370_ops", 64);
    let rate = pb.global("ens1370_rate", 8);

    let trigger = pb.declare("ens1370_trigger", 2);
    let pointer = pb.declare("ens1370_pointer", 2);
    let capture = pb.declare("ens1370_capture", 2);

    pb.fn_reloc(ops, snd_pcm_ops::TRIGGER as u64, trigger);
    pb.fn_reloc(ops, snd_pcm_ops::POINTER as u64, pointer);
    pb.fn_reloc(ops, snd_pcm_ops::CAPTURE as u64, capture);

    pb.define("ens1370_init", 0, 0, |f| {
        let fail = f.label();
        f.call_extern(snd_card_new, &[], Some(R10));
        f.br(Cond::Eq, R10, 0i64, fail);
        f.global_addr(R2, ops);
        f.call_extern(snd_pcm_new, &[R10.into(), R2.into()], Some(R11));
        f.br(Cond::Eq, R11, 0i64, fail);
        f.call_extern(snd_dma_alloc, &[R11.into(), 2048i64.into()], Some(R12));
        // Scratch state buffer (AC'97 shadow registers).
        f.call_extern(kzalloc, &[64i64.into()], Some(R13));
        f.global_addr(R3, rate);
        f.store8(44100i64, R3, 0);
        f.call_extern(snd_card_register, &[R10.into()], None);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64);
        f.ret(R0);
    });

    pb.define("ens1370_trigger", 2, 0, |f| {
        let stop = f.label();
        let top = f.label();
        let done = f.label();
        f.br(Cond::Eq, R1, 0i64, stop);
        f.store8(1i64, R0, snd_pcm::STATE);
        // Prime the DMA area with a square wave derived from the rate.
        f.global_addr(R5, rate);
        f.load8(R6, R5, 0);
        f.load8(R2, R0, snd_pcm::DMA_AREA);
        f.mov(R3, 0i64);
        f.bind(top);
        f.br(Cond::Ule, 64i64, R3, done);
        f.add(R4, R2, R3);
        f.store8(R6, R4, 0);
        f.add(R3, R3, 8i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
        f.bind(stop);
        f.store8(0i64, R0, snd_pcm::STATE);
        f.ret(0i64);
    });

    pb.define("ens1370_pointer", 2, 0, |f| {
        f.load8(R2, R0, snd_pcm::HW_PTR);
        f.add(R2, R2, 32i64);
        f.bin(lxfi_machine::BinOp::Rem, R2, R2, 2048i64);
        f.store8(R2, R0, snd_pcm::HW_PTR);
        f.ret(R2);
    });

    // ens1370_capture(pcm, bytes): the capture-period bottom half,
    // dispatched through the deferred-call mux (same machinery as NAPI
    // polls). Writes one period of samples into the DMA ring at the
    // hardware pointer and advances it, mod the 2048-byte buffer.
    pb.define("ens1370_capture", 2, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.mov(R10, R1); // bytes this period
        f.load8(R2, R0, snd_pcm::DMA_AREA);
        f.load8(R11, R0, snd_pcm::HW_PTR);
        f.global_addr(R5, rate);
        f.load8(R6, R5, 0);
        f.mov(R3, 0i64);
        f.bind(top);
        f.br(Cond::Ule, R10, R3, done);
        // dst = dma + (hw_ptr + i) % 2048
        f.add(R4, R11, R3);
        f.bin(lxfi_machine::BinOp::Rem, R4, R4, 2048i64);
        f.add(R4, R2, R4);
        f.store8(R6, R4, 0);
        f.add(R3, R3, 8i64);
        f.jmp(top);
        f.bind(done);
        f.add(R11, R11, R10);
        f.bin(lxfi_machine::BinOp::Rem, R11, R11, 2048i64);
        f.store8(R11, R0, snd_pcm::HW_PTR);
        f.ret(R10);
    });

    // ens1370_reset(pcm): clears stream state — reached from the trigger
    // path on error in the real driver.
    pb.define("ens1370_reset", 1, 0, |f| {
        f.store8(0i64, R0, snd_pcm::STATE);
        f.store8(0i64, R0, snd_pcm::HW_PTR);
        f.ret(0i64);
    });

    let sig_trigger = pb.sig("pcm_trigger", 2);
    let sig_pointer = pb.sig("pcm_pointer", 2);
    let sig_capture = pb.sig("pcm_capture", 2);
    pb.assign_sig(trigger, sig_trigger);
    pb.assign_sig(pointer, sig_pointer);
    pb.assign_sig(capture, sig_capture);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "pcm_trigger",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("cmd")],
        PCM_OP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "pcm_pointer",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("unused")],
        PCM_OP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "pcm_capture",
        vec![Param::ptr("pcm", "snd_pcm"), Param::scalar("bytes")],
        PCM_OP_ANN,
    ));
    iface.declare_fn(crate::decl(
        "ens1370_reset",
        vec![Param::ptr("pcm", "snd_pcm")],
        "principal(pcm) pre(copy(write, pcm, 64))",
    ));

    ModuleSpec {
        name: "snd-ens1370".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("ens1370_init".into()),
    }
}
