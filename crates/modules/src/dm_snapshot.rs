//! The dm-snapshot target: copy-on-write block snapshots.
//!
//! Each snapshot device owns a COW store allocated at construction; the
//! map path copies original data into the store before a write goes
//! through. Per-device principals keep one snapshot's store out of
//! another's reach.

use lxfi_core::iface::Param;
use lxfi_kernel::dm::{DM_CTR_ANN, DM_MAP_ANN};
use lxfi_kernel::types::{bio, dm_target};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder};
use lxfi_rewriter::InterfaceSpec;

/// dm target-type id for dm-snapshot.
pub const TARGET_TYPE: u64 = 3;

/// COW store layout: used counter at +0, chunk slots from +8.
const COW_USED: i64 = 0;
const COW_SLOTS: i64 = 8;
const CHUNK: i64 = 64;

/// Builds the dm-snapshot module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("dm-snapshot");

    let dm_register_target = pb.import_func("dm_register_target");
    let kzalloc = pb.import_func("kzalloc");
    let kfree = pb.import_func("kfree");
    let memcpy_k = pb.import_func("memcpy_k");

    let ops = pb.global("snap_ops", 64);
    let stats = pb.global("snap_stats", 8); // total COW copies

    let ctr = pb.declare("snap_ctr", 2);
    let map = pb.declare("snap_map", 2);
    let dtr = pb.declare("snap_dtr", 2);

    pb.fn_reloc(ops, 0, ctr);
    pb.fn_reloc(ops, 8, map);
    pb.fn_reloc(ops, 16, dtr);

    pb.define("snap_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            dm_register_target,
            &[(TARGET_TYPE as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    // snap_ctr(ti, chunks): allocate the COW store.
    pb.define("snap_ctr", 2, 0, |f| {
        let fail = f.label();
        f.mov(R10, R0);
        // store size = 8 (header) + chunks * CHUNK, capped by kmalloc.
        f.mul(R2, R1, CHUNK);
        f.add(R2, R2, 8i64);
        f.call_extern(kzalloc, &[R2.into()], Some(R3));
        f.br(Cond::Eq, R3, 0i64, fail);
        f.store8(R3, R10, dm_target::PRIV);
        f.ret(0i64);
        f.bind(fail);
        f.mov(R0, -12i64);
        f.ret(R0);
    });

    // snap_map(ti, bio): on write, copy the first chunk of the payload
    // into the COW store, then let the write proceed.
    pb.define("snap_map", 2, 0, |f| {
        let done = f.label();
        f.load8(R2, R1, bio::RW);
        f.br(Cond::Eq, R2, 0i64, done); // reads pass through
        f.load8(R3, R0, dm_target::PRIV); // cow store
        f.load8(R4, R3, COW_USED);
        // slot = store + COW_SLOTS + used * CHUNK.
        f.mul(R5, R4, CHUNK);
        f.add(R5, R5, COW_SLOTS);
        f.add(R5, R5, R3);
        f.load8(R6, R1, bio::DATA);
        // memcpy_k(slot, payload, CHUNK) — dst ownership checked by the
        // kernel's annotation; we own the store we allocated.
        f.call_extern(memcpy_k, &[R5.into(), R6.into(), CHUNK.into()], None);
        f.load8(R7, R3, COW_USED);
        f.add(R7, R7, 1i64);
        f.store8(R7, R3, COW_USED);
        // Account globally (module .data, shared principal).
        f.global_addr(R8, stats);
        f.load8(R9, R8, 0);
        f.add(R9, R9, 1i64);
        f.store8(R9, R8, 0);
        f.bind(done);
        f.store8(1i64, R1, bio::STATUS);
        f.ret(0i64);
    });

    pb.define("snap_dtr", 2, 0, |f| {
        let out = f.label();
        f.load8(R2, R0, dm_target::PRIV);
        f.br(Cond::Eq, R2, 0i64, out);
        f.call_extern(kfree, &[R2.into()], None);
        f.store8(0i64, R0, dm_target::PRIV);
        f.bind(out);
        f.ret(0i64);
    });

    let sig_ctr = pb.sig("dm_ctr", 2);
    let sig_map = pb.sig("dm_map", 2);
    let sig_dtr = pb.sig("dm_dtr", 2);
    pb.assign_sig(ctr, sig_ctr);
    pb.assign_sig(map, sig_map);
    pb.assign_sig(dtr, sig_dtr);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(crate::decl(
        "dm_ctr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("arg")],
        DM_CTR_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_map",
        vec![Param::ptr("ti", "dm_target"), Param::ptr("bio", "bio")],
        DM_MAP_ANN,
    ));
    iface.declare_sig(crate::decl(
        "dm_dtr",
        vec![Param::ptr("ti", "dm_target"), Param::scalar("unused")],
        "principal(ti)",
    ));

    ModuleSpec {
        name: "dm-snapshot".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("snap_init".into()),
    }
}
