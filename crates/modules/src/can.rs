//! The CAN raw-protocol base module.
//!
//! The smallest protocol module: Figure 9 notes that after the other
//! modules were annotated, supporting `can` only required 7 more
//! annotations — its interface surface is almost entirely shared with
//! the other socket protocols.

use lxfi_core::iface::Param;
use lxfi_kernel::socket::PROTO_SOCK_ANN;
use lxfi_kernel::types::{proto_ops, sock};
use lxfi_kernel::ModuleSpec;
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder, Width};
use lxfi_rewriter::InterfaceSpec;

/// The protocol family number CAN registers.
pub const CAN_FAMILY: u64 = 29;

/// Builds the can module.
pub fn spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("can");

    let sock_register = pb.import_func("sock_register");
    let copy_from_user = pb.import_func("copy_from_user");
    let copy_to_user = pb.import_func("copy_to_user");

    let ops = pb.global("can_proto_ops", proto_ops::SIZE);
    let stats = pb.global("can_stats", 16); // frames tx at +0, rx at +8

    let ioctl = pb.declare("can_ioctl", 3);
    let sendmsg = pb.declare("can_sendmsg", 3);
    let recvmsg = pb.declare("can_recvmsg", 3);
    let bind = pb.declare("can_bind", 2);

    pb.fn_reloc(ops, proto_ops::IOCTL as u64, ioctl);
    pb.fn_reloc(ops, proto_ops::SENDMSG as u64, sendmsg);
    pb.fn_reloc(ops, proto_ops::RECVMSG as u64, recvmsg);
    pb.fn_reloc(ops, proto_ops::BIND as u64, bind);

    pb.define("can_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            sock_register,
            &[(CAN_FAMILY as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    pb.define("can_ioctl", 3, 0, |f| {
        // Return the global tx frame count.
        f.global_addr(R3, stats);
        f.load8(R0, R3, 0);
        f.ret(R0);
    });

    // can_sendmsg: copy an 16-byte CAN frame from user space, count it.
    pb.define("can_sendmsg", 3, 16, |f| {
        let out = f.label();
        f.mov(R10, R0);
        f.frame_addr(R3, 0);
        f.call_extern(
            copy_from_user,
            &[R3.into(), R1.into(), 16i64.into()],
            Some(R4),
        );
        f.br(Cond::Ne, R4, 0i64, out);
        f.global_addr(R5, stats);
        f.load8(R6, R5, 0);
        f.add(R6, R6, 1i64);
        f.store8(R6, R5, 0);
        // Remember the CAN id on this socket.
        f.load_frame(R7, 0, Width::B8);
        f.store8(R7, R10, sock::PRIV);
        f.ret(16i64);
        f.bind(out);
        f.mov(R0, -14i64);
        f.ret(R0);
    });

    pb.define("can_recvmsg", 3, 0, |f| {
        // Echo the last CAN id back to the user.
        f.add(R3, R0, sock::PRIV);
        f.call_extern(copy_to_user, &[R1.into(), R3.into(), 8i64.into()], Some(R4));
        f.global_addr(R5, stats);
        f.load8(R6, R5, 8);
        f.add(R6, R6, 1i64);
        f.store8(R6, R5, 8);
        f.ret(8i64);
    });

    pb.define("can_bind", 2, 0, |f| {
        f.load8(R2, R1, 0);
        f.store8(R2, R0, sock::PRIV);
        f.ret(0i64);
    });

    let sig_ioctl = pb.sig("proto_ioctl", 3);
    let sig_sendmsg = pb.sig("proto_sendmsg", 3);
    let sig_recvmsg = pb.sig("proto_recvmsg", 3);
    let sig_bind = pb.sig("proto_bind", 2);
    pb.assign_sig(ioctl, sig_ioctl);
    pb.assign_sig(sendmsg, sig_sendmsg);
    pb.assign_sig(recvmsg, sig_recvmsg);
    pb.assign_sig(bind, sig_bind);

    let mut iface = InterfaceSpec::new();
    for name in ["proto_ioctl", "proto_sendmsg", "proto_recvmsg"] {
        iface.declare_sig(crate::decl(
            name,
            vec![
                Param::ptr("sock", "sock"),
                Param::scalar("a"),
                Param::scalar("b"),
            ],
            PROTO_SOCK_ANN,
        ));
    }
    iface.declare_sig(crate::decl(
        "proto_bind",
        vec![Param::ptr("sock", "sock"), Param::scalar("addr")],
        PROTO_SOCK_ANN,
    ));

    ModuleSpec {
        name: "can".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("can_init".into()),
    }
}
