//! Backend matrix: every module workload must produce identical
//! *functional* results under the interpreter and the compiled backend,
//! in both isolation modes. Simulated cycles are backend-invariant by
//! construction (the compiled backend refunds exactly what it
//! over-consumes), so the matrix also pins `total_cycles` — any drift
//! there means a fuel-accounting bug, not just a perf difference.

use lxfi_bench::{dm, netperf, sound};
use lxfi_kernel::{Backend, IsolationMode};

const MODES: [IsolationMode; 2] = [IsolationMode::Stock, IsolationMode::Lxfi];

/// netperf: packet TX + RX deliver identical skb handles, rx counts,
/// device counters, and simulated cycles under both backends.
#[test]
fn netperf_matrix() {
    for mode in MODES {
        let mut obs = Vec::new();
        for backend in [Backend::Interp, Backend::Compiled] {
            let (mut k, dev) = netperf::boot_e1000_backend(mode, backend);
            let mut log = Vec::new();
            for len in [60u64, 256, 1448] {
                log.push(k.enter(|k| k.net_send_packet(dev, len)).unwrap());
            }
            log.push(k.enter(|k| k.net_deliver_rx(dev, 8)).unwrap());
            log.push(k.enter(|k| k.net_send_packet(dev, 1448)).unwrap());
            assert!(k.panic_reason().is_none(), "{mode:?}/{backend:?} panicked");
            obs.push((log, k.total_cycles()));
        }
        assert_eq!(
            obs[0], obs[1],
            "netperf diverged across backends ({mode:?})"
        );
    }
}

/// Sound playback: trigger/pointer results and cycles match.
#[test]
fn sound_matrix() {
    for mode in MODES {
        let mut obs = Vec::new();
        for backend in [Backend::Interp, Backend::Compiled] {
            let (mut k, pcm) = sound::boot_sound_backend(mode, backend);
            let mut log = Vec::new();
            for _ in 0..4 {
                log.push(k.enter(|k| k.snd_trigger(pcm, 1)).unwrap());
                log.push(k.enter(|k| k.snd_pointer(pcm)).unwrap());
                log.push(k.enter(|k| k.snd_pointer(pcm)).unwrap());
                log.push(k.enter(|k| k.snd_trigger(pcm, 0)).unwrap());
            }
            assert!(k.panic_reason().is_none(), "{mode:?}/{backend:?} panicked");
            obs.push((log, k.total_cycles()));
        }
        assert_eq!(obs[0], obs[1], "sound diverged across backends ({mode:?})");
    }
}

/// Device-mapper: crypt transforms and snapshot COW writes produce
/// byte-identical payloads and cycles.
#[test]
fn dm_matrix() {
    for mode in MODES {
        let mut obs = Vec::new();
        for backend in [Backend::Interp, Backend::Compiled] {
            let (mut k, crypt, snap) = dm::boot_dm_backend(mode, backend);
            let mut payloads = Vec::new();
            for i in 0..6u64 {
                let b = k
                    .enter(|k| k.dm_submit(crypt, true, dm::DM_REQ_BYTES, i as u8))
                    .unwrap();
                payloads.push(k.bio_payload(b).unwrap());
                let b = k
                    .enter(|k| k.dm_submit(crypt, false, dm::DM_REQ_BYTES, i as u8))
                    .unwrap();
                payloads.push(k.bio_payload(b).unwrap());
                let b = k
                    .enter(|k| k.dm_submit(snap, true, dm::DM_REQ_BYTES, i as u8))
                    .unwrap();
                payloads.push(k.bio_payload(b).unwrap());
            }
            assert!(k.panic_reason().is_none(), "{mode:?}/{backend:?} panicked");
            obs.push((payloads, k.total_cycles()));
        }
        assert_eq!(obs[0], obs[1], "dm diverged across backends ({mode:?})");
    }
}

/// The exploit suite: every attack must succeed (Stock) or be blocked
/// with the *same violation* (LXFI) regardless of backend — compilation
/// must not change the security outcome.
#[test]
fn exploits_matrix() {
    for mode in MODES {
        let a = lxfi_exploits::run_all_backend(mode, Backend::Interp);
        let b = lxfi_exploits::run_all_backend(mode, Backend::Compiled);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                x.succeeded, y.succeeded,
                "{} outcome diverged across backends ({mode:?})",
                x.name
            );
            assert_eq!(
                format!("{:?}", x.blocked_by),
                format!("{:?}", y.blocked_by),
                "{} violation diverged across backends ({mode:?})",
                x.name
            );
            assert_eq!(
                x.detail, y.detail,
                "{} detail diverged across backends ({mode:?})",
                x.name
            );
        }
    }
}
