//! Wall-clock companion for the indirect-call slow path: `writers_of`
//! via the reverse writer index vs the paper's global principal walk,
//! at 8 / 64 / 512 principals, plus the full `check_indcall` guard with
//! the fast path disabled (every call takes the slow path).

use criterion::{criterion_group, criterion_main, Criterion};
use lxfi_bench::writer_index::{bench_writer_indexes, rotating_slot_probe, SLOT_BASE};
use lxfi_core::runtime::FnMeta;
use lxfi_core::{RawCap, Runtime, ThreadId};

fn lookup_benches(c: &mut Criterion) {
    for n in [8usize, 64, 512] {
        let (linear, index) = bench_writer_indexes(n);
        let name = format!("writers_of_{n}_principals");
        let mut group = c.benchmark_group(&name);
        let mut i = 0u64;
        group.bench_function("linear_walk", |b| {
            b.iter(|| {
                let a = rotating_slot_probe(i);
                i += 1;
                linear.writers_of(std::hint::black_box(a), 8).len()
            })
        });
        let mut i = 0u64;
        group.bench_function("reverse_index", |b| {
            b.iter(|| {
                let a = rotating_slot_probe(i);
                i += 1;
                index.writers_over(std::hint::black_box(a), 8).count()
            })
        });
        group.finish();
    }
}

/// The full guard at 512 principals: a runtime where the probed slot is
/// writable by two principals that both hold CALL for the target, so
/// `check_indcall` runs the whole writer-set + capability check.
fn indcall_slow_path_bench(c: &mut Criterion) {
    let mut rt = Runtime::new();
    let m = rt.register_module("bench");
    rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x2000);
    let slot = SLOT_BASE;
    let target = 0xf000u64;
    for i in 0..512u64 {
        let p = rt.principal_for_name(m, 0x9000 + i * 8);
        // Private arena per principal; two of them also write the slot.
        rt.grant(p, RawCap::write(0x100_0000 + i * 0x1000, 0x100));
        if i < 2 {
            rt.grant(p, RawCap::write(slot, 8));
            rt.grant(p, RawCap::call(target));
        }
    }
    rt.register_function(
        target,
        FnMeta {
            name: "cb".into(),
            ahash: 7,
            module: Some(m),
        },
    );
    c.bench_function("guard_indcall_slow_512_principals", |b| {
        b.iter(|| {
            rt.check_indcall(std::hint::black_box(slot), target, 7)
                .unwrap()
        })
    });
}

/// Grant/revoke splice latency at 512 principals, 1/4/16 shards over an
/// identical 2048-interval population.
fn splice_benches(c: &mut Criterion) {
    use lxfi_bench::writer_index::{bench_sharded_index, splice_churn_op, SPLICE_SHARD_COUNTS};
    let mut group = c.benchmark_group("splice_churn_512_principals");
    for &shards in &SPLICE_SHARD_COUNTS {
        let mut ix = bench_sharded_index(512, shards);
        let mut i = 0u64;
        let name = format!("{shards}_shards");
        group.bench_function(&name, |b| {
            b.iter(|| {
                splice_churn_op(&mut ix, 512, i);
                i += 1;
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    lookup_benches(c);
    splice_benches(c);
    indcall_slow_path_bench(c);
}

criterion_group! {
    name = writer_index;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(writer_index);
