//! Wall-clock companion to Figure 11: host time of the interpreted SFI
//! microbenchmarks, stock vs LXFI.

use criterion::{criterion_group, criterion_main, Criterion};
use lxfi_bench::sfi;
use lxfi_kernel::{IsolationMode, Kernel, ModuleSpec};

fn run(k: &mut Kernel, module: &str, func: &str, args: &[u64]) -> u64 {
    let id = k.module_id(module).unwrap();
    let addr = k.module_fn_addr(id, func).unwrap();
    k.enter(|k| k.invoke_module_function(addr, args, None))
        .unwrap()
}

fn bench_pair(
    c: &mut Criterion,
    name: &str,
    spec_fn: fn() -> ModuleSpec,
    func: &'static str,
    args: &'static [u64],
) {
    let mut group = c.benchmark_group(name);
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let label = match mode {
            IsolationMode::Stock => "stock",
            IsolationMode::Lxfi => "lxfi",
        };
        let spec = spec_fn();
        let module = spec.name.clone();
        let mut k = Kernel::boot(mode);
        k.load_module(spec).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| run(&mut k, &module, func, std::hint::black_box(args)))
        });
    }
    group.finish();
}

fn hotlist400() -> ModuleSpec {
    sfi::hotlist_spec(400)
}

fn lld400() -> ModuleSpec {
    sfi::lld_spec(400)
}

fn benches(c: &mut Criterion) {
    bench_pair(c, "hotlist_search", hotlist400, "hotlist_search", &[123]);
    bench_pair(c, "lld_churn", lld400, "lld_churn", &[10]);
    bench_pair(c, "md5_blocks", sfi::md5_spec, "md5_blocks", &[8, 42]);
}

criterion_group! {
    name = sfi_micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(sfi_micro);
