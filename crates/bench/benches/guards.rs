//! Wall-clock companion to Figure 13: host cost of the individual LXFI
//! runtime guards (write check, indirect-call fast/slow path, wrapper
//! entry+exit, capability grant/revoke).

use criterion::{criterion_group, criterion_main, Criterion};
use lxfi_core::runtime::FnMeta;
use lxfi_core::{RawCap, Runtime, ThreadId};

fn benches(c: &mut Criterion) {
    let mut rt = Runtime::new();
    let m = rt.register_module("bench");
    rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x2000);
    let p = rt.principal_for_name(m, 0x9000);
    rt.grant(p, RawCap::write(0x5000, 4096));
    rt.grant(p, RawCap::call(0xf000));
    rt.register_function(
        0xf000,
        FnMeta {
            name: "cb".into(),
            ahash: 7,
            module: Some(m),
        },
    );
    let t = ThreadId(0);
    rt.thread(t).set_current(Some((m, p)));

    c.bench_function("guard_mem_write", |b| {
        b.iter(|| rt.check_write(t, std::hint::black_box(0x5100), 8).unwrap())
    });

    // Fast path: a slot no module can write.
    c.bench_function("guard_indcall_fast", |b| {
        b.iter(|| {
            rt.check_indcall(std::hint::black_box(0x7000), 0xf000, 7)
                .unwrap()
        })
    });

    // Slow path: the slot sits inside the module's WRITE range.
    c.bench_function("guard_indcall_slow", |b| {
        b.iter(|| {
            rt.check_indcall(std::hint::black_box(0x5080), 0xf000, 7)
                .unwrap()
        })
    });

    c.bench_function("wrapper_entry_exit", |b| {
        b.iter(|| {
            let tok = rt.wrapper_enter(t, Some((m, p)));
            rt.wrapper_exit(t, tok).unwrap();
        })
    });

    c.bench_function("capability_grant_revoke", |b| {
        b.iter(|| {
            let cap = RawCap::write(std::hint::black_box(0x6000), 64);
            rt.grant(p, cap);
            rt.revoke(p, cap);
        })
    });

    // Interval index vs the paper's masked-slot linear scan, and the
    // guard cache's repeated-store fast path: same harness the
    // table_guard_costs binary reports, exposed as wall-clock benches.
    write_table_benches(c);
}

fn write_table_benches(c: &mut Criterion) {
    use lxfi_bench::guards::{
        bench_guard_runtime, bench_tables, rotating_hit_probe, rotating_miss_probe, ARENA,
    };
    const GRANTS: usize = 512;
    let (linear, interval) = bench_tables(GRANTS);

    let mut group = c.benchmark_group("write_table_hit");
    let mut i = 0u64;
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let a = rotating_hit_probe(i, GRANTS);
            i += 1;
            linear.covers(std::hint::black_box(a), 8)
        })
    });
    let mut i = 0u64;
    group.bench_function("interval", |b| {
        b.iter(|| {
            let a = rotating_hit_probe(i, GRANTS);
            i += 1;
            interval.covers(std::hint::black_box(a), 8)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("write_table_miss");
    let mut i = 0u64;
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let a = rotating_miss_probe(i, GRANTS);
            i += 1;
            linear.covers(std::hint::black_box(a), 8)
        })
    });
    let mut i = 0u64;
    group.bench_function("interval", |b| {
        b.iter(|| {
            let a = rotating_miss_probe(i, GRANTS);
            i += 1;
            interval.covers(std::hint::black_box(a), 8)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("guard_write_512_grants");
    let (mut rt, t) = bench_guard_runtime(GRANTS);
    group.bench_function("repeated_store_cache_hit", |b| {
        b.iter(|| rt.check_write(t, std::hint::black_box(ARENA), 8).unwrap())
    });
    let mut i = 0u64;
    group.bench_function("rotating_store_cache_miss", |b| {
        b.iter(|| {
            let a = rotating_hit_probe(i, GRANTS);
            i += 1;
            rt.check_write(t, std::hint::black_box(a), 8).unwrap()
        })
    });
    group.finish();

    // Revoke-heavy churn: guarded store with an unrelated instance's
    // grant revoked+re-granted in the same iteration (the churn is part
    // of the measured loop here; the table harness separates them).
    let mut group = c.benchmark_group("guard_write_revoke_churn_64");
    use lxfi_bench::guards::{churn_unrelated, revoke_heavy_runtime};
    let (mut rt, t, ps) = revoke_heavy_runtime(64);
    group.bench_function("steady_store", |b| {
        b.iter(|| rt.check_write(t, std::hint::black_box(ARENA), 8).unwrap())
    });
    let mut i = 0u64;
    group.bench_function("unrelated_revoke_plus_store", |b| {
        b.iter(|| {
            churn_unrelated(&mut rt, &ps, i);
            i += 1;
            rt.check_write(t, std::hint::black_box(ARENA), 8).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = guards;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(guards);
