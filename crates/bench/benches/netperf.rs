//! Wall-clock companion to Figure 12: host time of the TX and RX packet
//! paths through the interpreted e1000, stock vs LXFI.

use criterion::{criterion_group, criterion_main, Criterion};
use lxfi_bench::netperf::boot_e1000;
use lxfi_kernel::IsolationMode;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_tx");
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let label = match mode {
            IsolationMode::Stock => "stock",
            IsolationMode::Lxfi => "lxfi",
        };
        let (mut k, dev) = boot_e1000(mode);
        group.bench_function(label, |b| {
            b.iter(|| k.enter(|k| k.net_send_packet(dev, 64)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("packet_rx_burst16");
    for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
        let label = match mode {
            IsolationMode::Stock => "stock",
            IsolationMode::Lxfi => "lxfi",
        };
        let (mut k, dev) = boot_e1000(mode);
        group.bench_function(label, |b| {
            b.iter(|| {
                k.enter(|k| k.net_deliver_rx(dev, 16)).unwrap();
                k.enter(|k| k.net_drain_rx()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = netperf;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(netperf);
