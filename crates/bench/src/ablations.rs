//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Writer-set tracking** (§5): with the fast path disabled, every
//!    kernel indirect call pays the full capability-and-annotation check.
//!    The paper credits the optimization with removing ~2/3 of
//!    indirect-call checks on the UDP TX workload.
//! 2. **Write-guard merging** (module pass): consecutive same-base
//!    stores share one range guard; disabling it guards each store
//!    individually.
//! 3. **Epoch-cache associativity** (`WAYS`): the per-thread write-guard
//!    cache remembers `WAYS` covering intervals per principal; the
//!    ablation sweeps 1/2/4/8 ways against store streams rotating over
//!    1–8 distinct objects (the netperf TX path touches four per
//!    packet: descriptor, payload, queue state, stats), to justify the
//!    default of 4.

use std::hint::black_box;
use std::time::Instant;

use lxfi_core::{GuardHandle, GuardKind, RawCap, Replacement, Runtime};
use lxfi_kernel::{IsolationMode, Kernel};
use lxfi_rewriter::{rewrite_module, RewriteOptions};

use crate::netperf::boot_e1000;
use crate::sfi::lld_spec;

/// Result of the writer-set ablation.
#[derive(Debug, Clone)]
pub struct WriterSetAblation {
    /// Ind-call guard cycles per packet with the fast path on.
    pub with_fastpath: f64,
    /// ... and with every check forced down the slow path.
    pub without_fastpath: f64,
    /// Fraction of ind-call work the optimization removes.
    pub saved_fraction: f64,
}

/// Measures kernel indirect-call guard cycles per TX packet with and
/// without writer-set tracking.
pub fn writer_set_ablation(n: u64) -> WriterSetAblation {
    let run = |fastpath: bool| -> f64 {
        let (mut k, dev) = boot_e1000(IsolationMode::Lxfi);
        k.rt.writer_fastpath = fastpath;
        for _ in 0..8 {
            k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
        }
        k.rt.stats.reset();
        // Mixed traffic: TX dispatches go through the (module-written)
        // ops slot — always slow; RX NAPI dispatches go through a
        // kernel-written slot — the fast path's beneficiary.
        for _ in 0..n {
            k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
            k.enter(|k| k.net_deliver_rx(dev, 1)).unwrap();
            k.enter(|k| k.net_drain_rx()).unwrap();
        }
        k.rt.stats.cycles(GuardKind::KernelIndCall) as f64 / n as f64
    };
    let with_fastpath = run(true);
    let without_fastpath = run(false);
    WriterSetAblation {
        with_fastpath,
        without_fastpath,
        saved_fraction: 1.0 - with_fastpath / without_fastpath,
    }
}

/// Result of the guard-merging ablation.
#[derive(Debug, Clone)]
pub struct MergeAblation {
    /// Guards inserted with merging on / off.
    pub guards_merged_on: usize,
    /// Guards inserted with merging off.
    pub guards_merged_off: usize,
    /// Workload cycles with merging on.
    pub cycles_on: u64,
    /// Workload cycles with merging off.
    pub cycles_off: u64,
}

/// Compares the lld workload with and without write-guard merging.
pub fn merge_ablation() -> MergeAblation {
    let spec = lld_spec(400);
    let on = rewrite_module(
        &spec.program,
        RewriteOptions {
            merge_write_guards: true,
            ..Default::default()
        },
    );
    let off = rewrite_module(
        &spec.program,
        RewriteOptions {
            merge_write_guards: false,
            ..Default::default()
        },
    );

    // Run the same workload on both instrumented variants by loading the
    // module normally (merging on — the default the loader uses) and by
    // charging the additional guards analytically for the off case.
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let id = k.load_module(lld_spec(400)).unwrap();
    let addr = k.module_fn_addr(id, "lld_churn").unwrap();
    let start = k.total_cycles();
    let checks_before = k.rt.stats.count(GuardKind::MemWrite);
    k.enter(|k| k.invoke_module_function(addr, &[60], None))
        .unwrap();
    let cycles_on = k.total_cycles() - start;
    let checks = k.rt.stats.count(GuardKind::MemWrite) - checks_before;

    // Without merging, each merged guard splits back into its members:
    // scale the observed dynamic check count by the static ratio.
    let ratio = (off.guards_inserted as f64) / (on.guards_inserted as f64);
    let extra_checks = (checks as f64 * (ratio - 1.0)).round() as u64;
    let cycles_off = cycles_on + extra_checks * k.rt.costs.mem_write;

    MergeAblation {
        guards_merged_on: on.guards_inserted,
        guards_merged_off: off.guards_inserted,
        cycles_on,
        cycles_off,
    }
}

// ------------------------------------------- epoch-cache WAYS ablation

/// Base of the rotated-object arena in the WAYS ablation.
pub const WAYS_ARENA: u64 = 0x60_0000;
/// Byte stride between the rotated objects.
pub const WAYS_OBJ_STRIDE: u64 = 0x1000;

/// One `(ways, objects, policy)` cell of the associativity ablation.
#[derive(Debug, Clone, Copy)]
pub struct WaysAblationRow {
    /// Cache associativity (covering intervals per principal).
    pub ways: usize,
    /// Distinct objects the store stream rotates across per packet.
    pub objects: usize,
    /// Replacement policy under test.
    pub policy: Replacement,
    /// Write-guard cache hit rate over the stream (deterministic).
    pub hit_rate: f64,
    /// Measured per-store latency (host ns).
    pub store_ns: f64,
}

/// Drives a `W`-way [`GuardHandle`] through the netperf-model store
/// stream: each "packet" touches `objects` distinct granted objects in
/// rotation (descriptor-then-payload-then-state style), `stores` stores
/// total. Returns `(hit_rate, ns_per_store)`.
fn run_ways<const W: usize>(objects: usize, stores: u64, policy: Replacement) -> (f64, f64) {
    let mut rt = Runtime::new();
    let m = rt.register_module("ways");
    let p = rt.principal_for_name(m, 0x9000);
    for k in 0..objects as u64 {
        rt.grant(p, RawCap::write(WAYS_ARENA + k * WAYS_OBJ_STRIDE, 0x200));
    }
    let mut h: GuardHandle<W> = GuardHandle::new(rt.share());
    h.set_cache_policy(policy);
    h.set_current(Some((m, p)));
    let addr = |i: u64| {
        let k = i % objects as u64;
        WAYS_ARENA + k * WAYS_OBJ_STRIDE + (i % 32) * 8
    };
    // One full rotation of warmup, then the measured stream.
    for i in 0..objects as u64 {
        h.check_write(addr(i), 8).unwrap();
    }
    h.stats.reset();
    let t0 = Instant::now();
    for i in 0..stores {
        h.check_write(black_box(addr(i)), 8).unwrap();
    }
    let ns = t0.elapsed().as_nanos() as f64 / stores as f64;
    (h.stats.write_cache_hit_rate(), ns)
}

fn run_ways_dyn(ways: usize, objects: usize, stores: u64, policy: Replacement) -> (f64, f64) {
    match ways {
        1 => run_ways::<1>(objects, stores, policy),
        2 => run_ways::<2>(objects, stores, policy),
        4 => run_ways::<4>(objects, stores, policy),
        _ => run_ways::<8>(objects, stores, policy),
    }
}

/// The full `ways × objects × policy` grid. Round-robin replacement
/// against a cyclic stream is the worst case: `objects ≤ ways` hits
/// ~100%, `objects > ways` collapses to ~0% — the cliff the table in
/// the README uses to justify the default of 4. The victim-entry rows
/// show the policy that softens the cliff: conflict misses churn only
/// the victim way, so `W-1` residents keep hitting when the rotation is
/// one-or-two objects too wide — which is why victim replacement is the
/// default.
pub fn epoch_ways_ablation(stores: u64) -> Vec<WaysAblationRow> {
    let mut rows = Vec::new();
    for &policy in &[Replacement::RoundRobin, Replacement::Victim] {
        for &objects in &[1usize, 2, 4, 6, 8] {
            for &ways in &[1usize, 2, 4, 8] {
                let (hit_rate, store_ns) = run_ways_dyn(ways, objects, stores, policy);
                rows.push(WaysAblationRow {
                    ways,
                    objects,
                    policy,
                    hit_rate,
                    store_ns,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ways_ablation_shows_the_associativity_cliff() {
        let rows = epoch_ways_ablation(4_000);
        let cell = |w: usize, o: usize, p: Replacement| {
            rows.iter()
                .find(|r| r.ways == w && r.objects == o && r.policy == p)
                .unwrap()
                .hit_rate
        };
        let rr = |w, o| cell(w, o, Replacement::RoundRobin);
        let vi = |w, o| cell(w, o, Replacement::Victim);
        // Enough ways for the rotation: everything hits, either policy.
        assert!(rr(4, 4) > 0.99, "4 objects fit 4 ways: {}", rr(4, 4));
        assert!(rr(8, 6) > 0.99);
        assert!(rr(1, 1) > 0.99);
        assert!(vi(4, 4) > 0.99);
        assert!(vi(1, 1) > 0.99);
        // One object too many + round-robin replacement: collapse.
        assert!(rr(4, 6) < 0.05, "6 objects thrash 4 ways: {}", rr(4, 6));
        assert!(rr(1, 2) < 0.05);
        assert!(rr(2, 4) < 0.05);
        // The victim policy softens exactly that cliff: W-1 residents
        // keep hitting while conflict misses churn the victim way.
        assert!(vi(4, 6) > 0.4, "victim softens the cliff: {}", vi(4, 6));
        assert!(
            vi(4, 8) > 0.3,
            "even 2x-over rotation retains: {}",
            vi(4, 8)
        );
        assert!(vi(2, 4) > 0.2);
        assert!(
            vi(4, 6) > rr(4, 6) + 0.3,
            "policy beats rotation past the cliff: {} vs {}",
            vi(4, 6),
            rr(4, 6)
        );
        // The default covers the netperf TX pattern (4 objects/packet).
        assert!(vi(4, 2) > 0.99);
    }

    #[test]
    fn writer_set_tracking_saves_indcall_work() {
        let a = writer_set_ablation(100);
        assert!(
            a.without_fastpath > a.with_fastpath,
            "disabling the fast path must cost more: {a:?}"
        );
        // The TX path has both kernel-written slots (probe, NAPI) that
        // benefit and module-written slots (ops table) that do not.
        assert!(a.saved_fraction > 0.0 && a.saved_fraction < 1.0);
    }

    #[test]
    fn guard_merging_reduces_static_and_dynamic_cost() {
        let a = merge_ablation();
        assert!(a.guards_merged_off >= a.guards_merged_on, "{a:?}");
        assert!(a.cycles_off >= a.cycles_on, "{a:?}");
    }
}
