//! The Figure 7 component inventory: lines of code per LXFI component.
//!
//! The paper reports its gcc plugin (150 lines), clang plugin (1,452)
//! and runtime checker (4,704); this reproduction maps those components
//! onto workspace crates and counts non-blank, non-comment-only lines.

use std::path::{Path, PathBuf};

/// One component row.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component name.
    pub component: String,
    /// Files or crates counted.
    pub source: String,
    /// Non-blank lines of Rust.
    pub lines: usize,
}

fn workspace_root() -> PathBuf {
    // crates/bench → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// Counts non-blank lines in every `.rs` file under `dir`.
pub fn count_rs_lines(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if !p.ends_with("target") {
                total += count_rs_lines(&p);
            }
        } else if p.extension().is_some_and(|x| x == "rs") {
            if let Ok(text) = std::fs::read_to_string(&p) {
                total += text.lines().filter(|l| !l.trim().is_empty()).count();
            }
        }
    }
    total
}

/// Counts one file.
fn count_file(p: &Path) -> usize {
    std::fs::read_to_string(p)
        .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

/// The Figure 7 analogue rows.
pub fn figure7() -> Vec<LocRow> {
    let root = workspace_root();
    vec![
        LocRow {
            component: "Kernel rewriting plugin".into(),
            source: "crates/rewriter/src/kernel_pass.rs".into(),
            lines: count_file(&root.join("crates/rewriter/src/kernel_pass.rs")),
        },
        LocRow {
            component: "Module rewriting plugin".into(),
            source: "crates/rewriter (module_pass, propagate, edit)".into(),
            lines: count_file(&root.join("crates/rewriter/src/module_pass.rs"))
                + count_file(&root.join("crates/rewriter/src/propagate.rs"))
                + count_file(&root.join("crates/rewriter/src/edit.rs")),
        },
        LocRow {
            component: "Runtime checker".into(),
            source: "crates/core + crates/annotations".into(),
            lines: count_rs_lines(&root.join("crates/core/src"))
                + count_rs_lines(&root.join("crates/annotations/src")),
        },
    ]
}

/// Full workspace inventory (the reproduction's own system table).
pub fn inventory() -> Vec<LocRow> {
    let root = workspace_root();
    let mut rows = Vec::new();
    for crate_dir in [
        "crates/machine",
        "crates/annotations",
        "crates/core",
        "crates/rewriter",
        "crates/kernel",
        "crates/modules",
        "crates/exploits",
        "crates/bench",
    ] {
        rows.push(LocRow {
            component: crate_dir.to_string(),
            source: format!("{crate_dir}/src + tests"),
            lines: count_rs_lines(&root.join(crate_dir)),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_counts_real_files() {
        let rows = figure7();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.lines > 50, "{r:?} should be non-trivial");
        }
        // The kernel pass is the smallest component, as in the paper
        // (150 vs 1,452 vs 4,704 lines).
        assert!(rows[0].lines < rows[1].lines);
        assert!(rows[1].lines < rows[2].lines);
    }

    #[test]
    fn inventory_covers_all_crates() {
        let rows = inventory();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.lines > 0));
    }
}
