//! Benchmark and table harnesses: one generator per table/figure of the
//! paper's evaluation (§8).
//!
//! | target | regenerates |
//! |---|---|
//! | `cargo run -p lxfi-bench --bin table_components`  | Figure 7 (component LoC) |
//! | `cargo run -p lxfi-bench --bin table_security`    | Figure 8 (exploits prevented) |
//! | `cargo run -p lxfi-bench --bin table_annotations` | Figure 9 (annotation census) |
//! | `cargo run -p lxfi-bench --bin fig_api_churn`     | Figure 10 (API growth/churn) |
//! | `cargo run -p lxfi-bench --bin table_sfi`         | Figure 11 (SFI microbenchmarks) |
//! | `cargo run -p lxfi-bench --bin table_netperf`     | Figure 12 (netperf) |
//! | `cargo run -p lxfi-bench --bin table_guard_costs` | Figure 13 (guard cost breakdown) |
//! | `cargo bench -p lxfi-bench`                       | wall-clock companions |

pub mod ablations;
pub mod api_churn;
pub mod census;
pub mod chaos;
pub mod dm;
pub mod guards;
pub mod kernel_mt;
pub mod loc;
pub mod netperf;
pub mod netperf_mt;
pub mod server;
pub mod sfi;
pub mod sound;
pub mod soundness_audit;
pub mod writer_index;

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["hotlist".into(), "0%".into()],
                vec!["lld".into(), "11%".into()],
            ],
        );
        assert!(t.contains("hotlist"));
        assert!(t.lines().count() == 4);
    }
}
