//! The Figure 9 annotation census: how many annotated functions and
//! function-pointer types each module needs, and how many of those are
//! unique to it.
//!
//! Counting rules, mirroring the paper's:
//!
//! - "functions" = annotated kernel prototypes the module invokes
//!   directly (its function imports);
//! - "function pointers" = annotated function-pointer types through
//!   which the module is called or calls (its sig table);
//! - an annotation is *unique* if exactly one of the ten modules uses it;
//! - the `Total` row counts distinct annotations across all modules.

use std::collections::HashMap;

use lxfi_kernel::ModuleSpec;
use lxfi_machine::program::ImportKind;

/// One module's census row.
#[derive(Debug, Clone)]
pub struct CensusRow {
    /// Figure 9 category.
    pub category: &'static str,
    /// Module name.
    pub module: String,
    /// Annotated functions invoked (all).
    pub funcs_all: usize,
    /// ... of which unique to this module.
    pub funcs_unique: usize,
    /// Function-pointer types (all).
    pub fptrs_all: usize,
    /// ... of which unique to this module.
    pub fptrs_unique: usize,
    /// Capability iterators referenced by this module's interface.
    pub iterators: usize,
}

/// The census over a set of module specs, plus the distinct totals
/// `(functions, function pointers)`.
pub fn annotation_census(specs: &[ModuleSpec]) -> (Vec<CensusRow>, (usize, usize)) {
    // Usage maps: name → how many modules use it.
    let mut func_use: HashMap<String, usize> = HashMap::new();
    let mut fptr_use: HashMap<String, usize> = HashMap::new();
    for spec in specs {
        for imp in &spec.program.imports {
            if imp.kind == ImportKind::Func {
                *func_use.entry(imp.name.clone()).or_insert(0) += 1;
            }
        }
        for sig in &spec.program.sigs {
            *fptr_use.entry(sig.name.clone()).or_insert(0) += 1;
        }
    }

    let mut rows = Vec::new();
    for spec in specs {
        let funcs: Vec<&str> = spec
            .program
            .imports
            .iter()
            .filter(|i| i.kind == ImportKind::Func)
            .map(|i| i.name.as_str())
            .collect();
        let fptrs: Vec<&str> = spec.program.sigs.iter().map(|s| s.name.as_str()).collect();
        let iterators: usize = {
            let mut names: Vec<&str> = spec
                .iface
                .sig_decls
                .values()
                .chain(spec.iface.fn_decls.values())
                .flat_map(|d| d.ann.iterator_names())
                .collect();
            names.sort_unstable();
            names.dedup();
            names.len()
        };
        rows.push(CensusRow {
            category: lxfi_modules::category(&spec.name),
            module: spec.name.clone(),
            funcs_all: funcs.len(),
            funcs_unique: funcs.iter().filter(|f| func_use[**f] == 1).count(),
            fptrs_all: fptrs.len(),
            fptrs_unique: fptrs.iter().filter(|f| fptr_use[**f] == 1).count(),
            iterators,
        });
    }
    (rows, (func_use.len(), fptr_use.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_over_all_ten_modules() {
        let specs = lxfi_modules::all_specs();
        let (rows, (total_funcs, total_fptrs)) = annotation_census(&specs);
        assert_eq!(rows.len(), 10);

        // Totals are distinct counts, ≤ the per-module sums.
        let sum_funcs: usize = rows.iter().map(|r| r.funcs_all).sum();
        assert!(total_funcs <= sum_funcs);
        assert!(total_fptrs <= rows.iter().map(|r| r.fptrs_all).sum());

        // Structure from the paper: e1000 needs the most annotations;
        // the protocol modules share almost everything (can's unique
        // count is tiny); dm-zero is the smallest.
        let get = |name: &str| rows.iter().find(|r| r.module == name).unwrap();
        let e1000 = get("e1000");
        for r in &rows {
            assert!(e1000.funcs_all >= r.funcs_all, "{r:?}");
        }
        let can = get("can");
        assert!(can.funcs_unique <= 1, "can shares its interface: {can:?}");
        let dm_zero = get("dm-zero");
        assert!(dm_zero.funcs_all <= 2, "{dm_zero:?}");

        // Every module needs at least one annotated function and pointer.
        for r in &rows {
            assert!(r.funcs_all >= 1, "{r:?}");
            assert!(r.fptrs_all >= 1, "{r:?}");
        }
    }

    #[test]
    fn shared_protocol_sigs_are_not_unique() {
        let specs = lxfi_modules::all_specs();
        let (rows, _) = annotation_census(&specs);
        // The four socket modules share proto_* types: none unique there.
        for name in ["rds", "can", "can-bcm", "econet"] {
            let r = rows.iter().find(|r| r.module == name).unwrap();
            assert_eq!(r.fptrs_unique, 0, "{r:?}");
        }
    }
}
