//! The netperf harness (Figure 12): measures per-packet cycles by
//! running real packets through the interpreted e1000 module, then feeds
//! the cost model in [`lxfi_kernel::netsim`].
//!
//! Calibration: simulated cycles are converted to testbed cycles with a
//! single factor chosen so the *stock* UDP TX row matches the paper's
//! 54% CPU at 3.1 M pkt/s. The same factor is applied to the LXFI rows,
//! so the relative overhead — the result under evaluation — comes
//! entirely from measurement.

use lxfi_kernel::netsim::NetSimConfig;
use lxfi_kernel::{Backend, IsolationMode, Kernel};
use lxfi_modules as mods;

/// Measured per-packet costs, in simulated cycles.
#[derive(Debug, Clone, Copy)]
pub struct PacketCosts {
    /// One transmitted packet (socket layer → driver → ring).
    pub tx: f64,
    /// One received packet (interrupt → poll → netif_rx → drain).
    pub rx: f64,
}

/// Boots a kernel with the e1000 bound to a NIC.
pub fn boot_e1000(mode: IsolationMode) -> (Kernel, u64) {
    boot_e1000_backend(mode, Backend::Interp)
}

/// [`boot_e1000`] with an explicit execution backend.
pub fn boot_e1000_backend(mode: IsolationMode, backend: Backend) -> (Kernel, u64) {
    boot_e1000_opts(mode, backend, lxfi_rewriter::RewriteOptions::default())
}

/// [`boot_e1000_backend`] with explicit rewriter options, used by the
/// guard-cost harness to compare rewrite strategies (e.g. loop-guard
/// hoisting on vs off) on identical dynamic workloads.
pub fn boot_e1000_opts(
    mode: IsolationMode,
    backend: Backend,
    opts: lxfi_rewriter::RewriteOptions,
) -> (Kernel, u64) {
    let mut k = Kernel::boot_with_options(mode, backend, opts);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(mods::e1000::spec()).unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let dev = *k.net().devices.last().unwrap();
    (k, dev)
}

/// Wall-clock nanoseconds per transmitted packet on a single CPU —
/// the host-time counterpart of [`measure_packet_costs`] (simulated
/// cycles are backend-invariant by design; host time is what the
/// compiled backend improves). Median of per-batch means, like the
/// multi-threaded harnesses.
pub fn measure_packet_wall_ns(mode: IsolationMode, backend: Backend, len: u64, n: u64) -> f64 {
    let (mut k, dev) = boot_e1000_backend(mode, backend);
    for _ in 0..32 {
        k.enter(|k| k.net_send_packet(dev, len)).unwrap();
    }
    const BATCH: u64 = 64;
    let mut batch_means = Vec::new();
    let mut sent = 0u64;
    while sent < n {
        let b = BATCH.min(n - sent);
        let t0 = std::time::Instant::now();
        for _ in 0..b {
            k.enter(|k| k.net_send_packet(dev, len)).unwrap();
        }
        batch_means.push(t0.elapsed().as_nanos() as f64 / b as f64);
        sent += b;
    }
    batch_means.sort_by(|a, b| a.total_cmp(b));
    batch_means[batch_means.len() / 2]
}

/// Measures per-packet TX and RX cycles over `n` packets of `len` bytes.
pub fn measure_packet_costs(mode: IsolationMode, len: u64, n: u64) -> PacketCosts {
    let (mut k, dev) = boot_e1000(mode);
    // Warm up (fills slab pages and writer-set structures).
    for _ in 0..8 {
        k.enter(|k| k.net_send_packet(dev, len)).unwrap();
    }
    let start = k.total_cycles();
    for _ in 0..n {
        k.enter(|k| k.net_send_packet(dev, len)).unwrap();
    }
    let tx = (k.total_cycles() - start) as f64 / n as f64;

    let start = k.total_cycles();
    let batches = n.div_ceil(16);
    for _ in 0..batches {
        k.enter(|k| k.net_deliver_rx(dev, 16)).unwrap();
        k.enter(|k| k.net_drain_rx()).unwrap();
    }
    let rx = (k.total_cycles() - start) as f64 / (batches * 16) as f64;
    PacketCosts { tx, rx }
}

/// One Figure 12 row.
#[derive(Debug, Clone)]
pub struct NetperfRow {
    /// Test name as in the paper's table.
    pub test: &'static str,
    /// Stock throughput (unit in `unit`).
    pub stock_tput: f64,
    /// LXFI throughput.
    pub lxfi_tput: f64,
    /// Unit label.
    pub unit: &'static str,
    /// Stock CPU utilization (0..=1).
    pub stock_cpu: f64,
    /// LXFI CPU utilization (0..=1).
    pub lxfi_cpu: f64,
}

/// Paper-anchored offered rates (§8.4).
pub struct Offered {
    /// UDP TX messages/s the sender generates (paper stock: 3.1 M).
    pub udp_tx_pps: f64,
    /// UDP RX packets/s arriving from the wire (paper: 2.3 M).
    pub udp_rx_pps: f64,
}

impl Default for Offered {
    fn default() -> Self {
        Offered {
            udp_tx_pps: 3.1e6,
            udp_rx_pps: 2.3e6,
        }
    }
}

/// Generates the full Figure 12 table from measured packet costs.
pub fn figure12() -> Vec<NetperfRow> {
    let cfg = NetSimConfig::default();
    let offered = Offered::default();

    let stock_small = measure_packet_costs(IsolationMode::Stock, 64, 300);
    let lxfi_small = measure_packet_costs(IsolationMode::Lxfi, 64, 300);
    let stock_big = measure_packet_costs(IsolationMode::Stock, 1448, 300);
    let lxfi_big = measure_packet_costs(IsolationMode::Lxfi, 1448, 300);

    // Calibration factor: stock UDP TX pins at 54% CPU / 3.1 M pkt/s.
    let scale = 0.54 * cfg.capacity() / (offered.udp_tx_pps * stock_small.tx);

    let s = |c: f64| c * scale;

    let mut rows = Vec::new();

    // TCP_STREAM TX/RX: link-limited MTU frames.
    let frames = cfg.link_frame_rate();
    let r_stock = cfg.stream(frames, s(stock_big.tx), 1448);
    let r_lxfi = cfg.stream(frames, s(lxfi_big.tx), 1448);
    rows.push(NetperfRow {
        test: "TCP_STREAM TX",
        stock_tput: r_stock.throughput_bps / 1e6,
        lxfi_tput: r_lxfi.throughput_bps / 1e6,
        unit: "Mbit/s",
        stock_cpu: r_stock.cpu,
        lxfi_cpu: r_lxfi.cpu,
    });
    let r_stock = cfg.stream(frames, s(stock_big.rx), 1448);
    let r_lxfi = cfg.stream(frames, s(lxfi_big.rx), 1448);
    rows.push(NetperfRow {
        test: "TCP_STREAM RX",
        stock_tput: r_stock.throughput_bps / 1e6,
        lxfi_tput: r_lxfi.throughput_bps / 1e6,
        unit: "Mbit/s",
        stock_cpu: r_stock.cpu,
        lxfi_cpu: r_lxfi.cpu,
    });

    // UDP_STREAM TX: message-counted, CPU-bound under LXFI.
    let r_stock = cfg.stream(offered.udp_tx_pps, s(stock_small.tx), 64);
    let r_lxfi = cfg.stream(offered.udp_tx_pps, s(lxfi_small.tx), 64);
    rows.push(NetperfRow {
        test: "UDP_STREAM TX",
        stock_tput: r_stock.pps / 1e6,
        lxfi_tput: r_lxfi.pps / 1e6,
        unit: "M pkt/s",
        stock_cpu: r_stock.cpu,
        lxfi_cpu: r_lxfi.cpu,
    });
    // UDP_STREAM RX: wire-limited offered load.
    let r_stock = cfg.stream(offered.udp_rx_pps, s(stock_small.rx), 64);
    let r_lxfi = cfg.stream(offered.udp_rx_pps, s(lxfi_small.rx), 64);
    rows.push(NetperfRow {
        test: "UDP_STREAM RX",
        stock_tput: r_stock.pps / 1e6,
        lxfi_tput: r_lxfi.pps / 1e6,
        unit: "M pkt/s",
        stock_cpu: r_stock.cpu,
        lxfi_cpu: r_lxfi.cpu,
    });

    // RR: one small packet each way per transaction.
    let stock_txn = s(stock_small.tx + stock_small.rx);
    let lxfi_txn = s(lxfi_small.tx + lxfi_small.rx);
    for (name, one_switch) in [
        ("TCP_RR", false),
        ("UDP_RR", false),
        ("TCP_RR (1-switch)", true),
        ("UDP_RR (1-switch)", true),
    ] {
        // TCP transactions carry slightly more protocol work.
        let extra = if name.starts_with("TCP") { 1.15 } else { 1.0 };
        let r_stock = cfg.rr(stock_txn * extra, one_switch);
        let r_lxfi = cfg.rr(lxfi_txn * extra, one_switch);
        rows.push(NetperfRow {
            test: name,
            stock_tput: r_stock.tps / 1e3,
            lxfi_tput: r_lxfi.tps / 1e3,
            unit: "K Tx/s",
            stock_cpu: r_stock.cpu,
            lxfi_cpu: r_lxfi.cpu,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lxfi_costs_more_cycles_per_packet() {
        let stock = measure_packet_costs(IsolationMode::Stock, 64, 100);
        let lxfi = measure_packet_costs(IsolationMode::Lxfi, 64, 100);
        assert!(lxfi.tx > stock.tx * 1.3, "{stock:?} vs {lxfi:?}");
        assert!(lxfi.rx > stock.rx * 1.3, "{stock:?} vs {lxfi:?}");
    }

    #[test]
    fn figure12_shape_matches_paper() {
        let rows = figure12();
        let by_name = |n: &str| rows.iter().find(|r| r.test == n).unwrap().clone();

        // TCP throughput unchanged, CPU up (×2.2-3.7 in the paper).
        let tcp = by_name("TCP_STREAM TX");
        assert!((tcp.stock_tput - tcp.lxfi_tput).abs() / tcp.stock_tput < 0.01);
        assert!(tcp.lxfi_cpu > 1.5 * tcp.stock_cpu);

        // UDP TX drops and saturates the CPU (paper: −35% at 100%).
        let udp = by_name("UDP_STREAM TX");
        assert!(udp.lxfi_tput < 0.85 * udp.stock_tput, "{udp:?}");
        assert!(udp.lxfi_cpu > 0.99, "{udp:?}");

        // UDP RX: CPU saturates; throughput holds far better than TX
        // (the paper keeps 100% of RX throughput; we keep >75% — see
        // EXPERIMENTS.md on the Figure 12/13 cost inconsistency).
        let udprx = by_name("UDP_STREAM RX");
        assert!(udprx.lxfi_tput > 0.75 * udprx.stock_tput, "{udprx:?}");
        assert!(udprx.lxfi_cpu > 0.99, "{udprx:?}");
        let tx_keep = udp.lxfi_tput / udp.stock_tput;
        let rx_keep = udprx.lxfi_tput / udprx.stock_tput;
        assert!(rx_keep > tx_keep, "RX holds up better than TX");

        // RR: relative LXFI slowdown worse at 1 switch.
        let rr = by_name("UDP_RR");
        let rr1 = by_name("UDP_RR (1-switch)");
        let keep = rr.lxfi_tput / rr.stock_tput;
        let keep1 = rr1.lxfi_tput / rr1.stock_tput;
        assert!(keep1 < keep, "lan keep {keep}, 1-switch keep {keep1}");
        assert!(rr1.stock_tput > rr.stock_tput);
    }
}
