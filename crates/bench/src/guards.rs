//! The Figure 13 guard-cost breakdown: average guards per packet, cost
//! per guard, and time per packet, measured on the UDP_STREAM TX
//! workload (the paper picks TX because it is LXFI's worst case).

use lxfi_core::{GuardKind, ALL_GUARD_KINDS};
use lxfi_kernel::IsolationMode;

use crate::netperf::boot_e1000;

/// One Figure 13 row.
#[derive(Debug, Clone)]
pub struct GuardRow {
    /// Guard type label.
    pub guard: String,
    /// Average guards executed per packet.
    pub per_pkt: f64,
    /// Average cost of one guard, in cycles (≈ ns at 1 cycle/ns).
    pub per_guard: f64,
    /// Total guard time per packet, cycles.
    pub per_pkt_cycles: f64,
}

/// Runs `n` 64-byte TX packets under LXFI and reports the breakdown.
pub fn figure13(n: u64) -> Vec<GuardRow> {
    let (mut k, dev) = boot_e1000(IsolationMode::Lxfi);
    // Warm-up, then measure.
    for _ in 0..8 {
        k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
    }
    k.rt.stats.reset();
    for _ in 0..n {
        k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
    }

    let mut rows = Vec::new();
    for kind in ALL_GUARD_KINDS {
        let count = k.rt.stats.count(kind);
        let cycles = k.rt.stats.cycles(kind);
        let label = if kind == GuardKind::KernelIndCall {
            "Kernel ind-call all".to_string()
        } else {
            kind.label().to_string()
        };
        rows.push(GuardRow {
            guard: label,
            per_pkt: count as f64 / n as f64,
            per_guard: if count > 0 {
                cycles as f64 / count as f64
            } else {
                0.0
            },
            per_pkt_cycles: cycles as f64 / n as f64,
        });
    }
    // The e1000-attributed slice of the indirect-call checks.
    let mid = k.runtime_module(k.module_id("e1000").unwrap()).unwrap();
    let (cnt, cyc) = k.rt.stats.indcall_for_module(mid);
    rows.push(GuardRow {
        guard: "Kernel ind-call e1000".to_string(),
        per_pkt: cnt as f64 / n as f64,
        per_guard: if cnt > 0 {
            cyc as f64 / cnt as f64
        } else {
            0.0
        },
        per_pkt_cycles: cyc as f64 / n as f64,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_shape_matches_paper() {
        let rows = figure13(100);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.guard == label)
                .unwrap_or_else(|| panic!("row {label}"))
                .clone()
        };
        let ann = get("Annotation action");
        let entry = get("Function entry");
        let exit = get("Function exit");
        let memw = get("Mem-write check");
        let ind_all = get("Kernel ind-call all");
        let ind_e1000 = get("Kernel ind-call e1000");

        // Every guard kind fires on the TX path.
        for r in [&ann, &entry, &exit, &memw, &ind_all] {
            assert!(r.per_pkt > 0.0, "{r:?}");
        }
        // Entry and exit pair up.
        assert!((entry.per_pkt - exit.per_pkt).abs() < 0.01);
        // Annotation actions and write checks dominate guard time — the
        // paper's headline observation about Figure 13.
        let total: f64 = rows.iter().map(|r| r.per_pkt_cycles).sum();
        assert!(ann.per_pkt_cycles + memw.per_pkt_cycles > total * 0.5);
        // The e1000 slice is a subset of all indirect calls.
        assert!(ind_e1000.per_pkt <= ind_all.per_pkt + 1e-9);
        // Per-guard costs reflect the configured Figure 13 calibration.
        assert!((ann.per_guard - 124.0).abs() < 1.0);
        assert!((memw.per_guard - 51.0).abs() < 1.0);
    }
}
