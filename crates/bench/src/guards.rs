//! The Figure 13 guard-cost breakdown: average guards per packet, cost
//! per guard, and time per packet, measured on the UDP_STREAM TX
//! workload (the paper picks TX because it is LXFI's worst case) — plus
//! the WRITE-table latency comparison that quantifies the interval-index
//! + guard-cache refactor against the paper's masked-slot linear scan.

use std::hint::black_box;
use std::time::Instant;

use lxfi_core::{
    GuardKind, LinearWriteTable, RawCap, Runtime, ThreadId, WriteTable, ALL_GUARD_KINDS,
};
use lxfi_kernel::IsolationMode;

use crate::netperf::boot_e1000;

/// One Figure 13 row.
#[derive(Debug, Clone)]
pub struct GuardRow {
    /// Guard type label.
    pub guard: String,
    /// Average guards executed per packet.
    pub per_pkt: f64,
    /// Average cost of one guard, in cycles (≈ ns at 1 cycle/ns).
    pub per_guard: f64,
    /// Total guard time per packet, cycles.
    pub per_pkt_cycles: f64,
}

/// Runs `n` 64-byte TX packets under LXFI and reports the breakdown.
pub fn figure13(n: u64) -> Vec<GuardRow> {
    let (mut k, dev) = boot_e1000(IsolationMode::Lxfi);
    // Warm-up, then measure.
    for _ in 0..8 {
        k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
    }
    k.rt.stats.reset();
    for _ in 0..n {
        k.enter(|k| k.net_send_packet(dev, 64)).unwrap();
    }

    let mut rows = Vec::new();
    for kind in ALL_GUARD_KINDS {
        let count = k.rt.stats.count(kind);
        let cycles = k.rt.stats.cycles(kind);
        let label = if kind == GuardKind::KernelIndCall {
            "Kernel ind-call all".to_string()
        } else {
            kind.label().to_string()
        };
        rows.push(GuardRow {
            guard: label,
            per_pkt: count as f64 / n as f64,
            per_guard: if count > 0 {
                cycles as f64 / count as f64
            } else {
                0.0
            },
            per_pkt_cycles: cycles as f64 / n as f64,
        });
    }
    // The e1000-attributed slice of the indirect-call checks.
    let mid = k.runtime_module(k.module_id("e1000").unwrap()).unwrap();
    let (cnt, cyc) = k.rt.stats.indcall_for_module(mid);
    rows.push(GuardRow {
        guard: "Kernel ind-call e1000".to_string(),
        per_pkt: cnt as f64 / n as f64,
        per_guard: if cnt > 0 {
            cyc as f64 / cnt as f64
        } else {
            0.0
        },
        per_pkt_cycles: cyc as f64 / n as f64,
    });
    rows
}

// -------------------------------------------- loop-guard hoist benefit

/// Dynamic write-guard executions per TX packet with loop-invariant
/// guard hoisting on vs off — the measured benefit of the rewriter's
/// hoisting pass (the verifier gate makes it safe; this makes it
/// worthwhile).
#[derive(Debug, Clone, Copy)]
pub struct HoistComparison {
    /// Mem-write guards per packet with hoisting enabled (default).
    pub hoisted_per_pkt: f64,
    /// Mem-write guards per packet with hoisting disabled.
    pub unhoisted_per_pkt: f64,
    /// Static guard sites the rewriter hoisted across loaded modules.
    pub sites_hoisted: usize,
}

/// Runs `n` packets of `len` bytes through the e1000 TX path twice —
/// hoisting on and off — and counts dynamic [`GuardKind::MemWrite`]
/// executions. Deterministic (simulated guard counters, no wall clock).
pub fn hoist_comparison(n: u64, len: u64) -> HoistComparison {
    let per_pkt = |hoist: bool| {
        let opts = lxfi_rewriter::RewriteOptions {
            hoist_loop_guards: hoist,
            ..Default::default()
        };
        let (mut k, dev) = crate::netperf::boot_e1000_opts(
            IsolationMode::Lxfi,
            lxfi_kernel::Backend::Interp,
            opts,
        );
        k.rt.stats.reset();
        for _ in 0..n {
            k.enter(|k| k.net_send_packet(dev, len)).unwrap();
        }
        k.rt.stats.count(GuardKind::MemWrite) as f64 / n as f64
    };
    let unhoisted_per_pkt = per_pkt(false);
    let hoisted_per_pkt = per_pkt(true);
    let sites_hoisted = crate::soundness_audit::audit_modules(Default::default())
        .iter()
        .map(|r| r.guards_hoisted)
        .sum();
    HoistComparison {
        hoisted_per_pkt,
        unhoisted_per_pkt,
        sites_hoisted,
    }
}

// ----------------------------------------------- WRITE-table comparison

/// Base address of the benchmark grant arena (one 4 KiB page's worth of
/// grants when `grants` ≤ 256, stressing exactly the slot-scan worst
/// case the interval index replaces).
pub const ARENA: u64 = 0x10_0000;
/// Byte stride between grants; each grant covers the first 8 bytes of
/// its 16-byte cell, leaving `[cell+8, cell+16)` as a guaranteed miss.
pub const STRIDE: u64 = 16;

/// Address of the `i`-th rotated *hit* probe over a `grants`-grant
/// arena (stride-13 walk so consecutive probes land in different
/// grants). Shared by the table harness and the criterion benches so
/// they measure the same workload.
pub fn rotating_hit_probe(i: u64, grants: usize) -> u64 {
    ARENA + (i.wrapping_mul(13) % grants as u64) * STRIDE
}

/// Address of the `i`-th rotated *miss* probe: the ungranted upper half
/// of the same cell.
pub fn rotating_miss_probe(i: u64, grants: usize) -> u64 {
    rotating_hit_probe(i, grants) + 8
}

/// Two WRITE tables (baseline, interval) over the identical benchmark
/// arena: `grants` disjoint 8-byte grants at [`STRIDE`] spacing.
pub fn bench_tables(grants: usize) -> (LinearWriteTable, WriteTable) {
    assert!(grants > 0, "benchmark arena needs at least one grant");
    let mut linear = LinearWriteTable::new();
    let mut interval = WriteTable::new();
    for i in 0..grants as u64 {
        linear.grant(ARENA + i * STRIDE, 8);
        interval.grant(ARENA + i * STRIDE, 8);
    }
    (linear, interval)
}

/// A runtime whose current principal holds the benchmark arena's
/// grants, ready for `check_write` timing.
pub fn bench_guard_runtime(grants: usize) -> (Runtime, ThreadId) {
    assert!(grants > 0, "benchmark arena needs at least one grant");
    let mut rt = Runtime::new();
    let m = rt.register_module("bench");
    let t = ThreadId(0);
    rt.register_thread(t, 0xffff_9000_0000_0000, 0x2000);
    let p = rt.principal_for_name(m, 0x9000);
    for i in 0..grants as u64 {
        rt.grant(p, RawCap::write(ARENA + i * STRIDE, 8));
    }
    rt.thread(t).set_current(Some((m, p)));
    (rt, t)
}

/// Measured hit/miss latency of one WRITE-table structure.
#[derive(Debug, Clone)]
pub struct WriteTableLatency {
    /// Structure label.
    pub structure: &'static str,
    /// ns per `covers` query that succeeds.
    pub hit_ns: f64,
    /// ns per `covers` query that fails (no covering grant).
    pub miss_ns: f64,
}

fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    // Minimum over three batches: a latency estimate robust to the
    // scheduler descheduling one batch on a shared CI runner (a single
    // preemption inflates a mean arbitrarily, and the perf gate's
    // tightest rows sit at tens of ns).
    let batch = (iters / 3).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    best
}

fn probe_sets(grants: usize) -> (Vec<u64>, Vec<u64>) {
    // At most 16 distinct probes, never more than there are grants.
    let count = (grants as u64).min(16);
    let step = (grants as u64 / count).max(1);
    let hits: Vec<u64> = (0..count).map(|i| ARENA + (i * step) * STRIDE).collect();
    let misses = hits.iter().map(|a| a + 8).collect();
    (hits, misses)
}

/// Times `covers` on the linear-scan baseline ([`LinearWriteTable`],
/// the paper's §5 structure) and the interval index ([`WriteTable`])
/// over identical grant sets: `grants` disjoint 8-byte grants at
/// 16-byte stride. Probes rotate over 16 addresses so neither
/// structure benefits from a degenerate single-address pattern.
pub fn write_table_comparison(grants: usize, iters: u64) -> Vec<WriteTableLatency> {
    let (linear, interval) = bench_tables(grants);
    let (hits, misses) = probe_sets(grants);
    let mut rows = Vec::new();
    let mut i = 0usize;
    let mut probe = |probes: &[u64]| {
        let a = probes[i % probes.len()];
        i += 1;
        a
    };
    rows.push(WriteTableLatency {
        structure: "linear-scan slots (baseline)",
        hit_ns: time_ns(iters, || {
            assert!(linear.covers(black_box(probe(&hits)), 8));
        }),
        miss_ns: time_ns(iters, || {
            assert!(!linear.covers(black_box(probe(&misses)), 8));
        }),
    });
    rows.push(WriteTableLatency {
        structure: "interval index",
        hit_ns: time_ns(iters, || {
            assert!(interval.covers(black_box(probe(&hits)), 8));
        }),
        miss_ns: time_ns(iters, || {
            assert!(!interval.covers(black_box(probe(&misses)), 8));
        }),
    });
    rows
}

/// Measured latency of the full write guard ([`Runtime::check_write`])
/// over the same arena, isolating what the one-entry last-grant-hit
/// cache buys.
#[derive(Debug, Clone)]
pub struct GuardCacheLatency {
    /// ns per guard for repeated stores into one object — the cache's
    /// target workload (packet payload fills, struct initialization).
    pub repeated_ns: f64,
    /// ns per guard when every store lands in a different grant, so the
    /// cache misses and the interval walk runs.
    pub rotating_ns: f64,
    /// Cache hit rate over the repeated phase (from [`lxfi_core::GuardStats`]).
    pub hit_rate: f64,
}

/// Times `check_write` with the guard cache hot (repeated probes into
/// one grant) and cold (probes rotating across `grants` grants).
pub fn guard_cache_comparison(grants: usize, iters: u64) -> GuardCacheLatency {
    let (mut rt, t) = bench_guard_runtime(grants);

    rt.stats.reset();
    let repeated_ns = time_ns(iters, || {
        rt.check_write(t, black_box(ARENA), 8).unwrap();
    });
    let hit_rate =
        rt.stats.write_cache_hits as f64 / rt.stats.count(GuardKind::MemWrite).max(1) as f64;

    let mut i = 0u64;
    let rotating_ns = time_ns(iters, || {
        let a = rotating_hit_probe(i, grants);
        i += 1;
        rt.check_write(t, black_box(a), 8).unwrap();
    });
    GuardCacheLatency {
        repeated_ns,
        rotating_ns,
        hit_rate,
    }
}

// ---------------------------------------------- revoke-heavy workloads

/// Base of the per-instance private arenas in the revoke-heavy workload.
pub const CHURN_ARENA: u64 = 0x200_0000;
/// Byte stride between instances' arenas.
pub const CHURN_STRIDE: u64 = 0x1000;
/// Grants held by the module's shared principal (the measured store's
/// coverage comes from the instance→shared fallback, so the uncached
/// probe pays two interval searches).
pub const SHARED_GRANTS: usize = 512;

/// Measured latencies of the write guard under capability churn:
/// `principals` instance principals of one module, instance 0 issuing
/// guarded stores into shared-owned memory while the *other* instances'
/// grants are revoked and re-granted between every pair of stores.
///
/// With the epoch-validated cache, the unrelated churn bumps only the
/// churned instances' epochs, so instance 0 keeps hitting its cached
/// covering interval; the pre-epoch design cleared the (global) cache on
/// every revoke and degraded each post-revoke store to the full
/// interval-table probe (`uncached_ns`).
#[derive(Debug, Clone)]
pub struct RevokeHeavyLatency {
    /// Number of instance principals.
    pub principals: usize,
    /// ns per guarded store in steady state (no churn; cache hits).
    pub steady_ns: f64,
    /// ns per guarded store with an unrelated revoke+grant between every
    /// pair of stores (churn excluded from the timing).
    pub post_revoke_ns: f64,
    /// ns per guarded store with the cache disabled: the full
    /// instance-miss + shared-hit interval probe every store pays when
    /// its cache entry is gone.
    pub uncached_ns: f64,
    /// Cache hit rate over the churn phase (1.0 = no store degraded).
    pub hit_rate: f64,
    /// Raw counters over the churn phase, for the `--json` report.
    pub cache_hits: u64,
    /// Cache misses over the churn phase.
    pub cache_misses: u64,
    /// Per-principal epoch bumps the churn caused.
    pub epoch_bumps: u64,
}

/// Per-call timing overhead of an `Instant::now()/elapsed()` pair,
/// measured so the per-store numbers can subtract it.
fn timer_overhead_ns() -> f64 {
    let reps = 100_000u64;
    let mut acc = std::time::Duration::ZERO;
    for _ in 0..reps {
        let t0 = Instant::now();
        acc += t0.elapsed();
    }
    acc.as_nanos() as f64 / reps as f64
}

/// Builds the churn runtime: one module, `principals` instances each
/// holding a private arena grant, and [`SHARED_GRANTS`] disjoint grants
/// on the shared principal. Instance 0 is the measured writer; its
/// stores land in shared-owned memory (instance table misses, shared
/// table covers — the §3.1 fallback).
pub fn revoke_heavy_runtime(principals: usize) -> (Runtime, ThreadId, Vec<lxfi_core::PrincipalId>) {
    assert!(principals >= 2, "churn needs an unrelated principal");
    let mut rt = Runtime::new();
    let m = rt.register_module("bench");
    let t = ThreadId(0);
    rt.register_thread(t, 0xffff_9000_0000_0000, 0x2000);
    let shared = rt.shared_principal(m);
    for i in 0..SHARED_GRANTS as u64 {
        rt.grant(shared, RawCap::write(ARENA + i * STRIDE, 8));
    }
    let ps: Vec<_> = (0..principals)
        .map(|i| rt.principal_for_name(m, 0x9000 + i as u64 * 8))
        .collect();
    for (i, &p) in ps.iter().enumerate() {
        rt.grant(
            p,
            RawCap::write(CHURN_ARENA + i as u64 * CHURN_STRIDE, 0x100),
        );
    }
    rt.thread(t).set_current(Some((m, ps[0])));
    (rt, t, ps)
}

/// The unrelated-churn step of the revoke-heavy workload: the `i`-th
/// rotated victim instance (never instance 0, the measured writer) has
/// its private arena grant revoked and re-granted. Shared by the table
/// harness and the criterion bench so both measure the same churn.
pub fn churn_unrelated(rt: &mut Runtime, ps: &[lxfi_core::PrincipalId], i: u64) {
    let victim = 1 + (i as usize % (ps.len() - 1));
    let cap = RawCap::write(CHURN_ARENA + victim as u64 * CHURN_STRIDE, 0x100);
    rt.revoke(ps[victim], cap);
    rt.grant(ps[victim], cap);
}

/// Runs the three phases of the revoke-heavy workload. Store latencies
/// are timed per call (the interleaved churn must not pollute them)
/// with the timer overhead subtracted.
pub fn revoke_heavy_comparison(principals: usize, iters: u64) -> RevokeHeavyLatency {
    let (mut rt, t, ps) = revoke_heavy_runtime(principals);
    let overhead = timer_overhead_ns();
    let addr = ARENA; // shared-owned; instance 0 reaches it via fallback

    // Minimum over three per-call batches, overhead subtracted — the
    // same preemption robustness as `time_ns`, per phase.
    fn min_batches(
        iters: u64,
        overhead: f64,
        mut step: impl FnMut(u64) -> std::time::Duration,
    ) -> f64 {
        let batch = (iters / 3).max(1);
        let mut best = f64::INFINITY;
        let mut i = 0u64;
        for _ in 0..3 {
            let mut acc = std::time::Duration::ZERO;
            for _ in 0..batch {
                acc += step(i);
                i += 1;
            }
            best = best.min(acc.as_nanos() as f64 / batch as f64);
        }
        (best - overhead).max(0.0)
    }

    // Steady state: guarded stores, no churn.
    rt.check_write(t, addr, 8).unwrap(); // prime the cache
    let steady_ns = min_batches(iters, overhead, |_| {
        let t0 = Instant::now();
        rt.check_write(t, black_box(addr), 8).unwrap();
        t0.elapsed()
    });

    // Churn: an unrelated instance's grant revoked and re-granted
    // between every pair of guarded stores (untimed).
    rt.stats.reset();
    let post_revoke_ns = min_batches(iters, overhead, |i| {
        churn_unrelated(&mut rt, &ps, i);
        let t0 = Instant::now();
        rt.check_write(t, black_box(addr), 8).unwrap();
        t0.elapsed()
    });
    let cache_hits = rt.stats.write_cache_hits;
    let cache_misses = rt.stats.write_cache_misses;
    let epoch_bumps = rt.stats.epoch_bumps;
    let hit_rate = rt.stats.write_cache_hit_rate();

    // Uncached probe: what every post-revoke store cost before the
    // epoch cache (instance-table miss + shared-table search).
    rt.guard_cache_enabled = false;
    let uncached_ns = min_batches(iters, overhead, |_| {
        let t0 = Instant::now();
        rt.check_write(t, black_box(addr), 8).unwrap();
        t0.elapsed()
    });

    RevokeHeavyLatency {
        principals,
        steady_ns,
        post_revoke_ns,
        uncached_ns,
        hit_rate,
        cache_hits,
        cache_misses,
        epoch_bumps,
    }
}

/// One revoke-heavy row per entry of
/// [`crate::writer_index::PRINCIPAL_COUNTS`] (8 / 64 / 512).
pub fn revoke_heavy_rows(iters: u64) -> Vec<RevokeHeavyLatency> {
    crate::writer_index::PRINCIPAL_COUNTS
        .iter()
        .map(|&n| revoke_heavy_comparison(n, iters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_shape_matches_paper() {
        let rows = figure13(100);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.guard == label)
                .unwrap_or_else(|| panic!("row {label}"))
                .clone()
        };
        let ann = get("Annotation action");
        let entry = get("Function entry");
        let exit = get("Function exit");
        let memw = get("Mem-write check");
        let ind_all = get("Kernel ind-call all");
        let ind_e1000 = get("Kernel ind-call e1000");

        // Every guard kind fires on the TX path.
        for r in [&ann, &entry, &exit, &memw, &ind_all] {
            assert!(r.per_pkt > 0.0, "{r:?}");
        }
        // Entry and exit pair up.
        assert!((entry.per_pkt - exit.per_pkt).abs() < 0.01);
        // Annotation actions and write checks dominate guard time — the
        // paper's headline observation about Figure 13.
        let total: f64 = rows.iter().map(|r| r.per_pkt_cycles).sum();
        assert!(ann.per_pkt_cycles + memw.per_pkt_cycles > total * 0.5);
        // The e1000 slice is a subset of all indirect calls.
        assert!(ind_e1000.per_pkt <= ind_all.per_pkt + 1e-9);
        // Per-guard costs reflect the configured Figure 13 calibration.
        assert!((ann.per_guard - 124.0).abs() < 1.0);
        assert!((memw.per_guard - 51.0).abs() < 1.0);
    }

    #[test]
    fn hoisting_reduces_dynamic_write_guards() {
        // A 256-byte TX copies 4 64-byte chunks: the unhoisted doorbell
        // guard fires per chunk, the hoisted one per packet. Counters
        // are deterministic simulated-cycle state, so exact comparison
        // is safe.
        let c = hoist_comparison(50, 256);
        assert!(c.sites_hoisted >= 1, "{c:?}");
        assert!(
            c.hoisted_per_pkt < c.unhoisted_per_pkt,
            "hoisting should execute strictly fewer dynamic guards: {c:?}"
        );
    }

    #[test]
    fn interval_table_beats_linear_scan_on_hits() {
        // 512 grants at 16-byte stride span two 4 KiB slots, so the
        // baseline scans ~256-entry slot lists while the interval index
        // binary-searches. The margin is enormous (>10x in release);
        // asserting 2x keeps the test robust on loaded machines.
        let rows = write_table_comparison(512, 20_000);
        let linear = &rows[0];
        let interval = &rows[1];
        assert!(
            interval.hit_ns * 2.0 < linear.hit_ns,
            "interval hit {:.1}ns vs linear {:.1}ns",
            interval.hit_ns,
            linear.hit_ns
        );
        assert!(
            interval.miss_ns * 2.0 < linear.miss_ns,
            "interval miss {:.1}ns vs linear {:.1}ns",
            interval.miss_ns,
            linear.miss_ns
        );
    }

    #[test]
    fn revoke_heavy_churn_keeps_hitting_the_cache() {
        // The tentpole claim, deterministic half: interleaved unrelated
        // revokes must not evict the measured principal's cache. Before
        // the epoch cache, the hit rate here was exactly 0.
        let lat = revoke_heavy_comparison(64, 6_000);
        assert_eq!(
            lat.hit_rate, 1.0,
            "every post-revoke store must still hit: {lat:?}"
        );
        assert!(lat.cache_misses == 0 && lat.cache_hits == 6_000);
        // Each churn iteration revokes one instance grant: one bump for
        // the instance, one for the module's global principal.
        assert_eq!(lat.epoch_bumps, 2 * 6_000);
        assert!(lat.steady_ns >= 0.0 && lat.post_revoke_ns >= 0.0 && lat.uncached_ns > 0.0);
    }

    #[test]
    fn guard_cache_hits_on_repeated_stores() {
        let lat = guard_cache_comparison(256, 20_000);
        assert!(
            lat.hit_rate > 0.99,
            "repeated stores should hit the cache: {}",
            lat.hit_rate
        );
        // Both paths must stay correct; timing relation (repeated ≤
        // rotating) is reported, not asserted, to avoid flakiness.
        assert!(lat.repeated_ns > 0.0 && lat.rotating_ns > 0.0);
    }
}
