//! The SFI microbenchmarks of §8.3 (originally from MiSFIT), as KIR
//! module programs: `hotlist` (read-mostly list search), `lld` (linked
//! list insert/delete — write-heavy), and `MD5` (block hashing over a
//! stack buffer, whose frame-local stores the rewriter proves safe).

use lxfi_kernel::{IsolationMode, Kernel, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{BinOp, Cond, ProgramBuilder, Width};
use lxfi_rewriter::{rewrite_module, InterfaceSpec, RewriteOptions};

/// Node size in the list arenas (value at +0, next at +8).
const NODE: i64 = 16;

/// hotlist: an `n`-node list is built once; `hotlist_search` walks it
/// looking for a value. Searches are pure reads, so LXFI adds almost
/// nothing (Figure 11's 0%).
pub fn hotlist_spec(n: i64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new("hotlist");
    let arena = pb.global("arena", (n as u64 + 1) * NODE as u64);
    let head = pb.global("head", 8);

    pb.define("hotlist_init", 0, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.global_addr(R1, arena);
        f.mov(R2, 0i64); // index
        f.mov(R5, 0i64); // prev
        f.bind(top);
        f.br(Cond::Le, n, R2, done);
        f.mul(R3, R2, NODE);
        f.add(R3, R3, R1); // node
        f.store8(R2, R3, 0); // value = index
        f.store8(R5, R3, 8); // next = prev
        f.mov(R5, R3);
        f.add(R2, R2, 1i64);
        f.jmp(top);
        f.bind(done);
        f.global_addr(R6, head);
        f.store8(R5, R6, 0);
        f.ret(0i64);
    });

    // hotlist_search(v): returns node address or 0.
    pb.define("hotlist_search", 1, 0, |f| {
        let top = f.label();
        let found = f.label();
        let miss = f.label();
        f.global_addr(R1, head);
        f.load8(R2, R1, 0);
        f.bind(top);
        f.br(Cond::Eq, R2, 0i64, miss);
        f.load8(R3, R2, 0);
        f.br(Cond::Eq, R3, R0, found);
        f.load8(R2, R2, 8);
        f.jmp(top);
        f.bind(found);
        f.ret(R2);
        f.bind(miss);
        f.ret(0i64);
    });

    ModuleSpec {
        name: "hotlist".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: Some("hotlist_init".into()),
    }
}

/// lld: repeated insert-at-head / delete-from-middle cycles over a free
/// list — pointer writes on every operation, so write guards show up
/// (Figure 11's 11%).
pub fn lld_spec(n: i64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new("lld");
    let arena = pb.global("arena", (n as u64 + 1) * NODE as u64);
    let head = pb.global("head", 8);

    // Build the list, as in hotlist.
    pb.define("lld_init", 0, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.global_addr(R1, arena);
        f.mov(R2, 0i64);
        f.mov(R5, 0i64);
        f.bind(top);
        f.br(Cond::Le, n, R2, done);
        f.mul(R3, R2, NODE);
        f.add(R3, R3, R1);
        f.store8(R2, R3, 0);
        f.store8(R5, R3, 8);
        f.mov(R5, R3);
        f.add(R2, R2, 1i64);
        f.jmp(top);
        f.bind(done);
        f.global_addr(R6, head);
        f.store8(R5, R6, 0);
        f.ret(0i64);
    });

    let unlink_after = pb.declare("lld_unlink_after", 1);
    // lld_unlink_after(prev): removes prev->next from the list.
    pb.define("lld_unlink_after", 1, 0, |f| {
        let out = f.label();
        f.load8(R1, R0, 8);
        f.br(Cond::Eq, R1, 0i64, out);
        f.load8(R2, R1, 8);
        f.store8(R2, R0, 8);
        f.ret(R1);
        f.bind(out);
        f.ret(0i64);
    });

    let link_after = pb.declare("lld_link_after", 2);
    // lld_link_after(prev, node): inserts node after prev.
    pb.define("lld_link_after", 2, 0, |f| {
        f.load8(R2, R0, 8);
        f.store8(R2, R1, 8);
        f.store8(R1, R0, 8);
        f.ret(0i64);
    });

    // lld_churn(k): k rounds of walk-a-bit / unlink / relink.
    pb.define("lld_churn", 1, 0, |f| {
        let round = f.label();
        let walk = f.label();
        let stepped = f.label();
        let done = f.label();
        f.mov(R10, R0); // rounds left
        f.bind(round);
        f.br(Cond::Le, R10, 0i64, done);
        f.global_addr(R1, head);
        f.load8(R2, R1, 0); // cur
        f.mov(R3, 220i64); // walk a while before surgery
        f.bind(walk);
        f.br(Cond::Le, R3, 0i64, stepped);
        f.load8(R4, R2, 8);
        f.br(Cond::Eq, R4, 0i64, stepped);
        f.mov(R2, R4);
        f.sub(R3, R3, 1i64);
        f.jmp(walk);
        f.bind(stepped);
        f.call_local(unlink_after, &[R2.into()], Some(R5));
        f.br(Cond::Eq, R5, 0i64, done);
        f.call_local(link_after, &[R2.into(), R5.into()], None);
        f.sub(R10, R10, 1i64);
        f.jmp(round);
        f.bind(done);
        f.ret(0i64);
    });

    ModuleSpec {
        name: "lld".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: Some("lld_init".into()),
    }
}

/// MD5-style block mixing: 64 rounds over a 16-word block held in the
/// function frame. Every store is frame-local at a constant offset, so
/// the rewriter elides all write guards (Figure 11's 2%).
pub fn md5_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("md5");
    let digest = pb.global("digest", 32);

    // md5_blocks(nblocks, seed): mixes nblocks blocks, accumulating into
    // the digest global.
    pb.define("md5_blocks", 2, 144, |f| {
        let blk = f.label();
        let fill = f.label();
        let filled = f.label();
        let round = f.label();
        let rounds_done = f.label();
        let done = f.label();
        // r10 = blocks left; r11 = seed/state.
        f.mov(R10, R0);
        f.mov(R11, R1);
        f.bind(blk);
        f.br(Cond::Le, R10, 0i64, done);
        // Fill the 16-word block buffer at sp+0..128 from the state.
        f.mov(R2, 0i64);
        f.bind(fill);
        f.br(Cond::Le, 16i64, R2, filled);
        f.bin(BinOp::Xor, R3, R11, R2);
        f.bin(BinOp::Mul, R3, R3, 0x9e37i64);
        // Frame-local store: statically safe, no guard inserted.
        f.mul(R4, R2, 8i64);
        // The buffer is written via constant-offset frame stores in an
        // unrolled pattern: model with a single rotating slot plus the
        // accumulator slots at +128/+136.
        f.store_frame(R3, 0, Width::B8);
        f.add(R2, R2, 1i64);
        f.jmp(fill);
        f.bind(filled);
        // 64 mixing rounds over the frame state.
        f.mov(R5, 0i64); // round counter
        f.load_frame(R6, 0, Width::B8);
        f.bind(round);
        f.br(Cond::Le, 64i64, R5, rounds_done);
        f.bin(BinOp::Add, R6, R6, R11);
        f.bin(BinOp::Rotl, R6, R6, 7i64);
        f.bin(BinOp::Xor, R6, R6, R5);
        f.bin(BinOp::Mul, R6, R6, 5i64);
        f.store_frame(R6, 8, Width::B8);
        f.load_frame(R7, 8, Width::B8);
        f.bin(BinOp::Add, R11, R11, R7);
        f.add(R5, R5, 1i64);
        f.jmp(round);
        f.bind(rounds_done);
        f.store_frame(R11, 128, Width::B8);
        f.sub(R10, R10, 1i64);
        f.jmp(blk);
        f.bind(done);
        // Fold the state into the digest global (one guarded store).
        f.global_addr(R8, digest);
        f.store8(R11, R8, 0);
        f.ret(R11);
    });

    ModuleSpec {
        name: "md5".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

/// One Figure 11 row: code growth and deterministic-cycle slowdown.
#[derive(Debug, Clone)]
pub struct SfiRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Rewritten code size / original code size.
    pub code_growth: f64,
    /// LXFI cycles / stock cycles − 1, as a percentage.
    pub slowdown_pct: f64,
    /// Stock cycles for the workload.
    pub stock_cycles: u64,
    /// LXFI cycles for the workload.
    pub lxfi_cycles: u64,
}

fn run_workload(
    spec_fn: &dyn Fn() -> ModuleSpec,
    calls: &[(&str, Vec<u64>)],
    mode: IsolationMode,
) -> u64 {
    let mut k = Kernel::boot(mode);
    let id = k.load_module(spec_fn()).unwrap();
    let module = k.module_name(id).to_string();
    let start = k.total_cycles();
    for (func, args) in calls {
        let addr = k
            .module_fn_addr(k.module_id(&module).unwrap(), func)
            .unwrap();
        k.enter(|k| k.invoke_module_function(addr, args, None))
            .unwrap();
    }
    k.total_cycles() - start
}

/// Measures one benchmark in both modes.
pub fn measure(
    name: &'static str,
    spec_fn: &dyn Fn() -> ModuleSpec,
    calls: &[(&str, Vec<u64>)],
) -> SfiRow {
    let original = spec_fn().program;
    let rewritten = rewrite_module(&original, RewriteOptions::default());
    let stock = run_workload(spec_fn, calls, IsolationMode::Stock);
    let lxfi = run_workload(spec_fn, calls, IsolationMode::Lxfi);
    SfiRow {
        name,
        code_growth: rewritten.program.code_size() as f64 / original.code_size() as f64,
        slowdown_pct: (lxfi as f64 / stock as f64 - 1.0) * 100.0,
        stock_cycles: stock,
        lxfi_cycles: lxfi,
    }
}

/// The standard Figure 11 workloads.
pub fn figure11() -> Vec<SfiRow> {
    vec![
        measure("hotlist", &|| hotlist_spec(400), &{
            let mut calls = Vec::new();
            for i in 0..60u64 {
                calls.push(("hotlist_search", vec![i * 5 % 400]));
            }
            calls
        }),
        measure("lld", &|| lld_spec(400), &[("lld_churn", vec![60])]),
        measure("MD5", &md5_spec, &[("md5_blocks", vec![40, 0x1234_5678])]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_green_in_both_modes() {
        for mode in [IsolationMode::Stock, IsolationMode::Lxfi] {
            assert!(run_workload(&|| hotlist_spec(64), &[("hotlist_search", vec![10])], mode) > 0);
            assert!(run_workload(&|| lld_spec(64), &[("lld_churn", vec![5])], mode) > 0);
            assert!(run_workload(&md5_spec, &[("md5_blocks", vec![2, 7])], mode) > 0);
        }
    }

    #[test]
    fn figure11_shape_matches_paper() {
        let rows = figure11();
        let hotlist = &rows[0];
        let lld = &rows[1];
        let md5 = &rows[2];
        // Code growth moderate (paper: 1.1x-1.2x).
        for r in &rows {
            assert!(r.code_growth >= 1.0 && r.code_growth < 1.5, "{r:?}");
        }
        // hotlist ≈ 0%: read-only search adds only the entry wrapper.
        assert!(hotlist.slowdown_pct < 5.0, "{hotlist:?}");
        // lld noticeably slower than hotlist and MD5 (paper: 11%).
        assert!(lld.slowdown_pct > hotlist.slowdown_pct, "{lld:?}");
        assert!(lld.slowdown_pct > md5.slowdown_pct, "{md5:?} vs {lld:?}");
        // MD5 small (paper: 2%) — frame-store elision does its job.
        assert!(md5.slowdown_pct < 8.0, "{md5:?}");
    }

    #[test]
    fn md5_is_deterministic_across_modes() {
        // Same digest regardless of isolation: rewriting must not change
        // observable behaviour.
        let run = |mode| {
            let mut k = Kernel::boot(mode);
            let id = k.load_module(md5_spec()).unwrap();
            let addr = k.module_fn_addr(id, "md5_blocks").unwrap();
            k.enter(|k| k.invoke_module_function(addr, &[8, 42], None))
                .unwrap()
        };
        assert_eq!(run(IsolationMode::Stock), run(IsolationMode::Lxfi));
    }
}
