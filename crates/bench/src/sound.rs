//! Sound playback-buffer workload: the second timed guard scenario.
//!
//! netperf (Figure 12) was the only workload driving the guard path
//! through a real module; this adds the snd-ens1370 playback loop in
//! the same style. One *period* models what a sound driver does per
//! interrupt: `pcm_trigger(start)` re-primes the 64-byte playback
//! buffer (a run of guarded 8-byte stores into DMA memory — exactly
//! the store pattern the epoch cache targets), two `pcm_pointer`
//! indirect calls advance the hardware pointer (module-written ops
//! slot: the ind-call slow path), and `pcm_trigger(stop)` parks the
//! stream. Costs are deterministic simulated cycles, so the
//! stock-vs-LXFI ratio is machine-independent and CI-gateable.

use lxfi_kernel::{Backend, IsolationMode, Kernel};
use lxfi_machine::Word;
use lxfi_modules as mods;

/// Boots a kernel with the ens1370 sound driver loaded and its PCM
/// stream created.
pub fn boot_sound(mode: IsolationMode) -> (Kernel, Word) {
    boot_sound_backend(mode, Backend::Interp)
}

/// [`boot_sound`] with an explicit execution backend.
pub fn boot_sound_backend(mode: IsolationMode, backend: Backend) -> (Kernel, Word) {
    let mut k = Kernel::boot_with_backend(mode, backend);
    k.load_module(mods::snd_ens1370::spec()).unwrap();
    let &(pcm, _ops) = k.snd().pcms.last().expect("ens1370 created a PCM");
    (k, pcm)
}

/// Wall-clock nanoseconds per playback period (the host-time
/// counterpart of [`measure_playback_costs`]; simulated cycles are
/// backend-invariant, host time is what the compiled backend buys).
pub fn measure_playback_wall_ns(mode: IsolationMode, backend: Backend, n: u64) -> f64 {
    let (mut k, pcm) = boot_sound_backend(mode, backend);
    for _ in 0..8 {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    const BATCH: u64 = 16;
    let mut batch_means = Vec::new();
    let mut done = 0u64;
    while done < n {
        let b = BATCH.min(n - done);
        let t0 = std::time::Instant::now();
        for _ in 0..b {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_pointer(pcm)).unwrap();
            k.enter(|k| k.snd_pointer(pcm)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        batch_means.push(t0.elapsed().as_nanos() as f64 / b as f64);
        done += b;
    }
    batch_means.sort_by(|a, b| a.total_cmp(b));
    batch_means[batch_means.len() / 2]
}

/// Measured playback costs, in simulated cycles.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackCosts {
    /// One playback period (trigger-start + buffer fill + two pointer
    /// reads + trigger-stop).
    pub period: f64,
}

/// Measures per-period cycles over `n` playback periods.
pub fn measure_playback_costs(mode: IsolationMode, n: u64) -> PlaybackCosts {
    let (mut k, pcm) = boot_sound(mode);
    // Warm up (fills slab pages, writer-set structures, guard caches).
    for _ in 0..4 {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    let start = k.total_cycles();
    for _ in 0..n {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    PlaybackCosts {
        period: (k.total_cycles() - start) as f64 / n as f64,
    }
}

/// Measures per-capture-period cycles over `n` periods. Each period is
/// the receive-side analogue of playback: the "hardware" asserts a
/// capture interrupt, which routes the module's `pcm_capture` bottom
/// half through the same deferred-call mux NAPI polls use, filling 32
/// bytes of the DMA ring at the hardware pointer (guarded stores) and
/// advancing it.
pub fn measure_capture_costs(mode: IsolationMode, n: u64) -> PlaybackCosts {
    let (mut k, pcm) = boot_sound(mode);
    for _ in 0..4 {
        let got = k.enter(|k| k.snd_capture_period(pcm)).unwrap();
        assert_eq!(got, 32, "capture period delivers its bytes");
    }
    let start = k.total_cycles();
    for _ in 0..n {
        k.enter(|k| k.snd_capture_period(pcm)).unwrap();
    }
    PlaybackCosts {
        period: (k.total_cycles() - start) as f64 / n as f64,
    }
}

/// One stock-vs-LXFI playback comparison row.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackRow {
    /// Stock cycles per period.
    pub stock: f64,
    /// LXFI cycles per period.
    pub lxfi: f64,
    /// LXFI/stock overhead ratio.
    pub overhead: f64,
}

/// Runs both modes over `n` periods.
pub fn playback_comparison(n: u64) -> PlaybackRow {
    let stock = measure_playback_costs(IsolationMode::Stock, n).period;
    let lxfi = measure_playback_costs(IsolationMode::Lxfi, n).period;
    PlaybackRow {
        stock,
        lxfi,
        overhead: lxfi / stock,
    }
}

/// Stock-vs-LXFI capture-period comparison (deferred-dispatch path).
pub fn capture_comparison(n: u64) -> PlaybackRow {
    let stock = measure_capture_costs(IsolationMode::Stock, n).period;
    let lxfi = measure_capture_costs(IsolationMode::Lxfi, n).period;
    PlaybackRow {
        stock,
        lxfi,
        overhead: lxfi / stock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lxfi_playback_costs_more_but_boundedly() {
        let row = playback_comparison(50);
        assert!(row.lxfi > row.stock, "guards must cost something: {row:?}");
        // A playback period is a tiny operation (a 64-byte fill plus two
        // indirect calls), so the fixed crossing costs — wrapper
        // entry/exit, annotation actions, ind-call checks — dominate and
        // the ratio runs well above netperf's per-packet overhead.
        assert!(
            row.overhead < 25.0,
            "playback overhead out of expected band: {row:?}"
        );
    }

    #[test]
    fn capture_runs_through_the_deferred_mux() {
        let (mut k, pcm) = boot_sound(IsolationMode::Lxfi);
        let (d0, _, _) = k.deferred_stats();
        for _ in 0..5 {
            let got = k.enter(|k| k.snd_capture_period(pcm)).unwrap();
            assert_eq!(got, 32);
        }
        let (d1, dropped, pending) = k.deferred_stats();
        assert_eq!(d1 - d0, 5, "one dispatch per period");
        assert_eq!(dropped, 0);
        assert_eq!(pending, 0, "periods never pile up");
        // The hardware pointer advanced 5 periods of 32 bytes.
        let hw = k
            .mem
            .read_word((pcm as i64 + lxfi_kernel::types::snd_pcm::HW_PTR) as u64)
            .unwrap();
        assert_eq!(hw, 5 * 32, "five periods of 32 bytes");
    }

    #[test]
    fn capture_costs_are_deterministic_and_bounded() {
        let a = capture_comparison(50);
        let b = capture_comparison(50);
        assert_eq!(a.lxfi, b.lxfi, "cycle-deterministic");
        assert!(a.lxfi > a.stock, "guards cost something: {a:?}");
        assert!(a.overhead < 25.0, "bounded like playback: {a:?}");
    }

    #[test]
    fn playback_guards_hit_the_write_cache() {
        // The buffer re-fill is a run of stores into one object: after
        // warmup the epoch cache should answer nearly all of them.
        let (mut k, pcm) = boot_sound(IsolationMode::Lxfi);
        for _ in 0..4 {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        k.rt.stats.reset();
        for _ in 0..32 {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        assert!(
            k.rt.stats.write_cache_hit_rate() > 0.9,
            "steady playback fills should hit: rate {}",
            k.rt.stats.write_cache_hit_rate()
        );
    }
}
