//! Sound playback-buffer workload: the second timed guard scenario.
//!
//! netperf (Figure 12) was the only workload driving the guard path
//! through a real module; this adds the snd-ens1370 playback loop in
//! the same style. One *period* models what a sound driver does per
//! interrupt: `pcm_trigger(start)` re-primes the 64-byte playback
//! buffer (a run of guarded 8-byte stores into DMA memory — exactly
//! the store pattern the epoch cache targets), two `pcm_pointer`
//! indirect calls advance the hardware pointer (module-written ops
//! slot: the ind-call slow path), and `pcm_trigger(stop)` parks the
//! stream. Costs are deterministic simulated cycles, so the
//! stock-vs-LXFI ratio is machine-independent and CI-gateable.

use lxfi_kernel::{Backend, IsolationMode, Kernel};
use lxfi_machine::Word;
use lxfi_modules as mods;

/// Boots a kernel with the ens1370 sound driver loaded and its PCM
/// stream created.
pub fn boot_sound(mode: IsolationMode) -> (Kernel, Word) {
    boot_sound_backend(mode, Backend::Interp)
}

/// [`boot_sound`] with an explicit execution backend.
pub fn boot_sound_backend(mode: IsolationMode, backend: Backend) -> (Kernel, Word) {
    let mut k = Kernel::boot_with_backend(mode, backend);
    k.load_module(mods::snd_ens1370::spec()).unwrap();
    let &(pcm, _ops) = k.snd().pcms.last().expect("ens1370 created a PCM");
    (k, pcm)
}

/// Wall-clock nanoseconds per playback period (the host-time
/// counterpart of [`measure_playback_costs`]; simulated cycles are
/// backend-invariant, host time is what the compiled backend buys).
pub fn measure_playback_wall_ns(mode: IsolationMode, backend: Backend, n: u64) -> f64 {
    let (mut k, pcm) = boot_sound_backend(mode, backend);
    for _ in 0..8 {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    const BATCH: u64 = 16;
    let mut batch_means = Vec::new();
    let mut done = 0u64;
    while done < n {
        let b = BATCH.min(n - done);
        let t0 = std::time::Instant::now();
        for _ in 0..b {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_pointer(pcm)).unwrap();
            k.enter(|k| k.snd_pointer(pcm)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        batch_means.push(t0.elapsed().as_nanos() as f64 / b as f64);
        done += b;
    }
    batch_means.sort_by(|a, b| a.total_cmp(b));
    batch_means[batch_means.len() / 2]
}

/// Measured playback costs, in simulated cycles.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackCosts {
    /// One playback period (trigger-start + buffer fill + two pointer
    /// reads + trigger-stop).
    pub period: f64,
}

/// Measures per-period cycles over `n` playback periods.
pub fn measure_playback_costs(mode: IsolationMode, n: u64) -> PlaybackCosts {
    let (mut k, pcm) = boot_sound(mode);
    // Warm up (fills slab pages, writer-set structures, guard caches).
    for _ in 0..4 {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    let start = k.total_cycles();
    for _ in 0..n {
        k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_pointer(pcm)).unwrap();
        k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
    }
    PlaybackCosts {
        period: (k.total_cycles() - start) as f64 / n as f64,
    }
}

/// One stock-vs-LXFI playback comparison row.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackRow {
    /// Stock cycles per period.
    pub stock: f64,
    /// LXFI cycles per period.
    pub lxfi: f64,
    /// LXFI/stock overhead ratio.
    pub overhead: f64,
}

/// Runs both modes over `n` periods.
pub fn playback_comparison(n: u64) -> PlaybackRow {
    let stock = measure_playback_costs(IsolationMode::Stock, n).period;
    let lxfi = measure_playback_costs(IsolationMode::Lxfi, n).period;
    PlaybackRow {
        stock,
        lxfi,
        overhead: lxfi / stock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lxfi_playback_costs_more_but_boundedly() {
        let row = playback_comparison(50);
        assert!(row.lxfi > row.stock, "guards must cost something: {row:?}");
        // A playback period is a tiny operation (a 64-byte fill plus two
        // indirect calls), so the fixed crossing costs — wrapper
        // entry/exit, annotation actions, ind-call checks — dominate and
        // the ratio runs well above netperf's per-packet overhead.
        assert!(
            row.overhead < 25.0,
            "playback overhead out of expected band: {row:?}"
        );
    }

    #[test]
    fn playback_guards_hit_the_write_cache() {
        // The buffer re-fill is a run of stores into one object: after
        // warmup the epoch cache should answer nearly all of them.
        let (mut k, pcm) = boot_sound(IsolationMode::Lxfi);
        for _ in 0..4 {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        k.rt.stats.reset();
        for _ in 0..32 {
            k.enter(|k| k.snd_trigger(pcm, 1)).unwrap();
            k.enter(|k| k.snd_trigger(pcm, 0)).unwrap();
        }
        assert!(
            k.rt.stats.write_cache_hit_rate() > 0.9,
            "steady playback fills should hit: rate {}",
            k.rt.stats.write_cache_hit_rate()
        );
    }
}
