//! netperf_mt: the contended multi-threaded TX workload.
//!
//! N worker threads drive e1000-style TX rings through their own
//! [`GuardHandle`]s over one shared [`RuntimeCore`]: each packet is
//! four guarded stores (ring descriptor, payload buffer, queue state,
//! driver stats — the four objects the 4-way epoch cache is sized for),
//! rotating across 256 ring slots. Every worker owns an instance
//! principal whose grants live in its own writer-index shard, so the
//! steady state is exactly the design target: **every store is a
//! lock-free private-cache hit** validated by one atomic epoch load.
//!
//! The *contended* variant adds a churn thread issuing grant/revoke
//! traffic against the workers' spare grants: each revoke bumps the
//! victim's epoch (plus the module-global principal's), wholesale-
//! invalidating the victim's private cache, so its next stores pay the
//! miss path — the table probe under the victim's capability mutex,
//! which is also what the churn thread holds mid-revoke. Contention is
//! therefore real but *scoped*: the paper's §3.1 hierarchy keeps other
//! workers' epochs untouched, and the perf gate bounds the damage
//! (contended per-store ≤ 2x uncontended; 4-thread aggregate ≥ 2.5x
//! single-thread when the host has ≥ 4 CPUs).
//!
//! Latency is reported as the **median of per-batch means** (batches of
//! 64 packets): robust to a worker being descheduled mid-batch on a
//! shared or single-core host, while still charging the epoch-miss
//! refills churn causes. Aggregate throughput is total stores over the
//! slowest worker's wall clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use lxfi_core::{GuardHandle, ModuleId, PrincipalId, RawCap, Runtime, RuntimeCore};

/// Base address of the per-worker TX arenas.
pub const MT_ARENA_BASE: u64 = 0x5000_0000;
/// Arena stride — one writer-index shard per worker.
pub const MT_ARENA_STRIDE: u64 = 0x10_0000;
/// TX ring slots per worker.
pub const RING_SLOTS: u64 = 256;
/// Packets per timed batch (4 stores per packet).
pub const BATCH_PKTS: u64 = 64;

/// Offsets of a worker's four TX objects and its churn-target spare
/// grant inside its arena.
const DESC_OFF: u64 = 0;
const PAYLOAD_OFF: u64 = 0x1_0000;
const QSTATE_OFF: u64 = 0x2_0000;
const STATS_OFF: u64 = 0x3_0000;
const SPARE_OFF: u64 = 0x4_0000;

/// The shared world of a netperf_mt run.
pub struct MtWorld {
    /// The shared runtime core workers guard against.
    pub core: Arc<RuntimeCore>,
    /// The driver module.
    pub module: ModuleId,
    /// One instance principal per worker.
    pub workers: Vec<PrincipalId>,
}

/// Builds the shared core: shard boundaries at every worker arena, one
/// instance principal per worker holding its ring/payload/state/stats
/// grants plus a spare grant for the churn thread to revoke.
pub fn build_world(threads: usize) -> MtWorld {
    let boundaries: Vec<u64> = (0..=threads as u64)
        .map(|t| MT_ARENA_BASE + t * MT_ARENA_STRIDE)
        .collect();
    let mut rt = Runtime::with_shard_boundaries(boundaries);
    let m = rt.register_module("e1000-mt");
    let workers: Vec<PrincipalId> = (0..threads)
        .map(|t| {
            let p = rt.principal_for_name(m, 0x9000 + t as u64 * 8);
            let base = arena(t);
            rt.grant(p, RawCap::write(base + DESC_OFF, RING_SLOTS * 16));
            rt.grant(p, RawCap::write(base + PAYLOAD_OFF, RING_SLOTS * 256));
            rt.grant(p, RawCap::write(base + QSTATE_OFF, 64));
            rt.grant(p, RawCap::write(base + STATS_OFF, 64));
            rt.grant(p, RawCap::write(base + SPARE_OFF, 0x100));
            p
        })
        .collect();
    MtWorld {
        core: rt.share(),
        module: m,
        workers,
    }
}

/// Worker `t`'s arena base.
pub fn arena(t: usize) -> u64 {
    MT_ARENA_BASE + t as u64 * MT_ARENA_STRIDE
}

/// Issues the four guarded stores of packet `i` on worker `t`'s ring;
/// panics if any store is denied (the workload never loses its ring
/// grants — churn only touches spares).
#[inline]
pub fn tx_packet(h: &mut GuardHandle, t: usize, i: u64) {
    let base = arena(t);
    let slot = i % RING_SLOTS;
    h.check_write(base + DESC_OFF + slot * 16, 16)
        .expect("ring descriptor granted");
    h.check_write(base + PAYLOAD_OFF + slot * 256, 8)
        .expect("payload granted");
    h.check_write(base + QSTATE_OFF + (i % 8) * 8, 8)
        .expect("queue state granted");
    h.check_write(base + STATS_OFF + (i % 8) * 8, 8)
        .expect("stats granted");
}

/// One measured configuration of the workload.
#[derive(Debug, Clone)]
pub struct MtMeasurement {
    /// Worker thread count.
    pub threads: usize,
    /// Whether the churn thread ran.
    pub contended: bool,
    /// Median-of-batch-means per-store latency, averaged over workers
    /// (host ns).
    pub store_ns: f64,
    /// Aggregate store throughput: total stores / slowest worker's wall
    /// clock, in M stores/s.
    pub aggregate_mops: f64,
    /// Write-guard cache hit rate merged over all workers.
    pub hit_rate: f64,
    /// Grant/revoke pairs the churn thread completed (0 uncontended).
    pub churn_ops: u64,
    /// Epoch bumps the churn caused (2 per revoke: victim + global).
    pub epoch_bumps: u64,
}

/// Runs `threads` workers for `packets_per_thread` packets each,
/// optionally against a churn thread revoking/re-granting worker
/// spares round-robin.
pub fn run_netperf_mt(threads: usize, packets_per_thread: u64, contended: bool) -> MtMeasurement {
    let world = build_world(threads);
    world.core.reset_global_stats();
    // Workers + main + (when contended) the churner, so churn ops land
    // inside the measured window rather than being absorbed by warmup.
    let start_barrier = Arc::new(Barrier::new(threads + 1 + usize::from(contended)));
    let stop = Arc::new(AtomicBool::new(false));
    let churn_ops = Arc::new(AtomicU64::new(0));
    let churn_bumps = Arc::new(AtomicU64::new(0));

    let churner = if contended {
        let core = world.core.clone();
        let workers = world.workers.clone();
        let start_barrier = start_barrier.clone();
        let stop = stop.clone();
        let churn_ops = churn_ops.clone();
        let churn_bumps = churn_bumps.clone();
        Some(thread::spawn(move || {
            start_barrier.wait();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let victim = workers[i % workers.len()];
                let cap = RawCap::write(arena(i % workers.len()) + SPARE_OFF, 0x100);
                let (_, bumps) = core.revoke(victim, cap);
                core.grant(victim, cap);
                churn_ops.fetch_add(1, Ordering::Relaxed);
                churn_bumps.fetch_add(bumps, Ordering::Relaxed);
                i += 1;
                // Pace the churn so it does not degenerate into a tight
                // loop starving the workers (on a single-CPU host the
                // scheduler already rations it heavily).
                thread::yield_now();
            }
        }))
    } else {
        None
    };

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let core = world.core.clone();
            let m = world.module;
            let p = world.workers[t];
            let start_barrier = start_barrier.clone();
            thread::spawn(move || {
                let mut h: GuardHandle = GuardHandle::new(core);
                h.set_current(Some((m, p)));
                // Warm the private cache before the clock starts.
                for i in 0..RING_SLOTS {
                    tx_packet(&mut h, t, i);
                }
                start_barrier.wait();
                let t0 = Instant::now();
                let mut batch_means = Vec::new();
                let mut i = 0u64;
                while i < packets_per_thread {
                    let n = BATCH_PKTS.min(packets_per_thread - i);
                    let b0 = Instant::now();
                    for _ in 0..n {
                        tx_packet(&mut h, t, i);
                        i += 1;
                    }
                    batch_means.push(b0.elapsed().as_nanos() as f64 / (n * 4) as f64);
                }
                let elapsed = t0.elapsed().as_secs_f64();
                batch_means.sort_by(|a, b| a.total_cmp(b));
                let median = batch_means[batch_means.len() / 2];
                h.flush_stats();
                (median, elapsed)
            })
        })
        .collect();

    start_barrier.wait();
    let results: Vec<(f64, f64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    if let Some(c) = churner {
        c.join().unwrap();
    }

    let stats = world.core.global_stats();
    let slowest = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let total_stores = threads as u64 * packets_per_thread * 4;
    MtMeasurement {
        threads,
        contended,
        store_ns: results.iter().map(|r| r.0).sum::<f64>() / threads as f64,
        aggregate_mops: total_stores as f64 / slowest / 1e6,
        hit_rate: stats.write_cache_hit_rate(),
        churn_ops: churn_ops.load(Ordering::Relaxed),
        epoch_bumps: churn_bumps.load(Ordering::Relaxed),
    }
}

/// The thread counts the human table and the CI smoke report.
pub const MT_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One uncontended and one contended row per thread count.
pub fn mt_rows(packets_per_thread: u64) -> Vec<MtMeasurement> {
    let mut rows = Vec::new();
    for &t in &MT_THREAD_COUNTS {
        rows.push(run_netperf_mt(t, packets_per_thread, false));
        rows.push(run_netperf_mt(t, packets_per_thread, true));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_workers_hit_their_private_caches() {
        let m = run_netperf_mt(2, 4_000, false);
        assert!(m.hit_rate > 0.99, "steady TX must be all cache hits: {m:?}");
        assert!(m.aggregate_mops > 0.0 && m.store_ns > 0.0);
        assert_eq!(m.churn_ops, 0);
    }

    #[test]
    fn contended_run_stays_correct_and_counts_churn() {
        let m = run_netperf_mt(2, 4_000, true);
        // tx_packet panics on any denied store, so completing the run
        // IS the correctness assertion; the churn must have landed.
        assert!(m.churn_ops > 0, "churn thread ran: {m:?}");
        assert_eq!(
            m.epoch_bumps,
            2 * m.churn_ops,
            "each spare revoke bumps victim + module global: {m:?}"
        );
        assert!(m.hit_rate > 0.5, "churn must not collapse the cache: {m:?}");
    }

    #[test]
    fn world_shards_isolate_worker_arenas() {
        let w = build_world(4);
        // Each worker's grants live in its own shard; the kfree hint
        // for one arena names only that worker.
        assert_eq!(w.core.present_over(arena(2), 0x1000), vec![w.workers[2]]);
        w.core.check_index_invariants();
    }
}
