//! Writer-lookup latency: the reverse writer index vs the paper's
//! global principal walk, at 8 / 64 / 512 principals.
//!
//! The workload models a many-module world: every principal owns a
//! private arena (its slab objects), and each of [`SLOTS`]
//! function-pointer slots is writable by exactly two principals (an
//! ops-table shared by a driver pair). The slow-path question — "who
//! can write this slot?" — has a two-element answer regardless of scale,
//! so the linear walk's O(principals) probe cost is pure overhead and
//! the reverse index's O(log intervals + 2) stays flat.

use std::hint::black_box;
use std::time::Instant;

use lxfi_core::{LinearWriterIndex, PrincipalId, WriterIndex};

/// Base address of the probed function-pointer slots.
pub const SLOT_BASE: u64 = 0x40_0000;
/// One slot per 64-byte granule (so probes touch distinct intervals).
pub const SLOT_STRIDE: u64 = 64;
/// Number of probed slots.
pub const SLOTS: u64 = 64;
/// Base address of the per-principal private arenas.
pub const ARENA_BASE: u64 = 0x100_0000;
/// Byte stride between consecutive principals' arenas.
pub const ARENA_STRIDE: u64 = 0x1000;

/// Address of the `i`-th rotated slot probe (stride-13 walk, like the
/// WRITE-table benches, so consecutive probes land in different slots).
pub fn rotating_slot_probe(i: u64) -> u64 {
    SLOT_BASE + (i.wrapping_mul(13) % SLOTS) * SLOT_STRIDE
}

/// Builds both writer-lookup structures over an identical grant
/// population: `principals` principals, each holding one private arena
/// grant, and every slot granted to two principals (round-robin).
pub fn bench_writer_indexes(principals: usize) -> (LinearWriterIndex, WriterIndex) {
    assert!(principals >= 2, "slots need two distinct writers");
    let mut linear = LinearWriterIndex::new();
    let mut index = WriterIndex::new();
    let mut grant = |p: usize, addr: u64, size: u64| {
        linear.grant(PrincipalId(p as u32), addr, size);
        index.add(PrincipalId(p as u32), addr, size);
    };
    for p in 0..principals {
        grant(p, ARENA_BASE + p as u64 * ARENA_STRIDE, 0x100);
    }
    for s in 0..SLOTS {
        let a = (2 * s) as usize % principals;
        let b = (2 * s + 1) as usize % principals;
        grant(a, SLOT_BASE + s * SLOT_STRIDE, 8);
        grant(b, SLOT_BASE + s * SLOT_STRIDE, 8);
    }
    (linear, index)
}

/// Measured slow-path lookup latency at one principal count.
#[derive(Debug, Clone)]
pub struct WriterLookupLatency {
    /// Number of principals in the system.
    pub principals: usize,
    /// ns per lookup via the global principal walk (allocates a `Vec`).
    pub linear_ns: f64,
    /// ns per lookup via the reverse index (allocation-free iteration).
    pub index_ns: f64,
}

fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    // Minimum over three batches: a latency estimate robust to the
    // scheduler descheduling one batch on a shared CI runner (a single
    // preemption inflates a mean arbitrarily, and the perf gate's
    // tightest rows sit at tens of ns).
    let batch = (iters / 3).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    best
}

/// Times `writers_of` on both structures with rotating slot probes.
/// Every probe finds exactly two writers; the assertions keep the
/// optimizer honest and the workload correct.
pub fn writer_lookup_comparison(principals: usize, iters: u64) -> WriterLookupLatency {
    let (linear, index) = bench_writer_indexes(principals);
    let mut i = 0u64;
    let linear_ns = time_ns(iters, || {
        let a = rotating_slot_probe(i);
        i += 1;
        assert_eq!(linear.writers_of(black_box(a), 8).len(), 2);
    });
    let mut i = 0u64;
    let index_ns = time_ns(iters, || {
        let a = rotating_slot_probe(i);
        i += 1;
        assert_eq!(index.writers_over(black_box(a), 8).count(), 2);
    });
    WriterLookupLatency {
        principals,
        linear_ns,
        index_ns,
    }
}

/// The principal counts the guard-cost table and the CI perf gate report.
pub const PRINCIPAL_COUNTS: [usize; 3] = [8, 64, 512];

/// One comparison row per entry of [`PRINCIPAL_COUNTS`].
pub fn writer_lookup_rows(iters: u64) -> Vec<WriterLookupLatency> {
    PRINCIPAL_COUNTS
        .iter()
        .map(|&n| writer_lookup_comparison(n, iters))
        .collect()
}

// ------------------------------------------------- grant/revoke splices

/// Base address of the splice-churn arena.
pub const CHURN_BASE: u64 = 0x800_0000;
/// Byte stride between churned grants.
pub const CHURN_GRANT_STRIDE: u64 = 0x100;
/// Grants (and therefore intervals) in the splice workload: enough that
/// an unsharded revoke/grant memmoves a four-digit interval tail.
pub const CHURN_GRANTS: usize = 2048;

/// Shard counts the splice comparison and the CI perf gate report.
pub const SPLICE_SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// A [`WriterIndex`] with `shards` equal-width shards over the churn
/// arena, populated with [`CHURN_GRANTS`] disjoint grants round-robined
/// over `principals` principals — the interval population is identical
/// for every shard count; only the splice locality differs.
pub fn bench_sharded_index(principals: usize, shards: usize) -> WriterIndex {
    assert!(principals >= 1 && shards >= 1);
    let span = CHURN_GRANTS as u64 * CHURN_GRANT_STRIDE;
    let bounds: Vec<u64> = (1..shards as u64)
        .map(|k| CHURN_BASE + span * k / shards as u64)
        .collect();
    let mut ix = WriterIndex::with_boundaries(bounds);
    for g in 0..CHURN_GRANTS {
        let p = PrincipalId((g % principals) as u32);
        ix.add(p, CHURN_BASE + g as u64 * CHURN_GRANT_STRIDE, 0x80);
    }
    ix
}

/// Measured grant/revoke splice latency at one shard count.
#[derive(Debug, Clone)]
pub struct SpliceLatency {
    /// Number of principals whose grants populate the index.
    pub principals: usize,
    /// Number of shards.
    pub shards: usize,
    /// ns per revoke+re-grant churn op (two splices).
    pub churn_ns: f64,
}

/// One churn op of the splice workload: the `i`-th rotated grant is
/// removed and immediately re-added (two splices). Shared by the table
/// harness and the criterion bench so both measure the same workload.
pub fn splice_churn_op(ix: &mut WriterIndex, principals: usize, i: u64) {
    let g = i.wrapping_mul(13) % CHURN_GRANTS as u64;
    let p = PrincipalId((g % principals as u64) as u32);
    let a = CHURN_BASE + g * CHURN_GRANT_STRIDE;
    ix.remove(std::hint::black_box(p), a, 0x80);
    ix.add(p, a, 0x80);
}

/// Times [`splice_churn_op`] rotating across the populated grants: each
/// op removes one interval from its shard and splices it back, so the
/// cost is dominated by the shard's `Vec` tail memmove — the quantity
/// sharding bounds.
pub fn splice_comparison(principals: usize, shards: usize, iters: u64) -> SpliceLatency {
    let mut ix = bench_sharded_index(principals, shards);
    let mut i = 0u64;
    let churn_ns = time_ns(iters, || {
        splice_churn_op(&mut ix, principals, i);
        i += 1;
    });
    SpliceLatency {
        principals,
        shards,
        churn_ns,
    }
}

/// One splice row per entry of [`SPLICE_SHARD_COUNTS`], at 512
/// principals (the scale the acceptance bar names).
pub fn splice_rows(iters: u64) -> Vec<SpliceLatency> {
    SPLICE_SHARD_COUNTS
        .iter()
        .map(|&s| splice_comparison(512, s, iters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_agree_on_the_workload() {
        for &n in &PRINCIPAL_COUNTS {
            let (linear, index) = bench_writer_indexes(n);
            for i in 0..SLOTS {
                let probe = SLOT_BASE + i * SLOT_STRIDE;
                let mut got: Vec<PrincipalId> = index.writers_over(probe, 8).collect();
                got.sort();
                assert_eq!(got, linear.writers_of(probe, 8), "slot {i}, n={n}");
                assert_eq!(got.len(), 2);
            }
            // Arena probes see exactly their owner.
            let arena = ARENA_BASE + (n as u64 / 2) * ARENA_STRIDE;
            assert_eq!(index.writers_over(arena, 8).count(), 1);
        }
    }

    #[test]
    fn reverse_index_beats_linear_walk_by_5x_at_512() {
        // The acceptance bar: ≥5x on the 512-principal slow-path lookup.
        // The real margin is far larger (the walk probes 512 tables per
        // query); 5x keeps the test robust on loaded CI machines.
        let lat = writer_lookup_comparison(512, 20_000);
        assert!(
            lat.index_ns * 5.0 < lat.linear_ns,
            "index {:.1}ns vs linear walk {:.1}ns at 512 principals",
            lat.index_ns,
            lat.linear_ns
        );
    }

    #[test]
    fn sharded_and_unsharded_splice_workloads_agree() {
        // Identical grant populations at every shard count: probes in,
        // between, and across grants answer identically.
        let flat = bench_sharded_index(512, 1);
        for &s in &SPLICE_SHARD_COUNTS[1..] {
            let sharded = bench_sharded_index(512, s);
            assert_eq!(sharded.shard_count(), s);
            for g in (0..CHURN_GRANTS as u64).step_by(37) {
                let a = CHURN_BASE + g * CHURN_GRANT_STRIDE;
                for probe in [a, a + 0x78, a + 0x80, a.wrapping_sub(8)] {
                    let mut want: Vec<PrincipalId> = flat.writers_over(probe, 8).collect();
                    want.sort();
                    let mut got: Vec<PrincipalId> = sharded.writers_over(probe, 8).collect();
                    got.sort();
                    assert_eq!(got, want, "{s} shards, probe {probe:#x}");
                }
            }
            sharded.check_invariants();
        }
    }

    #[test]
    fn sharded_splice_beats_unsharded_at_512() {
        // The acceptance bar: grant/revoke splice time at 512 principals
        // improves vs the unsharded index at ≥4 shards. The margin is
        // real in release (the perf gate holds splice_512p_4shard_ns <
        // splice_512p_1shard_ns with no slack), but an uninlined debug
        // build on a loaded single-core host measures a near-tie that
        // flips sign with scheduler noise — so debug builds only guard
        // against collapse while release asserts the strict win. Best
        // of three interleaved rounds damps descheduling spikes.
        let (mut best_flat, mut best_sharded) = (f64::MAX, f64::MAX);
        for _ in 0..3 {
            best_flat = best_flat.min(splice_comparison(512, 1, 4_000).churn_ns);
            best_sharded = best_sharded.min(splice_comparison(512, 4, 4_000).churn_ns);
        }
        let limit = if cfg!(debug_assertions) {
            best_flat * 1.25
        } else {
            best_flat
        };
        assert!(
            best_sharded < limit,
            "4-shard churn {best_sharded:.1}ns vs unsharded {best_flat:.1}ns"
        );
    }

    #[test]
    fn index_latency_stays_flat_as_principals_grow() {
        // 8 → 512 principals: the walk slows by ~64x, the index must not
        // (allow generous noise: 4x).
        let small = writer_lookup_comparison(8, 20_000);
        let large = writer_lookup_comparison(512, 20_000);
        assert!(
            large.index_ns < small.index_ns * 4.0 + 50.0,
            "index lookup should be ~flat: {:.1}ns at 8 vs {:.1}ns at 512",
            small.index_ns,
            large.index_ns
        );
    }
}
