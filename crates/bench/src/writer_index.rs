//! Writer-lookup latency: the reverse writer index vs the paper's
//! global principal walk, at 8 / 64 / 512 principals.
//!
//! The workload models a many-module world: every principal owns a
//! private arena (its slab objects), and each of [`SLOTS`]
//! function-pointer slots is writable by exactly two principals (an
//! ops-table shared by a driver pair). The slow-path question — "who
//! can write this slot?" — has a two-element answer regardless of scale,
//! so the linear walk's O(principals) probe cost is pure overhead and
//! the reverse index's O(log intervals + 2) stays flat.

use std::hint::black_box;
use std::time::Instant;

use lxfi_core::{LinearWriterIndex, PrincipalId, WriterIndex};

/// Base address of the probed function-pointer slots.
pub const SLOT_BASE: u64 = 0x40_0000;
/// One slot per 64-byte granule (so probes touch distinct intervals).
pub const SLOT_STRIDE: u64 = 64;
/// Number of probed slots.
pub const SLOTS: u64 = 64;
/// Base address of the per-principal private arenas.
pub const ARENA_BASE: u64 = 0x100_0000;
/// Byte stride between consecutive principals' arenas.
pub const ARENA_STRIDE: u64 = 0x1000;

/// Address of the `i`-th rotated slot probe (stride-13 walk, like the
/// WRITE-table benches, so consecutive probes land in different slots).
pub fn rotating_slot_probe(i: u64) -> u64 {
    SLOT_BASE + (i.wrapping_mul(13) % SLOTS) * SLOT_STRIDE
}

/// Builds both writer-lookup structures over an identical grant
/// population: `principals` principals, each holding one private arena
/// grant, and every slot granted to two principals (round-robin).
pub fn bench_writer_indexes(principals: usize) -> (LinearWriterIndex, WriterIndex) {
    assert!(principals >= 2, "slots need two distinct writers");
    let mut linear = LinearWriterIndex::new();
    let mut index = WriterIndex::new();
    let mut grant = |p: usize, addr: u64, size: u64| {
        linear.grant(PrincipalId(p as u32), addr, size);
        index.add(PrincipalId(p as u32), addr, size);
    };
    for p in 0..principals {
        grant(p, ARENA_BASE + p as u64 * ARENA_STRIDE, 0x100);
    }
    for s in 0..SLOTS {
        let a = (2 * s) as usize % principals;
        let b = (2 * s + 1) as usize % principals;
        grant(a, SLOT_BASE + s * SLOT_STRIDE, 8);
        grant(b, SLOT_BASE + s * SLOT_STRIDE, 8);
    }
    (linear, index)
}

/// Measured slow-path lookup latency at one principal count.
#[derive(Debug, Clone)]
pub struct WriterLookupLatency {
    /// Number of principals in the system.
    pub principals: usize,
    /// ns per lookup via the global principal walk (allocates a `Vec`).
    pub linear_ns: f64,
    /// ns per lookup via the reverse index (allocation-free iteration).
    pub index_ns: f64,
}

fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// Times `writers_of` on both structures with rotating slot probes.
/// Every probe finds exactly two writers; the assertions keep the
/// optimizer honest and the workload correct.
pub fn writer_lookup_comparison(principals: usize, iters: u64) -> WriterLookupLatency {
    let (linear, index) = bench_writer_indexes(principals);
    let mut i = 0u64;
    let linear_ns = time_ns(iters, || {
        let a = rotating_slot_probe(i);
        i += 1;
        assert_eq!(linear.writers_of(black_box(a), 8).len(), 2);
    });
    let mut i = 0u64;
    let index_ns = time_ns(iters, || {
        let a = rotating_slot_probe(i);
        i += 1;
        assert_eq!(index.writers_over(black_box(a), 8).count(), 2);
    });
    WriterLookupLatency {
        principals,
        linear_ns,
        index_ns,
    }
}

/// The principal counts the guard-cost table and the CI perf gate report.
pub const PRINCIPAL_COUNTS: [usize; 3] = [8, 64, 512];

/// One comparison row per entry of [`PRINCIPAL_COUNTS`].
pub fn writer_lookup_rows(iters: u64) -> Vec<WriterLookupLatency> {
    PRINCIPAL_COUNTS
        .iter()
        .map(|&n| writer_lookup_comparison(n, iters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_agree_on_the_workload() {
        for &n in &PRINCIPAL_COUNTS {
            let (linear, index) = bench_writer_indexes(n);
            for i in 0..SLOTS {
                let probe = SLOT_BASE + i * SLOT_STRIDE;
                let mut got: Vec<PrincipalId> = index.writers_over(probe, 8).collect();
                got.sort();
                assert_eq!(got, linear.writers_of(probe, 8), "slot {i}, n={n}");
                assert_eq!(got.len(), 2);
            }
            // Arena probes see exactly their owner.
            let arena = ARENA_BASE + (n as u64 / 2) * ARENA_STRIDE;
            assert_eq!(index.writers_over(arena, 8).count(), 1);
        }
    }

    #[test]
    fn reverse_index_beats_linear_walk_by_5x_at_512() {
        // The acceptance bar: ≥5x on the 512-principal slow-path lookup.
        // The real margin is far larger (the walk probes 512 tables per
        // query); 5x keeps the test robust on loaded CI machines.
        let lat = writer_lookup_comparison(512, 20_000);
        assert!(
            lat.index_ns * 5.0 < lat.linear_ns,
            "index {:.1}ns vs linear walk {:.1}ns at 512 principals",
            lat.index_ns,
            lat.linear_ns
        );
    }

    #[test]
    fn index_latency_stays_flat_as_principals_grow() {
        // 8 → 512 principals: the walk slows by ~64x, the index must not
        // (allow generous noise: 4x).
        let small = writer_lookup_comparison(8, 20_000);
        let large = writer_lookup_comparison(512, 20_000);
        assert!(
            large.index_ns < small.index_ns * 4.0 + 50.0,
            "index lookup should be ~flat: {:.1}ns at 8 vs {:.1}ns at 512",
            small.index_ns,
            large.index_ns
        );
    }
}
