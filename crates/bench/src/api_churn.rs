//! The Figure 10 API-evolution study, regenerated from a calibrated
//! synthetic model.
//!
//! The paper counts exported functions and struct function pointers
//! across 20 kernel releases (2.6.20–2.6.39) with ctags. We do not have
//! twenty kernel trees, so — per the substitution rule — we model the
//! two populations with the growth and churn rates the paper reports:
//!
//! - 2.6.21: 5,583 exported functions, 272 new/changed since 2.6.20;
//! - 2.6.21: 3,725 struct function pointers, 183 new/changed;
//! - roughly 2× growth by 2.6.39 (~11,000 exported functions), with
//!   per-release churn staying in the few-hundreds.
//!
//! The figure's point — interfaces grow steadily, but per-release churn
//! is *small* relative to total code churn, so annotation maintenance is
//! tractable — is a property of the series, which the model preserves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One release's counts.
#[derive(Debug, Clone)]
pub struct VersionRow {
    /// Kernel version label.
    pub version: String,
    /// Total exported functions.
    pub exported_total: u64,
    /// Exported functions new or changed since the previous release.
    pub exported_changed: u64,
    /// Total function pointers in structs.
    pub fptr_total: u64,
    /// Function pointers new or changed since the previous release.
    pub fptr_changed: u64,
}

/// Deterministically regenerates the 2.6.21–2.6.39 series.
pub fn series(seed: u64) -> Vec<VersionRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Anchors from the paper's text.
    let mut exported = 5583.0f64;
    let mut fptr = 3725.0f64;
    // ~3.8%/release compounds 5,583 → ~11,000 over 18 releases.
    let growth = 0.038;
    let mut out = Vec::new();
    for (i, minor) in (21..=39).enumerate() {
        let (exported_changed, fptr_changed) = if i == 0 {
            (272, 183)
        } else {
            // Churn = additions (growth) + modifications of existing
            // interfaces (slowly growing with the interface count).
            let e_mod = exported * 0.012 * rng.gen_range(0.75..1.25);
            let f_mod = fptr * 0.014 * rng.gen_range(0.75..1.25);
            let e_new = exported * growth;
            let f_new = fptr * growth;
            ((e_new * 0.6 + e_mod) as u64, (f_new * 0.6 + f_mod) as u64)
        };
        out.push(VersionRow {
            version: format!("2.6.{minor}"),
            exported_total: exported as u64,
            exported_changed,
            fptr_total: fptr as u64,
            fptr_changed,
        });
        exported *= 1.0 + growth;
        fptr *= 1.0 + growth;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let s = series(2011);
        assert_eq!(s[0].version, "2.6.21");
        assert_eq!(s[0].exported_total, 5583);
        assert_eq!(s[0].exported_changed, 272);
        assert_eq!(s[0].fptr_total, 3725);
        assert_eq!(s[0].fptr_changed, 183);
        assert_eq!(s.last().unwrap().version, "2.6.39");
    }

    #[test]
    fn growth_reaches_2x_and_churn_stays_small() {
        let s = series(2011);
        let first = &s[0];
        let last = s.last().unwrap();
        let ratio = last.exported_total as f64 / first.exported_total as f64;
        assert!(ratio > 1.8 && ratio < 2.3, "growth {ratio}");
        for row in &s {
            // Churn is "on the order of several hundred functions" (§8.2).
            assert!(row.exported_changed < 900, "{row:?}");
            assert!(row.fptr_changed < 700, "{row:?}");
            // And always a small fraction of the total.
            assert!((row.exported_changed as f64) < 0.12 * row.exported_total as f64);
        }
    }

    #[test]
    fn series_is_deterministic() {
        let a = series(2011);
        let b = series(2011);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exported_changed, y.exported_changed);
            assert_eq!(x.fptr_changed, y.fptr_changed);
        }
    }

    #[test]
    fn totals_are_monotonic() {
        let s = series(2011);
        for w in s.windows(2) {
            assert!(w[1].exported_total > w[0].exported_total);
            assert!(w[1].fptr_total > w[0].fptr_total);
        }
    }
}
