//! Guard-soundness audit over every shipped module (and the kernel
//! thunks): the data source for the `verify_guards` CLI and for the
//! verifier counters `table_guard_costs --json` exports to the perf
//! gate.
//!
//! The audit rewrites each module exactly the way `load_module` does
//! (default [`RewriteOptions`]), runs [`verify_soundness`] under the
//! module policy, and reports per-module proof statistics. The kernel
//! thunk pseudo-module is audited under the kernel-thunk policy
//! (ind-call domination). A small set of canary mutations — guard
//! stripped, wrong base register, shortened span — is rejected on every
//! run, proving the verifier is not vacuously accepting.

use lxfi_kernel::net::kernel_thunks;
use lxfi_machine::isa::{Inst, Operand, Reg};
use lxfi_machine::{verify_soundness, Program, SoundnessPolicy};
use lxfi_modules::all_specs;
use lxfi_rewriter::{rewrite_kernel_thunks, rewrite_module, RewriteOptions};

use crate::sfi::lld_spec;

/// One audited program.
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Module (or pseudo-module) name.
    pub name: String,
    /// Functions analysed.
    pub funcs: usize,
    /// Reachable basic blocks checked.
    pub blocks: usize,
    /// Stores proven guard-dominated.
    pub stores_proven: u64,
    /// Frame stores proven statically in bounds (§8.3 elision).
    pub frame_stores_proven: u64,
    /// Indirect calls proven guard-dominated.
    pub indcalls_proven: u64,
    /// Loop-invariant guards the rewriter hoisted.
    pub guards_hoisted: usize,
    /// Soundness errors (empty on a proof).
    pub errors: Vec<String>,
}

impl AuditRow {
    /// Did the program prove sound?
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Audits the ten shipped modules plus the synthetic `lld` workload,
/// each rewritten with the given options and verified under the module
/// policy.
pub fn audit_modules(opts: RewriteOptions) -> Vec<AuditRow> {
    let mut specs = all_specs();
    specs.push(lld_spec(400));
    specs
        .into_iter()
        .map(|spec| {
            let rw = rewrite_module(&spec.program, opts);
            row(
                &spec.name,
                &rw.program,
                SoundnessPolicy::module(),
                rw.merge.guards_hoisted,
            )
        })
        .collect()
}

/// Audits the kernel dispatch thunks under the ind-call policy.
pub fn audit_kernel_thunks() -> AuditRow {
    let rep = rewrite_kernel_thunks(&kernel_thunks());
    row(
        "kernel-thunks",
        &rep.program,
        SoundnessPolicy::kernel_thunks(),
        0,
    )
}

fn row(name: &str, p: &Program, policy: SoundnessPolicy, guards_hoisted: usize) -> AuditRow {
    match verify_soundness(p, policy) {
        Ok(r) => AuditRow {
            name: name.into(),
            funcs: r.funcs,
            blocks: r.blocks_checked,
            stores_proven: r.stores_proven,
            frame_stores_proven: r.frame_stores_proven,
            indcalls_proven: r.indcalls_proven,
            guards_hoisted,
            errors: Vec::new(),
        },
        Err(errs) => AuditRow {
            name: name.into(),
            funcs: p.funcs.len(),
            blocks: 0,
            stores_proven: 0,
            frame_stores_proven: 0,
            indcalls_proven: 0,
            guards_hoisted,
            errors: errs.iter().map(|e| e.to_string()).collect(),
        },
    }
}

// ------------------------------------------------------------ canaries

/// Deletes instruction `idx` from function `fi`, remapping jump targets
/// so the mutant fails for soundness reasons, not broken structure.
fn delete_inst(p: &mut Program, fi: usize, idx: usize) {
    let f = &mut p.funcs[fi];
    f.insts.remove(idx);
    for inst in &mut f.insts {
        inst.map_target(|t| if t > idx { t - 1 } else { t });
    }
}

/// Applies the canary mutations to a rewritten program: each returned
/// mutant removes or weakens exactly one guard and must be rejected.
pub fn canary_mutants(rewritten: &Program) -> Vec<(String, Program)> {
    let mut mutants = Vec::new();
    // Find the first write guard (function index, instruction index).
    let site = rewritten.funcs.iter().enumerate().find_map(|(fi, f)| {
        f.insts
            .iter()
            .position(|i| matches!(i, Inst::GuardWrite { .. }))
            .map(|idx| (fi, idx))
    });
    let Some((fi, idx)) = site else {
        return mutants;
    };

    let mut stripped = rewritten.clone();
    delete_inst(&mut stripped, fi, idx);
    mutants.push(("guard stripped".into(), stripped));

    let mut rebased = rewritten.clone();
    if let Inst::GuardWrite { base, .. } = &mut rebased.funcs[fi].insts[idx] {
        *base = match base {
            Operand::Reg(r) => Operand::Reg(Reg((r.0 + 1) % 16)),
            Operand::Imm(v) => Operand::Imm(*v + 8),
        };
    }
    mutants.push(("guard base retargeted".into(), rebased));

    let mut shortened = rewritten.clone();
    if let Inst::GuardWrite { len, .. } = &mut shortened.funcs[fi].insts[idx] {
        *len = Operand::Imm(1);
    }
    mutants.push(("guard span shortened".into(), shortened));
    mutants
}

/// Runs the canaries over the rewritten e1000 program. Returns
/// `(mutants, rejected)` — anything but equal counts means the verifier
/// accepted a broken program.
pub fn canary_outcome() -> (usize, usize) {
    let spec = lxfi_modules::e1000::spec();
    let rw = rewrite_module(&spec.program, RewriteOptions::default());
    let mutants = canary_mutants(&rw.program);
    let rejected = mutants
        .iter()
        .filter(|(_, m)| verify_soundness(m, SoundnessPolicy::module()).is_err())
        .count();
    (mutants.len(), rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shipped_modules_prove_sound() {
        for row in audit_modules(RewriteOptions::default()) {
            assert!(row.ok(), "{}: {:?}", row.name, row.errors);
            assert!(row.stores_proven > 0, "{} proves no stores?", row.name);
        }
    }

    #[test]
    fn kernel_thunks_prove_indcall_sound() {
        let row = audit_kernel_thunks();
        assert!(row.ok(), "{:?}", row.errors);
        assert!(row.indcalls_proven > 0);
    }

    #[test]
    fn e1000_hoists_the_doorbell_guard() {
        let rows = audit_modules(RewriteOptions::default());
        let e1000 = rows.iter().find(|r| r.name == "e1000").unwrap();
        assert!(
            e1000.guards_hoisted >= 1,
            "the TX doorbell guard should hoist"
        );
    }

    #[test]
    fn canaries_all_rejected() {
        let (mutants, rejected) = canary_outcome();
        assert_eq!(mutants, 3);
        assert_eq!(rejected, mutants);
    }
}
