//! The end-to-end request server: the async-I/O-plane workload.
//!
//! A request is one simulated wire frame carrying a sequence number. It
//! travels the full receive plane — e1000 RX ring → NAPI poll (deferred
//! dispatch at the enter-epilogue quiescent point) → `netif_rx` → the
//! echo protocol module's `recvmsg` handler — and the server answers
//! each with a TX reply through `e1000_xmit`. Per-request latency is
//! the simulated-cycle delta from the burst's wire injection to that
//! request's reply hitting the TX ring, converted to nanoseconds at the
//! testbed clock; `perf_gate` holds p50/p99 (and their tail ratio) to
//! the committed baseline.
//!
//! Latency here is *queueing-aware*: requests are injected in bursts of
//! mixed size, so a request late in a burst of 16 waits for the whole
//! poll plus its predecessors' handling — that spread is what separates
//! p99 from p50, deterministically.

use lxfi_core::iface::Param;
use lxfi_kernel::net::free_skb_raw;
use lxfi_kernel::netsim::NetSimConfig;
use lxfi_kernel::types::{proto_ops, sk_buff, sock};
use lxfi_kernel::{Backend, IsolationMode, Kernel, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{Cond, ProgramBuilder, Word};
use lxfi_modules as mods;
use lxfi_rewriter::InterfaceSpec;

/// The protocol family the echo module registers.
pub const ECHO_FAMILY: u64 = 42;

/// Per-handler work-loop iterations (guarded stores under LXFI).
pub const ECHO_WORK: u64 = 4;

/// The burst schedule, cycled until the request budget is spent. Mixed
/// sizes are the point: they turn head-of-line queueing into a latency
/// *distribution* rather than a constant.
pub const BURSTS: [u64; 4] = [1, 2, 4, 8];

/// The echo protocol module: registers [`ECHO_FAMILY`] and answers
/// `recvmsg(sock, seq, work)` by accounting the request on its socket
/// (guarded stores — the per-request LXFI cost) and echoing `seq`.
pub fn echod_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("echod");

    let sock_register = pb.import_func("sock_register");

    let ops = pb.global("echod_ops", proto_ops::SIZE);
    let recvmsg = pb.declare("echod_recvmsg", 3);
    pb.fn_reloc(ops, proto_ops::RECVMSG as u64, recvmsg);

    pb.define("echod_init", 0, 0, |f| {
        f.global_addr(R0, ops);
        f.call_extern(
            sock_register,
            &[(ECHO_FAMILY as i64).into(), R0.into()],
            None,
        );
        f.ret(0i64);
    });

    // echod_recvmsg(sock, seq, work): the request handler.
    pb.define("echod_recvmsg", 3, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.mov(R10, R0); // sock
        f.mov(R11, R1); // request sequence number
        f.mov(R12, R2); // work iterations
                        // Account the request: sock->queued += 1, remember the seq.
        f.load8(R3, R10, sock::QUEUED);
        f.add(R3, R3, 1i64);
        f.store8(R3, R10, sock::QUEUED);
        f.store8(R11, R10, sock::PRIV);
        // Application work: `work` guarded stores into socket scratch.
        f.mov(R4, 0i64);
        f.bind(top);
        f.br(Cond::Ule, R12, R4, done);
        f.add(R5, R11, R4);
        f.store8(R5, R10, 40);
        f.add(R4, R4, 1i64);
        f.jmp(top);
        f.bind(done);
        f.ret(R11); // echo
    });

    let sig = pb.sig("proto_recvmsg", 3);
    pb.assign_sig(recvmsg, sig);

    let mut iface = InterfaceSpec::new();
    iface.declare_sig(mods::decl(
        "proto_recvmsg",
        vec![
            Param::ptr("sock", "sock"),
            Param::scalar("a"),
            Param::scalar("b"),
        ],
        lxfi_kernel::socket::PROTO_SOCK_ANN,
    ));

    ModuleSpec {
        name: "echod".into(),
        program: pb.finish(),
        iface,
        iterators: vec![],
        init_fn: Some("echod_init".into()),
    }
}

/// Fixed-bucket latency histogram: 128 × 250 ns plus an overflow
/// bucket. Fixed buckets keep the quantiles deterministic and the
/// memory constant regardless of request count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket width, nanoseconds.
    pub bucket_ns: u64,
    /// Bucket counts; bucket `i` covers `[i*w, (i+1)*w)`.
    pub counts: Vec<u64>,
    /// Samples past the last bucket.
    pub overflow: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            bucket_ns: 250,
            counts: vec![0; 128],
            overflow: 0,
        }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&mut self, ns: f64) {
        let i = (ns / self.bucket_ns as f64) as usize;
        if i < self.counts.len() {
            self.counts[i] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Quantile by bucket midpoint (overflow reports the last edge).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as f64 + 0.5) * self.bucket_ns as f64;
            }
        }
        self.counts.len() as f64 * self.bucket_ns as f64
    }
}

/// One server run's results.
#[derive(Debug, Clone)]
pub struct ServerMeasurement {
    /// Median request latency, ns.
    pub p50_ns: f64,
    /// 99th-percentile request latency, ns.
    pub p99_ns: f64,
    /// Frames the wire pushed that reached `netif_rx`.
    pub rx_pkts: u64,
    /// TX replies the driver posted.
    pub tx_replies: u64,
    /// Frames dropped to RX ring overruns.
    pub dropped: u64,
    /// Deferred calls dispatched (NAPI polls, including re-arms).
    pub deferred_dispatched: u64,
    /// Request sequence numbers in delivery order (the functional
    /// result backends must agree on).
    pub seqs: Vec<u64>,
    /// The full latency histogram.
    pub hist: Histogram,
}

/// Boots the server: e1000 bound to a NIC (RX ring attached at probe),
/// echo module registered, one socket open.
pub fn boot_server(mode: IsolationMode, backend: Backend) -> (Kernel, Word, Word) {
    let mut k = Kernel::boot_with_backend(mode, backend);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(mods::e1000::spec()).unwrap();
    k.load_module(echod_spec()).unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let dev = *k.net().devices.last().unwrap();
    let sck = k.enter(|k| k.sys_socket(ECHO_FAMILY)).unwrap();
    (k, dev, sck)
}

/// Runs `requests` requests through the full plane and measures.
pub fn run_server(mode: IsolationMode, backend: Backend, requests: u64) -> ServerMeasurement {
    let (mut k, dev, sck) = boot_server(mode, backend);
    let ns_per_cycle = 1e9 / NetSimConfig::default().cpu_hz;

    // Warm up slab magazines and writer sets.
    for _ in 0..2 {
        k.enter(|k| k.net_rx_wire(dev, 4)).unwrap();
        let skbs = std::mem::take(&mut k.net().rx_queue);
        for skb in skbs {
            k.enter(|k| free_skb_raw(k, skb).map(|()| 0u64)).unwrap();
        }
        k.enter(|k| k.net_send_packet(dev, 60)).unwrap();
    }
    let rx_before = k.net().rx_total;
    let tx_before = k.net_tx_packets(dev);
    let (disp_before, _, _) = k.deferred_stats();

    let mut hist = Histogram::default();
    let mut seqs = Vec::new();
    let mut injected = 0u64;
    let mut burst_i = 0usize;
    while injected < requests {
        let burst = BURSTS[burst_i % BURSTS.len()].min(requests - injected);
        burst_i += 1;
        injected += burst;
        let t0 = k.total_cycles();
        // Wire the burst in; the interrupt's NAPI poll dispatches at
        // the enter-epilogue quiescent point, filling rx_queue.
        k.enter(|k| k.net_rx_wire(dev, burst)).unwrap();
        let skbs = std::mem::take(&mut k.net().rx_queue);
        assert_eq!(skbs.len() as u64, burst, "burst fully delivered");
        for skb in skbs {
            let data = k
                .mem
                .read_word((skb as i64 + sk_buff::DATA) as u64)
                .unwrap();
            let seq = k.mem.read_word(data + 8).unwrap();
            // Socket delivery → module handler (echoes the seq back).
            let echoed = k.enter(|k| k.sys_recvmsg(sck, seq, ECHO_WORK)).unwrap();
            assert_eq!(echoed, seq, "handler echoes the request seq");
            // TX reply through the driver.
            k.enter(|k| k.net_send_packet(dev, 60)).unwrap();
            k.enter(|k| free_skb_raw(k, skb).map(|()| 0u64)).unwrap();
            hist.record((k.total_cycles() - t0) as f64 * ns_per_cycle);
            seqs.push(seq);
        }
    }

    let (disp_after, _, _) = k.deferred_stats();
    let (rx_pkts, dropped) = {
        let net = k.net();
        (net.rx_total - rx_before, net.rx_dropped())
    };
    ServerMeasurement {
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        rx_pkts,
        tx_replies: k.net_tx_packets(dev) - tx_before,
        dropped,
        deferred_dispatched: disp_after - disp_before,
        seqs,
        hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_end_to_end_lxfi() {
        let m = run_server(IsolationMode::Lxfi, Backend::Interp, 64);
        assert_eq!(m.rx_pkts, 64);
        assert_eq!(m.tx_replies, 64);
        assert_eq!(m.dropped, 0);
        // Warmup seqs 0..8 are consumed before measurement; the
        // measured window is the next 64, in wire order.
        let expect: Vec<u64> = (8..72).collect();
        assert_eq!(m.seqs, expect);
        assert!(m.deferred_dispatched > 0, "polls went through the mux");
        assert!(m.p50_ns > 0.0 && m.p99_ns >= m.p50_ns);
    }

    #[test]
    fn backends_agree_functionally_and_in_cycles() {
        let a = run_server(IsolationMode::Lxfi, Backend::Interp, 64);
        let b = run_server(IsolationMode::Lxfi, Backend::Compiled, 64);
        assert_eq!(a.seqs, b.seqs);
        assert_eq!(a.rx_pkts, b.rx_pkts);
        assert_eq!(a.tx_replies, b.tx_replies);
        // The cycle model is backend-invariant, so the latency
        // distributions are *identical*, not merely close.
        assert_eq!(a.hist, b.hist);
    }

    #[test]
    fn tail_is_bounded_and_lxfi_costs_more() {
        let lxfi = run_server(IsolationMode::Lxfi, Backend::Interp, 128);
        let stock = run_server(IsolationMode::Stock, Backend::Interp, 128);
        assert!(lxfi.p99_ns <= 4.0 * lxfi.p50_ns, "{lxfi:?}");
        assert!(lxfi.p50_ns > stock.p50_ns, "guards cost latency");
        assert!(lxfi.p50_ns < 6.0 * stock.p50_ns, "but not unboundedly");
    }
}
