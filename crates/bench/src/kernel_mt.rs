//! kernel_mt: the multi-threaded **kernel** workload — real interpreted
//! module code on N simulated CPUs.
//!
//! `netperf_mt` proved the guard layer scales by driving bare
//! `GuardHandle`s; this workload proves the whole *kernel* does. Each
//! worker OS thread owns a [`KernelCpu`] over one shared `KernelCore`
//! and pushes packets down the full LXFI TX path: `net_send_packet` →
//! slab skb allocation → the rewritten `dev_queue_xmit` kernel thunk
//! (interpreted, `GuardIndCall` on the module-written ops slot) → the
//! **interpreted, rewritten `e1000_xmit`** running as the per-device
//! principal (guarded ring-descriptor/stats stores, skb capability
//! transfer in and out) → `kfree_skb` (capability sweep + writer-map
//! zeroing). Every CPU drives its **own** e1000 device, so workers run
//! as distinct instance principals whose grants live in their own
//! writer-index shards — the §3.1 multi-principal design exercised
//! end-to-end in parallel.
//!
//! The *contended* variant adds a churn CPU doing what a busy SMP
//! kernel does underneath a driver: revoking and re-granting spare
//! WRITE capabilities against the workers' device principals
//! round-robin (each revoke bumps the victim's epoch, wholesale-
//! invalidating its private guard cache), and periodically **loading
//! and unloading** a fresh LXFI module — write-locking the module
//! registry, registering principals, granting and sweeping a whole
//! window — while the workers keep interpreting.
//!
//! Latency is the median of per-batch means (robust on shared hosts);
//! aggregate throughput is total packets over the slowest worker's
//! wall clock. Perf-gate rows bound contended-vs-uncontended per-packet
//! latency and CPU-count-aware scaling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use lxfi_core::RawCap;
use lxfi_kernel::{Backend, IsolationMode, Kernel, ModuleSpec};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Word};
use lxfi_modules as mods;
use lxfi_rewriter::InterfaceSpec;

/// Packets per timed batch.
pub const BATCH_PKTS: u64 = 32;
/// Payload bytes per packet.
pub const PKT_BYTES: u64 = 64;
/// Base of the spare-capability region the churn CPU revokes against
/// (user space: never executed or dispatched through).
pub const SPARE_BASE: Word = 0x6000_0000;
/// Maximum module load/unload cycles one contended run performs (each
/// consumes a module window; bounded so long runs cannot exhaust the
/// module area).
pub const MAX_CHURN_LOADS: u64 = 24;
/// Churn iterations between module load/unload cycles.
const LOAD_EVERY: u64 = 64;

/// A minimal isolated module the churn CPU loads and unloads: one
/// global it owns, one function writing it (so the load grants and the
/// unload sweeps real WRITE coverage).
fn churn_spec(seq: u64) -> ModuleSpec {
    let mut pb = ProgramBuilder::new("churn");
    let state = pb.global("churn_state", 64);
    pb.define("churn_touch", 1, 0, |f| {
        f.global_addr(R1, state);
        f.store8(R0, R1, 0);
        f.ret(0i64);
    });
    ModuleSpec {
        name: format!("churn-{seq}"),
        program: pb.finish(),
        // Unannotated: churn_touch runs as the shared principal with
        // the window grants the loader installs.
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

/// One measured configuration of the kernel workload.
#[derive(Debug, Clone)]
pub struct KernelMtMeasurement {
    /// Worker (CPU) count.
    pub threads: usize,
    /// Whether the churn CPU ran.
    pub contended: bool,
    /// Median-of-batch-means per-packet wall latency, averaged over
    /// workers (host ns).
    pub pkt_ns: f64,
    /// Aggregate TX throughput: total packets / slowest worker's wall
    /// clock, in K packets/s.
    pub aggregate_kpps: f64,
    /// Write-guard cache hit rate merged over all workers.
    pub hit_rate: f64,
    /// Slab magazine hit rate merged over all workers (allocations
    /// served without touching the backing shard's free lists).
    pub magazine_hit_rate: f64,
    /// Single-holder grant transfers that took the one-splice fast path,
    /// summed over workers.
    pub transfer_fast: u64,
    /// Grant transfers that fell back to the full revoke sweep.
    pub transfer_slow: u64,
    /// `note_zeroed` calls answered by the lock-free clean-stripe
    /// pre-check, summed over workers.
    pub note_zeroed_fast_skips: u64,
    /// Grant/revoke pairs the churn CPU completed (0 uncontended).
    pub churn_ops: u64,
    /// Module load/unload cycles the churn CPU completed.
    pub churn_loads: u64,
}

/// Runs `threads` worker CPUs for `packets_per_cpu` packets each,
/// optionally against a churn CPU revoking spares and load/unloading
/// modules. Module code runs through the interpreter; see
/// [`run_kernel_mt_backend`].
pub fn run_kernel_mt(threads: usize, packets_per_cpu: u64, contended: bool) -> KernelMtMeasurement {
    run_kernel_mt_backend(threads, packets_per_cpu, contended, Backend::Interp)
}

/// [`run_kernel_mt`] with an explicit execution backend: every worker
/// CPU dispatches the rewritten e1000 (and the kernel thunks, and the
/// churn CPU's load/unload modules) through the chosen backend.
pub fn run_kernel_mt_backend(
    threads: usize,
    packets_per_cpu: u64,
    contended: bool,
    backend: Backend,
) -> KernelMtMeasurement {
    let mut k = Kernel::boot_with_backend(IsolationMode::Lxfi, backend);
    for _ in 0..threads {
        k.pci_add_device(0x8086, 0x100e, 11);
    }
    let e1000 = k.load_module(mods::e1000::spec()).unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let devs: Vec<Word> = k.net().devices.clone();
    assert_eq!(devs.len(), threads, "one NIC per worker CPU");
    let mid = k.runtime_module(e1000).expect("isolated module");

    let start_barrier = Arc::new(Barrier::new(threads + 1 + usize::from(contended)));
    let stop = Arc::new(AtomicBool::new(false));
    let churn_ops = Arc::new(AtomicU64::new(0));
    let churn_loads = Arc::new(AtomicU64::new(0));

    let churner = if contended {
        let mut cpu = k.new_cpu();
        let devs = devs.clone();
        let start_barrier = Arc::clone(&start_barrier);
        let stop = Arc::clone(&stop);
        let churn_ops = Arc::clone(&churn_ops);
        let churn_loads = Arc::clone(&churn_loads);
        Some(thread::spawn(move || {
            // The per-device principals exist (probe named them); the
            // spare grants are what this CPU revokes and re-grants.
            let victims: Vec<_> = devs
                .iter()
                .map(|&d| cpu.rt.principal_for_name(mid, d))
                .collect();
            for (i, &p) in victims.iter().enumerate() {
                cpu.rt
                    .grant(p, RawCap::write(SPARE_BASE + i as u64 * 0x1000, 0x100));
            }
            start_barrier.wait();
            let mut i = 0u64;
            let mut loads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = (i % victims.len() as u64) as usize;
                let cap = RawCap::write(SPARE_BASE + v as u64 * 0x1000, 0x100);
                cpu.rt.revoke(victims[v], cap);
                cpu.rt.grant(victims[v], cap);
                churn_ops.fetch_add(1, Ordering::Relaxed);
                if i.is_multiple_of(LOAD_EVERY) && loads < MAX_CHURN_LOADS {
                    let id = cpu
                        .load_module_with_mode(churn_spec(loads), IsolationMode::Lxfi)
                        .expect("churn module loads");
                    // Run its function once (real interpreted code under
                    // the freshly granted window), then tear it down.
                    let addr = cpu.module_fn_addr(id, "churn_touch").unwrap();
                    cpu.enter(|k| k.invoke_module_function(addr, &[i], None))
                        .expect("churn module runs");
                    cpu.unload_module(id).expect("churn module unloads");
                    loads += 1;
                    churn_loads.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
                // Pace the churn so it does not degenerate into a tight
                // loop starving the workers.
                thread::yield_now();
            }
        }))
    } else {
        None
    };

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mut cpu = k.new_cpu();
            let dev = devs[t];
            let start_barrier = Arc::clone(&start_barrier);
            thread::spawn(move || {
                // Warm the slab, the writer structures, and the private
                // guard cache before the clock starts.
                for _ in 0..8 {
                    cpu.enter(|k| k.net_send_packet(dev, PKT_BYTES)).unwrap();
                }
                start_barrier.wait();
                let t0 = Instant::now();
                let mut batch_means = Vec::new();
                let mut sent = 0u64;
                while sent < packets_per_cpu {
                    let n = BATCH_PKTS.min(packets_per_cpu - sent);
                    let b0 = Instant::now();
                    for _ in 0..n {
                        cpu.enter(|k| k.net_send_packet(dev, PKT_BYTES)).unwrap();
                        sent += 1;
                    }
                    batch_means.push(b0.elapsed().as_nanos() as f64 / n as f64);
                }
                let elapsed = t0.elapsed().as_secs_f64();
                batch_means.sort_by(|a, b| a.total_cmp(b));
                let median = batch_means[batch_means.len() / 2];
                let hits = cpu.rt.stats.write_cache_hits;
                let misses = cpu.rt.stats.write_cache_misses;
                let lockfree = DataPlaneCounters {
                    mag_hits: cpu.mags.hits,
                    mag_misses: cpu.mags.misses,
                    transfer_fast: cpu.rt.stats.transfer_fast,
                    transfer_slow: cpu.rt.stats.transfer_slow,
                    note_zeroed_fast_skips: cpu.rt.stats.note_zeroed_fast_skips,
                };
                (median, elapsed, hits, misses, lockfree)
            })
        })
        .collect();

    start_barrier.wait();
    let results: Vec<(f64, f64, u64, u64, DataPlaneCounters)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    if let Some(c) = churner {
        c.join().unwrap();
    }
    assert!(
        k.panic_reason().is_none(),
        "workload must not violate policy: {:?}",
        k.panic_reason()
    );

    let slowest = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let hits: u64 = results.iter().map(|r| r.2).sum();
    let misses: u64 = results.iter().map(|r| r.3).sum();
    let mag_hits: u64 = results.iter().map(|r| r.4.mag_hits).sum();
    let mag_misses: u64 = results.iter().map(|r| r.4.mag_misses).sum();
    KernelMtMeasurement {
        threads,
        contended,
        pkt_ns: results.iter().map(|r| r.0).sum::<f64>() / threads as f64,
        aggregate_kpps: (threads as u64 * packets_per_cpu) as f64 / slowest / 1e3,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        magazine_hit_rate: mag_hits as f64 / (mag_hits + mag_misses).max(1) as f64,
        transfer_fast: results.iter().map(|r| r.4.transfer_fast).sum(),
        transfer_slow: results.iter().map(|r| r.4.transfer_slow).sum(),
        note_zeroed_fast_skips: results.iter().map(|r| r.4.note_zeroed_fast_skips).sum(),
        churn_ops: churn_ops.load(Ordering::Relaxed),
        churn_loads: churn_loads.load(Ordering::Relaxed),
    }
}

/// Per-worker lock-avoidance counters folded into the measurement.
#[derive(Debug, Clone, Copy)]
struct DataPlaneCounters {
    mag_hits: u64,
    mag_misses: u64,
    transfer_fast: u64,
    transfer_slow: u64,
    note_zeroed_fast_skips: u64,
}

/// The thread counts the human table reports.
pub const KMT_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One uncontended and one contended row per thread count.
pub fn kmt_rows(packets_per_cpu: u64) -> Vec<KernelMtMeasurement> {
    kmt_rows_backend(packets_per_cpu, Backend::Interp)
}

/// [`kmt_rows`] with an explicit execution backend.
pub fn kmt_rows_backend(packets_per_cpu: u64, backend: Backend) -> Vec<KernelMtMeasurement> {
    let mut rows = Vec::new();
    for &t in &KMT_THREAD_COUNTS {
        rows.push(run_kernel_mt_backend(t, packets_per_cpu, false, backend));
        rows.push(run_kernel_mt_backend(t, packets_per_cpu, true, backend));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_kernel::KernelCpu;

    #[test]
    fn kernel_cpu_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<KernelCpu>();
    }

    #[test]
    fn concurrent_tx_executes_real_module_code() {
        let m = run_kernel_mt(2, 300, false);
        // Completing without a panic IS the isolation assertion (every
        // guarded store was checked); the counters prove real work.
        assert!(m.aggregate_kpps > 0.0 && m.pkt_ns > 0.0);
        // Unlike the bare-guard netperf_mt, the real TX path frees its
        // skb every packet: the kfree capability sweep bumps the device
        // principal's epoch (precise revocation doing its job), so the
        // private cache resets once per packet and the steady-state hit
        // rate sits near the within-packet re-reference rate (~1/3),
        // not ~1.
        assert!(
            m.hit_rate > 0.2,
            "within-packet stores should still hit: {m:?}"
        );
        assert_eq!(m.churn_ops, 0);
        // The lock-free data plane did its job: allocations came out of
        // the per-CPU magazines, skb grant transfers took the
        // single-holder splice, and at least the first zero-note per
        // worker was answered without a lock.
        assert!(
            m.magazine_hit_rate > 0.9,
            "steady-state allocs must hit the magazines: {m:?}"
        );
        assert!(m.transfer_fast > 0, "skb transfers must go fast: {m:?}");
        assert!(m.note_zeroed_fast_skips > 0, "clean-stripe skip: {m:?}");
    }

    #[test]
    fn contended_tx_survives_revokes_and_module_churn() {
        let m = run_kernel_mt(2, 300, true);
        assert!(m.churn_ops > 0, "churn CPU ran: {m:?}");
        assert!(m.churn_loads > 0, "module load/unload cycles ran: {m:?}");
        assert!(
            m.hit_rate > 0.15,
            "churn must not collapse the guard caches: {m:?}"
        );
    }

    #[test]
    fn workers_transmit_on_their_own_devices() {
        let mut k = Kernel::boot(IsolationMode::Lxfi);
        k.pci_add_device(0x8086, 0x100e, 11);
        k.pci_add_device(0x8086, 0x100e, 12);
        k.load_module(mods::e1000::spec()).unwrap();
        k.enter(|k| k.pci_probe_all()).unwrap();
        let devs: Vec<Word> = k.net().devices.clone();
        let mut cpus: Vec<KernelCpu> = devs.iter().map(|_| k.new_cpu()).collect();
        let handles: Vec<_> = cpus
            .drain(..)
            .zip(devs.iter().copied())
            .map(|(mut cpu, dev)| {
                thread::spawn(move || {
                    for _ in 0..50 {
                        cpu.enter(|k| k.net_send_packet(dev, 64)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Both devices saw all their packets (warm counters in shared
        // memory written by interpreted module code on two OS threads).
        for &dev in &devs {
            assert_eq!(k.net_tx_packets(dev), 50);
        }
        assert!(k.panic_reason().is_none());
    }
}
