//! CI perf-regression gate for the guard-path latencies.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`
//!
//! Both files are flat JSON objects of `"key": value` pairs as emitted
//! by `table_guard_costs --json`. Every check is evaluated and printed
//! as one row of a pass/fail table (no first-failure bailout); the exit
//! status reflects the whole set.
//!
//! Two kinds of checks run:
//!
//! - **Ratio checks** are hostname-tolerant: for each optimized
//!   structure the *speedup ratio* `optimized_ns / baseline_structure_ns`
//!   measured now is compared against the same ratio recorded in
//!   `baseline.json`, failing when it regresses more than
//!   [`REGRESSION_FACTOR`]× — a slower machine scales numerator and
//!   denominator together, but a code regression moves the ratio.
//! - **Absolute floors** hold regardless of the recorded baseline: the
//!   interval WRITE table beats the linear scan; the reverse writer
//!   index beats the 512-principal walk by ≥5x; the post-unrelated-
//!   revoke cached store stays under the uncached probe *and* within
//!   1.5x of the steady-state cached store (+2 ns noise allowance at
//!   single-digit-ns scale); the revoke-heavy cache hit rate stays
//!   ≥95%; the 4-shard splice beats the unsharded splice at 512
//!   principals; and the multi-threaded netperf contention rows hold —
//!   contended per-store ≤2x uncontended at 2 workers (+5 ns slack),
//!   churn leaves the cache hit rate ≥50%, and the 4-thread aggregate
//!   reaches ≥2.5x single-thread. The scaling row is **CPU-count
//!   aware**: parallel speedup cannot exist on fewer than 4 CPUs, so on
//!   such hosts (`mt_cpus` in the measured JSON) the row degrades to a
//!   collapse guard (4 threads must keep ≥½ the single-thread
//!   aggregate). The kernel-path rows (`kmt_*`, real interpreted module
//!   code on `KernelCpu`s) mirror the guard-path ones with proportional
//!   slack: contended per-packet ≤1.3x uncontended at 2 CPUs (the
//!   lock-free data plane leaves churn little to collide with), churn
//!   really landed, and 4-CPU aggregate ≥1.3x single-CPU (collapse
//!   guard below 4 host CPUs). The data-plane rows hold the hot path
//!   lock-free in fact, not just by construction: per-CPU slab magazine
//!   hit rate ≥90%, the single-holder grant transfer's splice fast path
//!   taken ≥1 time, and the `note_zeroed` maybe-marked pre-check
//!   skipping the stripe lock ≥1 time. The execution-backend rows hold the compiled
//!   backend's edge: compiled netperf per-packet wall time stays ≤0.95x
//!   the interpreter's, the compiled e1000 kernel reports ≥1 fused
//!   guard site, and no function falls back to interpretation. The
//!   guard-soundness rows gate exactly (deterministic counters): the
//!   verifier proves every shipped module plus the kernel thunks
//!   (rejects = 0), catches every canary mutant, and the
//!   verifier-gated loop-guard hoisting pass hoists ≥1 static site and
//!   strictly lowers dynamic mem-write guards per TX packet. The
//!   request-server rows hold the async I/O plane's tail (cycle-derived,
//!   exact): p99 ≤ 4x p50, zero RX ring drops, one TX reply per
//!   request, and ≥1 dispatch through the deferred-call mux. The
//!   rx-chaos rows gate the RX plane's recovery story: faults seeded
//!   inside the poll/deferred path must yield ≥10 supervised
//!   recoveries with traffic resuming after each re-probe, all
//!   resource gauges flat, and zero kernel panics.
//!
//! Exit status: 0 = pass, 1 = regression, 2 = bad input.

use std::collections::HashMap;
use std::process::ExitCode;

/// A measured ratio may regress up to this factor over the recorded
/// baseline ratio before the gate fails.
const REGRESSION_FACTOR: f64 = 2.0;

/// Absolute tolerance (ns) added to the post-revoke-vs-steady floor:
/// both quantities are single-digit cache hits, where per-call timing
/// noise is a meaningful fraction of the value.
const POST_REVOKE_SLACK_NS: f64 = 2.0;

/// Absolute tolerance (ns) added to the contended-vs-uncontended
/// multi-threaded store floor (batch-timed tens-of-ns quantities on a
/// machine that is, by construction, busy).
const MT_CONTENTION_SLACK_NS: f64 = 5.0;

/// Absolute tolerance (ns) added to the contended-vs-uncontended
/// kernel-path per-packet floor. A packet is a microsecond-scale
/// operation (interpretation + slab + capability transfers), and the
/// churn CPU write-locks the module registry during its load/unload
/// cycles, so the noise floor is proportionally larger.
const KMT_CONTENTION_SLACK_NS: f64 = 2_000.0;

/// `(label, optimized key, reference key)` — the ratio-gated structures.
const GATED: [(&str, &str, &str); 20] = [
    ("write-table hit", "interval_hit_ns", "linear_hit_ns"),
    ("write-table miss", "interval_miss_ns", "linear_miss_ns"),
    (
        "write-guard cache (repeated/rotating)",
        "guard_repeated_ns",
        "guard_rotating_ns",
    ),
    ("writer index @8", "writer_index_8_ns", "writer_linear_8_ns"),
    (
        "writer index @64",
        "writer_index_64_ns",
        "writer_linear_64_ns",
    ),
    (
        "writer index @512",
        "writer_index_512_ns",
        "writer_linear_512_ns",
    ),
    (
        "writer index scaling (512/8)",
        "writer_index_512_ns",
        "writer_index_8_ns",
    ),
    (
        "revoke-heavy @8 (post/uncached)",
        "revoke_heavy_8_post_revoke_ns",
        "revoke_heavy_8_uncached_ns",
    ),
    (
        "revoke-heavy @64 (post/uncached)",
        "revoke_heavy_64_post_revoke_ns",
        "revoke_heavy_64_uncached_ns",
    ),
    (
        "revoke-heavy @512 (post/uncached)",
        "revoke_heavy_512_post_revoke_ns",
        "revoke_heavy_512_uncached_ns",
    ),
    (
        "splice 4-shard/unsharded @512",
        "splice_512p_4shard_ns",
        "splice_512p_1shard_ns",
    ),
    (
        "splice 16-shard/unsharded @512",
        "splice_512p_16shard_ns",
        "splice_512p_1shard_ns",
    ),
    (
        // Deterministic simulated cycles: identical on every host, so a
        // drift here is a real guard-path change on the playback path.
        "sound playback lxfi/stock cycles",
        "sound_lxfi_period_cycles",
        "sound_stock_period_cycles",
    ),
    (
        // Same determinism argument for the device-mapper request round
        // (crypt write + crypt read + snapshot COW write).
        "dm request lxfi/stock cycles",
        "dm_lxfi_round_cycles",
        "dm_stock_round_cycles",
    ),
    (
        // Capture period: the deferred-dispatch receive path.
        "sound capture lxfi/stock cycles",
        "sound_capture_lxfi_cycles",
        "sound_capture_stock_cycles",
    ),
    // Execution-backend rows: the compiled backend's wall-clock
    // advantage over the interpreter on the same workload. Ratios, so
    // host speed cancels; a regression means block compilation stopped
    // paying for itself.
    (
        "netperf compiled/interp pkt ns",
        "netperf_pkt_compiled_ns",
        "netperf_pkt_interp_ns",
    ),
    (
        "sound compiled/interp period ns",
        "sound_period_compiled_ns",
        "sound_period_interp_ns",
    ),
    (
        "kernel 1cpu compiled/interp pkt ns",
        "kmt_pkt_1t_compiled_ns",
        "kmt_pkt_1t_ns",
    ),
    // Request-server latencies are cycle-derived (deterministic on
    // every host): a ratio drift is a real change on the RX/deferred/
    // reply path, not noise.
    (
        "server p50 lxfi/stock ns",
        "server_p50_ns",
        "server_stock_p50_ns",
    ),
    (
        "server p99 lxfi/stock ns",
        "server_p99_ns",
        "server_stock_p99_ns",
    ),
];

/// One evaluated gate row.
struct Check {
    label: String,
    /// Baseline quantity (`None` for absolute floors).
    baseline: Option<f64>,
    current: f64,
    /// Upper bound `current` must stay at or below.
    limit: f64,
    pass: bool,
}

/// Parses a flat JSON object of string→number pairs. Deliberately
/// minimal (the workspace vendors no serde): accepts exactly the shape
/// `table_guard_costs --json` emits, rejects anything nested.
fn parse_flat_json(text: &str) -> Result<HashMap<String, f64>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a top-level JSON object")?;
    let mut map = HashMap::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected \"key\": value", ln + 1))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: key must be quoted", ln + 1))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad number ({e})", ln + 1))?;
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

fn load(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn get(m: &HashMap<String, f64>, key: &str, src: &str) -> Result<f64, String> {
    m.get(key)
        .copied()
        .ok_or_else(|| format!("{src}: missing {key}"))
}

fn ratio(m: &HashMap<String, f64>, num: &str, den: &str, src: &str) -> Result<f64, String> {
    let n = get(m, num, src)?;
    let d = get(m, den, src)?;
    if d <= 0.0 {
        return Err(format!("{src}: {den} must be positive"));
    }
    Ok(n / d)
}

fn run(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let mut checks: Vec<Check> = Vec::new();

    // Ratio checks: current ratio vs recorded ratio, REGRESSION_FACTOR.
    for (label, num, den) in GATED {
        let base = ratio(&baseline, num, den, baseline_path)?;
        let cur = ratio(&current, num, den, current_path)?;
        checks.push(Check {
            label: label.to_string(),
            baseline: Some(base),
            current: cur,
            limit: base * REGRESSION_FACTOR,
            pass: cur <= base * REGRESSION_FACTOR,
        });
    }

    // Absolute floors, independent of the recorded baseline.
    let mut floor = |label: String, current: f64, limit: f64| {
        checks.push(Check {
            label,
            baseline: None,
            current,
            limit,
            pass: current <= limit,
        });
    };

    let interval = ratio(&current, "interval_hit_ns", "linear_hit_ns", current_path)?;
    floor("floor: interval/linear hit < 1".into(), interval, 1.0);
    let wi512 = ratio(
        &current,
        "writer_index_512_ns",
        "writer_linear_512_ns",
        current_path,
    )?;
    floor(
        "floor: writer index ≥5x @512 (ratio ≤0.2)".into(),
        wi512,
        0.2,
    );

    for n in [8u32, 64, 512] {
        let steady = get(
            &current,
            &format!("revoke_heavy_{n}_steady_ns"),
            current_path,
        )?;
        let post = get(
            &current,
            &format!("revoke_heavy_{n}_post_revoke_ns"),
            current_path,
        )?;
        let uncached = get(
            &current,
            &format!("revoke_heavy_{n}_uncached_ns"),
            current_path,
        )?;
        let hit_rate = get(
            &current,
            &format!("revoke_heavy_{n}_hit_rate"),
            current_path,
        )?;
        // The tentpole acceptance bar: an unrelated revoke between two
        // guarded stores must not degrade the second store to uncached
        // cost…
        floor(
            format!("floor: post-revoke < uncached @{n}"),
            post,
            uncached,
        );
        // …and must stay within 1.5x of the steady-state cached hit.
        floor(
            format!("floor: post-revoke ≤ 1.5x steady @{n}"),
            post,
            1.5 * steady + POST_REVOKE_SLACK_NS,
        );
        // Deterministic half of the same claim: the epoch cache keeps
        // hitting (expressed as miss rate ≤ 5% so the row reads as an
        // upper bound like every other).
        floor(
            format!("floor: churn miss rate ≤5% @{n}"),
            1.0 - hit_rate,
            0.05,
        );
    }
    let splice4 = ratio(
        &current,
        "splice_512p_4shard_ns",
        "splice_512p_1shard_ns",
        current_path,
    )?;
    floor(
        "floor: 4-shard splice < unsharded @512".into(),
        splice4,
        1.0,
    );

    // Multi-threaded netperf contention rows (tentpole acceptance bar).
    let contended = get(&current, "mt_store_2t_contended_ns", current_path)?;
    let uncontended = get(&current, "mt_store_2t_uncontended_ns", current_path)?;
    floor(
        "floor: mt contended ≤2x uncontended @2t".into(),
        contended,
        2.0 * uncontended + MT_CONTENTION_SLACK_NS,
    );
    let mt_hit = get(&current, "mt_contended_2t_hit_rate", current_path)?;
    floor(
        "floor: mt contended miss rate ≤50% @2t".into(),
        1.0 - mt_hit,
        0.5,
    );
    // Scaling: 4-thread aggregate ≥2.5x single-thread — expressed as the
    // inverse ratio so the row reads as an upper bound. Parallel speedup
    // is physically impossible below 4 CPUs, so there the row only
    // guards against collapse (4 threads ≥ half the 1-thread aggregate).
    let cpus = get(&current, "mt_cpus", current_path)?;
    let inv_scaling = ratio(
        &current,
        "mt_aggregate_1t_mops",
        "mt_aggregate_4t_mops",
        current_path,
    )?;
    if cpus >= 4.0 {
        floor(
            "floor: mt 4t aggregate ≥2.5x 1t (ratio ≤0.4)".into(),
            inv_scaling,
            0.4,
        );
    } else {
        floor(
            format!("floor: mt 4t no collapse ({cpus:.0} cpus: ratio ≤2)"),
            inv_scaling,
            2.0,
        );
    }

    // Kernel-path multi-CPU rows: real interpreted module code on
    // KernelCpus (the SMP kernel redesign's acceptance bar).
    let kcontended = get(&current, "kmt_pkt_2t_contended_ns", current_path)?;
    let kuncontended = get(&current, "kmt_pkt_2t_uncontended_ns", current_path)?;
    floor(
        "floor: kernel contended ≤1.3x uncontended @2cpu".into(),
        kcontended,
        1.3 * kuncontended + KMT_CONTENTION_SLACK_NS,
    );
    // Churn must actually have landed for the row above to mean
    // anything (expressed as an upper bound on the negated count).
    let kchurn = get(&current, "kmt_contended_2t_churn_ops", current_path)?;
    floor(
        "floor: kernel churn ops ≥1 (neg ≤ -1)".into(),
        -kchurn,
        -1.0,
    );
    // Data-plane rows: the per-CPU slab magazines must absorb ≥90% of
    // kmalloc calls (steady-state LIFO reuse), the single-holder grant
    // transfer must actually take its splice fast path on the TX
    // workload, and the note_zeroed maybe-marked pre-check must skip
    // the stripe lock at least once (all-clean ranges touch no lock).
    let mag_hit = get(&current, "kmt_magazine_hit_rate", current_path)?;
    floor("floor: magazine miss rate ≤10%".into(), 1.0 - mag_hit, 0.10);
    let xfer_fast = get(&current, "kmt_transfer_fast", current_path)?;
    floor(
        "floor: transfer fast path ≥1 (neg ≤ -1)".into(),
        -xfer_fast,
        -1.0,
    );
    let nz_skips = get(&current, "kmt_note_zeroed_fast_skips", current_path)?;
    floor(
        "floor: note_zeroed fast skips ≥1 (neg ≤ -1)".into(),
        -nz_skips,
        -1.0,
    );
    // CPU-count-aware kernel scaling. Per-packet work shares the slab,
    // the writer map, and per-packet capability transfers (locked), so
    // the bar is lower than the lock-free guard workload's: with ≥4
    // CPUs the 4-CPU aggregate must reach ≥1.3x single-CPU; below
    // that, adding CPUs must at least not collapse throughput.
    let kinv = ratio(
        &current,
        "kmt_aggregate_1t_kpps",
        "kmt_aggregate_4t_kpps",
        current_path,
    )?;
    if cpus >= 4.0 {
        floor(
            "floor: kernel 4cpu aggregate ≥1.3x 1cpu (ratio ≤0.77)".into(),
            kinv,
            0.77,
        );
    } else {
        floor(
            format!("floor: kernel 4cpu no collapse ({cpus:.0} cpus: ratio ≤2)"),
            kinv,
            2.0,
        );
    }

    // Execution-backend floors. The compiled backend must actually beat
    // the interpreter on the packet path — by at least 5% after noise
    // (measured headroom is ~25-30%; see README "Execution backends"
    // for why the gap is bounded: the interpreter is already
    // monomorphized per environment, and guard costs are
    // backend-invariant). The counters are deterministic, so they gate
    // exactly: guard fusion must have fired, and no module function may
    // silently fall back to the interpreter.
    let backend_ratio = ratio(
        &current,
        "netperf_pkt_compiled_ns",
        "netperf_pkt_interp_ns",
        current_path,
    )?;
    floor(
        "floor: netperf compiled ≥1.05x faster (ratio ≤0.95)".into(),
        backend_ratio,
        0.95,
    );
    let fused = get(&current, "compiled_fused_guard_sites", current_path)?;
    floor(
        "floor: fused guard sites ≥1 (neg ≤ -1)".into(),
        -fused,
        -1.0,
    );
    let fallback = get(&current, "compiled_fallback_funcs", current_path)?;
    floor("floor: compiled fallback funcs = 0".into(), fallback, 0.0);

    // Guard-soundness rows (deterministic counters, exact gates): the
    // verifier must prove every shipped module and the kernel thunks,
    // catch every canary mutant, and the verifier-gated hoisting pass
    // must both fire (≥1 static site) and pay off (strictly fewer
    // dynamic mem-write guards per packet than the unhoisted rewrite).
    let rejects = get(&current, "soundness_rejects", current_path)?;
    floor("floor: soundness rejects = 0".into(), rejects, 0.0);
    let missed = get(&current, "soundness_canaries_missed", current_path)?;
    floor("floor: soundness canaries missed = 0".into(), missed, 0.0);
    let hoisted = get(&current, "rewrite_guards_hoisted", current_path)?;
    floor(
        "floor: hoisted guard sites ≥1 (neg ≤ -1)".into(),
        -hoisted,
        -1.0,
    );
    let memw_hoist_ratio = ratio(
        &current,
        "netperf_memw_per_pkt_hoisted",
        "netperf_memw_per_pkt_unhoisted",
        current_path,
    )?;
    floor(
        "floor: hoisting cuts mem-write guards/pkt".into(),
        memw_hoist_ratio,
        0.999,
    );

    // Fault-containment rows (deterministic: seeded faults, tick time,
    // simulated cycles). After ≥100 supervised crash/recover cycles of
    // one module under concurrent healthy traffic: every resource gauge
    // back at steady state, the healthy path within 0.7x throughput
    // (cycles ≤ 1/0.7 ≈ 1.43x), recovery bounded, the crash loop
    // detected, and the kernel-wide panic flag never set.
    let recov = get(&current, "chaos_recoveries", current_path)?;
    floor(
        "floor: chaos recoveries ≥100 (neg ≤ -100)".into(),
        -recov,
        -100.0,
    );
    let looped = get(&current, "chaos_crash_loop_detected", current_path)?;
    floor(
        "floor: chaos crash loop detected ≥1 (neg ≤ -1)".into(),
        -looped,
        -1.0,
    );
    let recov_ticks = get(&current, "chaos_recovery_ticks_max", current_path)?;
    floor("floor: chaos recovery ≤16 ticks".into(), recov_ticks, 16.0);
    let overhead = get(&current, "chaos_overhead_ratio", current_path)?;
    floor(
        "floor: chaos healthy path ≤1.43x baseline".into(),
        overhead,
        1.43,
    );
    for key in [
        "chaos_leak_principals",
        "chaos_leak_slab",
        "chaos_leak_writer_sets",
        "chaos_leak_intervals",
    ] {
        let leak = get(&current, key, current_path)?;
        // abs(): a gauge drifting negative is as broken as a leak.
        floor(
            format!("floor: {} = 0", key.replace('_', " ")),
            leak.abs(),
            0.0,
        );
    }
    let panics = get(&current, "chaos_panics", current_path)?;
    floor("floor: chaos kernel panics = 0".into(), panics, 0.0);

    // Request-server rows (async I/O plane; cycle-derived, so exact):
    // the tail stays bounded (p99 ≤ 4x p50 — head-of-line queueing
    // across mixed bursts, not collapse), no RX frame is ever dropped
    // to ring overrun, every request gets its TX reply, and the NAPI
    // polls really went through the deferred-call mux.
    let srv_tail = ratio(&current, "server_p99_ns", "server_p50_ns", current_path)?;
    floor("floor: server p99 ≤ 4x p50".into(), srv_tail, 4.0);
    let srv_drop = get(&current, "server_dropped", current_path)?;
    floor("floor: server dropped packets = 0".into(), srv_drop, 0.0);
    let srv_rx = get(&current, "server_rx_pkts", current_path)?;
    let srv_tx = get(&current, "server_tx_replies", current_path)?;
    floor(
        "floor: server replies = requests".into(),
        (srv_rx - srv_tx).abs(),
        0.0,
    );
    let srv_disp = get(&current, "deferred_dispatched", current_path)?;
    floor(
        "floor: deferred dispatches ≥1 (neg ≤ -1)".into(),
        -srv_disp,
        -1.0,
    );

    // RX-plane chaos rows (deterministic: seeded faults fired inside the
    // NAPI poll / deferred-dispatch path). The supervised driver must
    // keep recovering, traffic must resume after every re-probe
    // (delivered ≥ recoveries: at least one post-recovery burst lands
    // per cycle), every resource gauge must return to steady state —
    // including the alloc_etherdev grant, which teardown alone cannot
    // see — and the kernel must never panic.
    let rx_recov = get(&current, "rx_chaos_recoveries", current_path)?;
    floor(
        "floor: rx chaos recoveries ≥10 (neg ≤ -10)".into(),
        -rx_recov,
        -10.0,
    );
    let rx_delivered = get(&current, "rx_chaos_delivered", current_path)?;
    floor(
        "floor: rx chaos delivered ≥ recoveries".into(),
        rx_recov - rx_delivered,
        0.0,
    );
    let rx_injected = get(&current, "rx_chaos_injected", current_path)?;
    floor(
        "floor: rx chaos delivered ≤ injected".into(),
        rx_delivered - rx_injected,
        0.0,
    );
    for key in [
        "rx_chaos_leak_principals",
        "rx_chaos_leak_slab",
        "rx_chaos_leak_writer_sets",
        "rx_chaos_leak_intervals",
    ] {
        let leak = get(&current, key, current_path)?;
        floor(
            format!("floor: {} = 0", key.replace('_', " ")),
            leak.abs(),
            0.0,
        );
    }
    let rx_panics = get(&current, "rx_chaos_panics", current_path)?;
    floor("floor: rx chaos kernel panics = 0".into(), rx_panics, 0.0);

    // Report: one row per check, no first-failure bailout.
    println!(
        "perf gate: {current_path} vs {baseline_path} \
         (ratio rows fail beyond {REGRESSION_FACTOR}x of baseline)\n"
    );
    println!(
        "{:<42} {:>10} {:>10} {:>10}  verdict",
        "check", "baseline", "current", "limit"
    );
    let mut ok = true;
    for c in &checks {
        ok &= c.pass;
        let base = c
            .baseline
            .map(|b| format!("{b:>10.4}"))
            .unwrap_or_else(|| format!("{:>10}", "-"));
        println!(
            "{:<42} {} {:>10.4} {:>10.4}  {}",
            c.label,
            base,
            c.current,
            c.limit,
            if c.pass { "ok" } else { "FAIL" }
        );
    }
    let failed = checks.iter().filter(|c| !c.pass).count();
    println!("\n{} checks, {} failed", checks.len(), failed);
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline, current] = &args[..] else {
        eprintln!("usage: perf_gate <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    match run(baseline, current) {
        Ok(true) => {
            println!("perf gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("perf gate: FAIL");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_shape() {
        let m = parse_flat_json("{\n  \"a_ns\": 1.5,\n  \"b_ns\": 2\n}").unwrap();
        assert_eq!(m["a_ns"], 1.5);
        assert_eq!(m["b_ns"], 2.0);
    }

    #[test]
    fn rejects_non_objects() {
        assert!(parse_flat_json("[1, 2]").is_err());
        assert!(parse_flat_json("{\"k\": \"str\"}").is_err());
    }
}
