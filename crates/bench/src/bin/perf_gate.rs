//! CI perf-regression gate for the guard-path latencies.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`
//!
//! Both files are flat JSON objects of `"key": ns` pairs as emitted by
//! `table_guard_costs --json`. The gate is **ratio-based** so it is
//! hostname-tolerant: for each optimized structure it compares the
//! *speedup ratio* `optimized_ns / baseline_structure_ns` measured now
//! against the same ratio recorded in `baseline.json`, and fails when
//! the current ratio regresses more than [`REGRESSION_FACTOR`]× — a
//! slower machine scales both numerators and denominators, but a code
//! regression moves the ratio.
//!
//! Two absolute-structure floors are also enforced: the interval WRITE
//! table must beat the linear scan, and the reverse writer index must
//! beat the 512-principal walk by ≥5x (the PR acceptance bar).
//!
//! Exit status: 0 = pass, 1 = regression, 2 = bad input.

use std::collections::HashMap;
use std::process::ExitCode;

/// A measured ratio may regress up to this factor over the recorded
/// baseline ratio before the gate fails.
const REGRESSION_FACTOR: f64 = 2.0;

/// `(label, optimized key, reference key)` — the gated structures.
const GATED: [(&str, &str, &str); 7] = [
    ("write-table hit", "interval_hit_ns", "linear_hit_ns"),
    ("write-table miss", "interval_miss_ns", "linear_miss_ns"),
    (
        "write-guard cache (repeated/rotating)",
        "guard_repeated_ns",
        "guard_rotating_ns",
    ),
    ("writer index @8", "writer_index_8_ns", "writer_linear_8_ns"),
    (
        "writer index @64",
        "writer_index_64_ns",
        "writer_linear_64_ns",
    ),
    (
        "writer index @512",
        "writer_index_512_ns",
        "writer_linear_512_ns",
    ),
    (
        "writer index scaling (512/8)",
        "writer_index_512_ns",
        "writer_index_8_ns",
    ),
];

/// Parses a flat JSON object of string→number pairs. Deliberately
/// minimal (the workspace vendors no serde): accepts exactly the shape
/// `table_guard_costs --json` emits, rejects anything nested.
fn parse_flat_json(text: &str) -> Result<HashMap<String, f64>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a top-level JSON object")?;
    let mut map = HashMap::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected \"key\": value", ln + 1))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: key must be quoted", ln + 1))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad number ({e})", ln + 1))?;
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

fn load(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn ratio(m: &HashMap<String, f64>, num: &str, den: &str, src: &str) -> Result<f64, String> {
    let n = m.get(num).ok_or_else(|| format!("{src}: missing {num}"))?;
    let d = m.get(den).ok_or_else(|| format!("{src}: missing {den}"))?;
    if *d <= 0.0 {
        return Err(format!("{src}: {den} must be positive"));
    }
    Ok(n / d)
}

fn run(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let mut ok = true;

    println!("perf gate: current ratios vs {baseline_path} (fail > {REGRESSION_FACTOR}x)\n");
    println!(
        "{:<38} {:>10} {:>10} {:>8}  verdict",
        "structure", "baseline", "current", "margin"
    );
    for (label, num, den) in GATED {
        let base = ratio(&baseline, num, den, baseline_path)?;
        let cur = ratio(&current, num, den, current_path)?;
        let margin = cur / base;
        let pass = margin <= REGRESSION_FACTOR;
        ok &= pass;
        println!(
            "{:<38} {:>10.4} {:>10.4} {:>7.2}x  {}",
            label,
            base,
            cur,
            margin,
            if pass { "ok" } else { "REGRESSED" }
        );
    }

    // Absolute floors, independent of the recorded baseline.
    let interval = ratio(&current, "interval_hit_ns", "linear_hit_ns", current_path)?;
    if interval >= 1.0 {
        ok = false;
        println!("\ninterval WRITE table no longer beats the linear scan ({interval:.2}x)");
    }
    let wi512 = ratio(
        &current,
        "writer_index_512_ns",
        "writer_linear_512_ns",
        current_path,
    )?;
    if wi512 > 0.2 {
        ok = false;
        println!(
            "\nreverse writer index under 5x vs the 512-principal walk \
             ({:.1}x)",
            1.0 / wi512.max(1e-9)
        );
    } else {
        println!(
            "\nreverse writer index beats the 512-principal walk by {:.1}x (floor: 5x)",
            1.0 / wi512.max(1e-9)
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline, current] = &args[..] else {
        eprintln!("usage: perf_gate <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    match run(baseline, current) {
        Ok(true) => {
            println!("\nperf gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("\nperf gate: FAIL");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_shape() {
        let m = parse_flat_json("{\n  \"a_ns\": 1.5,\n  \"b_ns\": 2\n}").unwrap();
        assert_eq!(m["a_ns"], 1.5);
        assert_eq!(m["b_ns"], 2.0);
    }

    #[test]
    fn rejects_non_objects() {
        assert!(parse_flat_json("[1, 2]").is_err());
        assert!(parse_flat_json("{\"k\": \"str\"}").is_err());
    }
}
