//! `verify_guards` — the guard-soundness audit CLI run by CI.
//!
//! Rewrites every shipped module exactly the way `load_module` does,
//! proves the guard-soundness invariant on the *output* (module policy:
//! every reachable store guard-dominated; §8.3 frame elision in
//! bounds), proves the kernel thunks ind-call-sound, and rejects the
//! canary mutants. Exits non-zero on any failure, so a rewriter
//! regression fails the build even if no test happens to execute the
//! broken path.

use lxfi_bench::soundness_audit::{audit_kernel_thunks, audit_modules, canary_outcome};
use lxfi_rewriter::RewriteOptions;

fn main() {
    let mut failed = false;

    println!("Guard-soundness audit (module policy: stores guard-dominated)");
    println!();
    println!(
        "{:<14} {:>5} {:>7} {:>7} {:>6} {:>8}  verdict",
        "module", "funcs", "blocks", "stores", "frame", "hoisted"
    );
    let rows = audit_modules(RewriteOptions::default());
    for r in &rows {
        println!(
            "{:<14} {:>5} {:>7} {:>7} {:>6} {:>8}  {}",
            r.name,
            r.funcs,
            r.blocks,
            r.stores_proven,
            r.frame_stores_proven,
            r.guards_hoisted,
            if r.ok() { "proven" } else { "REJECTED" }
        );
        for e in &r.errors {
            println!("    {e}");
            failed = true;
        }
    }

    let thunks = audit_kernel_thunks();
    println!();
    println!(
        "kernel-thunks (ind-call policy): {} funcs, {} ind-calls proven — {}",
        thunks.funcs,
        thunks.indcalls_proven,
        if thunks.ok() { "proven" } else { "REJECTED" }
    );
    for e in &thunks.errors {
        println!("    {e}");
        failed = true;
    }

    let (mutants, rejected) = canary_outcome();
    println!();
    println!("canary mutants rejected: {rejected}/{mutants}");
    if rejected != mutants {
        println!("    VERIFIER ACCEPTED A BROKEN PROGRAM");
        failed = true;
    }

    let hoisted: usize = rows.iter().map(|r| r.guards_hoisted).sum();
    println!("total loop-invariant guards hoisted: {hoisted}");

    if failed {
        std::process::exit(1);
    }
}
