//! Regenerates Figure 11: code-size growth and slowdown of the SFI
//! microbenchmarks (hotlist, lld, MD5) under LXFI instrumentation.

use lxfi_bench::{render_table, sfi};

fn main() {
    println!("Figure 11: SFI microbenchmarks (deterministic-cycle model)\n");
    let rows: Vec<Vec<String>> = sfi::figure11()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}x", r.code_growth),
                format!("{:.1}%", r.slowdown_pct),
                r.stock_cycles.to_string(),
                r.lxfi_cycles.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Benchmark",
                "Δ code size",
                "Slowdown",
                "Stock cycles",
                "LXFI cycles"
            ],
            &rows
        )
    );
    println!(
        "\nPaper: hotlist 1.14x / 0%, lld 1.12x / 11%, MD5 1.15x / 2%.\n\
         `cargo bench -p lxfi-bench --bench sfi_micro` measures host wall-clock."
    );
}
