//! The multi-threaded kernel workload table: per-packet latency,
//! aggregate TX throughput, and guard-cache hit rate at 1/2/4 worker
//! CPUs, uncontended and against a churn CPU doing grant/revoke traffic
//! plus module load/unload cycles — all while each worker interprets
//! the rewritten e1000 module on its own `KernelCpu`.
//!
//! `--threads N` runs a single N-CPU smoke pair (CI's bench-smoke step
//! uses `--threads 2`); the full sweep runs otherwise. `--backend
//! {interp,compiled}` selects the execution backend (CI smokes both).
//! The perf-gated rows come from `table_guard_costs --json`, which
//! measures the same workload.

use lxfi_bench::kernel_mt::{kmt_rows_backend, run_kernel_mt_backend, KernelMtMeasurement};
use lxfi_bench::render_table;
use lxfi_kernel::Backend;

fn row(m: &KernelMtMeasurement) -> Vec<String> {
    vec![
        format!("{}", m.threads),
        if m.contended { "churn" } else { "idle" }.to_string(),
        format!("{:.0}", m.pkt_ns),
        format!("{:.1}", m.aggregate_kpps),
        format!("{:.1}%", m.hit_rate * 100.0),
        format!("{:.1}%", m.magazine_hit_rate * 100.0),
        format!("{}/{}", m.transfer_fast, m.transfer_slow),
        format!("{}", m.churn_ops),
        format!("{}", m.churn_loads),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads N"));
    let backend = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<Backend>().expect("--backend {interp,compiled}"))
        .unwrap_or_default();

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("kernel_mt: e1000 TX on N KernelCpus over one KernelCore");
    println!("host CPUs: {cpus}, backend: {backend}\n");

    let rows: Vec<KernelMtMeasurement> = match threads {
        Some(t) => vec![
            run_kernel_mt_backend(t, 3_000, false, backend),
            run_kernel_mt_backend(t, 3_000, true, backend),
        ],
        None => kmt_rows_backend(3_000, backend),
    };
    let table: Vec<Vec<String>> = rows.iter().map(row).collect();
    println!(
        "{}",
        render_table(
            &[
                "CPUs",
                "Churn",
                "Pkt ns (median batch)",
                "Aggregate Kpkt/s",
                "Hit rate",
                "Mag hit",
                "Xfer f/s",
                "Churn ops",
                "Loads"
            ],
            &table
        )
    );
    println!(
        "\nEach worker CPU interprets the rewritten e1000 xmit path against\n\
         its own device (distinct instance principals, own writer-index\n\
         shards); the churn CPU revokes/re-grants spares and load/unloads\n\
         a module under the workers. The per-packet kfree sweep bumps the\n\
         owning principal's epoch, so the hit rate reflects within-packet\n\
         re-references (~1/3), not the bare-guard netperf_mt steady state.\n\
         Mag hit = per-CPU slab magazine hit rate; Xfer f/s = grant\n\
         transfers via the single-holder splice fast path vs the revoke\n\
         sweep. The perf gate bounds contended/uncontended per-packet\n\
         latency, CPU-count-aware scaling, magazine hit rate, and the\n\
         transfer fast path."
    );
}
