//! Regenerates Figure 7: lines of code per LXFI component, plus the full
//! workspace inventory.

use lxfi_bench::{loc, render_table};

fn main() {
    println!("Figure 7: Components of LXFI (this reproduction)\n");
    let rows: Vec<Vec<String>> = loc::figure7()
        .into_iter()
        .map(|r| vec![r.component, r.lines.to_string(), r.source])
        .collect();
    println!(
        "{}",
        render_table(&["Component", "Lines of code", "Source"], &rows)
    );
    println!("Paper: kernel plugin 150, module plugin 1,452, runtime checker 4,704.\n");

    println!("Workspace inventory:\n");
    let rows: Vec<Vec<String>> = loc::inventory()
        .into_iter()
        .map(|r| vec![r.component, r.lines.to_string()])
        .collect();
    println!("{}", render_table(&["Crate", "Lines of code"], &rows));
}
