//! Ablation tables for LXFI's main performance optimizations:
//! writer-set tracking (§5), write-guard merging (module pass), and the
//! epoch-cache associativity sweep (per-thread write-guard cache).

use lxfi_bench::{ablations, render_table};

fn main() {
    println!("Ablation 1: writer-set tracking (kernel ind-call fast path)\n");
    let a = ablations::writer_set_ablation(300);
    println!(
        "{}",
        render_table(
            &["Configuration", "Ind-call guard cycles / packet"],
            &[
                vec![
                    "writer-set tracking ON".into(),
                    format!("{:.1}", a.with_fastpath)
                ],
                vec![
                    "writer-set tracking OFF".into(),
                    format!("{:.1}", a.without_fastpath)
                ],
            ]
        )
    );
    println!(
        "saved: {:.0}% of indirect-call guard work\n\
         (paper: tracking eliminates ~2/3 of checks on this workload)\n",
        a.saved_fraction * 100.0
    );

    println!("Ablation 2: write-guard merging in the module pass\n");
    let m = ablations::merge_ablation();
    println!(
        "{}",
        render_table(
            &["Configuration", "Static guards", "lld workload cycles"],
            &[
                vec![
                    "merging ON".into(),
                    m.guards_merged_on.to_string(),
                    m.cycles_on.to_string()
                ],
                vec![
                    "merging OFF".into(),
                    m.guards_merged_off.to_string(),
                    m.cycles_off.to_string()
                ],
            ]
        )
    );
    println!(
        "\nMerging is the kind of compile-time optimization the paper notes\n\
         binary rewriters like XFI cannot perform (§8.3).\n"
    );

    println!("Ablation 3: epoch-cache associativity x replacement policy\n");
    let rows = ablations::epoch_ways_ablation(200_000);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.policy),
                r.ways.to_string(),
                r.objects.to_string(),
                format!("{:.1}%", r.hit_rate * 100.0),
                format!("{:.1}", r.store_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Policy", "Ways", "Objects", "Hit rate", "Store ns"],
            &table
        )
    );
    println!(
        "\nRound-robin replacement against a cyclic store stream is the\n\
         worst case: hit rate is ~100% while the rotated objects fit the\n\
         ways and collapses one object past them. The victim-entry rows\n\
         show why it is the default: conflict misses churn only the\n\
         victim way, so a rotation one-or-two objects past the ways\n\
         still hits on the W-1 residents (e.g. 4 ways / 6 objects:\n\
         ~0% round-robin vs ~50% victim). The netperf TX path touches\n\
         four objects per packet (descriptor, payload, queue state,\n\
         stats), which is what sizes the default at 4; the 8-way rows\n\
         price the headroom a wider cache would buy."
    );
}
