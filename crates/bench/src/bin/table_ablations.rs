//! Ablation tables for LXFI's two main performance optimizations:
//! writer-set tracking (§5) and write-guard merging (module pass).

use lxfi_bench::{ablations, render_table};

fn main() {
    println!("Ablation 1: writer-set tracking (kernel ind-call fast path)\n");
    let a = ablations::writer_set_ablation(300);
    println!(
        "{}",
        render_table(
            &["Configuration", "Ind-call guard cycles / packet"],
            &[
                vec![
                    "writer-set tracking ON".into(),
                    format!("{:.1}", a.with_fastpath)
                ],
                vec![
                    "writer-set tracking OFF".into(),
                    format!("{:.1}", a.without_fastpath)
                ],
            ]
        )
    );
    println!(
        "saved: {:.0}% of indirect-call guard work\n\
         (paper: tracking eliminates ~2/3 of checks on this workload)\n",
        a.saved_fraction * 100.0
    );

    println!("Ablation 2: write-guard merging in the module pass\n");
    let m = ablations::merge_ablation();
    println!(
        "{}",
        render_table(
            &["Configuration", "Static guards", "lld workload cycles"],
            &[
                vec![
                    "merging ON".into(),
                    m.guards_merged_on.to_string(),
                    m.cycles_on.to_string()
                ],
                vec![
                    "merging OFF".into(),
                    m.guards_merged_off.to_string(),
                    m.cycles_off.to_string()
                ],
            ]
        )
    );
    println!(
        "\nMerging is the kind of compile-time optimization the paper notes\n\
         binary rewriters like XFI cannot perform (§8.3)."
    );
}
