//! Regenerates Figure 9: annotated functions and function pointers per
//! module, all vs unique, plus capability-iterator counts (§8.2).

use lxfi_bench::{census, render_table};

fn main() {
    println!("Figure 9: annotation census over the ten modules\n");
    let specs = lxfi_modules::all_specs();
    let (rows, (total_funcs, total_fptrs)) = census::annotation_census(&specs);
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.to_string(),
                r.module.clone(),
                r.funcs_all.to_string(),
                r.funcs_unique.to_string(),
                r.fptrs_all.to_string(),
                r.fptrs_unique.to_string(),
                r.iterators.to_string(),
            ]
        })
        .collect();
    table.push(vec![
        "".into(),
        "Total (distinct)".into(),
        total_funcs.to_string(),
        "".into(),
        total_fptrs.to_string(),
        "".into(),
        "".into(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "Category",
                "Module",
                "# Functions (all)",
                "(unique)",
                "# Fn ptrs (all)",
                "(unique)",
                "# iterators",
            ],
            &table
        )
    );
    println!(
        "\nPaper: 6-81 functions and 2-52 fn ptrs per module; totals 334/155;\n\
         36 capability iterators across the ten modules (3-11 per module)."
    );
}
