//! Regenerates Figure 13 (guards per packet, per-guard cost on the
//! UDP_STREAM TX workload) plus the guard-structure latency comparisons:
//! WRITE-table interval index vs linear scan, the epoch-validated write
//! guard cache under revoke-heavy churn, grant/revoke splice latency at
//! 1/4/16 writer-index shards, the reverse writer index vs the global
//! principal walk, the multi-threaded netperf TX workload (contended
//! and not), the sound playback period (deterministic cycles), and the
//! chaos workload (supervised crash/recover churn: recovery counts,
//! healthy-path isolation overhead, and post-churn leak gauges).
//!
//! `--json` emits the measurements as a flat JSON object (stable keys;
//! `*_ns` latencies, `*_rate` fractions, `*_cycles` deterministic
//! simulated cycles, `*_mops` M stores/s, and raw guard counters) for
//! the CI perf gate (`perf_gate`) and the workflow artifact; the human
//! tables are suppressed in that mode.

use lxfi_bench::{
    chaos, dm, guards, kernel_mt, netperf, netperf_mt, render_table, server, sound,
    soundness_audit, writer_index,
};
use lxfi_kernel::{Backend, IsolationMode};

/// Measured values, as `(key, value)` pairs with stable names.
fn measurements(iters: u64) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let tables = guards::write_table_comparison(512, iters);
    out.push(("linear_hit_ns".into(), tables[0].hit_ns));
    out.push(("linear_miss_ns".into(), tables[0].miss_ns));
    out.push(("interval_hit_ns".into(), tables[1].hit_ns));
    out.push(("interval_miss_ns".into(), tables[1].miss_ns));
    let cache = guards::guard_cache_comparison(512, iters);
    out.push(("guard_repeated_ns".into(), cache.repeated_ns));
    out.push(("guard_rotating_ns".into(), cache.rotating_ns));
    for row in writer_index::writer_lookup_rows(iters) {
        out.push((
            format!("writer_linear_{}_ns", row.principals),
            row.linear_ns,
        ));
        out.push((format!("writer_index_{}_ns", row.principals), row.index_ns));
    }
    // Revoke-heavy churn: per-call store latencies, the cache hit rate
    // the epoch design guarantees, and the raw counters behind it.
    for row in guards::revoke_heavy_rows(iters / 4) {
        let n = row.principals;
        out.push((format!("revoke_heavy_{n}_steady_ns"), row.steady_ns));
        out.push((
            format!("revoke_heavy_{n}_post_revoke_ns"),
            row.post_revoke_ns,
        ));
        out.push((format!("revoke_heavy_{n}_uncached_ns"), row.uncached_ns));
        out.push((format!("revoke_heavy_{n}_hit_rate"), row.hit_rate));
        out.push((
            format!("revoke_heavy_{n}_cache_hits"),
            row.cache_hits as f64,
        ));
        out.push((
            format!("revoke_heavy_{n}_cache_misses"),
            row.cache_misses as f64,
        ));
        out.push((
            format!("revoke_heavy_{n}_epoch_bumps"),
            row.epoch_bumps as f64,
        ));
    }
    // Grant/revoke splice latency vs shard count, 512 principals.
    for row in writer_index::splice_rows(iters / 10) {
        out.push((format!("splice_512p_{}shard_ns", row.shards), row.churn_ns));
    }
    // Multi-threaded netperf TX: scaling (1t vs 4t uncontended) and the
    // contention pair at 2 threads (CI's smoke thread count). The gate
    // conditions the scaling row on the host CPU count.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push(("mt_cpus".into(), cpus as f64));
    let pkts = (iters / 2).max(10_000);
    let m1 = netperf_mt::run_netperf_mt(1, pkts, false);
    out.push(("mt_store_1t_ns".into(), m1.store_ns));
    out.push(("mt_aggregate_1t_mops".into(), m1.aggregate_mops));
    let m4 = netperf_mt::run_netperf_mt(4, pkts, false);
    out.push(("mt_store_4t_ns".into(), m4.store_ns));
    out.push(("mt_aggregate_4t_mops".into(), m4.aggregate_mops));
    let m2u = netperf_mt::run_netperf_mt(2, pkts, false);
    let m2c = netperf_mt::run_netperf_mt(2, pkts, true);
    out.push(("mt_store_2t_uncontended_ns".into(), m2u.store_ns));
    out.push(("mt_store_2t_contended_ns".into(), m2c.store_ns));
    out.push(("mt_aggregate_2t_mops".into(), m2u.aggregate_mops));
    out.push(("mt_contended_2t_hit_rate".into(), m2c.hit_rate));
    out.push(("mt_contended_2t_churn_ops".into(), m2c.churn_ops as f64));
    // Multi-threaded *kernel* workload: real interpreted e1000 TX on N
    // KernelCpus over one shared KernelCore, against grant/revoke +
    // module-load churn. Scaling pair (1t vs 4t uncontended) plus the
    // contention pair at 2 CPUs (CI's smoke thread count).
    let pkts = (iters / 40).max(2_000);
    let km1 = kernel_mt::run_kernel_mt(1, pkts, false);
    out.push(("kmt_pkt_1t_ns".into(), km1.pkt_ns));
    out.push(("kmt_aggregate_1t_kpps".into(), km1.aggregate_kpps));
    let km4 = kernel_mt::run_kernel_mt(4, pkts, false);
    out.push(("kmt_pkt_4t_ns".into(), km4.pkt_ns));
    out.push(("kmt_aggregate_4t_kpps".into(), km4.aggregate_kpps));
    let km2u = kernel_mt::run_kernel_mt(2, pkts, false);
    let km2c = kernel_mt::run_kernel_mt(2, pkts, true);
    out.push(("kmt_pkt_2t_uncontended_ns".into(), km2u.pkt_ns));
    out.push(("kmt_pkt_2t_contended_ns".into(), km2c.pkt_ns));
    out.push(("kmt_aggregate_2t_kpps".into(), km2u.aggregate_kpps));
    out.push(("kmt_contended_2t_hit_rate".into(), km2c.hit_rate));
    out.push(("kmt_contended_2t_churn_ops".into(), km2c.churn_ops as f64));
    out.push(("kmt_contended_2t_loads".into(), km2c.churn_loads as f64));
    // Data-plane counters from the uncontended 2-CPU run: per-CPU slab
    // magazine hit rate, single-holder grant-transfer fast/slow split,
    // and the note_zeroed clean-stripe fast skips. All deterministic
    // enough to gate on as floors (LIFO reuse keeps the hit rate high;
    // every TX packet's skb transfer has one holder).
    out.push(("kmt_magazine_hit_rate".into(), km2u.magazine_hit_rate));
    out.push(("kmt_transfer_fast".into(), km2u.transfer_fast as f64));
    out.push(("kmt_transfer_slow".into(), km2u.transfer_slow as f64));
    out.push((
        "kmt_note_zeroed_fast_skips".into(),
        km2u.note_zeroed_fast_skips as f64,
    ));
    // Sound playback period: deterministic simulated cycles, so the
    // stock/LXFI ratio is machine-independent.
    let pb = sound::playback_comparison(200);
    out.push(("sound_stock_period_cycles".into(), pb.stock));
    out.push(("sound_lxfi_period_cycles".into(), pb.lxfi));
    // Sound *capture* period: the receive-side path through the
    // deferred-call mux (same machinery as NAPI polls); deterministic
    // cycles like playback.
    let cp = sound::capture_comparison(200);
    out.push(("sound_capture_stock_cycles".into(), cp.stock));
    out.push(("sound_capture_lxfi_cycles".into(), cp.lxfi));
    // Device-mapper request round: also deterministic simulated cycles.
    let dmr = dm::dm_comparison(100);
    out.push(("dm_stock_round_cycles".into(), dmr.stock));
    out.push(("dm_lxfi_round_cycles".into(), dmr.lxfi));
    // End-to-end request server (async I/O plane): wire → RX ring →
    // NAPI poll via the deferred-call mux → socket recvmsg → TX reply.
    // Latencies are cycle-derived (deterministic on every host), so
    // the gate holds both the LXFI/stock ratio and the tail bound.
    let srv = server::run_server(IsolationMode::Lxfi, Backend::Interp, 256);
    let srv_stock = server::run_server(IsolationMode::Stock, Backend::Interp, 256);
    out.push(("server_p50_ns".into(), srv.p50_ns));
    out.push(("server_p99_ns".into(), srv.p99_ns));
    out.push(("server_stock_p50_ns".into(), srv_stock.p50_ns));
    out.push(("server_stock_p99_ns".into(), srv_stock.p99_ns));
    out.push(("server_rx_pkts".into(), srv.rx_pkts as f64));
    out.push(("server_tx_replies".into(), srv.tx_replies as f64));
    out.push((
        "server_dropped".into(),
        (srv.dropped + srv_stock.dropped) as f64,
    ));
    out.push(("deferred_dispatched".into(), srv.deferred_dispatched as f64));
    // Execution-backend comparison: wall-clock time per operation under
    // the interpreter vs the compiled backend on the same workloads
    // (simulated cycles are backend-invariant by design — host time is
    // what compilation buys). The gate checks the compiled/interp ratio,
    // which is hostname-tolerant like every other ratio row.
    let pkts = (iters / 40).max(2_000);
    for (key, backend) in [
        ("netperf_pkt_interp_ns", Backend::Interp),
        ("netperf_pkt_compiled_ns", Backend::Compiled),
    ] {
        let ns = netperf::measure_packet_wall_ns(IsolationMode::Lxfi, backend, 1448, pkts);
        out.push((key.into(), ns));
    }
    let kmc = kernel_mt::run_kernel_mt_backend(1, pkts, false, Backend::Compiled);
    out.push(("kmt_pkt_1t_compiled_ns".into(), kmc.pkt_ns));
    for (key, backend) in [
        ("sound_period_interp_ns", Backend::Interp),
        ("sound_period_compiled_ns", Backend::Compiled),
    ] {
        let ns = sound::measure_playback_wall_ns(IsolationMode::Lxfi, backend, pkts.min(4_000));
        out.push((key.into(), ns));
    }
    // Compiled-program counters (deterministic): every module function
    // must compile — a fallback would silently re-route hot paths back
    // through the interpreter.
    let (k, _dev) = netperf::boot_e1000_backend(IsolationMode::Lxfi, Backend::Compiled);
    let cs = k.core().compile_stats();
    out.push(("compiled_funcs".into(), cs.funcs_compiled as f64));
    out.push(("compiled_blocks".into(), cs.blocks_compiled as f64));
    out.push((
        "compiled_fused_guard_sites".into(),
        cs.fused_guard_sites as f64,
    ));
    out.push(("compiled_fallback_funcs".into(), cs.fallback_funcs as f64));
    // Guard-soundness verifier counters (deterministic): every shipped
    // module (plus the kernel thunks and the canary mutants) re-audited;
    // the gate holds rejects at zero, canary detection at 100%, and the
    // hoisting pass's site count and dynamic-guard saving above floor.
    let rows = soundness_audit::audit_modules(Default::default());
    out.push((
        "soundness_modules_proven".into(),
        rows.iter().filter(|r| r.ok()).count() as f64,
    ));
    out.push((
        "soundness_rejects".into(),
        rows.iter().filter(|r| !r.ok()).count() as f64
            + if soundness_audit::audit_kernel_thunks().ok() {
                0.0
            } else {
                1.0
            },
    ));
    let (canaries, caught) = soundness_audit::canary_outcome();
    out.push(("soundness_canaries_caught".into(), caught as f64));
    out.push((
        "soundness_canaries_missed".into(),
        (canaries - caught) as f64,
    ));
    let hc = guards::hoist_comparison(200, 256);
    out.push(("rewrite_guards_hoisted".into(), hc.sites_hoisted as f64));
    out.push(("netperf_memw_per_pkt_hoisted".into(), hc.hoisted_per_pkt));
    out.push((
        "netperf_memw_per_pkt_unhoisted".into(),
        hc.unhoisted_per_pkt,
    ));
    let ch = chaos::run_chaos(120);
    out.push(("chaos_recoveries".into(), ch.recoveries as f64));
    out.push(("chaos_faults".into(), ch.faults as f64));
    out.push((
        "chaos_crash_loop_detected".into(),
        ch.crash_loop_detected as u64 as f64,
    ));
    out.push((
        "chaos_recovery_ticks_max".into(),
        ch.recovery_ticks_max as f64,
    ));
    out.push((
        "chaos_healthy_pkt_cycles_baseline".into(),
        ch.healthy_pkt_cycles_baseline,
    ));
    out.push((
        "chaos_healthy_pkt_cycles_chaos".into(),
        ch.healthy_pkt_cycles_chaos,
    ));
    out.push(("chaos_overhead_ratio".into(), ch.overhead_ratio()));
    out.push(("chaos_leak_principals".into(), ch.leak_principals as f64));
    out.push(("chaos_leak_slab".into(), ch.leak_slab as f64));
    out.push(("chaos_leak_writer_sets".into(), ch.leak_writer_sets as f64));
    out.push(("chaos_leak_intervals".into(), ch.leak_intervals as f64));
    out.push(("chaos_panics".into(), ch.panics as f64));
    let rx = chaos::run_rx_chaos(10);
    out.push(("rx_chaos_recoveries".into(), rx.recoveries as f64));
    out.push(("rx_chaos_faults".into(), rx.faults as f64));
    out.push(("rx_chaos_injected".into(), rx.injected as f64));
    out.push(("rx_chaos_delivered".into(), rx.delivered as f64));
    out.push(("rx_chaos_leak_principals".into(), rx.leak_principals as f64));
    out.push(("rx_chaos_leak_slab".into(), rx.leak_slab as f64));
    out.push((
        "rx_chaos_leak_writer_sets".into(),
        rx.leak_writer_sets as f64,
    ));
    out.push(("rx_chaos_leak_intervals".into(), rx.leak_intervals as f64));
    out.push(("rx_chaos_panics".into(), rx.panics as f64));
    out
}

fn emit_json(measured: &[(String, f64)]) {
    println!("{{");
    for (i, (k, v)) in measured.iter().enumerate() {
        let comma = if i + 1 == measured.len() { "" } else { "," };
        println!("  \"{k}\": {v:.3}{comma}");
    }
    println!("}}");
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        emit_json(&measurements(200_000));
        return;
    }

    println!("Figure 13: LXFI guards on the UDP_STREAM TX path\n");
    let rows: Vec<Vec<String>> = guards::figure13(500)
        .into_iter()
        .map(|r| {
            vec![
                r.guard,
                format!("{:.1}", r.per_pkt),
                format!("{:.0}", r.per_guard),
                format!("{:.0}", r.per_pkt_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Guard type",
                "Guards per pkt",
                "Cycles per guard",
                "Cycles per pkt"
            ],
            &rows
        )
    );
    println!(
        "\nPaper (ns): annotation 13.5×124=1,674; entry 7.1×16=114; exit\n\
         7.1×14=99; mem-write 28.8×51=1,469; ind-call all 9.2×64=589;\n\
         ind-call e1000 3.1×86=267. Annotation actions and write checks\n\
         dominate, and writer-set tracking removes ~2/3 of ind-call work."
    );

    println!("\nWRITE-table lookup latency (host ns, 512 grants):\n");
    let rows: Vec<Vec<String>> = guards::write_table_comparison(512, 200_000)
        .into_iter()
        .map(|r| {
            vec![
                r.structure.to_string(),
                format!("{:.1}", r.hit_ns),
                format!("{:.1}", r.miss_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Structure", "Hit ns", "Miss ns"], &rows)
    );

    let cache = guards::guard_cache_comparison(512, 200_000);
    println!(
        "\nFull write guard (Runtime::check_write, 512 grants): repeated\n\
         stores into one object {:.1} ns (cache hit rate {:.1}%), stores\n\
         rotating across grants {:.1} ns.",
        cache.repeated_ns,
        cache.hit_rate * 100.0,
        cache.rotating_ns
    );

    println!("\nRevoke-heavy write guard (per-store host ns; an unrelated\ninstance's grant revoked+re-granted between stores):\n");
    let rows: Vec<Vec<String>> = guards::revoke_heavy_rows(50_000)
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.principals),
                format!("{:.1}", r.steady_ns),
                format!("{:.1}", r.post_revoke_ns),
                format!("{:.1}", r.uncached_ns),
                format!("{:.1}%", r.hit_rate * 100.0),
                format!("{}", r.epoch_bumps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Principals",
                "Steady ns",
                "Post-revoke ns",
                "Uncached ns",
                "Hit rate",
                "Epoch bumps"
            ],
            &rows
        )
    );
    println!(
        "\nThe epoch cache keeps the post-revoke store at cached cost (the\n\
         churned instances' epochs bump, the writer's does not); before,\n\
         every revoke cleared the global one-entry cache and the next\n\
         store paid the uncached interval probe."
    );

    println!(
        "\nGrant/revoke splice latency vs writer-index shards (512\nprincipals, 2048 intervals):\n"
    );
    let rows: Vec<Vec<String>> = writer_index::splice_rows(20_000)
        .into_iter()
        .map(|r| vec![format!("{}", r.shards), format!("{:.1}", r.churn_ns)])
        .collect();
    println!("{}", render_table(&["Shards", "Churn ns"], &rows));

    println!("\nInd-call slow path: writers_of(slot) latency (host ns):\n");
    let rows: Vec<Vec<String>> = writer_index::writer_lookup_rows(200_000)
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.principals),
                format!("{:.1}", r.linear_ns),
                format!("{:.1}", r.index_ns),
                format!("{:.1}x", r.linear_ns / r.index_ns.max(0.001)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Principals",
                "Linear walk ns",
                "Reverse index ns",
                "Speedup"
            ],
            &rows
        )
    );
    println!(
        "\nEvery slot has two writers; the walk pays O(principals) per\n\
         lookup (plus a Vec allocation), the reverse index pays one\n\
         window search over interned writer sets."
    );

    println!("\nMulti-threaded netperf TX (2 workers, churn on/off):\n");
    let m2u = netperf_mt::run_netperf_mt(2, 50_000, false);
    let m2c = netperf_mt::run_netperf_mt(2, 50_000, true);
    let rows: Vec<Vec<String>> = [&m2u, &m2c]
        .iter()
        .map(|m| {
            vec![
                if m.contended { "churn" } else { "idle" }.to_string(),
                format!("{:.1}", m.store_ns),
                format!("{:.2}", m.aggregate_mops),
                format!("{:.1}%", m.hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Churn", "Store ns", "Aggregate Mstores/s", "Hit rate"],
            &rows
        )
    );
    println!("(full 1/2/4/8-thread sweep: `cargo run --bin netperf_mt`)");

    println!("\nMulti-threaded kernel workload (2 KernelCpus, churn on/off):\n");
    let km2u = kernel_mt::run_kernel_mt(2, 2_000, false);
    let km2c = kernel_mt::run_kernel_mt(2, 2_000, true);
    let rows: Vec<Vec<String>> = [&km2u, &km2c]
        .iter()
        .map(|m| {
            vec![
                if m.contended { "churn" } else { "idle" }.to_string(),
                format!("{:.0}", m.pkt_ns),
                format!("{:.1}", m.aggregate_kpps),
                format!("{:.1}%", m.hit_rate * 100.0),
                format!("{}", m.churn_loads),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Churn", "Pkt ns", "Aggregate Kpkt/s", "Hit rate", "Loads"],
            &rows
        )
    );
    println!("(full 1/2/4-CPU sweep: `cargo run --bin kernel_mt`)");
    println!(
        "\nData plane (idle run): magazine hit rate {:.1}%, grant\n\
         transfers fast/slow {}/{}, note_zeroed clean-stripe skips {}.",
        km2u.magazine_hit_rate * 100.0,
        km2u.transfer_fast,
        km2u.transfer_slow,
        km2u.note_zeroed_fast_skips
    );

    let pb = sound::playback_comparison(200);
    println!(
        "\nSound playback period (deterministic cycles): stock {:.0},\n\
         LXFI {:.0} ({:.1}x) — a tiny operation, so fixed crossing costs\n\
         dominate.",
        pb.stock, pb.lxfi, pb.overhead
    );
    let dmr = dm::dm_comparison(100);
    println!(
        "\nDevice-mapper request round (deterministic cycles): stock {:.0},\n\
         LXFI {:.0} ({:.1}x) — crypt write + crypt read + snapshot COW\n\
         write over a {}-byte payload.",
        dmr.stock,
        dmr.lxfi,
        dmr.overhead,
        dm::DM_REQ_BYTES
    );

    let srv = server::run_server(IsolationMode::Lxfi, Backend::Interp, 256);
    let srv_stock = server::run_server(IsolationMode::Stock, Backend::Interp, 256);
    println!(
        "\nRequest server (async I/O plane, cycle-derived ns): LXFI p50\n\
         {:.0} / p99 {:.0}, stock p50 {:.0} / p99 {:.0}; {} requests\n\
         received, {} replies, {} dropped, {} deferred dispatches.\n\
         (`cargo run -p lxfi-bench --bin server` for the histogram.)",
        srv.p50_ns,
        srv.p99_ns,
        srv_stock.p50_ns,
        srv_stock.p99_ns,
        srv.rx_pkts,
        srv.tx_replies,
        srv.dropped + srv_stock.dropped,
        srv.deferred_dispatched
    );

    println!("\nExecution backends (LXFI mode, wall-clock per operation):\n");
    let np_i = netperf::measure_packet_wall_ns(IsolationMode::Lxfi, Backend::Interp, 1448, 4_000);
    let np_c = netperf::measure_packet_wall_ns(IsolationMode::Lxfi, Backend::Compiled, 1448, 4_000);
    let sp_i = sound::measure_playback_wall_ns(IsolationMode::Lxfi, Backend::Interp, 2_000);
    let sp_c = sound::measure_playback_wall_ns(IsolationMode::Lxfi, Backend::Compiled, 2_000);
    let rows = vec![
        vec![
            "netperf TX 1448B (pkt ns)".to_string(),
            format!("{np_i:.0}"),
            format!("{np_c:.0}"),
            format!("{:.2}x", np_i / np_c),
        ],
        vec![
            "sound playback (period ns)".to_string(),
            format!("{sp_i:.0}"),
            format!("{sp_c:.0}"),
            format!("{:.2}x", sp_i / sp_c),
        ],
    ];
    println!(
        "{}",
        render_table(&["Workload", "Interp ns", "Compiled ns", "Speedup"], &rows)
    );
    let (k, _dev) = netperf::boot_e1000_backend(IsolationMode::Lxfi, Backend::Compiled);
    let cs = k.core().compile_stats();
    println!(
        "\nCompiled e1000 kernel: {} funcs / {} blocks, {} fused guard\n\
         sites, {} interpreter fallbacks.",
        cs.funcs_compiled, cs.blocks_compiled, cs.fused_guard_sites, cs.fallback_funcs
    );

    let hc = guards::hoist_comparison(200, 256);
    println!(
        "\nLoop-invariant guard hoisting ({} static sites hoisted,\n\
         verifier-gated): {:.1} mem-write guards per 256B TX packet\n\
         hoisted vs {:.1} unhoisted. Full soundness audit:\n\
         `cargo run -p lxfi-bench --bin verify_guards`. Re-emit as JSON\n\
         with `--json` (the CI perf gate consumes it; see\n\
         bench/baseline.json).",
        hc.sites_hoisted, hc.hoisted_per_pkt, hc.unhoisted_per_pkt
    );
}
