//! Regenerates Figure 13: guards per packet and per-guard cost for the
//! UDP_STREAM TX workload.

use lxfi_bench::{guards, render_table};

fn main() {
    println!("Figure 13: LXFI guards on the UDP_STREAM TX path\n");
    let rows: Vec<Vec<String>> = guards::figure13(500)
        .into_iter()
        .map(|r| {
            vec![
                r.guard,
                format!("{:.1}", r.per_pkt),
                format!("{:.0}", r.per_guard),
                format!("{:.0}", r.per_pkt_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Guard type",
                "Guards per pkt",
                "Cycles per guard",
                "Cycles per pkt"
            ],
            &rows
        )
    );
    println!(
        "\nPaper (ns): annotation 13.5×124=1,674; entry 7.1×16=114; exit\n\
         7.1×14=99; mem-write 28.8×51=1,469; ind-call all 9.2×64=589;\n\
         ind-call e1000 3.1×86=267. Annotation actions and write checks\n\
         dominate, and writer-set tracking removes ~2/3 of ind-call work."
    );

    println!("\nWRITE-table lookup latency (host ns, 512 grants):\n");
    let rows: Vec<Vec<String>> = guards::write_table_comparison(512, 200_000)
        .into_iter()
        .map(|r| {
            vec![
                r.structure.to_string(),
                format!("{:.1}", r.hit_ns),
                format!("{:.1}", r.miss_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Structure", "Hit ns", "Miss ns"], &rows)
    );

    let cache = guards::guard_cache_comparison(512, 200_000);
    println!(
        "\nFull write guard (Runtime::check_write, 512 grants): repeated\n\
         stores into one object {:.1} ns (cache hit rate {:.1}%), stores\n\
         rotating across grants {:.1} ns.",
        cache.repeated_ns,
        cache.hit_rate * 100.0,
        cache.rotating_ns
    );
}
