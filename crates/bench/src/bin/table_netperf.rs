//! Regenerates Figure 12: netperf throughput and CPU utilization, stock
//! vs LXFI, from per-packet cycles measured on the interpreted e1000.

use lxfi_bench::{netperf, render_table};

fn main() {
    println!("Figure 12: netperf with stock and LXFI-isolated e1000\n");
    let rows: Vec<Vec<String>> = netperf::figure12()
        .into_iter()
        .map(|r| {
            vec![
                r.test.to_string(),
                format!("{:.1} {}", r.stock_tput, r.unit),
                format!("{:.1} {}", r.lxfi_tput, r.unit),
                format!("{:.0}%", r.stock_cpu * 100.0),
                format!("{:.0}%", r.lxfi_cpu * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Test", "Stock tput", "LXFI tput", "Stock CPU", "LXFI CPU"],
            &rows
        )
    );
    println!(
        "\nPaper: TCP stream throughput unchanged (CPU 13→48% TX, 29→64% RX);\n\
         UDP TX 3.1→2.0 M pkt/s at 54→100% CPU; UDP RX steady at 46→100%;\n\
         RR drops most in the 1-switch (low-latency) configuration."
    );
}
