//! The chaos report: netperf-style traffic on a healthy e1000 module
//! while a fault-injected sibling crash-loops through quarantine and
//! supervised recovery, and a hopeless sibling is detected and left
//! dead. Prints recovery, isolation-overhead, and leak-gauge rows.
//!
//! `--recoveries N` sets the recovery target (default 120, the
//! acceptance bar is >= 100; CI's bench-smoke uses a smaller N).
//! Every row is deterministic — seeded faults, tick time, simulated
//! guard cycles — so repeated runs print identical numbers.

use lxfi_bench::chaos::run_chaos;
use lxfi_bench::render_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let target = args
        .iter()
        .position(|a| a == "--recoveries")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<u64>().expect("--recoveries N"))
        .unwrap_or(120);

    let m = run_chaos(target);

    println!("Chaos: supervised recovery under fault injection\n");
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["flaky recoveries".into(), format!("{}", m.recoveries)],
            vec!["faults contained".into(), format!("{}", m.faults)],
            vec![
                "crash loop detected".into(),
                format!("{}", m.crash_loop_detected),
            ],
            vec![
                "hopeless restarts before giving up".into(),
                format!("{}", m.hopeless_restarts),
            ],
            vec![
                "worst recovery latency (ticks)".into(),
                format!("{}", m.recovery_ticks_max),
            ],
            vec![
                "healthy pkt cycles (baseline)".into(),
                format!("{:.1}", m.healthy_pkt_cycles_baseline),
            ],
            vec![
                "healthy pkt cycles (under chaos)".into(),
                format!("{:.1}", m.healthy_pkt_cycles_chaos),
            ],
            vec![
                "isolation overhead ratio".into(),
                format!("{:.3}", m.overhead_ratio()),
            ],
            vec![
                "leaks (principals/slab/writer-sets/intervals)".into(),
                format!(
                    "{}/{}/{}/{}",
                    m.leak_principals, m.leak_slab, m.leak_writer_sets, m.leak_intervals
                ),
            ],
            vec!["kernel panics".into(), format!("{}", m.panics)],
        ],
    );
    println!("{table}");

    assert_eq!(m.panics, 0, "module chaos must never panic the kernel");
    assert!(
        m.crash_loop_detected,
        "the supervisor must detect the hopeless crash loop"
    );
    assert_eq!(
        (
            m.leak_principals,
            m.leak_slab,
            m.leak_writer_sets,
            m.leak_intervals
        ),
        (0, 0, 0, 0),
        "crash/recover churn must leak nothing"
    );
    println!(
        "\nok: {} recoveries, zero leaks, kernel never panicked",
        m.recoveries
    );
}
