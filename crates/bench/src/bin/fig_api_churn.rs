//! Regenerates Figure 10: growth and per-release churn of kernel APIs,
//! 2.6.21 through 2.6.39 (synthetic series calibrated to the paper's
//! anchors — see DESIGN.md's substitution table).

use lxfi_bench::{api_churn, render_table};

fn main() {
    println!("Figure 10: rate of change of Linux kernel APIs (modelled)\n");
    let rows: Vec<Vec<String>> = api_churn::series(2011)
        .into_iter()
        .map(|r| {
            vec![
                r.version,
                r.exported_total.to_string(),
                r.exported_changed.to_string(),
                r.fptr_total.to_string(),
                r.fptr_changed.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Version",
                "# exported funcs",
                "changed",
                "# fn ptrs in structs",
                "changed",
            ],
            &rows
        )
    );
    println!(
        "\nPaper anchors: 2.6.21 had 5,583 exported functions (272 changed)\n\
         and 3,725 struct function pointers (183 changed); totals roughly\n\
         double by 2.6.39 while churn stays at a few hundred per release."
    );
}
