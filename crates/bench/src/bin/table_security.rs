//! Regenerates Figure 8: the exploits, their CVEs, and whether LXFI
//! prevents them. Runs every exploit against both kernels.

use lxfi_bench::render_table;
use lxfi_exploits::run_all;
use lxfi_kernel::IsolationMode;

fn main() {
    println!("Figure 8: kernel-module exploits, stock vs LXFI\n");
    let stock = run_all(IsolationMode::Stock);
    let lxfi = run_all(IsolationMode::Lxfi);
    let rows: Vec<Vec<String>> = stock
        .iter()
        .zip(&lxfi)
        .map(|(s, l)| {
            vec![
                s.name.to_string(),
                s.cves.to_string(),
                if s.succeeded {
                    "root/hidden".into()
                } else {
                    "failed".into()
                },
                if l.succeeded {
                    "NOT PREVENTED".into()
                } else {
                    "prevented".into()
                },
                l.blocked_by
                    .as_ref()
                    .map(|v| {
                        let s = v.to_string();
                        s.split(':').next().unwrap_or(&s).to_string()
                    })
                    .unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Exploit", "CVE IDs", "Stock kernel", "LXFI", "Blocked by"],
            &rows
        )
    );
    println!("\nDetailed traces (LXFI runs):\n");
    for o in &lxfi {
        println!("== {} ==\n{}", o.name, o.detail);
    }
}
