//! The end-to-end request server: drives request frames from the
//! simulated wire through the e1000 RX ring, the NAPI poll (dispatched
//! via the deferred-call mux at quiescent points), `netif_rx`, the echo
//! protocol module's `recvmsg` handler, and a TX reply per request —
//! then prints the per-request latency distribution.
//!
//! `--backend {interp,compiled}` selects the execution backend (CI
//! smokes both; the cycle-derived latencies are backend-invariant by
//! design, so the histograms must match). `--requests N` sets the
//! request budget (default 512).

use lxfi_bench::render_table;
use lxfi_bench::server::{run_server, ServerMeasurement};
use lxfi_kernel::{Backend, IsolationMode};

fn row(name: &str, m: &ServerMeasurement) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.0}", m.p50_ns),
        format!("{:.0}", m.p99_ns),
        format!("{:.2}", m.p99_ns / m.p50_ns),
        format!("{}", m.rx_pkts),
        format!("{}", m.tx_replies),
        format!("{}", m.dropped),
        format!("{}", m.deferred_dispatched),
    ]
}

fn sparkline(m: &ServerMeasurement) -> String {
    let max = m.hist.counts.iter().copied().max().unwrap_or(1).max(1);
    let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let last = m.hist.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    m.hist.counts[..=last]
        .iter()
        .map(|&c| glyphs[(c as usize * (glyphs.len() - 1)).div_ceil(max as usize)])
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<Backend>().expect("--backend {interp,compiled}"))
        .unwrap_or_default();
    let requests = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<u64>().expect("--requests N"))
        .unwrap_or(512);

    println!("request server: wire → e1000 RX ring → NAPI poll → socket → reply");
    println!("backend: {backend}, requests: {requests}\n");

    let lxfi = run_server(IsolationMode::Lxfi, backend, requests);
    let stock = run_server(IsolationMode::Stock, backend, requests);
    let table = vec![row("lxfi", &lxfi), row("stock", &stock)];
    println!(
        "{}",
        render_table(
            &["Mode", "p50 ns", "p99 ns", "p99/p50", "RX pkts", "Replies", "Dropped", "Deferred"],
            &table
        )
    );
    println!(
        "\nlatency histogram ({} ns buckets, lxfi):\n{}",
        lxfi.hist.bucket_ns,
        sparkline(&lxfi)
    );
    println!(
        "\nLatency is the simulated-cycle delta from a burst's wire\n\
         injection to each request's TX reply, at the testbed clock;\n\
         mixed burst sizes (1/2/4/8) make head-of-line queueing visible\n\
         as the p50→p99 spread. The perf gate holds p99 ≤ 4x p50, zero\n\
         ring drops, and the LXFI/stock ratio to baseline."
    );
}
