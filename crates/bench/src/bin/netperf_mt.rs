//! The contended multi-threaded netperf TX table: per-thread store
//! latency, aggregate throughput, and cache hit rate at 1/2/4/8 worker
//! threads, uncontended and against a grant/revoke churn thread.
//!
//! `--threads N` runs a single N-thread smoke pair (CI's bench-smoke
//! step uses `--threads 2`); the full sweep runs otherwise. The
//! perf-gated contention rows come from `table_guard_costs --json`,
//! which measures the same workload.

use lxfi_bench::netperf_mt::{mt_rows, run_netperf_mt, MtMeasurement};
use lxfi_bench::render_table;

fn row(m: &MtMeasurement) -> Vec<String> {
    vec![
        format!("{}", m.threads),
        if m.contended { "churn" } else { "idle" }.to_string(),
        format!("{:.1}", m.store_ns),
        format!("{:.2}", m.aggregate_mops),
        format!("{:.1}%", m.hit_rate * 100.0),
        format!("{}", m.churn_ops),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads N"));

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("netperf_mt: e1000-style TX rings through per-thread GuardHandles");
    println!("host CPUs: {cpus}");
    if args.iter().any(|a| a == "--backend") {
        // Accepted for bench-driver symmetry with kernel_mt: this
        // workload calls the guard layer directly and executes no
        // module code, so the backend cannot change its numbers.
        println!("note: --backend has no effect here (no module code runs)");
    }
    println!();

    let rows: Vec<MtMeasurement> = match threads {
        Some(t) => vec![
            run_netperf_mt(t, 100_000, false),
            run_netperf_mt(t, 100_000, true),
        ],
        None => mt_rows(100_000),
    };
    let table: Vec<Vec<String>> = rows.iter().map(row).collect();
    println!(
        "{}",
        render_table(
            &[
                "Threads",
                "Churn",
                "Store ns (median batch)",
                "Aggregate Mstores/s",
                "Hit rate",
                "Churn ops"
            ],
            &table
        )
    );
    println!(
        "\nStores are lock-free private-cache hits validated against the\n\
         core's atomic epochs; churn revokes worker spare grants, bumping\n\
         exactly the victim's (and the module-global) epoch, so only the\n\
         victim's next stores pay the locked table probe. The perf gate\n\
         bounds contended/uncontended per-store and 4-thread scaling\n\
         (scaling is gated only on hosts with ≥4 CPUs)."
    );
}
