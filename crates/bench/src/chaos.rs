//! The chaos workload: netperf-style traffic on a healthy module while
//! a fault-injected sibling crash-loops through quarantine and
//! supervised recovery.
//!
//! Three modules share one kernel:
//!
//! - **e1000** (healthy): drives the real TX path every iteration; its
//!   per-packet guard cycles are the isolation-overhead probe.
//! - **flaky** (recovers): a seeded [`FaultPlan`] injects guard
//!   failures, fuel exhaustion, and allocation failures while it runs;
//!   each fault quarantines it and the supervisor restarts it after
//!   backoff. The harness paces its calls so probation clears the
//!   failure streak — a module that faults *occasionally*.
//! - **hopeless** (crash-loops): violates policy on every call, so its
//!   consecutive-failure streak only grows; the supervisor must detect
//!   the crash loop and leave it dead.
//!
//! Every number reported is deterministic: faults come from the seeded
//! xorshift64* streams, time is supervisor ticks, and the
//! isolation-overhead probe is simulated guard cycles — no wall clock
//! anywhere, so the CI gate holds these rows exactly.
//!
//! [`run_rx_chaos`] is the receive-plane variant: the supervised module
//! is the e1000 driver itself, and the injected faults fire *inside its
//! NAPI bottom halves* ([`FaultSite::PollGuard`] mid-`netif_rx`,
//! [`FaultSite::DeferredFuel`] mid-poll) — quarantine lands at the
//! deferred-dispatch quiescent point with frames still on the RX ring.
//! The harness then plays operator: it tears out the stale device
//! plumbing the dead instance registered and re-probes the bus so the
//! restarted driver binds a fresh ring.

use std::sync::Arc;

use lxfi_kernel::{
    FaultPlan, FaultRule, FaultSite, IsolationMode, Kernel, ModuleSpec, RestartPolicy,
    SupervisedState, Supervisor, SupervisorEvent,
};
use lxfi_machine::builder::regs::*;
use lxfi_machine::{ProgramBuilder, Word};
use lxfi_modules as mods;
use lxfi_rewriter::InterfaceSpec;

/// Healthy packets sent per chaos iteration.
const PKTS_PER_ITER: u64 = 4;
/// Payload bytes per healthy packet.
const PKT_BYTES: u64 = 64;
/// Iterations of warmup/baseline traffic before the chaos starts.
const BASELINE_ITERS: u64 = 32;
/// Hard cap on chaos iterations (a run that cannot reach its recovery
/// target within this budget is a bug, not a slow day).
const MAX_ITERS: u64 = 20_000;

/// The flaky module: guarded global stores plus kmalloc/kfree churn —
/// plenty of injection opportunities per call at every site.
fn flaky_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("flaky");
    let kmalloc = pb.import_func("kmalloc");
    let kfree = pb.import_func("kfree");
    let state = pb.global("state", 128);
    pb.define("mix", 1, 0, |f| {
        let top = f.label();
        let done = f.label();
        f.mov(R5, 4i64);
        f.global_addr(R1, state);
        f.bind(top);
        f.br(lxfi_machine::Cond::Eq, R5, 0i64, done);
        f.store8(R0, R1, 0);
        f.store8(R5, R1, 8);
        f.call_extern(kmalloc, &[96i64.into()], Some(R2));
        f.store8(R0, R2, 0);
        f.call_extern(kfree, &[R2.into()], None);
        f.sub(R5, R5, 1i64);
        f.jmp(top);
        f.bind(done);
        f.ret(0i64);
    });
    ModuleSpec {
        name: "flaky".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

/// The hopeless module: every call stores to an address nobody granted.
fn hopeless_spec() -> ModuleSpec {
    let mut pb = ProgramBuilder::new("hopeless");
    pb.define("run", 0, 0, |f| {
        f.mov(R1, 0x5000i64);
        f.store8(1i64, R1, 0);
        f.ret(0i64);
    });
    ModuleSpec {
        name: "hopeless".into(),
        program: pb.finish(),
        iface: InterfaceSpec::new(),
        iterators: vec![],
        init_fn: None,
    }
}

/// Everything one chaos run measures (all deterministic).
#[derive(Debug, Clone)]
pub struct ChaosMeasurement {
    /// Crash → quarantine → restart cycles the flaky module completed.
    pub recoveries: u64,
    /// Fault records the kernel logged (flaky + hopeless).
    pub faults: u64,
    /// Whether the supervisor declared the hopeless module crash-looping
    /// and left it dead.
    pub crash_loop_detected: bool,
    /// Restarts the hopeless module got before the supervisor gave up.
    pub hopeless_restarts: u64,
    /// Worst observed fault → restart latency, in supervisor ticks.
    pub recovery_ticks_max: u64,
    /// Healthy per-packet guard cycles before any chaos.
    pub healthy_pkt_cycles_baseline: f64,
    /// Healthy per-packet guard cycles while the siblings crash-loop.
    pub healthy_pkt_cycles_chaos: f64,
    /// Live-principal gauge drift between the first and last
    /// phase-equivalent snapshot (must be 0).
    pub leak_principals: i64,
    /// Live slab-object drift (must be 0).
    pub leak_slab: i64,
    /// Interned-writer-set drift (must be 0).
    pub leak_writer_sets: i64,
    /// Writer-index interval drift (must be 0).
    pub leak_intervals: i64,
    /// Whether the kernel-wide panic flag was ever set (must be 0).
    pub panics: u64,
}

impl ChaosMeasurement {
    /// Isolation overhead on the healthy path: chaos / baseline cycles.
    pub fn overhead_ratio(&self) -> f64 {
        self.healthy_pkt_cycles_chaos / self.healthy_pkt_cycles_baseline.max(1.0)
    }
}

/// Resource levels at a phase-equivalent point (flaky freshly
/// restarted, no outstanding allocations).
fn snapshot(k: &Kernel) -> (u64, u64, u64, u64) {
    let core = k.runtime_core();
    let (live, _) = core.principal_gauges();
    (
        live,
        k.slab().live_count() as u64,
        core.index_set_count() as u64,
        k.rt.index_interval_count() as u64,
    )
}

/// Runs the chaos workload until the flaky module has crashed and
/// recovered `target_recoveries` times (the acceptance bar is ≥100).
pub fn run_chaos(target_recoveries: u64) -> ChaosMeasurement {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    k.pci_add_device(0x8086, 0x100e, 11);
    k.load_module(mods::e1000::spec()).unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let dev = k.net().devices[0];

    let send_batch = |k: &mut Kernel| {
        for _ in 0..PKTS_PER_ITER {
            k.enter(|k| k.net_send_packet(dev, PKT_BYTES)).unwrap();
        }
    };

    // Baseline: healthy per-packet guard cycles with no chaos at all.
    send_batch(&mut k); // warm slab + caches
    let c0 = k.rt.stats.total_cycles();
    for _ in 0..BASELINE_ITERS {
        send_batch(&mut k);
    }
    let baseline =
        (k.rt.stats.total_cycles() - c0) as f64 / (BASELINE_ITERS * PKTS_PER_ITER) as f64;

    // Supervised siblings. Probation of one tick means a single
    // fault-free tick after restart clears the streak — the pacing
    // below guarantees the flaky module gets one, and the hopeless
    // module (which faults on every call) never does.
    let mut sup = Supervisor::new(RestartPolicy {
        max_consecutive_failures: 5,
        base_backoff: 1,
        max_backoff: 4,
        probation: 1,
    });
    sup.supervise(&mut k, "flaky", IsolationMode::Lxfi, Box::new(flaky_spec))
        .unwrap();
    sup.supervise(
        &mut k,
        "hopeless",
        IsolationMode::Lxfi,
        Box::new(hopeless_spec),
    )
    .unwrap();
    k.set_fault_plan(Arc::new(FaultPlan {
        seed: 0x00C4_A05C_0A05_C4A1,
        rules: vec![
            FaultRule {
                module: "flaky".into(),
                site: FaultSite::GuardWrite,
                one_in: 6,
            },
            FaultRule {
                module: "flaky".into(),
                site: FaultSite::Fuel,
                one_in: 40,
            },
            FaultRule {
                module: "flaky".into(),
                site: FaultSite::Alloc,
                one_in: 8,
            },
        ],
    }));

    let mut recoveries = 0u64;
    let mut crash_loop_detected = false;
    let mut recovery_ticks_max = 0u64;
    let mut fault_tick: std::collections::BTreeMap<String, u64> = Default::default();
    let mut chaos_cycles = 0u64;
    let mut chaos_pkts = 0u64;
    let mut first_snap: Option<(u64, u64, u64, u64)> = None;
    let mut last_snap: Option<(u64, u64, u64, u64)> = None;
    let mut panics = 0u64;

    let mut iter = 0u64;
    while recoveries < target_recoveries {
        iter += 1;
        assert!(iter <= MAX_ITERS, "chaos run failed to converge");
        assert!(
            sup.state("flaky") != Some(SupervisedState::Dead),
            "the flaky module must keep recovering, not crash-loop to death"
        );

        // Healthy traffic, measured: the e1000 path must keep moving
        // packets while its siblings crash.
        let c = k.rt.stats.total_cycles();
        send_batch(&mut k);
        chaos_cycles += k.rt.stats.total_cycles() - c;
        chaos_pkts += PKTS_PER_ITER;

        // Drive the flaky module every third iteration. The gaps leave
        // fault-free ticks after each restart, so probation resets its
        // streak and the supervisor keeps restarting it indefinitely.
        if iter.is_multiple_of(3) {
            if let Some(id) = k.module_id("flaky") {
                let addr = k.module_fn_addr(id, "mix").unwrap();
                match k.enter(|k| k.invoke_module_function(addr, &[iter as Word], None)) {
                    Ok(_) => {}
                    Err(lxfi_kernel::KernelError::ModuleFault(f)) => assert_eq!(f.module, "flaky"),
                    Err(e) => panic!("unexpected kernel error from flaky: {e:?}"),
                }
            }
        }

        // Hammer the hopeless module whenever it is published: it
        // faults on every call, so it never sees a fault-free tick and
        // the supervisor must eventually declare it dead.
        if let Some(id) = k.module_id("hopeless") {
            let addr = k.module_fn_addr(id, "run").unwrap();
            match k.enter(|k| k.invoke_module_function(addr, &[], None)) {
                Err(lxfi_kernel::KernelError::ModuleFault(f)) => assert_eq!(f.module, "hopeless"),
                other => panic!("hopeless must fault on every call, got {other:?}"),
            }
        }

        for ev in sup.tick(&mut k) {
            match ev {
                SupervisorEvent::Faulted { module, .. } => {
                    fault_tick.insert(module, sup.now());
                }
                SupervisorEvent::Restarted { module, .. } => {
                    if let Some(at) = fault_tick.remove(&module) {
                        recovery_ticks_max = recovery_ticks_max.max(sup.now() - at);
                    }
                    if module == "flaky" {
                        recoveries += 1;
                        // Leak gauges: sample at phase-equivalent points
                        // — flaky freshly restarted, hopeless already
                        // dead — skipping early cycles so interned
                        // writer sets reach their steady alphabet.
                        if recoveries >= 8 && sup.state("hopeless") == Some(SupervisedState::Dead) {
                            let s = snapshot(&k);
                            first_snap.get_or_insert(s);
                            last_snap = Some(s);
                        }
                    }
                }
                SupervisorEvent::CrashLooping { module } => {
                    assert_eq!(module, "hopeless", "only hopeless may crash-loop to death");
                    crash_loop_detected = true;
                }
                SupervisorEvent::RestartFailed { module, why } => {
                    panic!("restart of {module} failed: {why}");
                }
            }
        }

        if k.panic_reason().is_some() {
            panics += 1;
        }
    }

    let first = first_snap.expect("reached steady-state snapshots");
    let last = last_snap.unwrap();
    let faults = k.fault_count() as u64;
    ChaosMeasurement {
        recoveries,
        faults,
        crash_loop_detected,
        hopeless_restarts: sup.restarts("hopeless"),
        recovery_ticks_max,
        healthy_pkt_cycles_baseline: baseline,
        healthy_pkt_cycles_chaos: chaos_cycles as f64 / chaos_pkts as f64,
        leak_principals: last.0 as i64 - first.0 as i64,
        leak_slab: last.1 as i64 - first.1 as i64,
        leak_writer_sets: last.2 as i64 - first.2 as i64,
        leak_intervals: last.3 as i64 - first.3 as i64,
        panics,
    }
}

/// Wire frames injected per RX-chaos iteration (under the NAPI budget,
/// so a healthy iteration delivers the whole burst in one poll).
const RX_BURST: u64 = 4;

/// Everything one RX-chaos run measures (all deterministic).
#[derive(Debug, Clone)]
pub struct RxChaosMeasurement {
    /// Crash → quarantine → re-probe cycles the driver completed.
    pub recoveries: u64,
    /// Fault records the kernel logged (all attributed to e1000).
    pub faults: u64,
    /// Frames the wire pushed at the device, total.
    pub injected: u64,
    /// Frames that made it through `netif_rx` to the RX queue. The
    /// shortfall is driver downtime: frames parked on a ring whose
    /// driver died are torn down with it at re-probe.
    pub delivered: u64,
    /// Live-principal gauge drift across phase-equivalent snapshots
    /// (driver freshly re-probed; must be 0).
    pub leak_principals: i64,
    /// Live slab-object drift (must be 0).
    pub leak_slab: i64,
    /// Interned-writer-set drift (must be 0).
    pub leak_writer_sets: i64,
    /// Writer-index interval drift (must be 0).
    pub leak_intervals: i64,
    /// Whether the kernel-wide panic flag was ever set (must be 0).
    pub panics: u64,
}

/// Drains the RX queue, freeing every delivered frame; loops because
/// the frees' own enter-epilogues can dispatch a re-armed poll that
/// delivers more.
fn drain_rx(k: &mut Kernel) -> u64 {
    let mut n = 0;
    loop {
        let skbs = std::mem::take(&mut k.net().rx_queue);
        if skbs.is_empty() {
            return n;
        }
        n += skbs.len() as u64;
        for skb in skbs {
            k.enter(|k| lxfi_kernel::net::free_skb_raw(k, skb).map(|()| 0u64))
                .unwrap();
        }
    }
}

/// Runs wire traffic at a supervised e1000 while RX-path faults crash
/// it, until it has recovered `target_recoveries` times. Each recovery
/// is a full operator cycle: quarantine mid-poll → supervisor restart →
/// stale device plumbing torn out → bus re-probe → fresh RX ring.
pub fn run_rx_chaos(target_recoveries: u64) -> RxChaosMeasurement {
    let mut k = Kernel::boot(IsolationMode::Lxfi);
    let pcidev = k.pci_add_device(0x8086, 0x100e, 11);
    let mut sup = Supervisor::new(RestartPolicy {
        max_consecutive_failures: 5,
        base_backoff: 1,
        max_backoff: 4,
        probation: 1,
    });
    sup.supervise(
        &mut k,
        "e1000",
        IsolationMode::Lxfi,
        Box::new(mods::e1000::spec),
    )
    .unwrap();
    k.enter(|k| k.pci_probe_all()).unwrap();
    let mut dev = *k.net().devices.last().unwrap();

    // Warm the receive plane fault-free.
    for _ in 0..4 {
        k.enter(|k| k.net_rx_wire(dev, RX_BURST)).unwrap();
        drain_rx(&mut k);
    }

    k.set_fault_plan(Arc::new(FaultPlan {
        seed: 0x00D0_0DAD_0BAD_F00D,
        rules: vec![
            FaultRule {
                module: "e1000".into(),
                site: FaultSite::PollGuard,
                one_in: 9,
            },
            FaultRule {
                module: "e1000".into(),
                site: FaultSite::DeferredFuel,
                one_in: 4001,
            },
        ],
    }));

    let mut recoveries = 0u64;
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut panics = 0u64;
    let mut quiet = 0u64;
    let mut first_snap: Option<(u64, u64, u64, u64)> = None;
    let mut last_snap: Option<(u64, u64, u64, u64)> = None;

    let mut iter = 0u64;
    while recoveries < target_recoveries {
        iter += 1;
        assert!(iter <= MAX_ITERS, "rx chaos failed to converge");
        assert!(
            sup.state("e1000") != Some(SupervisedState::Dead),
            "the driver must keep recovering, not crash-loop to death"
        );

        if quiet > 0 {
            // A fault-free tick right after restart: probation clears
            // the failure streak, so the supervisor restarts the driver
            // indefinitely instead of declaring a crash loop.
            quiet -= 1;
        } else {
            injected += RX_BURST;
            // A fault in the poll is contained at the deferred-dispatch
            // quiescent point — the wire entry itself still succeeds.
            // While the driver is quarantined the interrupt's dispatch
            // finds a dangling poll pointer and is swallowed; the
            // frames sit on the doomed ring.
            k.enter(|k| k.net_rx_wire(dev, RX_BURST)).unwrap();
            delivered += drain_rx(&mut k);
        }

        for ev in sup.tick(&mut k) {
            match ev {
                SupervisorEvent::Faulted { module, .. } => assert_eq!(module, "e1000"),
                SupervisorEvent::Restarted { module, .. } => {
                    assert_eq!(module, "e1000");
                    recoveries += 1;
                    // The kernel tore the module down, but the device
                    // plumbing its dead instance registered survives —
                    // a bound pci_dev, a driver slot whose probe
                    // pointer dangles, a net device with a dead NAPI
                    // ring. The operator (us) removes it and re-probes
                    // so the restarted driver's registration binds a
                    // fresh ring.
                    let old = dev;
                    {
                        let mut pci = k.pci();
                        pci.bound.retain(|&(d, _)| d != pcidev);
                        let fresh = pci.driver_slots.pop();
                        pci.driver_slots.clear();
                        pci.driver_slots.extend(fresh);
                    }
                    k.net_remove_dead_device(old);
                    k.enter(|k| k.pci_probe_all()).unwrap();
                    dev = *k.net().devices.last().unwrap();
                    quiet = 1;
                    // Leak gauges at phase-equivalent points: driver
                    // freshly re-probed, RX queue empty. Skip early
                    // cycles so interned writer sets reach their
                    // steady alphabet.
                    if recoveries >= 4 {
                        let s = snapshot(&k);
                        first_snap.get_or_insert(s);
                        last_snap = Some(s);
                    }
                }
                SupervisorEvent::CrashLooping { module } => {
                    panic!("{module} must not crash-loop to death");
                }
                SupervisorEvent::RestartFailed { module, why } => {
                    panic!("restart of {module} failed: {why}");
                }
            }
        }

        if k.panic_reason().is_some() {
            panics += 1;
        }
    }

    let first = first_snap.expect("reached steady-state snapshots");
    let last = last_snap.unwrap();
    RxChaosMeasurement {
        recoveries,
        faults: k.fault_count() as u64,
        injected,
        delivered,
        leak_principals: last.0 as i64 - first.0 as i64,
        leak_slab: last.1 as i64 - first.1 as i64,
        leak_writer_sets: last.2 as i64 - first.2 as i64,
        leak_intervals: last.3 as i64 - first.3 as i64,
        panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_recovers_and_leaks_nothing() {
        let m = run_chaos(12);
        assert!(m.recoveries >= 12);
        assert!(m.faults >= m.recoveries);
        assert!(m.crash_loop_detected, "hopeless must be declared dead");
        assert_eq!(m.panics, 0, "module chaos must never panic the kernel");
        assert_eq!(m.leak_principals, 0);
        assert_eq!(m.leak_slab, 0);
        assert_eq!(m.leak_writer_sets, 0);
        assert_eq!(m.leak_intervals, 0);
        assert!(m.recovery_ticks_max >= 1 && m.recovery_ticks_max <= 16);
        assert!(m.healthy_pkt_cycles_baseline > 0.0);
        assert!(
            m.overhead_ratio() < 1.43,
            "healthy throughput under chaos must stay >= 0.7x baseline (ratio {})",
            m.overhead_ratio()
        );
    }

    #[test]
    fn rx_chaos_recovers_the_receive_plane() {
        let m = run_rx_chaos(10);
        assert!(m.recoveries >= 10);
        assert!(m.faults >= m.recoveries, "{m:?}");
        assert!(m.delivered > 0, "the plane must move frames: {m:?}");
        assert!(m.delivered <= m.injected, "{m:?}");
        assert_eq!(m.panics, 0, "RX chaos must never panic the kernel");
        assert_eq!(m.leak_principals, 0, "{m:?}");
        assert_eq!(m.leak_slab, 0, "{m:?}");
        assert_eq!(m.leak_writer_sets, 0, "{m:?}");
        assert_eq!(m.leak_intervals, 0, "{m:?}");
    }

    #[test]
    fn rx_chaos_is_deterministic() {
        let a = run_rx_chaos(6);
        let b = run_rx_chaos(6);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let a = run_chaos(10);
        let b = run_chaos(10);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.recovery_ticks_max, b.recovery_ticks_max);
        assert_eq!(a.healthy_pkt_cycles_baseline, b.healthy_pkt_cycles_baseline);
        assert_eq!(a.healthy_pkt_cycles_chaos, b.healthy_pkt_cycles_chaos);
    }
}
