//! Device-mapper request workload: the third timed guard scenario.
//!
//! netperf (e1000) and sound playback (ens1370) covered the network and
//! sound module families; this closes the gap for the device-mapper
//! targets — the module family §2.1 uses to motivate *per-device*
//! principals (one dm-crypt compromise must not reach another volume's
//! key). One *request round* models a small I/O burst against a layered
//! block device: a dm-crypt write (whole-buffer transform under the
//! per-target key schedule — a run of guarded loads/stores over the bio
//! payload), a dm-crypt read (the inverse transform), and a dm-snapshot
//! write (copy-on-write bookkeeping). Each `dm_submit` allocates the
//! bio + payload from the slab, dispatches the module's `map` callback
//! through a module-written ops slot (the ind-call slow path), and the
//! `bio_caps` iterator transfers the payload's capabilities in and out.
//! Costs are deterministic simulated cycles, so the stock-vs-LXFI ratio
//! is machine-independent and CI-gateable.

use lxfi_kernel::{Backend, IsolationMode, Kernel};
use lxfi_machine::Word;
use lxfi_modules as mods;

/// Bytes per request payload.
pub const DM_REQ_BYTES: u64 = 256;

/// COW chunks per snapshot device (fits the 4 KiB kzalloc cap: a
/// snapshot target absorbs this many writes before its store is full,
/// so the workload rotates devices batch-wise — like remounting a full
/// snapshot in real life).
pub const SNAP_CHUNKS: u64 = 56;

/// Boots a kernel with dm-crypt and dm-snapshot loaded and one device
/// of each created; returns `(kernel, crypt target, snapshot target)`.
pub fn boot_dm(mode: IsolationMode) -> (Kernel, Word, Word) {
    boot_dm_backend(mode, Backend::Interp)
}

/// [`boot_dm`] with an explicit execution backend.
pub fn boot_dm_backend(mode: IsolationMode, backend: Backend) -> (Kernel, Word, Word) {
    let mut k = Kernel::boot_with_backend(mode, backend);
    k.load_module(mods::dm_crypt::spec()).unwrap();
    k.load_module(mods::dm_snapshot::spec()).unwrap();
    let crypt = k
        .enter(|k| k.dm_create(mods::dm_crypt::TARGET_TYPE, 0x1234))
        .expect("dm-crypt device");
    let snap = k
        .enter(|k| k.dm_create(mods::dm_snapshot::TARGET_TYPE, SNAP_CHUNKS))
        .expect("dm-snapshot device");
    (k, crypt, snap)
}

/// Measured request costs, in simulated cycles.
#[derive(Debug, Clone, Copy)]
pub struct DmCosts {
    /// One request round (crypt write + crypt read + snapshot write).
    pub round: f64,
}

/// Measures per-round cycles over `n` request rounds. Snapshot COW
/// stores fill up after [`SNAP_CHUNKS`] writes, so rounds run in
/// batches, each against a freshly created snapshot device; device
/// creation happens off the clock (it is setup, not data path).
pub fn measure_dm_costs(mode: IsolationMode, n: u64) -> DmCosts {
    let (mut k, crypt, snap) = boot_dm(mode);
    // Warm up (slab pages, writer-set structures, guard caches).
    for i in 0..4u64 {
        k.enter(|k| k.dm_submit(crypt, true, DM_REQ_BYTES, i as u8))
            .unwrap();
        k.enter(|k| k.dm_submit(snap, true, DM_REQ_BYTES, i as u8))
            .unwrap();
    }
    let mut cycles = 0u64;
    let mut done = 0u64;
    while done < n {
        let snap = k
            .enter(|k| k.dm_create(mods::dm_snapshot::TARGET_TYPE, SNAP_CHUNKS))
            .expect("dm-snapshot device");
        let batch = (n - done).min(SNAP_CHUNKS - 4);
        let start = k.total_cycles();
        for i in 0..batch {
            k.enter(|k| k.dm_submit(crypt, true, DM_REQ_BYTES, i as u8))
                .unwrap();
            k.enter(|k| k.dm_submit(crypt, false, DM_REQ_BYTES, i as u8))
                .unwrap();
            k.enter(|k| k.dm_submit(snap, true, DM_REQ_BYTES, i as u8))
                .unwrap();
        }
        cycles += k.total_cycles() - start;
        done += batch;
    }
    DmCosts {
        round: cycles as f64 / n as f64,
    }
}

/// One stock-vs-LXFI device-mapper comparison row.
#[derive(Debug, Clone, Copy)]
pub struct DmRow {
    /// Stock cycles per request round.
    pub stock: f64,
    /// LXFI cycles per request round.
    pub lxfi: f64,
    /// LXFI/stock overhead ratio.
    pub overhead: f64,
}

/// Runs both modes over `n` request rounds.
pub fn dm_comparison(n: u64) -> DmRow {
    let stock = measure_dm_costs(IsolationMode::Stock, n).round;
    let lxfi = measure_dm_costs(IsolationMode::Lxfi, n).round;
    DmRow {
        stock,
        lxfi,
        overhead: lxfi / stock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lxfi_dm_costs_more_but_boundedly() {
        let row = dm_comparison(25);
        assert!(row.lxfi > row.stock, "guards must cost something: {row:?}");
        // A request round moves DM_REQ_BYTES of payload three times, so
        // the per-byte transform amortizes the crossing costs better
        // than the tiny sound period; the ratio should sit between
        // netperf's and playback's.
        assert!(
            row.overhead < 15.0,
            "dm overhead out of expected band: {row:?}"
        );
    }

    #[test]
    fn dm_costs_are_deterministic() {
        // Same simulated work twice: identical cycle counts, which is
        // what makes the perf-gate ratio row machine-independent.
        let a = measure_dm_costs(IsolationMode::Lxfi, 10).round;
        let b = measure_dm_costs(IsolationMode::Lxfi, 10).round;
        assert_eq!(a, b, "simulated cycles must not depend on the host");
    }

    #[test]
    fn dm_write_transforms_and_isolates() {
        // The workload really executes the module: a crypt write must
        // transform the payload (not a no-op), and the two targets stay
        // distinct principals.
        let (mut k, crypt, _snap) = boot_dm(IsolationMode::Lxfi);
        let b = k
            .enter(|k| k.dm_submit(crypt, true, 64, 0x5a))
            .expect("crypt write");
        let payload = k.bio_payload(b).unwrap();
        assert!(
            payload.iter().any(|&x| x != 0x5a),
            "dm-crypt must transform the written payload"
        );
        assert!(k.panic_reason().is_none());
    }
}
