//! Property tests for the KIR substrate: memory, disassembly round trips,
//! and interpreter determinism.

use proptest::prelude::*;

use lxfi_machine::asm::assemble;
use lxfi_machine::builder::regs::*;
use lxfi_machine::disasm::disassemble;
use lxfi_machine::isa::{BinOp, Cond, Width};
use lxfi_machine::{
    run_function, AddressSpace, Env, FuncId, GlobalId, ProgramBuilder, SigId, SymbolId, Trap, Word,
};

// ---------------------------------------------------------------- memory

proptest! {
    /// Reads after writes observe the written bytes, at any width and
    /// alignment, including across page boundaries.
    #[test]
    fn mem_write_read_roundtrip(off in 0u64..8192, val: u64, w in 0usize..4) {
        let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
        let width = widths[w];
        let m = AddressSpace::new();
        let base = 0x10_0000;
        m.map_range(base, 3 * lxfi_machine::PAGE_SIZE);
        let addr = base + off;
        m.write(addr, val, width).unwrap();
        prop_assert_eq!(m.read(addr, width).unwrap(), width.truncate(val));
    }

    /// Writes never touch bytes outside `[addr, addr+width)`.
    #[test]
    fn mem_write_is_contained(off in 8u64..4096, val: u64, w in 0usize..4) {
        let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
        let width = widths[w];
        let m = AddressSpace::new();
        let base = 0x10_0000;
        m.map_range(base, 2 * lxfi_machine::PAGE_SIZE);
        let addr = base + off;
        m.write(addr - 8, 0xa5a5_a5a5_a5a5_a5a5, Width::B8).unwrap();
        let after = addr + width.bytes();
        m.write(after, 0x5a5a_5a5a_5a5a_5a5a, Width::B8).unwrap();
        m.write(addr, val, width).unwrap();
        prop_assert_eq!(m.read(addr - 8, Width::B8).unwrap(), 0xa5a5_a5a5_a5a5_a5a5);
        prop_assert_eq!(m.read(after, Width::B8).unwrap(), 0x5a5a_5a5a_5a5a_5a5a);
    }

    /// Zeroing clears exactly the requested range.
    #[test]
    fn mem_zero_range_exact(start in 0u64..2048, len in 0u64..2048) {
        let m = AddressSpace::new();
        let base = 0x20_0000;
        m.map_range(base, 4096 + 4096);
        for i in 0..4096u64 {
            m.write(base + i, 0xee, Width::B1).unwrap();
        }
        m.zero_range(base + start, len).unwrap();
        for i in 0..4096u64 {
            let v = m.read(base + i, Width::B1).unwrap();
            let inside = i >= start && i < start + len;
            if inside {
                prop_assert_eq!(v, 0);
            } else {
                prop_assert_eq!(v, 0xee);
            }
        }
    }
}

// ------------------------------------------------------- disasm roundtrip

/// Generates a random (valid) function body over 2 locals and r0..r5.
fn arb_program() -> impl Strategy<Value = lxfi_machine::Program> {
    let inst = prop_oneof![
        (0u8..6, -64i64..64).prop_map(|(r, v)| ("mov", r, v, 0u8)),
        (0u8..6, 0i64..4, 0u8..6).prop_map(|(r, op, r2)| ("bin", r, op, r2)),
        (0u8..6, 0i64..2, 0u8..2).prop_map(|(r, o, w)| ("storef", r, o, w)),
        (0u8..6, 0i64..2, 0u8..2).prop_map(|(r, o, w)| ("loadf", r, o, w)),
    ];
    proptest::collection::vec(inst, 1..20).prop_map(|ops| {
        let mut pb = ProgramBuilder::new("gen");
        pb.define("f", 2, 16, |f| {
            for (kind, a, b, c) in ops {
                match kind {
                    "mov" => f.mov(lxfi_machine::Reg(a), b),
                    "bin" => {
                        let op = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Mul][b as usize];
                        f.bin(
                            op,
                            lxfi_machine::Reg(a),
                            lxfi_machine::Reg(a),
                            lxfi_machine::Reg(c),
                        )
                    }
                    "storef" => f.store_frame(
                        lxfi_machine::Reg(a),
                        (b as u32) * 8,
                        [Width::B4, Width::B8][c as usize],
                    ),
                    "loadf" => f.load_frame(
                        lxfi_machine::Reg(a),
                        (b as u32) * 8,
                        [Width::B4, Width::B8][c as usize],
                    ),
                    _ => unreachable!(),
                }
            }
            f.ret(R0);
        });
        pb.finish()
    })
}

proptest! {
    /// disassemble → assemble → disassemble is a fixpoint, and the
    /// reassembled program has identical instructions.
    #[test]
    fn disasm_asm_roundtrip(p in arb_program()) {
        let text = disassemble(&p);
        let p2 = assemble(&text).expect("reassemble");
        prop_assert_eq!(&p.funcs[0].insts, &p2.funcs[0].insts);
        prop_assert_eq!(disassemble(&p2), text);
    }
}

// ------------------------------------------------------ interp determinism

struct PlainEnv {
    mem: AddressSpace,
    fuel: u64,
    sp: Word,
    base: Word,
}

impl PlainEnv {
    fn new() -> Self {
        let mem = AddressSpace::new();
        let top = 0xffff_9000_0010_0000u64;
        let base = top - 0x8000;
        mem.map_range(base, 0x8000);
        PlainEnv {
            mem,
            fuel: 10_000_000,
            sp: top,
            base,
        }
    }
}

impl Env for PlainEnv {
    fn mem(&self) -> &AddressSpace {
        &self.mem
    }
    fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
        if self.fuel < cycles {
            return Err(Trap::OutOfFuel);
        }
        self.fuel -= cycles;
        Ok(())
    }
    fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
        let size = (size as u64 + 15) & !15;
        if self.sp - size < self.base {
            return Err(Trap::StackOverflow);
        }
        self.sp -= size;
        // Zero the frame for determinism.
        self.mem.zero_range(self.sp, size).unwrap();
        Ok(self.sp)
    }
    fn pop_frame(&mut self, size: u32) {
        self.sp += (size as u64 + 15) & !15;
    }
    fn guard_write(&mut self, _addr: Word, _len: Word) -> Result<(), Trap> {
        Ok(())
    }
    fn guard_indcall(&mut self, _slot: Word, _sig: SigId) -> Result<(), Trap> {
        Ok(())
    }
    fn call_extern(&mut self, _sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
        Ok(args.iter().sum())
    }
    fn call_ptr(&mut self, _t: Word, _s: SigId, _a: &[Word]) -> Result<Word, Trap> {
        Ok(0)
    }
    fn global_addr(&self, _g: GlobalId) -> Result<Word, Trap> {
        Ok(0x30_0000)
    }
    fn sym_addr(&self, _s: SymbolId) -> Result<Word, Trap> {
        Ok(0x40_0000)
    }
    fn func_addr(&self, f: FuncId) -> Result<Word, Trap> {
        Ok(0xf000_0000 + f.0 as u64)
    }
}

proptest! {
    /// The interpreter is deterministic: same program + args produce the
    /// same result and consume the same fuel.
    #[test]
    fn interp_is_deterministic(p in arb_program(), a0: u64, a1: u64) {
        let mut e1 = PlainEnv::new();
        let mut e2 = PlainEnv::new();
        let f = FuncId(0);
        let r1 = run_function(&mut e1, &p, f, &[a0, a1]);
        let r2 = run_function(&mut e2, &p, f, &[a0, a1]);
        match (r1, r2) {
            (Ok(v1), Ok(v2)) => {
                prop_assert_eq!(v1, v2);
                prop_assert_eq!(e1.fuel, e2.fuel);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "divergent outcomes"),
        }
        // Stack is balanced afterwards.
        prop_assert_eq!(e1.sp, 0xffff_9000_0010_0000u64);
    }

    /// Straight-line arithmetic over two args matches a Rust oracle.
    #[test]
    fn alu_matches_oracle(a: u64, b: u64) {
        let mut pb = ProgramBuilder::new("alu");
        let f = pb.define("f", 2, 0, |f| {
            f.add(R2, R0, R1);
            f.bin(BinOp::Xor, R3, R2, R0);
            f.bin(BinOp::Shl, R4, R3, 7i64);
            f.bin(BinOp::Rotl, R5, R4, 13i64);
            f.sub(R0, R5, R1);
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = PlainEnv::new();
        let got = run_function(&mut env, &p, f, &[a, b]).unwrap();
        let want = ((a.wrapping_add(b) ^ a).wrapping_shl(7)).rotate_left(13).wrapping_sub(b);
        prop_assert_eq!(got, want);
    }

    /// Branch conditions agree with Rust comparisons.
    #[test]
    fn branches_match_oracle(a: u64, b: u64, c in 0usize..8) {
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge, Cond::Ult, Cond::Ule];
        let cond = conds[c];
        let mut pb = ProgramBuilder::new("br");
        let f = pb.define("f", 2, 0, |f| {
            let yes = f.label();
            f.br(cond, R0, R1, yes);
            f.ret(0i64);
            f.bind(yes);
            f.ret(1i64);
        });
        let p = pb.finish();
        let mut env = PlainEnv::new();
        let got = run_function(&mut env, &p, f, &[a, b]).unwrap();
        prop_assert_eq!(got == 1, cond.eval(a, b));
    }
}
