//! Differential oracle: the interpreter and the compiled backend must be
//! observationally identical. Generated programs run on both backends in
//! lockstep against twin environments; every observable — result value,
//! trap, guard log, extern-call log, final memory, final fuel, stack
//! balance — must match exactly, across both plentiful and near-exhausted
//! fuel budgets (the latter drives the compiled backend's per-instruction
//! slow path and its refund protocol).

use std::sync::Arc;

use proptest::prelude::*;

use lxfi_machine::builder::regs::*;
use lxfi_machine::{
    run_compiled, run_function, AddressSpace, BinOp, CompiledProgram, Cond, Env, FuncId, GlobalId,
    Program, ProgramBuilder, Reg, SigId, SymbolId, Trap, Width, Word,
};

/// Base of the mapped data window generated programs address.
const DATA: u64 = 0x10_0000;
/// Size of that window (accesses are generated inside `[0, DATA_LEN)`,
/// but register-relative addressing can still fault — both backends must
/// then fault identically).
const DATA_LEN: u64 = 2 * lxfi_machine::PAGE_SIZE;

/// One logged guard/extern event: `(kind, a, b)` per the field doc.
type LogEntry = (u8, u64, u64);

/// Everything the oracle compares: final fuel, stack pointer, event
/// log, and the words of the data window.
type Observation = (u64, Word, Vec<LogEntry>, Vec<Word>);

/// Environment with exact refund accounting and full observation logs.
/// Guards deterministically fail on a sliver of addresses so the
/// guard-trap refund paths get exercised.
struct OracleEnv {
    mem: Arc<AddressSpace>,
    fuel: u64,
    sp: Word,
    base: Word,
    /// (kind, a, b): 'w' = guard_write(addr, len), 'i' = guard_indcall
    /// (slot, sig), 'x' = call_extern(sym, arg-sum), 'p' = call_ptr
    /// (target, arg-sum).
    log: Vec<LogEntry>,
}

impl OracleEnv {
    fn new(fuel: u64) -> Self {
        let mem = Arc::new(AddressSpace::new());
        mem.map_range(DATA, DATA_LEN);
        let top = 0xffff_9000_0010_0000u64;
        let base = top - 0x8000;
        mem.map_range(base, 0x8000);
        OracleEnv {
            mem,
            fuel,
            sp: top,
            base,
            log: Vec::new(),
        }
    }

    /// Everything the oracle compares, in one comparable bundle.
    fn observe(&self) -> Observation {
        let words = (0..DATA_LEN / 8)
            .map(|i| self.mem.read(DATA + i * 8, Width::B8).unwrap())
            .collect();
        (self.fuel, self.sp, self.log.clone(), words)
    }
}

impl Env for OracleEnv {
    fn mem(&self) -> &AddressSpace {
        &self.mem
    }
    fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
        if self.fuel < cycles {
            return Err(Trap::OutOfFuel);
        }
        self.fuel -= cycles;
        Ok(())
    }
    fn refund(&mut self, cycles: u64) {
        self.fuel += cycles;
    }
    fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
        let size = (size as u64 + 15) & !15;
        if self.sp - size < self.base {
            return Err(Trap::StackOverflow);
        }
        self.sp -= size;
        self.mem.zero_range(self.sp, size).unwrap();
        Ok(self.sp)
    }
    fn pop_frame(&mut self, size: u32) {
        self.sp += (size as u64 + 15) & !15;
    }
    fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap> {
        self.log.push((b'w', addr, len));
        if addr.is_multiple_of(97) {
            return Err(Trap::Bug(0x6a57));
        }
        Ok(())
    }
    fn guard_indcall(&mut self, slot: Word, sig: SigId) -> Result<(), Trap> {
        self.log.push((b'i', slot, sig.0 as u64));
        if slot.is_multiple_of(89) {
            return Err(Trap::Bug(0x6a58));
        }
        Ok(())
    }
    fn call_extern(&mut self, sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
        let sum = args.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        self.log.push((b'x', sym.0 as u64, sum));
        // Externs burn fuel too, so the compiled backend's
        // refund-before-call / reconsume-after protocol is observable.
        self.consume(5)?;
        Ok(sum.wrapping_mul(3).wrapping_add(sym.0 as u64))
    }
    fn call_ptr(&mut self, target: Word, _sig: SigId, args: &[Word]) -> Result<Word, Trap> {
        let sum = args.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        self.log.push((b'p', target, sum));
        self.consume(3)?;
        Ok(target ^ sum)
    }
    fn global_addr(&self, g: GlobalId) -> Result<Word, Trap> {
        Ok(DATA + 64 * (g.0 as u64 + 1))
    }
    fn sym_addr(&self, s: SymbolId) -> Result<Word, Trap> {
        Ok(DATA + 8 * (s.0 as u64 + 1))
    }
    fn func_addr(&self, f: FuncId) -> Result<Word, Trap> {
        Ok(0xf000_0000 + f.0 as u64)
    }
}

/// One generated operation. Fields are interpreted per `kind` — this
/// keeps the proptest strategy flat and shrinkable.
#[derive(Debug, Clone, Copy)]
struct GenOp {
    kind: u8,
    a: u8,
    b: u8,
    c: u8,
    imm: i64,
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    (0u8..16, 0u8..6, 0u8..6, 0u8..6, -512i64..512).prop_map(|(kind, a, b, c, imm)| GenOp {
        kind,
        a,
        b,
        c,
        imm,
    })
}

/// Builds a two-function program (`main` + a guarded-store leaf) from the
/// generated op list. `R6` holds the data base, `R7` a bounded offset, so
/// most memory traffic lands in the mapped window; forward-only branches
/// keep every program terminating.
fn build_program(ops: &[GenOp]) -> Program {
    let mut pb = ProgramBuilder::new("oracle");
    let helper_sym = pb.import_func("helper");
    let sig = pb.sig("fnptr", 2);
    let leaf = pb.declare("leaf", 2);
    let gdata = pb.global("gdata", 64);

    // leaf(x, y): guarded store of y at DATA window offset (x & 0xff8),
    // then return x + y. Runs under both backends via CallLocal.
    pb.define("leaf", 2, 16, |f| {
        f.bin(BinOp::And, R2, R0, 0xff8i64);
        f.add(R2, R2, DATA as i64);
        f.guard_write(R2, 0, 8i64);
        f.store8(R1, R2, 0);
        f.store_frame(R0, 0, Width::B8);
        f.load_frame(R3, 0, Width::B8);
        f.add(R0, R3, R1);
        f.ret(R0);
    });

    pb.define("main", 2, 32, |f| {
        f.mov(R6, DATA as i64);
        // Pending forward-branch labels: (bind_after_op_index, label).
        let mut pending: Vec<(usize, lxfi_machine::builder::Label)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let mut due: Vec<_> = Vec::new();
            pending.retain(|(at, l)| {
                if *at <= i {
                    due.push(*l);
                    false
                } else {
                    true
                }
            });
            for l in due {
                f.bind(l);
            }
            let ra = Reg(op.a);
            let rb = Reg(op.b);
            let rc = Reg(op.c);
            let off = (op.imm.unsigned_abs() % 4000) as i64;
            match op.kind {
                0 => f.mov(ra, op.imm),
                1 => {
                    let bins = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Xor,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Shl,
                        BinOp::Shr,
                        BinOp::Div,
                        BinOp::Rem,
                    ];
                    f.bin(bins[(op.imm.unsigned_abs() % 10) as usize], ra, rb, rc);
                }
                2 => {
                    let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
                    f.load(ra, R6, off, widths[(op.a % 4) as usize]);
                }
                3 => {
                    let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
                    f.store(rb, R6, off, widths[(op.a % 4) as usize]);
                }
                // Fused shape: guard + adjacent store, as the rewriter
                // emits it.
                4 => {
                    f.guard_write(R6, off, 8i64);
                    f.store8(rb, R6, off);
                }
                // Guard *not* followed by a store: must stay unfused.
                5 => f.guard_write(R6, off, rb),
                6 => f.store_frame(rb, (op.a as u32 % 3) * 8, Width::B8),
                7 => f.load_frame(ra, (op.a as u32 % 3) * 8, Width::B8),
                8 => f.frame_addr(ra, (op.b as u32 % 3) * 8),
                9 => f.global_addr(ra, gdata),
                10 => {
                    let args: Vec<lxfi_machine::Operand> = [ra, rb, rc]
                        [..(op.a % 4).min(3) as usize]
                        .iter()
                        .map(|&r| r.into())
                        .collect();
                    f.call_extern(helper_sym, &args, Some(rc));
                }
                // Fused shape: ind-call guard + adjacent CallPtr.
                11 => {
                    f.guard_indcall(R6, off, sig);
                    f.call_ptr(ra, sig, &[rb.into()], Some(rc));
                }
                12 => f.call_local(leaf, &[ra.into(), rb.into()], Some(rc)),
                13 => {
                    let conds = [Cond::Eq, Cond::Ne, Cond::Ult, Cond::Ule];
                    let skip = 1 + (op.imm.unsigned_abs() % 5) as usize;
                    let l = f.label();
                    f.br(conds[(op.a % 4) as usize], rb, rc, l);
                    pending.push((i + skip, l));
                }
                14 => f.nop(),
                _ => f.sym_addr(ra, helper_sym),
            }
        }
        for (_, l) in pending {
            f.bind(l);
        }
        f.ret(R0);
    });
    pb.finish()
}

/// Runs one program on both backends with the same fuel and asserts
/// every observable matches.
fn check_equivalent(p: &Program, fuel: u64, a0: u64, a1: u64) {
    let prog = Arc::new(p.clone());
    let cp = CompiledProgram::compile(Arc::clone(&prog));
    assert_eq!(
        cp.stats().fallback_funcs,
        0,
        "generated programs must compile"
    );

    let f = prog.func_by_name("main").unwrap();
    let mut ei = OracleEnv::new(fuel);
    let mut ec = OracleEnv::new(fuel);
    let ri = run_function(&mut ei, &prog, f, &[a0, a1]);
    let rc = run_compiled(&mut ec, &cp, f, &[a0, a1]);

    assert_eq!(
        format!("{ri:?}"),
        format!("{rc:?}"),
        "result/trap must match"
    );
    let (fuel_i, sp_i, log_i, mem_i) = ei.observe();
    let (fuel_c, sp_c, log_c, mem_c) = ec.observe();
    assert_eq!(fuel_i, fuel_c, "fuel accounting must be identical");
    assert_eq!(sp_i, sp_c, "stack must unwind identically");
    assert_eq!(log_i, log_c, "guard/extern logs must be identical");
    assert_eq!(mem_i, mem_c, "final memory must be identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Plentiful fuel: results, guard logs, memory, and fuel all match.
    #[test]
    fn backends_agree(ops in proptest::collection::vec(arb_op(), 1..40), a0: u64, a1: u64) {
        let p = build_program(&ops);
        check_equivalent(&p, 1_000_000, a0, a1);
    }

    /// Near-exhausted fuel: the trap must land on the same instruction
    /// with the same partial side effects — this exercises the compiled
    /// backend's slow path and every refund site.
    #[test]
    fn backends_agree_under_fuel_pressure(
        ops in proptest::collection::vec(arb_op(), 1..40),
        fuel in 0u64..400,
        a0: u64,
        a1: u64,
    ) {
        let p = build_program(&ops);
        check_equivalent(&p, fuel, a0, a1);
    }
}

/// The compiled backend reports meaningful counters for a program with
/// fused guard sites, and falls back per-function (not per-program) when
/// a function is uncompilable.
#[test]
fn compile_stats_and_fallback() {
    let ops: Vec<GenOp> = (0..20)
        .map(|i| GenOp {
            kind: (i % 15) as u8,
            a: (i % 6) as u8,
            b: ((i + 1) % 6) as u8,
            c: ((i + 2) % 6) as u8,
            imm: i as i64 * 37,
        })
        .collect();
    let p = build_program(&ops);
    let cp = CompiledProgram::compile(Arc::new(p));
    let st = cp.stats();
    assert_eq!(st.funcs_compiled, 2);
    assert_eq!(st.fallback_funcs, 0);
    assert!(st.blocks_compiled >= 2);
    assert!(st.fused_guard_sites >= 2, "leaf + kind-4 sites: {st:?}");
}
