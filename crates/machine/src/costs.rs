//! Deterministic cycle costs per instruction.
//!
//! These feed the network cost model (Figure 12) and the guard-cost
//! breakdown (Figure 13). They are a simple in-order model: ALU ops cost
//! one cycle, memory ops a little more, calls the most. Guard costs are
//! *not* here — the LXFI runtime accounts for those separately so that
//! "time spent in runtime guards" can be reported per guard type.

use crate::isa::Inst;

/// Cycle cost of an ALU or move instruction.
pub const ALU: u64 = 1;
/// Cycle cost of a memory load or store.
pub const MEM: u64 = 3;
/// Cycle cost of a taken or untaken branch.
pub const BRANCH: u64 = 1;
/// Base cycle cost of a call (frame setup, argument copy).
pub const CALL: u64 = 8;
/// Cycle cost of a return.
pub const RET: u64 = 4;

/// Returns the deterministic cycle cost of executing `inst` once,
/// excluding any LXFI guard work it triggers.
pub fn cost(inst: &Inst) -> u64 {
    match inst {
        Inst::Mov { .. }
        | Inst::Bin { .. }
        | Inst::FrameAddr { .. }
        | Inst::GlobalAddr { .. }
        | Inst::SymAddr { .. }
        | Inst::FuncAddr { .. } => ALU,
        Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::LoadFrame { .. }
        | Inst::StoreFrame { .. } => MEM,
        Inst::Jmp { .. } | Inst::Br { .. } => BRANCH,
        Inst::CallLocal { .. } | Inst::CallExtern { .. } | Inst::CallPtr { .. } => CALL,
        Inst::Ret { .. } => RET,
        Inst::Trap { .. } | Inst::Nop => ALU,
        // Guards: the dispatch itself is one cycle; the runtime adds the
        // guard's own cost through its statistics hooks.
        Inst::GuardWrite { .. } | Inst::GuardIndCall { .. } => ALU,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Operand, Reg, Width};

    #[test]
    fn memory_costs_more_than_alu() {
        let mov = Inst::Mov {
            dst: Reg(0),
            src: Operand::Imm(1),
        };
        let ld = Inst::Load {
            dst: Reg(0),
            base: Operand::Reg(Reg(1)),
            off: 0,
            width: Width::B8,
        };
        assert!(cost(&ld) > cost(&mov));
    }

    #[test]
    fn calls_cost_most() {
        let call = Inst::CallLocal {
            func: crate::program::FuncId(0),
            args: vec![],
            ret: None,
        };
        assert!(cost(&call) >= MEM);
    }
}
