//! The KIR interpreter.
//!
//! [`run_function`] executes one function (and its intra-module callees)
//! against an [`Env`] — the simulated kernel world. Everything that crosses
//! the module boundary is delegated to the environment:
//!
//! - `CallExtern` → [`Env::call_extern`] (kernel function, through its LXFI
//!   wrapper when isolated),
//! - `CallPtr` → [`Env::call_ptr`] (module-level indirect call, checked and
//!   wrapped by the runtime when isolated),
//! - guard instructions → [`Env::guard_write`] / [`Env::guard_indcall`].
//!
//! The environment may re-enter the interpreter from those hooks (a kernel
//! function invoking a module callback), which is how nested kernel/module
//! control transfers — and their shadow-stack bookkeeping — happen.

use crate::costs;
use crate::isa::{BinOp, Inst, Operand, Reg, NUM_ARG_REGS, NUM_REGS};
use crate::mem::AddressSpace;
use crate::program::{FuncId, GlobalId, Program, SigId, SymbolId};
use crate::{Trap, Word};

/// The world a KIR program executes in.
///
/// Implemented by the simulated kernel (`lxfi-kernel`); tests implement
/// lightweight versions.
pub trait Env {
    /// Simulated memory. Since the multi-CPU kernel split the address
    /// space is interior-mutable (`&self` reads *and* writes), so one
    /// accessor serves both; see [`AddressSpace`] for the concurrency
    /// rules.
    fn mem(&self) -> &AddressSpace;

    /// Accounts `cycles` of work; returns [`Trap::OutOfFuel`] when the
    /// execution budget is exhausted.
    fn consume(&mut self, cycles: u64) -> Result<(), Trap>;

    /// Returns `cycles` of previously [`consume`](Env::consume)d budget.
    ///
    /// The compiled backend charges a whole basic block's cost up front
    /// and calls this to hand back the unearned suffix when the block
    /// exits early (a trap mid-block, or an extern call that must observe
    /// the exact per-instruction fuel state). Environments that want
    /// cycle-exact accounting across both backends implement it as the
    /// inverse of `consume`; the default no-op is fine for environments
    /// that only run the interpreter or treat fuel as a coarse limit.
    fn refund(&mut self, _cycles: u64) {}

    /// Reserves a `size`-byte frame on the current kernel thread stack and
    /// returns the new stack pointer (frame base).
    fn push_frame(&mut self, size: u32) -> Result<Word, Trap>;

    /// Releases the most recent frame of `size` bytes.
    fn pop_frame(&mut self, size: u32);

    /// LXFI write guard: may the current principal write
    /// `[addr, addr+len)`?
    fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap>;

    /// LXFI kernel-side indirect-call guard for the function-pointer slot
    /// at `slot` with declared pointer type `sig`.
    fn guard_indcall(&mut self, slot: Word, sig: SigId) -> Result<(), Trap>;

    /// Calls an imported kernel symbol.
    fn call_extern(&mut self, sym: SymbolId, args: &[Word]) -> Result<Word, Trap>;

    /// Calls through a function-pointer value with declared type `sig`.
    fn call_ptr(&mut self, target: Word, sig: SigId, args: &[Word]) -> Result<Word, Trap>;

    /// Resolves the load address of a module global.
    fn global_addr(&self, global: GlobalId) -> Result<Word, Trap>;

    /// Resolves the address of an imported kernel symbol.
    fn sym_addr(&self, sym: SymbolId) -> Result<Word, Trap>;

    /// Resolves the address of a module-local function.
    fn func_addr(&self, func: FuncId) -> Result<Word, Trap>;
}

struct Frame {
    func: FuncId,
    pc: usize,
    regs: [Word; NUM_REGS],
    sp: Word,
    frame_size: u32,
    /// Register in the *caller's* frame receiving the return value.
    ret_to: Option<Reg>,
}

/// Executes `func` from `program` with `args`, returning its result
/// (0 for `void` returns).
///
/// Intra-module direct calls are handled with an explicit frame stack (no
/// host recursion); cross-boundary calls recurse through the environment.
pub fn run_function<E: Env + ?Sized>(
    env: &mut E,
    program: &Program,
    func: FuncId,
    args: &[Word],
) -> Result<Word, Trap> {
    let mut frames: Vec<Frame> = Vec::new();
    let result = exec(env, program, func, args, &mut frames);
    // Unwind any frames left on the simulated stack after a trap so the
    // thread's stack pointer stays balanced (the kernel may catch the trap,
    // as the oops path does for the Econet NULL dereference).
    if result.is_err() {
        for fr in frames.drain(..).rev() {
            env.pop_frame(fr.frame_size);
        }
    }
    result
}

fn new_frame<E: Env + ?Sized>(
    env: &mut E,
    program: &Program,
    func: FuncId,
    args: &[Word],
    ret_to: Option<Reg>,
) -> Result<Frame, Trap> {
    let f = program
        .funcs
        .get(func.0 as usize)
        .ok_or_else(|| Trap::BadRef(format!("function id {}", func.0)))?;
    let sp = env.push_frame(f.frame_size)?;
    let mut regs = [0u64; NUM_REGS];
    let n = args.len().min(NUM_ARG_REGS);
    regs[..n].copy_from_slice(&args[..n]);
    Ok(Frame {
        func,
        pc: 0,
        regs,
        sp,
        frame_size: f.frame_size,
        ret_to,
    })
}

fn eval(regs: &[Word; NUM_REGS], op: Operand) -> Word {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v as u64,
    }
}

#[inline(always)]
pub(crate) fn binop(op: BinOp, l: Word, r: Word) -> Result<Word, Trap> {
    Ok(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => l.checked_div(r).ok_or(Trap::DivByZero)?,
        BinOp::Rem => l.checked_rem(r).ok_or(Trap::DivByZero)?,
        BinOp::And => l & r,
        BinOp::Or => l | r,
        BinOp::Xor => l ^ r,
        BinOp::Shl => l.wrapping_shl(r as u32 & 63),
        BinOp::Shr => l.wrapping_shr(r as u32 & 63),
        BinOp::Rotl => l.rotate_left(r as u32 & 63),
    })
}

fn exec<E: Env + ?Sized>(
    env: &mut E,
    program: &Program,
    func: FuncId,
    args: &[Word],
    frames: &mut Vec<Frame>,
) -> Result<Word, Trap> {
    frames.push(new_frame(env, program, func, args, None)?);

    // Call-argument staging buffer, reused across every call in this
    // activation so the hot path never allocates per call.
    let mut scratch: Vec<Word> = Vec::with_capacity(NUM_ARG_REGS);

    loop {
        let depth = frames.len() - 1;
        let (cur_func, pc) = {
            let fr = &frames[depth];
            (fr.func, fr.pc)
        };
        let body = &program.funcs[cur_func.0 as usize].insts;
        let inst = body.get(pc).ok_or(Trap::FellThrough)?;
        env.consume(costs::cost(inst))?;

        // Default control flow: advance. Branches overwrite below.
        frames[depth].pc = pc + 1;

        match inst {
            Inst::Mov { dst, src } => {
                let v = eval(&frames[depth].regs, *src);
                frames[depth].regs[dst.0 as usize] = v;
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let l = eval(&frames[depth].regs, *lhs);
                let r = eval(&frames[depth].regs, *rhs);
                frames[depth].regs[dst.0 as usize] = binop(*op, l, r)?;
            }
            Inst::Load {
                dst,
                base,
                off,
                width,
            } => {
                let addr = eval(&frames[depth].regs, *base).wrapping_add(*off as u64);
                let v = env.mem().read(addr, *width)?;
                frames[depth].regs[dst.0 as usize] = v;
            }
            Inst::Store {
                src,
                base,
                off,
                width,
            } => {
                let addr = eval(&frames[depth].regs, *base).wrapping_add(*off as u64);
                let v = eval(&frames[depth].regs, *src);
                env.mem().write(addr, v, *width)?;
            }
            Inst::LoadFrame { dst, off, width } => {
                let addr = frames[depth].sp + *off as u64;
                let v = env.mem().read(addr, *width)?;
                frames[depth].regs[dst.0 as usize] = v;
            }
            Inst::StoreFrame { src, off, width } => {
                let addr = frames[depth].sp + *off as u64;
                let v = eval(&frames[depth].regs, *src);
                env.mem().write(addr, v, *width)?;
            }
            Inst::FrameAddr { dst, off } => {
                frames[depth].regs[dst.0 as usize] = frames[depth].sp + *off as u64;
            }
            Inst::GlobalAddr { dst, global } => {
                frames[depth].regs[dst.0 as usize] = env.global_addr(*global)?;
            }
            Inst::SymAddr { dst, sym } => {
                frames[depth].regs[dst.0 as usize] = env.sym_addr(*sym)?;
            }
            Inst::FuncAddr { dst, func } => {
                frames[depth].regs[dst.0 as usize] = env.func_addr(*func)?;
            }
            Inst::Jmp { target } => {
                frames[depth].pc = *target;
            }
            Inst::Br {
                cond,
                lhs,
                rhs,
                target,
            } => {
                let l = eval(&frames[depth].regs, *lhs);
                let r = eval(&frames[depth].regs, *rhs);
                if cond.eval(l, r) {
                    frames[depth].pc = *target;
                }
            }
            Inst::CallLocal { func, args, ret } => {
                scratch.clear();
                scratch.extend(args.iter().map(|a| eval(&frames[depth].regs, *a)));
                let fr = new_frame(env, program, *func, &scratch, *ret)?;
                frames.push(fr);
            }
            Inst::CallExtern { sym, args, ret } => {
                scratch.clear();
                scratch.extend(args.iter().map(|a| eval(&frames[depth].regs, *a)));
                let v = env.call_extern(*sym, &scratch)?;
                if let Some(r) = ret {
                    frames[depth].regs[r.0 as usize] = v;
                }
            }
            Inst::CallPtr {
                ptr,
                sig,
                args,
                ret,
            } => {
                let target = eval(&frames[depth].regs, *ptr);
                scratch.clear();
                scratch.extend(args.iter().map(|a| eval(&frames[depth].regs, *a)));
                let v = env.call_ptr(target, *sig, &scratch)?;
                if let Some(r) = ret {
                    frames[depth].regs[r.0 as usize] = v;
                }
            }
            Inst::Ret { val } => {
                let v = val.map(|v| eval(&frames[depth].regs, v)).unwrap_or(0);
                let done = frames.pop().expect("frame stack non-empty");
                env.pop_frame(done.frame_size);
                match frames.last_mut() {
                    None => return Ok(v),
                    Some(caller) => {
                        if let Some(r) = done.ret_to {
                            caller.regs[r.0 as usize] = v;
                        }
                    }
                }
            }
            Inst::Trap { code } => return Err(Trap::Bug(*code)),
            Inst::Nop => {}
            Inst::GuardWrite { base, off, len } => {
                let addr = eval(&frames[depth].regs, *base).wrapping_add(*off as u64);
                let l = eval(&frames[depth].regs, *len);
                env.guard_write(addr, l)?;
            }
            Inst::GuardIndCall {
                slot_base,
                slot_off,
                sig,
            } => {
                let slot = eval(&frames[depth].regs, *slot_base).wrapping_add(*slot_off as u64);
                env.guard_indcall(slot, *sig)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::regs::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{Cond, Width};

    /// An extern-call handler in the test environment.
    pub type ExternFn = Box<dyn FnMut(&AddressSpace, &[Word]) -> Word>;

    /// Minimal test environment: one stack, no isolation, extern calls
    /// dispatch to a table of closures.
    pub struct TestEnv {
        pub mem: AddressSpace,
        pub fuel: u64,
        pub sp: Word,
        pub stack_base: Word,
        pub externs: Vec<ExternFn>,
        pub guard_log: Vec<(Word, Word)>,
    }

    impl TestEnv {
        pub fn new() -> Self {
            let mem = AddressSpace::new();
            let stack_top = 0xffff_9000_0001_0000u64;
            let stack_base = stack_top - 0x4000;
            mem.map_range(stack_base, 0x4000);
            TestEnv {
                mem,
                fuel: 1_000_000,
                sp: stack_top,
                stack_base,
                externs: Vec::new(),
                guard_log: Vec::new(),
            }
        }
    }

    impl Env for TestEnv {
        fn mem(&self) -> &AddressSpace {
            &self.mem
        }
        fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
            if self.fuel < cycles {
                return Err(Trap::OutOfFuel);
            }
            self.fuel -= cycles;
            Ok(())
        }
        fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
            let size = (size as u64 + 15) & !15;
            if self.sp - size < self.stack_base {
                return Err(Trap::StackOverflow);
            }
            self.sp -= size;
            Ok(self.sp)
        }
        fn pop_frame(&mut self, size: u32) {
            let size = (size as u64 + 15) & !15;
            self.sp += size;
        }
        fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap> {
            self.guard_log.push((addr, len));
            Ok(())
        }
        fn guard_indcall(&mut self, _slot: Word, _sig: SigId) -> Result<(), Trap> {
            Ok(())
        }
        fn call_extern(&mut self, sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
            let mem = &self.mem as *const AddressSpace;
            let f = self
                .externs
                .get_mut(sym.0 as usize)
                .ok_or_else(|| Trap::BadRef(format!("extern {}", sym.0)))?;
            // SAFETY: `mem` outlives the call; closures only touch memory,
            // which is interior-mutable through `&AddressSpace`.
            Ok(f(unsafe { &*mem }, args))
        }
        fn call_ptr(&mut self, _target: Word, _sig: SigId, _args: &[Word]) -> Result<Word, Trap> {
            Err(Trap::BadRef("indirect calls unsupported in TestEnv".into()))
        }
        fn global_addr(&self, _global: GlobalId) -> Result<Word, Trap> {
            Err(Trap::BadRef("globals unsupported in TestEnv".into()))
        }
        fn sym_addr(&self, _sym: SymbolId) -> Result<Word, Trap> {
            Err(Trap::BadRef("symbols unsupported in TestEnv".into()))
        }
        fn func_addr(&self, func: FuncId) -> Result<Word, Trap> {
            Ok(0xf000_0000 + func.0 as u64 * 16)
        }
    }

    #[test]
    fn arithmetic_and_branches() {
        let mut pb = ProgramBuilder::new("t");
        // sum 0..n
        let f = pb.define("sum", 1, 0, |f| {
            let top = f.label();
            let out = f.label();
            f.mov(R1, 0i64);
            f.bind(top);
            f.br(Cond::Eq, R0, 0i64, out);
            f.add(R1, R1, R0);
            f.sub(R0, R0, 1i64);
            f.jmp(top);
            f.bind(out);
            f.ret(R1);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        assert_eq!(run_function(&mut env, &p, f, &[10]).unwrap(), 55);
        assert_eq!(run_function(&mut env, &p, f, &[0]).unwrap(), 0);
    }

    #[test]
    fn local_calls_and_recursion() {
        let mut pb = ProgramBuilder::new("t");
        let fib = pb.declare("fib", 1);
        pb.define("fib", 1, 0, |f| {
            let rec = f.label();
            f.br(Cond::Ult, 1i64, R0, rec); // if n > 1 goto rec
            f.ret(R0);
            f.bind(rec);
            f.sub(R1, R0, 1i64);
            f.sub(R2, R0, 2i64);
            f.mov(R5, R0);
            f.call_local(fib, &[R1.into()], Some(R3));
            // Registers are per-frame, so R2 survives the call.
            f.call_local(fib, &[R2.into()], Some(R4));
            f.add(R0, R3, R4);
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        assert_eq!(run_function(&mut env, &p, fib, &[10]).unwrap(), 55);
    }

    #[test]
    fn frame_locals_are_per_frame() {
        let mut pb = ProgramBuilder::new("t");
        let inner = pb.declare("inner", 0);
        pb.define("inner", 0, 16, |f| {
            f.store_frame(99i64, 0, Width::B8);
            f.ret_void();
        });
        let outer = pb.define("outer", 0, 16, |f| {
            f.store_frame(7i64, 0, Width::B8);
            f.call_local(inner, &[], None);
            f.load_frame(R0, 0, Width::B8);
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        assert_eq!(run_function(&mut env, &p, outer, &[]).unwrap(), 7);
    }

    #[test]
    fn frame_addr_points_at_local() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("f", 0, 32, |f| {
            f.store_frame(0xabcdi64, 8, Width::B8);
            f.frame_addr(R1, 8);
            f.load8(R0, R1, 0);
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        assert_eq!(run_function(&mut env, &p, f, &[]).unwrap(), 0xabcd);
    }

    #[test]
    fn extern_calls_dispatch() {
        let mut pb = ProgramBuilder::new("t");
        let s = pb.import_func("add_ext");
        let f = pb.define("f", 2, 0, |f| {
            f.call_extern(s, &[R0.into(), R1.into()], Some(R0));
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        env.externs.push(Box::new(|_m, args| args[0] + args[1]));
        assert_eq!(run_function(&mut env, &p, f, &[3, 4]).unwrap(), 7);
    }

    #[test]
    fn stack_overflow_detected_and_unwound() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.declare("spin", 0);
        pb.define("spin", 0, 1024, |f2| {
            f2.call_local(f, &[], None);
            f2.ret_void();
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        let sp0 = env.sp;
        let err = run_function(&mut env, &p, f, &[]).unwrap_err();
        assert!(matches!(err, Trap::StackOverflow));
        assert_eq!(env.sp, sp0, "stack pointer restored after trap");
    }

    #[test]
    fn fuel_exhaustion() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("loopy", 0, 0, |f| {
            let top = f.label();
            f.bind(top);
            f.jmp(top);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        env.fuel = 1000;
        let err = run_function(&mut env, &p, f, &[]).unwrap_err();
        assert!(matches!(err, Trap::OutOfFuel));
    }

    #[test]
    fn bug_traps() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("buggy", 0, 0, |f| f.trap(42));
        let p = pb.finish();
        let mut env = TestEnv::new();
        let err = run_function(&mut env, &p, f, &[]).unwrap_err();
        assert!(matches!(err, Trap::Bug(42)));
    }

    #[test]
    fn guards_reach_env() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("g", 1, 0, |f| {
            f.guard_write(R0, 8, 16i64);
            f.store8(1i64, R0, 8);
            f.ret_void();
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        env.mem.map_range(0x8000, 64);
        run_function(&mut env, &p, f, &[0x8000]).unwrap();
        assert_eq!(env.guard_log, vec![(0x8008, 16)]);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("d", 2, 0, |f| {
            f.bin(BinOp::Div, R0, R0, R1);
            f.ret(R0);
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        assert_eq!(run_function(&mut env, &p, f, &[10, 2]).unwrap(), 5);
        let err = run_function(&mut env, &p, f, &[10, 0]).unwrap_err();
        assert!(matches!(err, Trap::DivByZero));
    }

    #[test]
    fn memfault_on_wild_store() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("wild", 1, 0, |f| {
            f.store8(0i64, R0, 0);
            f.ret_void();
        });
        let p = pb.finish();
        let mut env = TestEnv::new();
        let err = run_function(&mut env, &p, f, &[0xdead0000]).unwrap_err();
        assert!(matches!(err, Trap::MemFault { write: true, .. }));
    }
}
