//! Program containers: functions, globals, imports, and function-pointer
//! type declarations.

use crate::isa::Inst;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a module global within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Index into a program's import table (kernel symbols the module uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolId(pub u32);

/// Index into a program's function-pointer type table.
///
/// Every indirect call site and every function-pointer-typed field carries
/// a `SigId`; LXFI attaches interface annotations to these types and
/// compares annotation hashes across them (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigId(pub u32);

/// Kind of an imported kernel symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportKind {
    /// An exported kernel function; calls go through an LXFI wrapper.
    Func,
    /// An exported kernel data object; the module receives a WRITE
    /// capability for it at load time (§4.2).
    Data,
}

/// An entry in the module's symbol table of imports.
#[derive(Debug, Clone)]
pub struct Import {
    /// Kernel symbol name, e.g. `"kmalloc"`.
    pub name: String,
    /// Function or data import.
    pub kind: ImportKind,
}

/// A module global variable (lives in the module's `.data`/`.bss`/rodata).
#[derive(Debug, Clone)]
pub struct GlobalDef {
    /// Name, for diagnostics and disassembly.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// If false the global lands in the module's read-only section and the
    /// module gets no WRITE capability for it (this is what stops the RDS
    /// exploit from overwriting `rds_proto_ops.ioctl`, §8.1).
    pub writable: bool,
    /// Optional initial contents (zero-filled when absent or short).
    pub init: Option<Vec<u8>>,
}

/// A declared function-pointer type.
#[derive(Debug, Clone)]
pub struct SigDecl {
    /// Type name, e.g. `"ndo_start_xmit"`.
    pub name: String,
    /// Number of parameters functions of this type take.
    pub params: u8,
}

/// A KIR function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of parameters, passed in `r0..`.
    pub params: u8,
    /// Frame size in bytes for locals; carved from the kernel thread stack.
    pub frame_size: u32,
    /// Instruction stream; branch targets are absolute indices.
    pub insts: Vec<Inst>,
}

/// A fact recorded by the module author: local function `func` is used as a
/// value of function-pointer type `sig` (assigned into a struct field,
/// passed as a callback, ...). The rewriter's annotation-propagation pass
/// consumes these (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigAssignment {
    /// The module-local function.
    pub func: FuncId,
    /// The function-pointer type it is assigned to.
    pub sig: SigId,
}

/// A load-time function-pointer relocation: the loader writes the address
/// of `func` into `global` at byte `offset`. This is how C modules
/// initialize static ops tables (`struct proto_ops rds_proto_ops = {
/// .ioctl = rds_ioctl, ... }`) — including read-only ones the module
/// itself could never write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnReloc {
    /// Target global.
    pub global: GlobalId,
    /// Byte offset within the global.
    pub offset: u64,
    /// The module-local function whose address is written.
    pub func: FuncId,
}

/// A complete KIR program (one kernel module, or a core-kernel thunk set).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Program name (module name).
    pub name: String,
    /// All functions. `FuncId` indexes this vector.
    pub funcs: Vec<Function>,
    /// Module globals. `GlobalId` indexes this vector.
    pub globals: Vec<GlobalDef>,
    /// Imported kernel symbols. `SymbolId` indexes this vector.
    pub imports: Vec<Import>,
    /// Function-pointer types referenced by the program. `SigId` indexes
    /// this vector.
    pub sigs: Vec<SigDecl>,
    /// Function-to-signature assignment facts for annotation propagation.
    pub sig_assignments: Vec<SigAssignment>,
    /// Static-initializer function-pointer relocations.
    pub fn_relocs: Vec<FnReloc>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Returns the function for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up an import by name.
    pub fn import_by_name(&self, name: &str) -> Option<SymbolId> {
        self.imports
            .iter()
            .position(|i| i.name == name)
            .map(|i| SymbolId(i as u32))
    }

    /// Looks up a signature by name.
    pub fn sig_by_name(&self, name: &str) -> Option<SigId> {
        self.sigs
            .iter()
            .position(|s| s.name == name)
            .map(|i| SigId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Total instruction count across all functions — the "code size"
    /// metric for Figure 11's Δ-code-size column.
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new("m");
        p.funcs.push(Function {
            name: "f".into(),
            params: 1,
            frame_size: 16,
            insts: vec![Inst::Ret { val: None }],
        });
        p.imports.push(Import {
            name: "kmalloc".into(),
            kind: ImportKind::Func,
        });
        p.globals.push(GlobalDef {
            name: "state".into(),
            size: 64,
            writable: true,
            init: None,
        });
        p.sigs.push(SigDecl {
            name: "cb".into(),
            params: 2,
        });
        p
    }

    #[test]
    fn lookup_by_name() {
        let p = sample();
        assert_eq!(p.func_by_name("f"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("g"), None);
        assert_eq!(p.import_by_name("kmalloc"), Some(SymbolId(0)));
        assert_eq!(p.import_by_name("kfree"), None);
        assert_eq!(p.sig_by_name("cb"), Some(SigId(0)));
        assert_eq!(p.global_by_name("state"), Some(GlobalId(0)));
    }

    #[test]
    fn code_size_counts_all_functions() {
        let mut p = sample();
        p.funcs.push(Function {
            name: "g".into(),
            params: 0,
            frame_size: 0,
            insts: vec![Inst::Nop, Inst::Ret { val: None }],
        });
        assert_eq!(p.code_size(), 3);
    }
}
