//! KIR — the kernel intermediate representation and interpreter underlying LXFI.
//!
//! The LXFI paper instruments x86-64 machine code emitted by gcc/clang
//! plugins. This crate provides the equivalent substrate for the
//! reproduction: a small register machine ("KIR") whose programs stand in
//! for compiled kernel-module code. The LXFI rewriter
//! (`lxfi-rewriter`) edits KIR programs — inserting write guards and
//! indirect-call guards — and the interpreter in [`interp`] raises the
//! corresponding events against an [`Env`] implementation (the simulated
//! kernel), which is where the LXFI runtime enforces policy.
//!
//! Design points:
//!
//! - 16 general-purpose registers, a per-function frame carved out of the
//!   current kernel thread's stack in the *simulated* address space, and a
//!   64-bit flat memory model ([`mem::AddressSpace`]).
//! - Separate frame-relative access instructions ([`isa::Inst::StoreFrame`]
//!   et al.) whose bounds are statically verified; the rewriter uses this to
//!   elide guards for provably in-frame stores, which is the optimization
//!   the paper credits for MD5's low overhead (§8.3).
//! - Deterministic cycle accounting so the network cost model and guard
//!   statistics are reproducible run-to-run.
//! - A disassembler/assembler pair used by property tests to check
//!   round-tripping, and by humans to debug module programs.

#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod compile;
pub mod costs;
pub mod disasm;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod program;
pub mod soundness;
pub mod verify;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use compile::{run_compiled, Backend, CompileStats, CompiledProgram};
pub use interp::{run_function, Env};
pub use isa::{BinOp, Cond, Inst, Operand, Reg, Width};
pub use mem::{AddressSpace, PageHandle, PAGE_SIZE};
pub use program::{
    FuncId, Function, GlobalDef, GlobalId, Import, ImportKind, Program, SigId, SymbolId,
};
pub use soundness::{verify_soundness, SoundnessPolicy, SoundnessReport};
pub use verify::verify_program;

/// Machine word: all registers and addresses are 64-bit.
pub type Word = u64;

/// Errors raised while executing KIR code.
///
/// `Policy` wraps violations produced by the LXFI runtime (an opaque boxed
/// error so this crate stays independent of `lxfi-core`); callers downcast
/// to assert on specific violation kinds.
#[derive(Debug)]
pub enum Trap {
    /// Access to an unmapped simulated address.
    MemFault {
        /// Faulting simulated address.
        addr: Word,
        /// Access length in bytes.
        len: u64,
        /// True for a write access, false for a read.
        write: bool,
    },
    /// The kernel thread stack cannot hold another frame.
    StackOverflow,
    /// Division or remainder by zero.
    DivByZero,
    /// Program counter fell off the end of a function.
    FellThrough,
    /// Explicit `Trap` instruction — the module called `BUG()`.
    Bug(u64),
    /// The environment's instruction budget is exhausted.
    OutOfFuel,
    /// Reference to an unknown function, symbol, or global.
    BadRef(String),
    /// An LXFI policy violation or other environment-defined error.
    Policy(Box<dyn std::error::Error + Send + Sync>),
}

impl Trap {
    /// Downcasts a `Policy` trap to a concrete error type.
    pub fn policy_as<E: std::error::Error + 'static>(&self) -> Option<&E> {
        match self {
            Trap::Policy(e) => e.downcast_ref::<E>(),
            _ => None,
        }
    }

    /// Returns true if this trap is a policy violation (as opposed to a
    /// machine-level fault).
    pub fn is_policy(&self) -> bool {
        matches!(self, Trap::Policy(_))
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::MemFault { addr, len, write } => write!(
                f,
                "memory fault: {} {:#x} len {}",
                if *write { "write" } else { "read" },
                addr,
                len
            ),
            Trap::StackOverflow => write!(f, "kernel stack overflow"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::FellThrough => write!(f, "control fell through end of function"),
            Trap::Bug(code) => write!(f, "BUG({code})"),
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::BadRef(what) => write!(f, "bad reference: {what}"),
            Trap::Policy(e) => write!(f, "policy violation: {e}"),
        }
    }
}

impl std::error::Error for Trap {}
