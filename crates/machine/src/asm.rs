//! Parser for the textual KIR format produced by [`crate::disasm`].
//!
//! Used by property tests (disassemble → assemble round trip) and handy
//! for writing small fixture programs as strings.

use std::collections::HashMap;

use crate::isa::{BinOp, Cond, Inst, Operand, Reg, Width};
use crate::program::{
    FuncId, Function, GlobalDef, Import, ImportKind, Program, SigAssignment, SigDecl, SigId,
};

/// Error produced while parsing KIR text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parses a complete program from text.
pub fn assemble(text: &str) -> Result<Program, ParseError> {
    let mut p = Program::default();
    let mut pending_assigns: Vec<(String, String, usize)> = Vec::new();
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    let mut cur: Option<Function> = None;

    // First pass: collect function names so forward calls resolve.
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("func ") {
            let name = rest
                .split('(')
                .next()
                .ok_or_else(|| ParseError {
                    line: ln + 1,
                    msg: "bad func header".into(),
                })?
                .trim();
            func_ids.insert(name.to_string(), FuncId(func_ids.len() as u32));
        }
    }

    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("program ") {
            p.name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("import ") {
            let mut it = rest.split_whitespace();
            let kind = match it.next() {
                Some("func") => ImportKind::Func,
                Some("data") => ImportKind::Data,
                _ => return err(ln, "import kind must be func|data"),
            };
            let name = it.next().ok_or(ParseError {
                line: ln,
                msg: "missing import name".into(),
            })?;
            p.imports.push(Import {
                name: name.into(),
                kind,
            });
        } else if let Some(rest) = line.strip_prefix("global ") {
            p.globals.push(parse_global(rest, ln)?);
        } else if let Some(rest) = line.strip_prefix("sig ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or_default().to_string();
            let params = it
                .next()
                .and_then(|s| s.strip_prefix("params="))
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError {
                    line: ln,
                    msg: "sig needs params=N".into(),
                })?;
            p.sigs.push(SigDecl { name, params });
        } else if let Some(rest) = line.strip_prefix("reloc ") {
            // `reloc @global+off &func`
            let mut it = rest.split_whitespace();
            let gpart = it.next().unwrap_or_default();
            let fpart = it.next().unwrap_or_default();
            let (gname, off) = gpart
                .strip_prefix('@')
                .and_then(|s| s.split_once('+'))
                .ok_or(ParseError {
                    line: ln,
                    msg: "reloc needs @global+off".into(),
                })?;
            let global = p.global_by_name(gname).ok_or(ParseError {
                line: ln,
                msg: format!("reloc references unknown global {gname}"),
            })?;
            let offset: u64 = off.parse().map_err(|_| ParseError {
                line: ln,
                msg: "bad reloc offset".into(),
            })?;
            let fname = fpart.strip_prefix('&').ok_or(ParseError {
                line: ln,
                msg: "reloc needs &func".into(),
            })?;
            let func = *func_ids.get(fname).ok_or(ParseError {
                line: ln,
                msg: format!("reloc references unknown func {fname}"),
            })?;
            p.fn_relocs.push(crate::program::FnReloc {
                global,
                offset,
                func,
            });
        } else if let Some(rest) = line.strip_prefix("assign ") {
            let mut it = rest.split_whitespace();
            let f = it.next().unwrap_or_default().to_string();
            let s = it.next().unwrap_or_default().to_string();
            pending_assigns.push((f, s, ln));
        } else if let Some(rest) = line.strip_prefix("func ") {
            if let Some(f) = cur.take() {
                p.funcs.push(f);
            }
            cur = Some(parse_func_header(rest, ln)?);
        } else {
            // An instruction line: "N: inst".
            let f = cur.as_mut().ok_or(ParseError {
                line: ln,
                msg: "instruction outside function".into(),
            })?;
            let body = match line.split_once(':') {
                Some((_idx, body)) => body.trim(),
                None => line,
            };
            let inst = parse_inst(body, &p, &func_ids, ln)?;
            f.insts.push(inst);
        }
    }
    if let Some(f) = cur.take() {
        p.funcs.push(f);
    }
    for (fname, sname, ln) in pending_assigns {
        let func = *func_ids.get(&fname).ok_or(ParseError {
            line: ln,
            msg: format!("assign references unknown func {fname}"),
        })?;
        let sig = p.sig_by_name(&sname).ok_or(ParseError {
            line: ln,
            msg: format!("assign references unknown sig {sname}"),
        })?;
        p.sig_assignments.push(SigAssignment { func, sig });
    }
    Ok(p)
}

fn parse_global(rest: &str, ln: usize) -> Result<GlobalDef, ParseError> {
    let mut it = rest.split_whitespace();
    let name = it.next().unwrap_or_default().to_string();
    let mut size = None;
    let mut writable = true;
    let mut init = None;
    for tok in it {
        if let Some(s) = tok.strip_prefix("size=") {
            size = s.parse().ok();
        } else if tok == "rw" {
            writable = true;
        } else if tok == "ro" {
            writable = false;
        } else if let Some(hex) = tok.strip_prefix("init=") {
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            let h = hex.as_bytes();
            if h.len() % 2 != 0 {
                return err(ln, "odd-length init hex");
            }
            for ch in h.chunks(2) {
                let s = std::str::from_utf8(ch).unwrap();
                bytes.push(u8::from_str_radix(s, 16).map_err(|_| ParseError {
                    line: ln,
                    msg: "bad init hex".into(),
                })?);
            }
            init = Some(bytes);
        } else {
            return err(ln, format!("unknown global attribute {tok}"));
        }
    }
    Ok(GlobalDef {
        name,
        size: size.ok_or(ParseError {
            line: ln,
            msg: "global needs size=N".into(),
        })?,
        writable,
        init,
    })
}

fn parse_func_header(rest: &str, ln: usize) -> Result<Function, ParseError> {
    // `name(params=N, frame=M):`
    let (name, tail) = rest.split_once('(').ok_or(ParseError {
        line: ln,
        msg: "func header missing (".into(),
    })?;
    let tail = tail.trim_end_matches(':').trim_end_matches(')');
    let mut params = 0u8;
    let mut frame = 0u32;
    for part in tail.split(',') {
        let part = part.trim();
        if let Some(v) = part.strip_prefix("params=") {
            params = v.parse().map_err(|_| ParseError {
                line: ln,
                msg: "bad params".into(),
            })?;
        } else if let Some(v) = part.strip_prefix("frame=") {
            frame = v.parse().map_err(|_| ParseError {
                line: ln,
                msg: "bad frame".into(),
            })?;
        }
    }
    Ok(Function {
        name: name.trim().to_string(),
        params,
        frame_size: frame,
        insts: Vec::new(),
    })
}

fn parse_reg(tok: &str, ln: usize) -> Result<Reg, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(n) = t.strip_prefix('r') {
        if let Ok(v) = n.parse::<u8>() {
            if (v as usize) < crate::isa::NUM_REGS {
                return Ok(Reg(v));
            }
        }
    }
    err(ln, format!("bad register `{tok}`"))
}

fn parse_operand(tok: &str, ln: usize) -> Result<Operand, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    if t.starts_with('r') && t[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(Operand::Reg(parse_reg(t, ln)?));
    }
    t.parse::<i64>().map(Operand::Imm).map_err(|_| ParseError {
        line: ln,
        msg: format!("bad operand `{tok}`"),
    })
}

/// Parses `[base+off]` / `[base-off]` into (base operand, signed offset).
fn parse_addr(tok: &str, ln: usize) -> Result<(Operand, i64), ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or(ParseError {
            line: ln,
            msg: format!("bad address `{tok}`"),
        })?;
    // Find the +/- separating base from offset (skip a leading sign).
    let mut split = None;
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            split = Some(i);
            break;
        }
    }
    let (base_s, off_s) = match split {
        Some(i) => (&inner[..i], &inner[i..]),
        None => (inner, "+0"),
    };
    let base = parse_operand(base_s, ln)?;
    let off = off_s.parse::<i64>().map_err(|_| ParseError {
        line: ln,
        msg: format!("bad offset in `{tok}`"),
    })?;
    Ok((base, off))
}

fn parse_width(s: &str, ln: usize) -> Result<Width, ParseError> {
    match s {
        "1" => Ok(Width::B1),
        "2" => Ok(Width::B2),
        "4" => Ok(Width::B4),
        "8" => Ok(Width::B8),
        _ => err(ln, format!("bad width `{s}`")),
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "rotl" => BinOp::Rotl,
        _ => return None,
    })
}

fn parse_cond(s: &str, ln: usize) -> Result<Cond, ParseError> {
    Ok(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "le" => Cond::Le,
        "gt" => Cond::Gt,
        "ge" => Cond::Ge,
        "ult" => Cond::Ult,
        "ule" => Cond::Ule,
        _ => return err(ln, format!("bad condition `{s}`")),
    })
}

/// Parses `name(arg, arg) -> rD` into (name, args, ret).
fn parse_call(rest: &str, ln: usize) -> Result<(String, Vec<Operand>, Option<Reg>), ParseError> {
    let (head, ret) = match rest.split_once("->") {
        Some((h, r)) => (h.trim(), Some(parse_reg(r.trim(), ln)?)),
        None => (rest.trim(), None),
    };
    let (name, args_s) = head.split_once('(').ok_or(ParseError {
        line: ln,
        msg: "call missing (".into(),
    })?;
    let args_s = args_s.trim_end_matches(')');
    let mut args = Vec::new();
    for a in args_s.split(',') {
        let a = a.trim();
        if !a.is_empty() {
            args.push(parse_operand(a, ln)?);
        }
    }
    Ok((name.trim().to_string(), args, ret))
}

fn parse_inst(
    body: &str,
    p: &Program,
    func_ids: &HashMap<String, FuncId>,
    ln: usize,
) -> Result<Inst, ParseError> {
    let (op, rest) = match body.split_once(' ') {
        Some((o, r)) => (o, r.trim()),
        None => (body, ""),
    };
    let (op, suffix) = match op.split_once('.') {
        Some((o, s)) => (o, Some(s)),
        None => (op, None),
    };

    let sig_by_name = |name: &str| -> Result<SigId, ParseError> {
        p.sig_by_name(name).ok_or(ParseError {
            line: ln,
            msg: format!("unknown sig `{name}`"),
        })
    };

    match op {
        "mov" => {
            let (d, s) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "mov needs 2 operands".into(),
            })?;
            Ok(Inst::Mov {
                dst: parse_reg(d, ln)?,
                src: parse_operand(s, ln)?,
            })
        }
        _ if parse_binop(op).is_some() => {
            let parts: Vec<&str> = rest.split(',').map(|s| s.trim()).collect();
            if parts.len() != 3 {
                return err(ln, "binop needs 3 operands");
            }
            Ok(Inst::Bin {
                op: parse_binop(op).unwrap(),
                dst: parse_reg(parts[0], ln)?,
                lhs: parse_operand(parts[1], ln)?,
                rhs: parse_operand(parts[2], ln)?,
            })
        }
        "load" => {
            let (d, a) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "load needs dst, [addr]".into(),
            })?;
            let (base, off) = parse_addr(a, ln)?;
            Ok(Inst::Load {
                dst: parse_reg(d, ln)?,
                base,
                off,
                width: parse_width(suffix.unwrap_or("8"), ln)?,
            })
        }
        "store" => {
            let (a, s) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "store needs [addr], src".into(),
            })?;
            let (base, off) = parse_addr(a, ln)?;
            Ok(Inst::Store {
                src: parse_operand(s, ln)?,
                base,
                off,
                width: parse_width(suffix.unwrap_or("8"), ln)?,
            })
        }
        "loadf" => {
            let (d, a) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "loadf needs dst, [sp+off]".into(),
            })?;
            let off = parse_sp_off(a, ln)?;
            Ok(Inst::LoadFrame {
                dst: parse_reg(d, ln)?,
                off,
                width: parse_width(suffix.unwrap_or("8"), ln)?,
            })
        }
        "storef" => {
            let (a, s) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "storef needs [sp+off], src".into(),
            })?;
            let off = parse_sp_off(a, ln)?;
            Ok(Inst::StoreFrame {
                src: parse_operand(s, ln)?,
                off,
                width: parse_width(suffix.unwrap_or("8"), ln)?,
            })
        }
        "frameaddr" => {
            let (d, a) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "frameaddr needs dst, sp+off".into(),
            })?;
            let off = a
                .trim()
                .strip_prefix("sp+")
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError {
                    line: ln,
                    msg: "frameaddr needs sp+off".into(),
                })?;
            Ok(Inst::FrameAddr {
                dst: parse_reg(d, ln)?,
                off,
            })
        }
        "globaladdr" => {
            let (d, g) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "globaladdr needs dst, @name".into(),
            })?;
            let name = g.trim().strip_prefix('@').ok_or(ParseError {
                line: ln,
                msg: "global name must start with @".into(),
            })?;
            let global = p.global_by_name(name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown global `{name}`"),
            })?;
            Ok(Inst::GlobalAddr {
                dst: parse_reg(d, ln)?,
                global,
            })
        }
        "symaddr" => {
            let (d, s) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "symaddr needs dst, $name".into(),
            })?;
            let name = s.trim().strip_prefix('$').ok_or(ParseError {
                line: ln,
                msg: "symbol name must start with $".into(),
            })?;
            let sym = p.import_by_name(name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown import `{name}`"),
            })?;
            Ok(Inst::SymAddr {
                dst: parse_reg(d, ln)?,
                sym,
            })
        }
        "funcaddr" => {
            let (d, f) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "funcaddr needs dst, &name".into(),
            })?;
            let name = f.trim().strip_prefix('&').ok_or(ParseError {
                line: ln,
                msg: "function name must start with &".into(),
            })?;
            let func = *func_ids.get(name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown function `{name}`"),
            })?;
            Ok(Inst::FuncAddr {
                dst: parse_reg(d, ln)?,
                func,
            })
        }
        "jmp" => {
            let t = rest.strip_prefix("->").ok_or(ParseError {
                line: ln,
                msg: "jmp needs -> target".into(),
            })?;
            Ok(Inst::Jmp {
                target: t.trim().parse().map_err(|_| ParseError {
                    line: ln,
                    msg: "bad jump target".into(),
                })?,
            })
        }
        "br" => {
            let cond = parse_cond(suffix.unwrap_or(""), ln)?;
            let (ops, t) = rest.split_once("->").ok_or(ParseError {
                line: ln,
                msg: "br needs -> target".into(),
            })?;
            let parts: Vec<&str> = ops.split(',').map(|s| s.trim()).collect();
            if parts.len() != 2 {
                return err(ln, "br needs 2 operands");
            }
            Ok(Inst::Br {
                cond,
                lhs: parse_operand(parts[0], ln)?,
                rhs: parse_operand(parts[1], ln)?,
                target: t.trim().parse().map_err(|_| ParseError {
                    line: ln,
                    msg: "bad branch target".into(),
                })?,
            })
        }
        "call" => {
            let (name, args, ret) = parse_call(rest, ln)?;
            let func = *func_ids.get(&name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown function `{name}`"),
            })?;
            Ok(Inst::CallLocal { func, args, ret })
        }
        "ecall" => {
            let (name, args, ret) = parse_call(rest, ln)?;
            let sym = p.import_by_name(&name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown import `{name}`"),
            })?;
            Ok(Inst::CallExtern { sym, args, ret })
        }
        "icall" => {
            // `ptr:sig(args) [-> rD]`
            let (ptr_s, tail) = rest.split_once(':').ok_or(ParseError {
                line: ln,
                msg: "icall needs ptr:sig".into(),
            })?;
            let (name, args, ret) = parse_call(tail, ln)?;
            Ok(Inst::CallPtr {
                ptr: parse_operand(ptr_s, ln)?,
                sig: sig_by_name(&name)?,
                args,
                ret,
            })
        }
        "ret" => {
            if rest.is_empty() {
                Ok(Inst::Ret { val: None })
            } else {
                Ok(Inst::Ret {
                    val: Some(parse_operand(rest, ln)?),
                })
            }
        }
        "trap" => Ok(Inst::Trap {
            code: rest.parse().map_err(|_| ParseError {
                line: ln,
                msg: "bad trap code".into(),
            })?,
        }),
        "nop" => Ok(Inst::Nop),
        "guard_write" => {
            let (a, l) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "guard_write needs [addr], len".into(),
            })?;
            let (base, off) = parse_addr(a, ln)?;
            Ok(Inst::GuardWrite {
                base,
                off,
                len: parse_operand(l, ln)?,
            })
        }
        "guard_indcall" => {
            let (a, s) = rest.split_once(':').ok_or(ParseError {
                line: ln,
                msg: "guard_indcall needs [slot]: sig".into(),
            })?;
            let (slot_base, slot_off) = parse_addr(a, ln)?;
            Ok(Inst::GuardIndCall {
                slot_base,
                slot_off,
                sig: sig_by_name(s.trim())?,
            })
        }
        _ => err(ln, format!("unknown instruction `{body}`")),
    }
}

fn parse_sp_off(tok: &str, ln: usize) -> Result<u32, ParseError> {
    tok.trim()
        .trim_end_matches(',')
        .strip_prefix("[sp+")
        .and_then(|s| s.strip_suffix(']'))
        .and_then(|s| s.parse().ok())
        .ok_or(ParseError {
            line: ln,
            msg: format!("bad frame address `{tok}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn roundtrip_small_program() {
        let text = "\
program demo
import func kmalloc
import data jiffies
global tbl size=64 rw
global ops size=32 ro init=0102ff
sig cb params=2
assign f cb

func f(params=1, frame=32):
  0: mov r1, -3
  1: load.4 r2, [r0+8]
  2: store.8 [r1-16], r2
  3: loadf.8 r3, [sp+8]
  4: storef.4 [sp+12], r3
  5: frameaddr r4, sp+16
  6: globaladdr r5, @tbl
  7: symaddr r6, $jiffies
  8: funcaddr r7, &f
  9: br.ult r2, r3 -> 12
  10: ecall kmalloc(r0, 64) -> r8
  11: icall r8:cb(r1, r2) -> r9
  12: guard_write [r5+0], 64
  13: guard_indcall [r5+8]: cb
  14: call f(r0) -> r0
  15: ret r0
";
        let p = assemble(text).expect("parse");
        let rendered = disassemble(&p);
        let p2 = assemble(&rendered).expect("reparse");
        let rendered2 = disassemble(&p2);
        assert_eq!(rendered, rendered2, "disassembly is a fixpoint");
        assert_eq!(p.funcs[0].insts, p2.funcs[0].insts);
        assert_eq!(p.funcs[0].frame_size, 32);
        assert_eq!(p.globals[1].init.as_deref(), Some(&[1u8, 2, 0xff][..]));
        assert!(!p.globals[1].writable);
        assert_eq!(p.sig_assignments.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("program x\nfunc f(params=0, frame=0):\n  0: bogus r1\n").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
