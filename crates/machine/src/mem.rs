//! Simulated 64-bit flat address space with demand-mapped 4 KiB pages,
//! shareable across OS threads.
//!
//! The kernel substrate decides the layout (user space low, kernel high,
//! module sections, thread stacks); this module only provides mapped-page
//! storage with typed reads and writes. Access to an unmapped address is a
//! [`Trap::MemFault`], which models a hardware page fault / kernel oops.
//!
//! # Concurrency model
//!
//! Since the multi-CPU kernel split, every access takes `&self` and the
//! type is `Send + Sync`:
//!
//! - The page table is a 4-level radix tree of `AtomicPtr` slots (13 bits
//!   per level over the 52-bit page number). Lookup on the data path is
//!   four acquire loads — **no locks** — which is what keeps guarded
//!   module stores lock-free end to end (guard = private epoch cache,
//!   store = radix walk + atomic word write).
//! - Pages are arrays of `AtomicU64`. Aligned word-sized accesses are
//!   single atomic operations (never torn); sub-word and unaligned
//!   accesses read-modify-write the containing word(s) with a CAS loop.
//!   Like real SMP memory, *racing* writes to overlapping ranges may
//!   interleave at word granularity — isolation never depends on payload
//!   atomicity, only on the guard that precedes the store.
//! - `map_range` inserts pages with CAS (the loser of a racing insert
//!   frees its page); `unmap_range` detaches the page pointer and
//!   *retires* the page to a side list freed on drop, so a racing reader
//!   that already holds the pointer reads stale-but-valid memory instead
//!   of freed memory. Unmapping concurrently with access to the same
//!   range is a semantic race (the access may fault) but never unsound.
//! - Byte-range operations validate `is_mapped` up front so a
//!   single-threaded fault is atomic (no partial write); a concurrent
//!   unmap can still interrupt a cross-page write midway, exactly like a
//!   TLB shootdown racing a store on real hardware.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::isa::Width;
use crate::{Trap, Word};

/// Page size of the simulated address space (matches the 12-bit masking
/// used by LXFI's WRITE-capability hash table, §5).
pub const PAGE_SIZE: u64 = 4096;

const PAGE_SHIFT: u32 = 12;
/// 64-bit words per page.
const PAGE_WORDS: usize = (PAGE_SIZE / 8) as usize;
/// Radix fan-out per level: 13 bits × 4 levels = the 52-bit page number.
const FAN_BITS: u32 = 13;
const FAN: usize = 1 << FAN_BITS;
const FAN_MASK: u64 = (FAN as u64) - 1;

/// One mapped page: 512 atomic words.
struct Page {
    words: [AtomicU64; PAGE_WORDS],
}

impl Page {
    fn new_zeroed() -> Box<Page> {
        Box::new(Page {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }
}

/// A radix node: `FAN` atomic child pointers, lazily populated.
struct Node<T> {
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Node<T> {
    fn new() -> Box<Node<T>> {
        Box::new(Node {
            slots: (0..FAN)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }

    /// The child at `i`, if present (acquire load).
    fn get(&self, i: usize) -> Option<&T> {
        let p = self.slots[i].load(Ordering::Acquire);
        // SAFETY: a non-null slot always points at a child installed by
        // `install` below and kept alive until `Drop` (children detached
        // by unmap are retired, not freed).
        (!p.is_null()).then(|| unsafe { &*p })
    }

    /// Installs a child built by `make` at `i` unless one exists; either
    /// way returns the resident child. The loser of a CAS race frees its
    /// candidate.
    fn install(&self, i: usize, make: impl FnOnce() -> Box<T>) -> (&T, bool) {
        let p = self.slots[i].load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: see `get`.
            return (unsafe { &*p }, false);
        }
        let fresh = Box::into_raw(make());
        match self.slots[i].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we just installed `fresh`; it stays alive until Drop.
            Ok(_) => (unsafe { &*fresh }, true),
            Err(cur) => {
                // SAFETY: `fresh` never escaped; reclaim it.
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: see `get`.
                (unsafe { &*cur }, false)
            }
        }
    }
}

type L3 = Node<Page>;
type L2 = Node<L3>;
type L1 = Node<L2>;

/// A page detached by `unmap_range`, kept alive until the address space
/// drops so lock-free readers never dereference freed memory.
struct Retired(*mut Page);
// SAFETY: the raw pointer is only dereferenced for deallocation in Drop,
// with exclusive access.
unsafe impl Send for Retired {}

/// A flat, sparse, page-granular simulated memory (`Send + Sync`; see
/// the module docs for the concurrency model).
pub struct AddressSpace {
    root: Node<L1>,
    mapped: AtomicUsize,
    retired: Mutex<Vec<Retired>>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace {
            root: Node {
                slots: (0..FAN)
                    .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                    .collect(),
            },
            mapped: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }
}

fn free_tree(root: &Node<L1>) {
    for s1 in root.slots.iter() {
        let p1 = s1.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if p1.is_null() {
            continue;
        }
        // SAFETY: Drop has exclusive access; every non-null slot was
        // installed via Box::into_raw and never freed elsewhere.
        let l1 = unsafe { Box::from_raw(p1) };
        for s2 in l1.slots.iter() {
            let p2 = s2.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if p2.is_null() {
                continue;
            }
            let l2 = unsafe { Box::from_raw(p2) };
            for s3 in l2.slots.iter() {
                let p3 = s3.swap(std::ptr::null_mut(), Ordering::AcqRel);
                if p3.is_null() {
                    continue;
                }
                let l3 = unsafe { Box::from_raw(p3) };
                for sp in l3.slots.iter() {
                    let pp = sp.swap(std::ptr::null_mut(), Ordering::AcqRel);
                    if !pp.is_null() {
                        drop(unsafe { Box::from_raw(pp) });
                    }
                }
            }
        }
    }
}

impl Drop for AddressSpace {
    fn drop(&mut self) {
        free_tree(&self.root);
        for Retired(p) in self.retired.lock().expect("retired lock").drain(..) {
            // SAFETY: retired pages were detached from the tree and are
            // only freed here, with exclusive access.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_of(addr: Word) -> u64 {
        addr >> PAGE_SHIFT
    }

    fn indices(page: u64) -> [usize; 4] {
        [
            ((page >> (3 * FAN_BITS)) & FAN_MASK) as usize,
            ((page >> (2 * FAN_BITS)) & FAN_MASK) as usize,
            ((page >> FAN_BITS) & FAN_MASK) as usize,
            (page & FAN_MASK) as usize,
        ]
    }

    /// The mapped page holding `page`, if any (four acquire loads).
    #[inline]
    fn page(&self, page: u64) -> Option<&Page> {
        let [i1, i2, i3, i4] = Self::indices(page);
        self.root.get(i1)?.get(i2)?.get(i3)?.get(i4)
    }

    /// The leaf node for `page`, creating intermediate nodes as needed.
    fn leaf_for(&self, page: u64) -> &L3 {
        let [i1, i2, i3, _] = Self::indices(page);
        let l1 = self.root.install(i1, Node::new).0;
        let l2 = l1.install(i2, Node::new).0;
        l2.install(i3, Node::new).0
    }

    /// Maps (zero-filled) every page overlapping `[addr, addr+len)`.
    /// Already-mapped pages are left untouched.
    pub fn map_range(&self, addr: Word, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        for p in first..=last {
            let leaf = self.leaf_for(p);
            let (_, fresh) = leaf.install((p & FAN_MASK) as usize, Page::new_zeroed);
            if fresh {
                self.mapped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Unmaps every page fully contained in `[addr, addr+len)`. The page
    /// memory is retired (freed when the address space drops) so
    /// concurrent readers never touch freed memory; see the module docs.
    pub fn unmap_range(&self, addr: Word, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        let mut retired = self.retired.lock().expect("retired lock");
        for p in first..=last {
            let [i1, i2, i3, i4] = Self::indices(p);
            let Some(leaf) = self
                .root
                .get(i1)
                .and_then(|l1| l1.get(i2))
                .and_then(|l2| l2.get(i3))
            else {
                continue;
            };
            let old = leaf.slots[i4].swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !old.is_null() {
                self.mapped.fetch_sub(1, Ordering::Relaxed);
                retired.push(Retired(old));
            }
        }
    }

    /// Returns true if every byte of `[addr, addr+len)` is mapped.
    pub fn is_mapped(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        (first..=last).all(|p| self.page(p).is_some())
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.mapped.load(Ordering::Relaxed)
    }

    /// Reads `len` bytes into `buf[..len]`.
    pub fn read_bytes(&self, addr: Word, buf: &mut [u8]) -> Result<(), Trap> {
        if buf.is_empty() {
            return Ok(());
        }
        let mut done = 0usize;
        let mut cur = addr;
        while done < buf.len() {
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let avail = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let pg = self.page(Self::page_of(cur)).ok_or(Trap::MemFault {
                addr: cur,
                len: (buf.len() - done) as u64,
                write: false,
            })?;
            page_read(pg, off, &mut buf[done..done + avail]);
            done += avail;
            cur += avail as u64;
        }
        Ok(())
    }

    /// Writes all of `buf` at `addr`.
    pub fn write_bytes(&self, addr: Word, buf: &[u8]) -> Result<(), Trap> {
        if buf.is_empty() {
            return Ok(());
        }
        // Fail before any partial write so (single-threaded) faults are
        // atomic.
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(Trap::MemFault {
                addr,
                len: buf.len() as u64,
                write: true,
            });
        }
        let mut done = 0usize;
        let mut cur = addr;
        while done < buf.len() {
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let avail = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let pg = self.page(Self::page_of(cur)).ok_or(Trap::MemFault {
                addr: cur,
                len: (buf.len() - done) as u64,
                write: true,
            })?;
            page_write(pg, off, &buf[done..done + avail]);
            done += avail;
            cur += avail as u64;
        }
        Ok(())
    }

    /// Returns a raw handle to the mapped page containing `addr`, for use
    /// as a software TLB entry by the compiled backend.
    ///
    /// The handle stays valid for the life of this `AddressSpace`
    /// *allocation* (pages are retired on unmap, never freed early), so a
    /// cached handle never dangles — but after an `unmap_range` of the
    /// page it reads and writes retired memory instead of faulting, the
    /// same stale-but-valid window a racing lock-free reader already has
    /// (see the module docs). Callers bound that window by dropping
    /// cached handles at every point the environment could unmap.
    #[inline]
    pub fn page_handle(&self, addr: Word) -> Option<PageHandle> {
        self.page(Self::page_of(addr)).map(|pg| PageHandle {
            pg: pg as *const Page,
        })
    }

    /// Reads a zero-extended value of the given width.
    pub fn read(&self, addr: Word, width: Width) -> Result<Word, Trap> {
        let n = width.bytes() as usize;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        // Fast path: the access sits inside one aligned word of one page.
        if off + n <= PAGE_SIZE as usize && (off % 8) + n <= 8 {
            let pg = self.page(Self::page_of(addr)).ok_or(Trap::MemFault {
                addr,
                len: n as u64,
                write: false,
            })?;
            let w = pg.words[off / 8].load(Ordering::Relaxed);
            let shift = (off % 8) * 8;
            let mask = if n == 8 {
                u64::MAX
            } else {
                (1u64 << (n * 8)) - 1
            };
            return Ok((w >> shift) & mask);
        }
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..n])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a value truncated to the given width.
    pub fn write(&self, addr: Word, val: Word, width: Width) -> Result<(), Trap> {
        let n = width.bytes() as usize;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        // Fast path: an aligned full-word store is a single atomic store.
        if n == 8 && off.is_multiple_of(8) {
            let pg = self.page(Self::page_of(addr)).ok_or(Trap::MemFault {
                addr,
                len: 8,
                write: true,
            })?;
            pg.words[off / 8].store(val, Ordering::Relaxed);
            return Ok(());
        }
        let bytes = val.to_le_bytes();
        self.write_bytes(addr, &bytes[..n])
    }

    /// Reads a full 64-bit word.
    pub fn read_word(&self, addr: Word) -> Result<Word, Trap> {
        self.read(addr, Width::B8)
    }

    /// Writes a full 64-bit word.
    pub fn write_word(&self, addr: Word, val: Word) -> Result<(), Trap> {
        self.write(addr, val, Width::B8)
    }

    /// Zero-fills `[addr, addr+len)`.
    pub fn zero_range(&self, addr: Word, len: u64) -> Result<(), Trap> {
        const ZEROS: [u8; 256] = [0u8; 256];
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let chunk = remaining.min(256) as usize;
            self.write_bytes(cur, &ZEROS[..chunk])?;
            cur += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }
}

/// A raw reference to one mapped page: the compiled backend's one-entry
/// software TLB. Obtained from [`AddressSpace::page_handle`]; see there
/// for the validity rules.
///
/// The accessors are `unsafe` because the handle does not borrow the
/// address space: the caller must guarantee the originating
/// `AddressSpace` allocation is still alive, **and** that the
/// `AddressSpace` is not reachable only through an `&mut` reference the
/// caller re-asserts between caching and use (environments that own
/// their address space behind a shared allocation — `Arc`, or a field of
/// a shared core — satisfy this trivially).
#[derive(Clone, Copy)]
pub struct PageHandle {
    pg: *const Page,
}

// SAFETY: the handle is a shared reference in disguise; all access goes
// through the page's atomics.
unsafe impl Send for PageHandle {}
unsafe impl Sync for PageHandle {}

impl PageHandle {
    /// Reads a zero-extended `width`-sized value at byte offset `off`,
    /// which must lie within one aligned word: `(off % 8) + width.bytes()
    /// <= 8` and `off < PAGE_SIZE`.
    ///
    /// # Safety
    ///
    /// The originating `AddressSpace` must still be alive (see the type
    /// docs).
    #[inline]
    pub unsafe fn read_in_word(&self, off: usize, width: Width) -> Word {
        debug_assert!(off % 8 + width.bytes() as usize <= 8 && off < PAGE_SIZE as usize);
        // SAFETY: caller keeps the address space alive; retired pages
        // remain valid allocations until it drops.
        let pg = unsafe { &*self.pg };
        let w = pg.words[off / 8].load(Ordering::Relaxed);
        let n = width.bytes() as usize;
        let shift = (off % 8) * 8;
        if n == 8 {
            w
        } else {
            (w >> shift) & ((1u64 << (n * 8)) - 1)
        }
    }

    /// Writes a `width`-sized value at byte offset `off` (same in-word
    /// bounds as [`read_in_word`](Self::read_in_word)). Full-word stores
    /// are single atomic stores; sub-word stores merge with a CAS loop,
    /// exactly like [`AddressSpace::write`].
    ///
    /// # Safety
    ///
    /// The originating `AddressSpace` must still be alive (see the type
    /// docs).
    #[inline]
    pub unsafe fn write_in_word(&self, off: usize, val: Word, width: Width) {
        debug_assert!(off % 8 + width.bytes() as usize <= 8 && off < PAGE_SIZE as usize);
        // SAFETY: see `read_in_word`.
        let pg = unsafe { &*self.pg };
        let word = &pg.words[off / 8];
        let n = width.bytes() as usize;
        if n == 8 {
            word.store(val, Ordering::Relaxed);
            return;
        }
        let shift = (off % 8) * 8;
        let mask = (1u64 << (n * 8)) - 1;
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let merged = (cur & !(mask << shift)) | ((val & mask) << shift);
            match word.compare_exchange_weak(cur, merged, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
}

/// Copies `buf.len()` bytes out of a page starting at byte offset `off`.
fn page_read(pg: &Page, mut off: usize, buf: &mut [u8]) {
    let mut done = 0usize;
    while done < buf.len() {
        let w = pg.words[off / 8].load(Ordering::Relaxed).to_le_bytes();
        let in_word = off % 8;
        let take = (8 - in_word).min(buf.len() - done);
        buf[done..done + take].copy_from_slice(&w[in_word..in_word + take]);
        done += take;
        off += take;
    }
}

/// Writes `buf` into a page starting at byte offset `off`. Full aligned
/// words are plain atomic stores; partial words merge via a CAS loop.
fn page_write(pg: &Page, mut off: usize, buf: &[u8]) {
    let mut done = 0usize;
    while done < buf.len() {
        let in_word = off % 8;
        let take = (8 - in_word).min(buf.len() - done);
        let word = &pg.words[off / 8];
        if take == 8 {
            word.store(
                u64::from_le_bytes(buf[done..done + 8].try_into().expect("8 bytes")),
                Ordering::Relaxed,
            );
        } else {
            let mut cur = word.load(Ordering::Relaxed);
            loop {
                let mut bytes = cur.to_le_bytes();
                bytes[in_word..in_word + take].copy_from_slice(&buf[done..done + take]);
                match word.compare_exchange_weak(
                    cur,
                    u64::from_le_bytes(bytes),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        done += take;
        off += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let a = AddressSpace::new();
        let err = a.read_word(0x1000).unwrap_err();
        assert!(matches!(err, Trap::MemFault { write: false, .. }));
        let a = AddressSpace::new();
        let err = a.write_word(0x1000, 7).unwrap_err();
        assert!(matches!(err, Trap::MemFault { write: true, .. }));
    }

    #[test]
    fn map_read_write_roundtrip() {
        let a = AddressSpace::new();
        a.map_range(0x4000, 64);
        a.write_word(0x4000, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(a.read_word(0x4000).unwrap(), 0xdead_beef_cafe_f00d);
        a.write(0x4010, 0x1234_5678, Width::B4).unwrap();
        assert_eq!(a.read(0x4010, Width::B4).unwrap(), 0x1234_5678);
        assert_eq!(a.read(0x4010, Width::B2).unwrap(), 0x5678);
        assert_eq!(a.read(0x4011, Width::B1).unwrap(), 0x56);
    }

    #[test]
    fn cross_page_access() {
        let a = AddressSpace::new();
        a.map_range(0x1000, 2 * PAGE_SIZE);
        let addr = 0x1000 + PAGE_SIZE - 3;
        a.write_word(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(a.read_word(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn unaligned_word_within_page_roundtrips() {
        let a = AddressSpace::new();
        a.map_range(0x2000, 64);
        a.write_word(0x2003, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(a.read_word(0x2003).unwrap(), 0x1122_3344_5566_7788);
        // Neighbouring bytes survive the partial-word merges.
        assert_eq!(a.read(0x2000, Width::B1).unwrap(), 0);
        assert_eq!(a.read(0x200b, Width::B1).unwrap(), 0);
    }

    #[test]
    fn cross_page_fault_when_second_page_unmapped() {
        let a = AddressSpace::new();
        a.map_range(0x1000, PAGE_SIZE);
        let addr = 0x1000 + PAGE_SIZE - 4;
        assert!(a.write_word(addr, 1).is_err());
        // The mapped prefix must be untouched (atomic fault).
        assert_eq!(a.read(addr, Width::B4).unwrap(), 0);
    }

    #[test]
    fn zeroing() {
        let a = AddressSpace::new();
        a.map_range(0x2000, 1024);
        for i in 0..1024u64 {
            a.write(0x2000 + i, 0xff, Width::B1).unwrap();
        }
        a.zero_range(0x2000 + 100, 700).unwrap();
        assert_eq!(a.read(0x2000 + 99, Width::B1).unwrap(), 0xff);
        assert_eq!(a.read(0x2000 + 100, Width::B1).unwrap(), 0);
        assert_eq!(a.read(0x2000 + 799, Width::B1).unwrap(), 0);
        assert_eq!(a.read(0x2000 + 800, Width::B1).unwrap(), 0xff);
    }

    #[test]
    fn unmap_releases_pages() {
        let a = AddressSpace::new();
        a.map_range(0x1000, 3 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 3);
        a.unmap_range(0x1000, 3 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 0);
        assert!(!a.is_mapped(0x1000, 1));
    }

    #[test]
    fn map_is_idempotent_and_preserves_content() {
        let a = AddressSpace::new();
        a.map_range(0x1000, 8);
        a.write_word(0x1000, 42).unwrap();
        a.map_range(0x1000, PAGE_SIZE);
        assert_eq!(a.read_word(0x1000).unwrap(), 42);
    }

    #[test]
    fn distant_regions_coexist() {
        // Regions in different radix subtrees (user low, kernel high).
        let a = AddressSpace::new();
        a.map_range(0x1000, 64);
        a.map_range(0xffff_9000_0000_0000, 64);
        a.write_word(0x1000, 1).unwrap();
        a.write_word(0xffff_9000_0000_0000, 2).unwrap();
        assert_eq!(a.read_word(0x1000).unwrap(), 1);
        assert_eq!(a.read_word(0xffff_9000_0000_0000).unwrap(), 2);
        assert_eq!(a.mapped_pages(), 2);
    }

    #[test]
    fn concurrent_disjoint_writes_land() {
        use std::sync::Arc;
        let a = Arc::new(AddressSpace::new());
        a.map_range(0x8000, 4 * PAGE_SIZE);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let base = 0x8000 + t * PAGE_SIZE;
                    for i in 0..512u64 {
                        a.write_word(base + i * 8, t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            let base = 0x8000 + t * PAGE_SIZE;
            for i in 0..512u64 {
                assert_eq!(a.read_word(base + i * 8).unwrap(), t * 1000 + i);
            }
        }
    }

    #[test]
    fn concurrent_map_of_same_page_is_safe() {
        use std::sync::Arc;
        let a = Arc::new(AddressSpace::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || a.map_range(0x4000, 8 * PAGE_SIZE))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.mapped_pages(), 8);
        a.write_word(0x4000, 7).unwrap();
        assert_eq!(a.read_word(0x4000).unwrap(), 7);
    }
}
