//! Simulated 64-bit flat address space with demand-mapped 4 KiB pages.
//!
//! The kernel substrate decides the layout (user space low, kernel high,
//! module sections, thread stacks); this module only provides mapped-page
//! storage with typed reads and writes. Access to an unmapped address is a
//! [`Trap::MemFault`], which models a hardware page fault / kernel oops.

use std::collections::HashMap;

use crate::isa::Width;
use crate::{Trap, Word};

/// Page size of the simulated address space (matches the 12-bit masking
/// used by LXFI's WRITE-capability hash table, §5).
pub const PAGE_SIZE: u64 = 4096;

const PAGE_SHIFT: u32 = 12;

/// A flat, sparse, page-granular simulated memory.
#[derive(Default)]
pub struct AddressSpace {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_of(addr: Word) -> u64 {
        addr >> PAGE_SHIFT
    }

    /// Maps (zero-filled) every page overlapping `[addr, addr+len)`.
    /// Already-mapped pages are left untouched.
    pub fn map_range(&mut self, addr: Word, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        for p in first..=last {
            self.pages
                .entry(p)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        }
    }

    /// Unmaps every page fully contained in `[addr, addr+len)`.
    pub fn unmap_range(&mut self, addr: Word, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        for p in first..=last {
            self.pages.remove(&p);
        }
    }

    /// Returns true if every byte of `[addr, addr+len)` is mapped.
    pub fn is_mapped(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + (len - 1));
        (first..=last).all(|p| self.pages.contains_key(&p))
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `len` bytes into `buf[..len]`.
    pub fn read_bytes(&self, addr: Word, buf: &mut [u8]) -> Result<(), Trap> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(());
        }
        let mut done = 0usize;
        let mut cur = addr;
        while done < buf.len() {
            let page = Self::page_of(cur);
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let avail = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let pg = self.pages.get(&page).ok_or(Trap::MemFault {
                addr: cur,
                len: (buf.len() - done) as u64,
                write: false,
            })?;
            buf[done..done + avail].copy_from_slice(&pg[off..off + avail]);
            done += avail;
            cur += avail as u64;
        }
        Ok(())
    }

    /// Writes all of `buf` at `addr`.
    pub fn write_bytes(&mut self, addr: Word, buf: &[u8]) -> Result<(), Trap> {
        if buf.is_empty() {
            return Ok(());
        }
        // Fail before any partial write so faults are atomic.
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(Trap::MemFault {
                addr,
                len: buf.len() as u64,
                write: true,
            });
        }
        let mut done = 0usize;
        let mut cur = addr;
        while done < buf.len() {
            let page = Self::page_of(cur);
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let avail = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let pg = self.pages.get_mut(&page).expect("checked above");
            pg[off..off + avail].copy_from_slice(&buf[done..done + avail]);
            done += avail;
            cur += avail as u64;
        }
        Ok(())
    }

    /// Reads a zero-extended value of the given width.
    pub fn read(&self, addr: Word, width: Width) -> Result<Word, Trap> {
        let mut buf = [0u8; 8];
        let n = width.bytes() as usize;
        self.read_bytes(addr, &mut buf[..n])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a value truncated to the given width.
    pub fn write(&mut self, addr: Word, val: Word, width: Width) -> Result<(), Trap> {
        let bytes = val.to_le_bytes();
        let n = width.bytes() as usize;
        self.write_bytes(addr, &bytes[..n])
    }

    /// Reads a full 64-bit word.
    pub fn read_word(&self, addr: Word) -> Result<Word, Trap> {
        self.read(addr, Width::B8)
    }

    /// Writes a full 64-bit word.
    pub fn write_word(&mut self, addr: Word, val: Word) -> Result<(), Trap> {
        self.write(addr, val, Width::B8)
    }

    /// Zero-fills `[addr, addr+len)`.
    pub fn zero_range(&mut self, addr: Word, len: u64) -> Result<(), Trap> {
        const ZEROS: [u8; 256] = [0u8; 256];
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let chunk = remaining.min(256) as usize;
            self.write_bytes(cur, &ZEROS[..chunk])?;
            cur += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let a = AddressSpace::new();
        let err = a.read_word(0x1000).unwrap_err();
        assert!(matches!(err, Trap::MemFault { write: false, .. }));
        let mut a = AddressSpace::new();
        let err = a.write_word(0x1000, 7).unwrap_err();
        assert!(matches!(err, Trap::MemFault { write: true, .. }));
    }

    #[test]
    fn map_read_write_roundtrip() {
        let mut a = AddressSpace::new();
        a.map_range(0x4000, 64);
        a.write_word(0x4000, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(a.read_word(0x4000).unwrap(), 0xdead_beef_cafe_f00d);
        a.write(0x4010, 0x1234_5678, Width::B4).unwrap();
        assert_eq!(a.read(0x4010, Width::B4).unwrap(), 0x1234_5678);
        assert_eq!(a.read(0x4010, Width::B2).unwrap(), 0x5678);
        assert_eq!(a.read(0x4011, Width::B1).unwrap(), 0x56);
    }

    #[test]
    fn cross_page_access() {
        let mut a = AddressSpace::new();
        a.map_range(0x1000, 2 * PAGE_SIZE);
        let addr = 0x1000 + PAGE_SIZE - 3;
        a.write_word(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(a.read_word(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_fault_when_second_page_unmapped() {
        let mut a = AddressSpace::new();
        a.map_range(0x1000, PAGE_SIZE);
        let addr = 0x1000 + PAGE_SIZE - 4;
        assert!(a.write_word(addr, 1).is_err());
        // The mapped prefix must be untouched (atomic fault).
        assert_eq!(a.read(addr, Width::B4).unwrap(), 0);
    }

    #[test]
    fn zeroing() {
        let mut a = AddressSpace::new();
        a.map_range(0x2000, 1024);
        for i in 0..1024u64 {
            a.write(0x2000 + i, 0xff, Width::B1).unwrap();
        }
        a.zero_range(0x2000 + 100, 700).unwrap();
        assert_eq!(a.read(0x2000 + 99, Width::B1).unwrap(), 0xff);
        assert_eq!(a.read(0x2000 + 100, Width::B1).unwrap(), 0);
        assert_eq!(a.read(0x2000 + 799, Width::B1).unwrap(), 0);
        assert_eq!(a.read(0x2000 + 800, Width::B1).unwrap(), 0xff);
    }

    #[test]
    fn unmap_releases_pages() {
        let mut a = AddressSpace::new();
        a.map_range(0x1000, 3 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 3);
        a.unmap_range(0x1000, 3 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 0);
        assert!(!a.is_mapped(0x1000, 1));
    }

    #[test]
    fn map_is_idempotent_and_preserves_content() {
        let mut a = AddressSpace::new();
        a.map_range(0x1000, 8);
        a.write_word(0x1000, 42).unwrap();
        a.map_range(0x1000, PAGE_SIZE);
        assert_eq!(a.read_word(0x1000).unwrap(), 42);
    }
}
