//! The compiled execution backend: direct-threaded basic blocks.
//!
//! The interpreter in [`crate::interp`] decodes operands and charges fuel
//! on every instruction. This module removes both at module load time:
//! [`CompiledProgram::compile`] splits every function into basic blocks
//! and lowers each block to a pre-resolved step list ([`BlockBody`])
//! that [`run_compiled`] threads through directly —
//!
//! - operands are resolved to [`Src`] (register index or immediate, the
//!   `i64 → u64` cast and `off as u64` folded in),
//! - fuel is charged once per block from a precomputed block cost, with
//!   the unearned suffix refunded (`Env::refund`) whenever the block
//!   exits early, so fuel accounting is cycle-identical to the
//!   interpreter — including the fuel level an extern call observes,
//! - the rewriter's `GuardWrite`+`Store` and `GuardIndCall`+`CallPtr`
//!   pairs are fused into single steps,
//! - loads and stores go through a one-entry software TLB
//!   ([`crate::mem::PageHandle`]) instead of the 4-level radix walk.
//!
//! Blocks are plain data, not boxed closures, and every execution entry
//! point is generic over the environment (`E: Env + ?Sized`) exactly
//! like the interpreter: for a concrete kernel environment the whole
//! backend monomorphizes, so `consume`, the guards, and the memory miss
//! path all inline instead of going through vtable dispatch. An earlier
//! `Box<dyn Fn>`-per-block design lost more to that dispatch than block
//! compilation bought back.
//!
//! The interpreter stays the oracle: `tests/backend_oracle.rs` runs both
//! backends in lockstep on generated programs and asserts identical
//! results, traps, guard logs, memory, and fuel.
//!
//! A function that fails the (conservative) compile-time validation —
//! missing terminator, out-of-range register or jump target — is kept as
//! [`CompiledFunc::Fallback`] and routed through the interpreter at run
//! time, preserving its behaviour exactly.

use std::sync::Arc;

use crate::costs;
use crate::interp::{binop, run_function, Env};
use crate::isa::{BinOp, Cond, Inst, Operand, Width, NUM_ARG_REGS, NUM_REGS};
use crate::mem::{PageHandle, PAGE_SIZE};
use crate::program::{FuncId, Function, GlobalId, Program, SigId, SymbolId};
use crate::{Trap, Word};

/// Which execution backend a module runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The per-instruction interpreter ([`crate::interp::run_function`]).
    #[default]
    Interp,
    /// Direct-threaded compiled basic blocks ([`run_compiled`]).
    Compiled,
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" => Ok(Backend::Interp),
            "compiled" => Ok(Backend::Compiled),
            other => Err(format!("unknown backend {other:?} (interp|compiled)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Interp => "interp",
            Backend::Compiled => "compiled",
        })
    }
}

/// Counters from one [`CompiledProgram::compile`] run, surfaced through
/// the kernel's statistics tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Functions lowered to block closures.
    pub funcs_compiled: u64,
    /// Basic blocks compiled across all functions.
    pub blocks_compiled: u64,
    /// Rewriter guard sites fused into their guarded operation
    /// (`GuardWrite`+`Store`, `GuardIndCall`+`CallPtr`).
    pub fused_guard_sites: u64,
    /// Functions that failed validation and fall back to the interpreter.
    pub fallback_funcs: u64,
}

/// A pre-resolved operand: register index or immediate (already cast to
/// the unsigned word the interpreter's `eval` would produce).
#[derive(Clone, Copy)]
enum Src {
    Reg(u8),
    Imm(u64),
}

impl Src {
    fn from_op(op: Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::Reg(r.0),
            Operand::Imm(v) => Src::Imm(v as u64),
        }
    }

    #[inline(always)]
    fn get(self, regs: &[Word; NUM_REGS]) -> Word {
        match self {
            Src::Reg(r) => reg(regs, r),
            Src::Imm(v) => v,
        }
    }
}

#[inline(always)]
fn reg(regs: &[Word; NUM_REGS], i: u8) -> Word {
    debug_assert!((i as usize) < NUM_REGS);
    // SAFETY: `compilable` rejects (to interpreter fallback) any function
    // referencing a register index >= NUM_REGS, so every index reaching
    // compiled execution is in range.
    unsafe { *regs.get_unchecked(i as usize) }
}

#[inline(always)]
fn set_reg(regs: &mut [Word; NUM_REGS], i: u8, v: Word) {
    debug_assert!((i as usize) < NUM_REGS);
    // SAFETY: as in [`reg`].
    unsafe { *regs.get_unchecked_mut(i as usize) = v }
}

/// One straight-line step of a block. Control transfers live in
/// [`ExitOp`], never here.
enum Step {
    Mov {
        dst: u8,
        src: Src,
    },
    Bin {
        op: BinOp,
        dst: u8,
        lhs: Src,
        rhs: Src,
    },
    Load {
        dst: u8,
        base: Src,
        off: u64,
        width: Width,
    },
    Store {
        src: Src,
        base: Src,
        off: u64,
        width: Width,
    },
    LoadFrame {
        dst: u8,
        off: u64,
        width: Width,
    },
    StoreFrame {
        src: Src,
        off: u64,
        width: Width,
    },
    FrameAddr {
        dst: u8,
        off: u64,
    },
    GlobalAddr {
        dst: u8,
        global: GlobalId,
    },
    SymAddr {
        dst: u8,
        sym: SymbolId,
    },
    FuncAddr {
        dst: u8,
        func: FuncId,
    },
    Nop,
    GuardWrite {
        base: Src,
        off: u64,
        len: Src,
    },
    GuardIndCall {
        slot_base: Src,
        slot_off: u64,
        sig: SigId,
    },
    /// Fused `GuardWrite` + `Store`: the shape the rewriter emits at
    /// every guarded module store.
    GuardedStore {
        gbase: Src,
        goff: u64,
        glen: Src,
        src: Src,
        base: Src,
        off: u64,
        width: Width,
    },
    CallExtern {
        sym: SymbolId,
        args: Box<[Src]>,
        ret: Option<u8>,
    },
    /// Indirect call, optionally fused with the rewriter's preceding
    /// `GuardIndCall` (`guard` = slot base, slot offset, declared sig).
    CallPtr {
        ptr: Src,
        sig: SigId,
        args: Box<[Src]>,
        ret: Option<u8>,
        guard: Option<(Src, u64, SigId)>,
    },
}

/// How a block ends. `target`/`then_b`/`else_b`/`resume` are *block*
/// indices within the same function.
enum ExitOp {
    Jmp {
        target: u32,
    },
    Br {
        cond: Cond,
        lhs: Src,
        rhs: Src,
        then_b: u32,
        else_b: u32,
    },
    Ret {
        val: Option<Src>,
    },
    Trap {
        code: u64,
    },
    CallLocal {
        func: FuncId,
        ret: Option<u8>,
        resume: u32,
        args: Box<[Src]>,
    },
}

/// What the driver loop does after a block finishes.
enum BlockExit {
    /// Continue at this block of the current function.
    Goto(u32),
    /// Pop the current activation with this return value.
    Return(Word),
    /// Push an activation for `func` (arguments staged in
    /// `ExecCtx::scratch`), then resume the caller at block `resume`.
    Call {
        func: FuncId,
        ret: Option<u8>,
        resume: u32,
    },
}

/// Why [`exec_func`] handed control back to the driver: only activation
/// changes surface; `Goto` is threaded internally so intra-function
/// loops never leave the block loop.
enum FuncExit {
    Return(Word),
    Call {
        func: FuncId,
        ret: Option<u8>,
        resume: u32,
    },
}

struct BlockBody {
    steps: Box<[(Step, u64)]>,
    /// Total cost of the block (all step charges + `exit_cost`), consumed
    /// up front on the fast path.
    cost: u64,
    exit: ExitOp,
    exit_cost: u64,
}

enum CompiledFunc {
    Blocks {
        blocks: Box<[BlockBody]>,
        frame_size: u32,
    },
    /// Validation failed; execute through the interpreter.
    Fallback,
}

/// A program lowered for the compiled backend. Compile once at module
/// load; share (`Arc`) across every CPU that dispatches into the module.
pub struct CompiledProgram {
    program: Arc<Program>,
    funcs: Box<[CompiledFunc]>,
    stats: CompileStats,
}

impl CompiledProgram {
    /// Lowers every function of `program` to basic-block closures.
    pub fn compile(program: Arc<Program>) -> CompiledProgram {
        let mut stats = CompileStats::default();
        let nfuncs = program.funcs.len();
        let funcs = program
            .funcs
            .iter()
            .map(|f| compile_func(f, nfuncs, &mut stats))
            .collect();
        CompiledProgram {
            program,
            funcs,
            stats,
        }
    }

    /// The source program (shared with the interpreter fallback path).
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Compilation counters.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }
}

/// Conservative validation: anything the block builder or the closures
/// assume must hold, checked up front. A function that fails any check
/// becomes [`CompiledFunc::Fallback`] so runtime behaviour (including the
/// interpreter's lazy `BadRef` for a dangling `CallLocal`, or its panic
/// on a wild register index) is preserved by simply not compiling it.
fn compilable(f: &Function, nfuncs: usize) -> bool {
    let n = f.insts.len();
    if n == 0 || !f.insts[n - 1].is_terminator() {
        return false;
    }
    let op_ok = |o: &Operand| match o {
        Operand::Reg(r) => (r.0 as usize) < NUM_REGS,
        Operand::Imm(_) => true,
    };
    for inst in &f.insts {
        if let Some(t) = inst.jump_target() {
            if t >= n {
                return false;
            }
        }
        if let Some(d) = inst.def_reg() {
            if d.0 as usize >= NUM_REGS {
                return false;
            }
        }
        let ok = match inst {
            Inst::Mov { src, .. } => op_ok(src),
            Inst::Bin { lhs, rhs, .. } => op_ok(lhs) && op_ok(rhs),
            Inst::Load { base, .. } => op_ok(base),
            Inst::Store { src, base, .. } => op_ok(src) && op_ok(base),
            Inst::StoreFrame { src, .. } => op_ok(src),
            Inst::Br { lhs, rhs, .. } => op_ok(lhs) && op_ok(rhs),
            Inst::CallLocal { func, args, .. } => {
                (func.0 as usize) < nfuncs && args.iter().all(op_ok)
            }
            Inst::CallExtern { args, .. } => args.iter().all(op_ok),
            Inst::CallPtr { ptr, args, .. } => op_ok(ptr) && args.iter().all(op_ok),
            Inst::Ret { val: Some(v) } => op_ok(v),
            Inst::Ret { val: None } => true,
            Inst::GuardWrite { base, len, .. } => op_ok(base) && op_ok(len),
            Inst::GuardIndCall { slot_base, .. } => op_ok(slot_base),
            _ => true,
        };
        if !ok {
            return false;
        }
    }
    true
}

fn compile_func(f: &Function, nfuncs: usize, stats: &mut CompileStats) -> CompiledFunc {
    if !compilable(f, nfuncs) {
        stats.fallback_funcs += 1;
        return CompiledFunc::Fallback;
    }
    let insts = &f.insts;
    let n = insts.len();

    // Leaders: entry, every jump target, and the instruction after any
    // control transfer (so `Br` fallthrough and `CallLocal` resume
    // points start blocks).
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, inst) in insts.iter().enumerate() {
        if let Some(t) = inst.jump_target() {
            leader[t] = true;
        }
        let transfers = matches!(
            inst,
            Inst::Jmp { .. }
                | Inst::Br { .. }
                | Inst::Ret { .. }
                | Inst::Trap { .. }
                | Inst::CallLocal { .. }
        );
        if transfers && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    let mut block_of = vec![u32::MAX; n + 1];
    let mut nblocks = 0u32;
    for i in 0..n {
        if leader[i] {
            block_of[i] = nblocks;
            nblocks += 1;
        }
    }

    let mut blocks = Vec::with_capacity(nblocks as usize);
    let mut s = 0usize;
    while s < n {
        let mut e = s + 1;
        while e < n && !leader[e] {
            e += 1;
        }
        blocks.push(build_block(insts, s, e, &block_of, stats));
        s = e;
    }
    stats.funcs_compiled += 1;
    stats.blocks_compiled += nblocks as u64;
    CompiledFunc::Blocks {
        blocks: blocks.into_boxed_slice(),
        frame_size: f.frame_size,
    }
}

fn convert_plain(inst: &Inst) -> Step {
    match inst {
        Inst::Mov { dst, src } => Step::Mov {
            dst: dst.0,
            src: Src::from_op(*src),
        },
        Inst::Bin { op, dst, lhs, rhs } => Step::Bin {
            op: *op,
            dst: dst.0,
            lhs: Src::from_op(*lhs),
            rhs: Src::from_op(*rhs),
        },
        Inst::Load {
            dst,
            base,
            off,
            width,
        } => Step::Load {
            dst: dst.0,
            base: Src::from_op(*base),
            off: *off as u64,
            width: *width,
        },
        Inst::Store {
            src,
            base,
            off,
            width,
        } => Step::Store {
            src: Src::from_op(*src),
            base: Src::from_op(*base),
            off: *off as u64,
            width: *width,
        },
        Inst::LoadFrame { dst, off, width } => Step::LoadFrame {
            dst: dst.0,
            off: *off as u64,
            width: *width,
        },
        Inst::StoreFrame { src, off, width } => Step::StoreFrame {
            src: Src::from_op(*src),
            off: *off as u64,
            width: *width,
        },
        Inst::FrameAddr { dst, off } => Step::FrameAddr {
            dst: dst.0,
            off: *off as u64,
        },
        Inst::GlobalAddr { dst, global } => Step::GlobalAddr {
            dst: dst.0,
            global: *global,
        },
        Inst::SymAddr { dst, sym } => Step::SymAddr {
            dst: dst.0,
            sym: *sym,
        },
        Inst::FuncAddr { dst, func } => Step::FuncAddr {
            dst: dst.0,
            func: *func,
        },
        Inst::CallExtern { sym, args, ret } => Step::CallExtern {
            sym: *sym,
            args: args.iter().map(|a| Src::from_op(*a)).collect(),
            ret: ret.map(|r| r.0),
        },
        Inst::CallPtr {
            ptr,
            sig,
            args,
            ret,
        } => Step::CallPtr {
            ptr: Src::from_op(*ptr),
            sig: *sig,
            args: args.iter().map(|a| Src::from_op(*a)).collect(),
            ret: ret.map(|r| r.0),
            guard: None,
        },
        Inst::Nop => Step::Nop,
        Inst::GuardWrite { base, off, len } => Step::GuardWrite {
            base: Src::from_op(*base),
            off: *off as u64,
            len: Src::from_op(*len),
        },
        Inst::GuardIndCall {
            slot_base,
            slot_off,
            sig,
        } => Step::GuardIndCall {
            slot_base: Src::from_op(*slot_base),
            slot_off: *slot_off as u64,
            sig: *sig,
        },
        Inst::Jmp { .. }
        | Inst::Br { .. }
        | Inst::CallLocal { .. }
        | Inst::Ret { .. }
        | Inst::Trap { .. } => unreachable!("control transfers are block exits"),
    }
}

fn build_block(
    insts: &[Inst],
    s: usize,
    e: usize,
    block_of: &[u32],
    stats: &mut CompileStats,
) -> BlockBody {
    let mut steps: Vec<(Step, u64)> = Vec::new();
    let mut exit: Option<(ExitOp, u64)> = None;
    let mut i = s;
    while i < e {
        match &insts[i] {
            Inst::Jmp { target } => {
                exit = Some((
                    ExitOp::Jmp {
                        target: block_of[*target],
                    },
                    costs::BRANCH,
                ));
                break;
            }
            Inst::Br {
                cond,
                lhs,
                rhs,
                target,
            } => {
                // `Br` is never the last instruction (the tail must be a
                // terminator), so `i + 1` exists and is a leader.
                exit = Some((
                    ExitOp::Br {
                        cond: *cond,
                        lhs: Src::from_op(*lhs),
                        rhs: Src::from_op(*rhs),
                        then_b: block_of[*target],
                        else_b: block_of[i + 1],
                    },
                    costs::BRANCH,
                ));
                break;
            }
            Inst::Ret { val } => {
                exit = Some((
                    ExitOp::Ret {
                        val: val.map(Src::from_op),
                    },
                    costs::RET,
                ));
                break;
            }
            Inst::Trap { code } => {
                exit = Some((ExitOp::Trap { code: *code }, costs::ALU));
                break;
            }
            Inst::CallLocal { func, args, ret } => {
                exit = Some((
                    ExitOp::CallLocal {
                        func: *func,
                        args: args.iter().map(|a| Src::from_op(*a)).collect(),
                        ret: ret.map(|r| r.0),
                        resume: block_of[i + 1],
                    },
                    costs::CALL,
                ));
                break;
            }
            Inst::GuardWrite { base, off, len } => {
                if i + 1 < e {
                    if let Inst::Store {
                        src,
                        base: sbase,
                        off: soff,
                        width,
                    } = &insts[i + 1]
                    {
                        steps.push((
                            Step::GuardedStore {
                                gbase: Src::from_op(*base),
                                goff: *off as u64,
                                glen: Src::from_op(*len),
                                src: Src::from_op(*src),
                                base: Src::from_op(*sbase),
                                off: *soff as u64,
                                width: *width,
                            },
                            costs::ALU + costs::MEM,
                        ));
                        stats.fused_guard_sites += 1;
                        i += 2;
                        continue;
                    }
                }
                steps.push((convert_plain(&insts[i]), costs::ALU));
                i += 1;
            }
            Inst::GuardIndCall {
                slot_base,
                slot_off,
                sig,
            } => {
                if i + 1 < e {
                    if let Inst::CallPtr {
                        ptr,
                        sig: csig,
                        args,
                        ret,
                    } = &insts[i + 1]
                    {
                        steps.push((
                            Step::CallPtr {
                                ptr: Src::from_op(*ptr),
                                sig: *csig,
                                args: args.iter().map(|a| Src::from_op(*a)).collect(),
                                ret: ret.map(|r| r.0),
                                guard: Some((Src::from_op(*slot_base), *slot_off as u64, *sig)),
                            },
                            costs::ALU + costs::CALL,
                        ));
                        stats.fused_guard_sites += 1;
                        i += 2;
                        continue;
                    }
                }
                steps.push((convert_plain(&insts[i]), costs::ALU));
                i += 1;
            }
            other => {
                steps.push((convert_plain(other), costs::cost(other)));
                i += 1;
            }
        }
    }
    // Ran to the next leader without a transfer: synthetic fallthrough
    // jump, costing nothing (there is no instruction behind it).
    let (exit, exit_cost) = exit.unwrap_or((
        ExitOp::Jmp {
            target: block_of[e],
        },
        0,
    ));
    let cost = steps.iter().map(|(_, c)| c).sum::<u64>() + exit_cost;
    BlockBody {
        steps: steps.into_boxed_slice(),
        cost,
        exit,
        exit_cost,
    }
}

/// Per-run register/frame state plus the one-entry software TLB.
struct ExecCtx {
    regs: [Word; NUM_REGS],
    sp: Word,
    /// Call-argument staging buffer (the compiled twin of the
    /// interpreter's scratch vector — no per-call allocation).
    scratch: Vec<Word>,
    /// Last-touched page: (page number, handle). Dropped at every point
    /// the environment could unmap (extern/indirect calls, interpreter
    /// fallback) so the stale-but-valid window stays bounded.
    tlb: Option<(u64, PageHandle)>,
}

impl ExecCtx {
    fn new() -> ExecCtx {
        ExecCtx {
            regs: [0; NUM_REGS],
            sp: 0,
            scratch: Vec::with_capacity(NUM_ARG_REGS),
            tlb: None,
        }
    }

    fn stage(&mut self, args: &[Src]) {
        self.scratch.clear();
        for a in args {
            let v = a.get(&self.regs);
            self.scratch.push(v);
        }
    }
}

/// TLB-first memory read: the hit path touches no `Env` method at all
/// (`env.mem()` is a virtual call — deferring it to the miss path is
/// what lets in-page runs of loads execute without any dynamic
/// dispatch).
#[inline(always)]
fn mem_read<E: Env + ?Sized>(
    ctx: &mut ExecCtx,
    env: &mut E,
    addr: Word,
    width: Width,
) -> Result<Word, Trap> {
    let n = width.bytes() as usize;
    let off = (addr % PAGE_SIZE) as usize;
    if off % 8 + n <= 8 {
        let page = addr / PAGE_SIZE;
        if let Some((p, h)) = ctx.tlb {
            if p == page {
                // SAFETY: the handle came from this env's address space,
                // alive for the whole run; see `ExecCtx::tlb` for the
                // flush discipline.
                return Ok(unsafe { h.read_in_word(off, width) });
            }
        }
        return mem_read_miss(ctx, env, addr, width);
    }
    env.mem().read(addr, width)
}

#[cold]
fn mem_read_miss<E: Env + ?Sized>(
    ctx: &mut ExecCtx,
    env: &mut E,
    addr: Word,
    width: Width,
) -> Result<Word, Trap> {
    let h = env.mem().page_handle(addr).ok_or(Trap::MemFault {
        addr,
        len: width.bytes(),
        write: false,
    })?;
    ctx.tlb = Some((addr / PAGE_SIZE, h));
    // SAFETY: freshly minted from a live address space.
    Ok(unsafe { h.read_in_word((addr % PAGE_SIZE) as usize, width) })
}

/// TLB-first memory write; see [`mem_read`].
#[inline(always)]
fn mem_write<E: Env + ?Sized>(
    ctx: &mut ExecCtx,
    env: &mut E,
    addr: Word,
    val: Word,
    width: Width,
) -> Result<(), Trap> {
    let n = width.bytes() as usize;
    let off = (addr % PAGE_SIZE) as usize;
    if off % 8 + n <= 8 {
        let page = addr / PAGE_SIZE;
        if let Some((p, h)) = ctx.tlb {
            if p == page {
                // SAFETY: see `mem_read`.
                unsafe { h.write_in_word(off, val, width) };
                return Ok(());
            }
        }
        return mem_write_miss(ctx, env, addr, val, width);
    }
    env.mem().write(addr, val, width)
}

#[cold]
fn mem_write_miss<E: Env + ?Sized>(
    ctx: &mut ExecCtx,
    env: &mut E,
    addr: Word,
    val: Word,
    width: Width,
) -> Result<(), Trap> {
    let h = env.mem().page_handle(addr).ok_or(Trap::MemFault {
        addr,
        len: width.bytes(),
        write: true,
    })?;
    ctx.tlb = Some((addr / PAGE_SIZE, h));
    // SAFETY: see `mem_read_miss`.
    unsafe { h.write_in_word((addr % PAGE_SIZE) as usize, val, width) };
    Ok(())
}

/// Executes one non-reentrant step. Reentrant steps (extern/indirect
/// calls, fused guarded stores) are handled by the block loops, which
/// own the refund protocol around them.
#[inline]
fn exec_step<E: Env + ?Sized>(step: &Step, ctx: &mut ExecCtx, env: &mut E) -> Result<(), Trap> {
    match step {
        Step::Mov { dst, src } => {
            ctx.regs[*dst as usize] = src.get(&ctx.regs);
        }
        Step::Bin { op, dst, lhs, rhs } => {
            let l = lhs.get(&ctx.regs);
            let r = rhs.get(&ctx.regs);
            ctx.regs[*dst as usize] = binop(*op, l, r)?;
        }
        Step::Load {
            dst,
            base,
            off,
            width,
        } => {
            let addr = base.get(&ctx.regs).wrapping_add(*off);
            let v = mem_read(ctx, env, addr, *width)?;
            ctx.regs[*dst as usize] = v;
        }
        Step::Store {
            src,
            base,
            off,
            width,
        } => {
            let addr = base.get(&ctx.regs).wrapping_add(*off);
            let v = src.get(&ctx.regs);
            mem_write(ctx, env, addr, v, *width)?;
        }
        Step::LoadFrame { dst, off, width } => {
            let addr = ctx.sp + *off;
            let v = mem_read(ctx, env, addr, *width)?;
            ctx.regs[*dst as usize] = v;
        }
        Step::StoreFrame { src, off, width } => {
            let addr = ctx.sp + *off;
            let v = src.get(&ctx.regs);
            mem_write(ctx, env, addr, v, *width)?;
        }
        Step::FrameAddr { dst, off } => {
            ctx.regs[*dst as usize] = ctx.sp + *off;
        }
        Step::GlobalAddr { dst, global } => {
            let v = env.global_addr(*global)?;
            ctx.regs[*dst as usize] = v;
        }
        Step::SymAddr { dst, sym } => {
            let v = env.sym_addr(*sym)?;
            ctx.regs[*dst as usize] = v;
        }
        Step::FuncAddr { dst, func } => {
            let v = env.func_addr(*func)?;
            ctx.regs[*dst as usize] = v;
        }
        Step::Nop => {}
        Step::GuardWrite { base, off, len } => {
            let addr = base.get(&ctx.regs).wrapping_add(*off);
            let l = len.get(&ctx.regs);
            env.guard_write(addr, l)?;
        }
        Step::GuardIndCall {
            slot_base,
            slot_off,
            sig,
        } => {
            let slot = slot_base.get(&ctx.regs).wrapping_add(*slot_off);
            env.guard_indcall(slot, *sig)?;
        }
        Step::CallExtern { .. } | Step::CallPtr { .. } | Step::GuardedStore { .. } => {
            unreachable!("reentrant steps handled by the block loop")
        }
    }
    Ok(())
}

fn exec_exit(b: &BlockBody, ctx: &mut ExecCtx) -> Result<BlockExit, Trap> {
    match &b.exit {
        ExitOp::Jmp { target } => Ok(BlockExit::Goto(*target)),
        ExitOp::Br {
            cond,
            lhs,
            rhs,
            then_b,
            else_b,
        } => {
            let l = lhs.get(&ctx.regs);
            let r = rhs.get(&ctx.regs);
            Ok(BlockExit::Goto(if cond.eval(l, r) {
                *then_b
            } else {
                *else_b
            }))
        }
        ExitOp::Ret { val } => Ok(BlockExit::Return(
            val.map(|v| v.get(&ctx.regs)).unwrap_or(0),
        )),
        ExitOp::Trap { code } => Err(Trap::Bug(*code)),
        ExitOp::CallLocal {
            func,
            args,
            ret,
            resume,
        } => {
            ctx.stage(args);
            Ok(BlockExit::Call {
                func: *func,
                ret: *ret,
                resume: *resume,
            })
        }
    }
}

/// Fast path: charge the whole block once, track the unearned remainder
/// in `rest`, and refund it at every early exit so the fuel trace is
/// cycle-identical to the interpreter's consume-per-instruction.
///
/// One flat match per step — the plain arms are duplicated from
/// [`exec_step`] rather than delegated so the common path dispatches
/// once, not twice, and touches no `Env` method (the interpreter this
/// backend must beat is monomorphized into its caller; every virtual
/// call here is a cost it does not pay).
#[inline(always)]
fn exec_block<E: Env + ?Sized>(
    b: &BlockBody,
    ctx: &mut ExecCtx,
    env: &mut E,
) -> Result<BlockExit, Trap> {
    if env.consume(b.cost).is_err() {
        // Not enough for the whole block: charge instruction by
        // instruction so the trap lands exactly where the interpreter's
        // would, with the same partial side effects.
        return exec_block_slow(b, ctx, env, 0);
    }
    let mut rest = b.cost;
    let mut i = 0usize;
    while i < b.steps.len() {
        // SAFETY: `i < b.steps.len()` by the loop condition.
        let (step, charge) = unsafe { b.steps.get_unchecked(i) };
        rest -= charge;
        // Every arm that can fail either diverges after doing its own
        // refund arithmetic (the fused/reentrant steps) or falls through
        // to the common `refund(rest)` at the bottom.
        let r: Result<(), Trap> = match step {
            Step::Mov { dst, src } => {
                let v = src.get(&ctx.regs);
                set_reg(&mut ctx.regs, *dst, v);
                Ok(())
            }
            Step::Bin { op, dst, lhs, rhs } => {
                let l = lhs.get(&ctx.regs);
                let r = rhs.get(&ctx.regs);
                match binop(*op, l, r) {
                    Ok(v) => {
                        set_reg(&mut ctx.regs, *dst, v);
                        Ok(())
                    }
                    Err(t) => Err(t),
                }
            }
            Step::Load {
                dst,
                base,
                off,
                width,
            } => {
                let addr = base.get(&ctx.regs).wrapping_add(*off);
                match mem_read(ctx, env, addr, *width) {
                    Ok(v) => {
                        set_reg(&mut ctx.regs, *dst, v);
                        Ok(())
                    }
                    Err(t) => Err(t),
                }
            }
            Step::Store {
                src,
                base,
                off,
                width,
            } => {
                let addr = base.get(&ctx.regs).wrapping_add(*off);
                let v = src.get(&ctx.regs);
                mem_write(ctx, env, addr, v, *width)
            }
            Step::LoadFrame { dst, off, width } => {
                let addr = ctx.sp + *off;
                match mem_read(ctx, env, addr, *width) {
                    Ok(v) => {
                        set_reg(&mut ctx.regs, *dst, v);
                        Ok(())
                    }
                    Err(t) => Err(t),
                }
            }
            Step::StoreFrame { src, off, width } => {
                let addr = ctx.sp + *off;
                let v = src.get(&ctx.regs);
                mem_write(ctx, env, addr, v, *width)
            }
            Step::FrameAddr { dst, off } => {
                set_reg(&mut ctx.regs, *dst, ctx.sp + *off);
                Ok(())
            }
            Step::GuardedStore {
                gbase,
                goff,
                glen,
                src,
                base,
                off,
                width,
            } => {
                let gaddr = gbase.get(&ctx.regs).wrapping_add(*goff);
                let glen_v = glen.get(&ctx.regs);
                if let Err(t) = env.guard_write(gaddr, glen_v) {
                    // Only the guard's ALU was earned; refund the store's
                    // MEM along with the suffix.
                    env.refund(rest + costs::MEM);
                    return Err(t);
                }
                let addr = base.get(&ctx.regs).wrapping_add(*off);
                let v = src.get(&ctx.regs);
                mem_write(ctx, env, addr, v, *width)
            }
            Step::GuardWrite { base, off, len } => {
                let addr = base.get(&ctx.regs).wrapping_add(*off);
                env.guard_write(addr, len.get(&ctx.regs))
            }
            Step::GuardIndCall {
                slot_base,
                slot_off,
                sig,
            } => {
                let slot = slot_base.get(&ctx.regs).wrapping_add(*slot_off);
                env.guard_indcall(slot, *sig)
            }
            Step::CallExtern { sym, args, ret } => {
                ctx.stage(args);
                // Hand back the unearned suffix so the callee observes the
                // same fuel level it would under the interpreter (the
                // callee may itself consume, trap, or re-enter a module).
                env.refund(rest);
                let v = env.call_extern(*sym, &ctx.scratch)?;
                ctx.tlb = None;
                if let Some(r) = ret {
                    set_reg(&mut ctx.regs, *r, v);
                }
                if env.consume(rest).is_err() {
                    return exec_block_slow(b, ctx, env, i + 1);
                }
                Ok(())
            }
            Step::CallPtr {
                ptr,
                sig,
                args,
                ret,
                guard,
            } => {
                if let Some((gbase, goff, gsig)) = guard {
                    let slot = gbase.get(&ctx.regs).wrapping_add(*goff);
                    if let Err(t) = env.guard_indcall(slot, *gsig) {
                        // Only the guard's ALU was earned; the fused CALL
                        // charge goes back too.
                        env.refund(rest + costs::CALL);
                        return Err(t);
                    }
                }
                let target = ptr.get(&ctx.regs);
                ctx.stage(args);
                env.refund(rest);
                let v = env.call_ptr(target, *sig, &ctx.scratch)?;
                ctx.tlb = None;
                if let Some(r) = ret {
                    set_reg(&mut ctx.regs, *r, v);
                }
                if env.consume(rest).is_err() {
                    return exec_block_slow(b, ctx, env, i + 1);
                }
                Ok(())
            }
            Step::GlobalAddr { dst, global } => match env.global_addr(*global) {
                Ok(v) => {
                    set_reg(&mut ctx.regs, *dst, v);
                    Ok(())
                }
                Err(t) => Err(t),
            },
            Step::SymAddr { dst, sym } => match env.sym_addr(*sym) {
                Ok(v) => {
                    set_reg(&mut ctx.regs, *dst, v);
                    Ok(())
                }
                Err(t) => Err(t),
            },
            Step::FuncAddr { dst, func } => match env.func_addr(*func) {
                Ok(v) => {
                    set_reg(&mut ctx.regs, *dst, v);
                    Ok(())
                }
                Err(t) => Err(t),
            },
            Step::Nop => Ok(()),
        };
        if let Err(t) = r {
            env.refund(rest);
            return Err(t);
        }
        i += 1;
    }
    debug_assert_eq!(rest, b.exit_cost);
    exec_exit(b, ctx)
}

/// Slow path: per-instruction fuel accounting from step `from` onward,
/// exactly reproducing the interpreter near fuel exhaustion (fused steps
/// split their charges the way the original instruction pair would).
fn exec_block_slow<E: Env + ?Sized>(
    b: &BlockBody,
    ctx: &mut ExecCtx,
    env: &mut E,
    from: usize,
) -> Result<BlockExit, Trap> {
    for i in from..b.steps.len() {
        let (step, charge) = &b.steps[i];
        match step {
            Step::CallExtern { sym, args, ret } => {
                env.consume(costs::CALL)?;
                ctx.stage(args);
                let v = env.call_extern(*sym, &ctx.scratch)?;
                ctx.tlb = None;
                if let Some(r) = ret {
                    ctx.regs[*r as usize] = v;
                }
            }
            Step::CallPtr {
                ptr,
                sig,
                args,
                ret,
                guard,
            } => {
                if let Some((gbase, goff, gsig)) = guard {
                    env.consume(costs::ALU)?;
                    let slot = gbase.get(&ctx.regs).wrapping_add(*goff);
                    env.guard_indcall(slot, *gsig)?;
                }
                env.consume(costs::CALL)?;
                let target = ptr.get(&ctx.regs);
                ctx.stage(args);
                let v = env.call_ptr(target, *sig, &ctx.scratch)?;
                ctx.tlb = None;
                if let Some(r) = ret {
                    ctx.regs[*r as usize] = v;
                }
            }
            Step::GuardedStore {
                gbase,
                goff,
                glen,
                src,
                base,
                off,
                width,
            } => {
                env.consume(costs::ALU)?;
                let gaddr = gbase.get(&ctx.regs).wrapping_add(*goff);
                env.guard_write(gaddr, glen.get(&ctx.regs))?;
                env.consume(costs::MEM)?;
                let addr = base.get(&ctx.regs).wrapping_add(*off);
                mem_write(ctx, env, addr, src.get(&ctx.regs), *width)?;
            }
            _ => {
                env.consume(*charge)?;
                exec_step(step, ctx, env)?;
            }
        }
    }
    env.consume(b.exit_cost)?;
    exec_exit(b, ctx)
}

/// Runs one activation's blocks from `entry` until it returns, calls, or
/// traps. `Goto` edges stay inside this loop, so a hot intra-function
/// loop costs one (inlined) block execution per iteration with no trip
/// through the driver's activation bookkeeping.
fn exec_func<E: Env + ?Sized>(
    blocks: &[BlockBody],
    entry: u32,
    ctx: &mut ExecCtx,
    env: &mut E,
) -> Result<FuncExit, Trap> {
    let mut block = entry;
    loop {
        debug_assert!((block as usize) < blocks.len());
        // SAFETY: every block index — function entry 0, jump/branch
        // targets, fallthroughs, and call resume points — comes from
        // `block_of` over targets `compilable` verified in range.
        let b = unsafe { blocks.get_unchecked(block as usize) };
        match exec_block(b, ctx, env)? {
            BlockExit::Goto(n) => block = n,
            BlockExit::Return(v) => return Ok(FuncExit::Return(v)),
            BlockExit::Call { func, ret, resume } => {
                return Ok(FuncExit::Call { func, ret, resume })
            }
        }
    }
}

/// A suspended caller activation.
struct CFrame {
    func: u32,
    resume: u32,
    regs: [Word; NUM_REGS],
    sp: Word,
    frame_size: u32,
    /// Register in *this* (the caller's) frame receiving the callee's
    /// return value.
    ret_to: Option<u8>,
}

/// Executes `func` from `cp` with `args` under the compiled backend.
///
/// Drop-in replacement for [`run_function`]: identical results, traps,
/// environment interactions, and (given an [`Env::refund`]
/// implementation) identical fuel accounting. Functions that failed
/// compilation route through the interpreter transparently.
pub fn run_compiled<E: Env + ?Sized>(
    env: &mut E,
    cp: &CompiledProgram,
    func: FuncId,
    args: &[Word],
) -> Result<Word, Trap> {
    let frame_size0 = match cp.funcs.get(func.0 as usize) {
        None => return Err(Trap::BadRef(format!("function id {}", func.0))),
        Some(CompiledFunc::Fallback) => return run_function(env, &cp.program, func, args),
        Some(CompiledFunc::Blocks { frame_size, .. }) => *frame_size,
    };

    let mut ctx = ExecCtx::new();
    ctx.sp = env.push_frame(frame_size0)?;
    let n = args.len().min(NUM_ARG_REGS);
    ctx.regs[..n].copy_from_slice(&args[..n]);

    let mut frames: Vec<CFrame> = Vec::new();
    let mut cur = func.0 as usize;
    let mut cur_frame_size = frame_size0;
    let mut block = 0u32;

    let result = loop {
        let blocks = match &cp.funcs[cur] {
            CompiledFunc::Blocks { blocks, .. } => blocks,
            CompiledFunc::Fallback => unreachable!("driver never enters fallback funcs"),
        };
        match exec_func(blocks, block, &mut ctx, env) {
            Ok(FuncExit::Return(v)) => {
                env.pop_frame(cur_frame_size);
                match frames.pop() {
                    None => return Ok(v),
                    Some(fr) => {
                        cur = fr.func as usize;
                        cur_frame_size = fr.frame_size;
                        ctx.regs = fr.regs;
                        ctx.sp = fr.sp;
                        if let Some(r) = fr.ret_to {
                            ctx.regs[r as usize] = v;
                        }
                        block = fr.resume;
                    }
                }
            }
            Ok(FuncExit::Call {
                func: callee,
                ret,
                resume,
            }) => {
                match cp.funcs.get(callee.0 as usize) {
                    None => {
                        // Unreachable for compiled callers (validated),
                        // kept for parity with the interpreter's message.
                        break Err(Trap::BadRef(format!("function id {}", callee.0)));
                    }
                    Some(CompiledFunc::Fallback) => {
                        let v = match run_function(env, &cp.program, callee, &ctx.scratch) {
                            Ok(v) => v,
                            Err(t) => break Err(t),
                        };
                        // The interpreter (or anything it called) may have
                        // remapped memory.
                        ctx.tlb = None;
                        if let Some(r) = ret {
                            ctx.regs[r as usize] = v;
                        }
                        block = resume;
                    }
                    Some(CompiledFunc::Blocks { frame_size, .. }) => {
                        let sp = match env.push_frame(*frame_size) {
                            Ok(sp) => sp,
                            Err(t) => break Err(t),
                        };
                        frames.push(CFrame {
                            func: cur as u32,
                            resume,
                            regs: ctx.regs,
                            sp: ctx.sp,
                            frame_size: cur_frame_size,
                            ret_to: ret,
                        });
                        cur = callee.0 as usize;
                        cur_frame_size = *frame_size;
                        ctx.sp = sp;
                        let mut regs = [0u64; NUM_REGS];
                        let n = ctx.scratch.len().min(NUM_ARG_REGS);
                        regs[..n].copy_from_slice(&ctx.scratch[..n]);
                        ctx.regs = regs;
                        block = 0;
                    }
                }
            }
            Err(t) => break Err(t),
        }
    };
    // Unwind the simulated stack after a trap, exactly like the
    // interpreter's run_function, so the kernel can catch the trap with
    // a balanced stack pointer.
    env.pop_frame(cur_frame_size);
    for fr in frames.drain(..).rev() {
        env.pop_frame(fr.frame_size);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::regs::*;
    use crate::builder::ProgramBuilder;
    use crate::mem::AddressSpace;

    /// Test env with exact refund and a guard log; memory lives behind an
    /// `Arc` so cached `PageHandle`s are backed by a stable allocation.
    struct CEnv {
        mem: Arc<AddressSpace>,
        fuel: u64,
        sp: Word,
        stack_base: Word,
        guard_log: Vec<(Word, Word)>,
        extern_ret: Word,
    }

    impl CEnv {
        fn new() -> Self {
            let mem = Arc::new(AddressSpace::new());
            let stack_top = 0xffff_9000_0001_0000u64;
            let stack_base = stack_top - 0x4000;
            mem.map_range(stack_base, 0x4000);
            CEnv {
                mem,
                fuel: 1_000_000,
                sp: stack_top,
                stack_base,
                guard_log: Vec::new(),
                extern_ret: 0,
            }
        }
    }

    impl Env for CEnv {
        fn mem(&self) -> &AddressSpace {
            &self.mem
        }
        fn consume(&mut self, cycles: u64) -> Result<(), Trap> {
            if self.fuel < cycles {
                return Err(Trap::OutOfFuel);
            }
            self.fuel -= cycles;
            Ok(())
        }
        fn refund(&mut self, cycles: u64) {
            self.fuel += cycles;
        }
        fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
            let size = (size as u64 + 15) & !15;
            if self.sp - size < self.stack_base {
                return Err(Trap::StackOverflow);
            }
            self.sp -= size;
            Ok(self.sp)
        }
        fn pop_frame(&mut self, size: u32) {
            self.sp += (size as u64 + 15) & !15;
        }
        fn guard_write(&mut self, addr: Word, len: Word) -> Result<(), Trap> {
            self.guard_log.push((addr, len));
            Ok(())
        }
        fn guard_indcall(&mut self, _slot: Word, _sig: SigId) -> Result<(), Trap> {
            Ok(())
        }
        fn call_extern(&mut self, _sym: SymbolId, args: &[Word]) -> Result<Word, Trap> {
            Ok(args.iter().sum::<Word>() + self.extern_ret)
        }
        fn call_ptr(&mut self, _t: Word, _s: SigId, a: &[Word]) -> Result<Word, Trap> {
            Ok(a.first().copied().unwrap_or(0).wrapping_mul(2))
        }
        fn global_addr(&self, _g: GlobalId) -> Result<Word, Trap> {
            Ok(0x30_0000)
        }
        fn sym_addr(&self, _s: SymbolId) -> Result<Word, Trap> {
            Ok(0x40_0000)
        }
        fn func_addr(&self, f: FuncId) -> Result<Word, Trap> {
            Ok(0xf000_0000 + f.0 as u64 * 16)
        }
    }

    /// Runs `func` under both backends on fresh envs (tweaked by `prep`)
    /// and asserts identical outcome, fuel, and guard log.
    fn both(
        p: &Program,
        func: FuncId,
        args: &[Word],
        prep: impl Fn(&mut CEnv),
    ) -> Result<Word, Trap> {
        let cp = CompiledProgram::compile(Arc::new(p.clone()));
        let mut ei = CEnv::new();
        let mut ec = CEnv::new();
        prep(&mut ei);
        prep(&mut ec);
        let ri = run_function(&mut ei, p, func, args);
        let rc = run_compiled(&mut ec, &cp, func, args);
        match (&ri, &rc) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "results diverge"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "traps diverge"),
            _ => panic!("outcome diverges: interp={ri:?} compiled={rc:?}"),
        }
        assert_eq!(ei.fuel, ec.fuel, "fuel diverges");
        assert_eq!(ei.guard_log, ec.guard_log, "guard logs diverge");
        assert_eq!(ei.sp, ec.sp, "stack pointer diverges");
        rc
    }

    #[test]
    fn arithmetic_and_branches() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("sum", 1, 0, |f| {
            let top = f.label();
            let out = f.label();
            f.mov(R1, 0i64);
            f.bind(top);
            f.br(Cond::Eq, R0, 0i64, out);
            f.add(R1, R1, R0);
            f.sub(R0, R0, 1i64);
            f.jmp(top);
            f.bind(out);
            f.ret(R1);
        });
        let p = pb.finish();
        assert_eq!(both(&p, f, &[10], |_| {}).unwrap(), 55);
        assert_eq!(both(&p, f, &[0], |_| {}).unwrap(), 0);
    }

    #[test]
    fn local_calls_and_recursion() {
        let mut pb = ProgramBuilder::new("t");
        let fib = pb.declare("fib", 1);
        pb.define("fib", 1, 0, |f| {
            let rec = f.label();
            f.br(Cond::Ult, 1i64, R0, rec);
            f.ret(R0);
            f.bind(rec);
            f.sub(R1, R0, 1i64);
            f.sub(R2, R0, 2i64);
            f.call_local(fib, &[R1.into()], Some(R3));
            f.call_local(fib, &[R2.into()], Some(R4));
            f.add(R0, R3, R4);
            f.ret(R0);
        });
        let p = pb.finish();
        assert_eq!(both(&p, fib, &[10], |_| {}).unwrap(), 55);
    }

    #[test]
    fn frame_locals_and_memory() {
        let mut pb = ProgramBuilder::new("t");
        let inner = pb.declare("inner", 0);
        pb.define("inner", 0, 16, |f| {
            f.store_frame(99i64, 0, Width::B8);
            f.ret_void();
        });
        let outer = pb.define("outer", 0, 16, |f| {
            f.store_frame(7i64, 0, Width::B8);
            f.call_local(inner, &[], None);
            f.load_frame(R0, 0, Width::B8);
            f.ret(R0);
        });
        let p = pb.finish();
        assert_eq!(both(&p, outer, &[], |_| {}).unwrap(), 7);
    }

    #[test]
    fn guarded_store_fuses_and_logs() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("g", 1, 0, |f| {
            f.guard_write(R0, 8, 16i64);
            f.store8(1i64, R0, 8);
            f.ret_void();
        });
        let p = pb.finish();
        let cp = CompiledProgram::compile(Arc::new(p.clone()));
        assert_eq!(cp.stats().fused_guard_sites, 1);
        both(&p, f, &[0x8000], |e| e.mem.map_range(0x8000, 64)).unwrap();
        let mut e = CEnv::new();
        e.mem.map_range(0x8000, 64);
        run_compiled(&mut e, &cp, f, &[0x8000]).unwrap();
        assert_eq!(e.guard_log, vec![(0x8008, 16)]);
        assert_eq!(e.mem.read_word(0x8008).unwrap(), 1);
    }

    #[test]
    fn extern_and_indirect_calls() {
        let mut pb = ProgramBuilder::new("t");
        let s = pb.import_func("ext");
        let sig = pb.sig("cb", 1);
        let f = pb.define("f", 2, 0, |f| {
            f.call_extern(s, &[R0.into(), R1.into()], Some(R2));
            f.call_ptr(R2, sig, &[R2.into()], Some(R0));
            f.ret(R0);
        });
        let p = pb.finish();
        assert_eq!(both(&p, f, &[3, 4], |_| {}).unwrap(), 14);
    }

    #[test]
    fn fuel_exhaustion_matches_interp_exactly() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("loopy", 0, 0, |f| {
            let top = f.label();
            f.bind(top);
            f.mov(R0, 1i64);
            f.add(R0, R0, R0);
            f.jmp(top);
        });
        let p = pb.finish();
        // Sweep fuel levels so the trap lands at every possible point in
        // the block, exercising the slow path's per-step accounting.
        for fuel in 0..40 {
            let err = both(&p, f, &[], |e| e.fuel = fuel);
            assert!(matches!(err, Err(Trap::OutOfFuel)), "fuel={fuel}");
        }
    }

    #[test]
    fn traps_and_unwind() {
        let mut pb = ProgramBuilder::new("t");
        let buggy = pb.declare("buggy", 0);
        pb.define("buggy", 0, 64, |f| f.trap(42));
        let outer = pb.define("outer", 0, 64, |f| {
            f.call_local(buggy, &[], None);
            f.ret_void();
        });
        let p = pb.finish();
        let err = both(&p, outer, &[], |_| {}).unwrap_err();
        assert!(matches!(err, Trap::Bug(42)));
    }

    #[test]
    fn div_by_zero_and_memfault() {
        let mut pb = ProgramBuilder::new("t");
        let d = pb.define("d", 2, 0, |f| {
            f.bin(BinOp::Div, R0, R0, R1);
            f.ret(R0);
        });
        let w = pb.define("wild", 1, 0, |f| {
            f.store8(0i64, R0, 0);
            f.ret_void();
        });
        let p = pb.finish();
        assert_eq!(both(&p, d, &[10, 2], |_| {}).unwrap(), 5);
        assert!(matches!(
            both(&p, d, &[10, 0], |_| {}),
            Err(Trap::DivByZero)
        ));
        assert!(matches!(
            both(&p, w, &[0xdead0000], |_| {}),
            Err(Trap::MemFault { write: true, .. })
        ));
    }

    #[test]
    fn stack_overflow_unwinds_balanced() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.declare("spin", 0);
        pb.define("spin", 0, 1024, |f2| {
            f2.call_local(f, &[], None);
            f2.ret_void();
        });
        let p = pb.finish();
        let err = both(&p, f, &[], |_| {}).unwrap_err();
        assert!(matches!(err, Trap::StackOverflow));
    }

    #[test]
    fn bad_entry_function_id() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 0, 0, |f| f.ret(0i64));
        let p = pb.finish();
        let err = both(&p, FuncId(9), &[], |_| {}).unwrap_err();
        assert!(matches!(err, Trap::BadRef(ref s) if s == "function id 9"));
    }

    #[test]
    fn sub_word_and_unaligned_access() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.define("f", 1, 0, |f| {
            f.store(0xaabbi64, R0, 3, Width::B2);
            f.load(R1, R0, 3, Width::B2);
            f.load(R2, R0, 0, Width::B8);
            // Cross-word (offset 5, width 8) exercises the non-TLB path.
            f.store8(0x1122_3344_5566_7788i64, R0, 5);
            f.load8(R3, R0, 5);
            f.bin(BinOp::Xor, R0, R1, R3);
            f.ret(R0);
        });
        let p = pb.finish();
        let v = both(&p, f, &[0x9000], |e| e.mem.map_range(0x9000, 64)).unwrap();
        assert_eq!(v, 0xaabb ^ 0x1122_3344_5566_7788u64);
    }

    #[test]
    fn stats_count_blocks() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 1, 0, |f| {
            let out = f.label();
            f.br(Cond::Eq, R0, 0i64, out);
            f.add(R0, R0, 1i64);
            f.bind(out);
            f.ret(R0);
        });
        let p = pb.finish();
        let cp = CompiledProgram::compile(Arc::new(p));
        let st = cp.stats();
        assert_eq!(st.funcs_compiled, 1);
        assert_eq!(st.fallback_funcs, 0);
        assert_eq!(st.blocks_compiled, 3, "entry, fallthrough, join");
    }

    #[test]
    fn empty_function_falls_back() {
        use crate::program::Function;
        let mut pb = ProgramBuilder::new("t");
        pb.define("ok", 0, 0, |f| f.ret(0i64));
        let mut p = pb.finish();
        p.funcs.push(Function {
            name: "empty".into(),
            params: 0,
            frame_size: 0,
            insts: vec![],
        });
        let cp = CompiledProgram::compile(Arc::new(p));
        assert_eq!(cp.stats().fallback_funcs, 1);
        assert_eq!(cp.stats().funcs_compiled, 1);
    }

    #[test]
    fn backend_parses() {
        assert_eq!("interp".parse::<Backend>().unwrap(), Backend::Interp);
        assert_eq!("compiled".parse::<Backend>().unwrap(), Backend::Compiled);
        assert!("jit".parse::<Backend>().is_err());
        assert_eq!(Backend::Compiled.to_string(), "compiled");
    }
}
