//! Guard-soundness verification: a dataflow proof that rewriter output
//! enforces the LXFI write/ind-call discipline, checked on the *output*
//! program rather than trusted to the rewriter.
//!
//! [`verify_soundness`] runs a forward *must* analysis over each
//! function's control-flow graph and proves, per [`SoundnessPolicy`]:
//!
//! - every reachable [`Inst::Store`] is dominated by an
//!   [`Inst::GuardWrite`] with the *same base operand* whose span covers
//!   the stored bytes, with no redefinition of the base register and no
//!   call (capability revocation point) in between;
//! - every reachable [`Inst::CallPtr`] is dominated by an
//!   [`Inst::GuardIndCall`] on the very slot the pointer was loaded
//!   from, with the call-site signature, and no intervening store, call,
//!   or slot-base redefinition;
//! - every frame-relative access is statically in bounds, re-validating
//!   the §8.3 guard-elision rule (frame stores carry no dynamic guard,
//!   so their bounds proof *is* their guard).
//!
//! What this deliberately does **not** prove: that the runtime WRITE /
//! CALL tables contain the right capabilities when a guard fires. Guards
//! are dynamic checks against tables maintained by the trusted kernel
//! API wrappers; this pass proves the checks cannot be bypassed, not
//! that the tables are correct. See `docs/soundness.md` for the full
//! argument.

use crate::isa::{Inst, Operand, Reg, Width, NUM_REGS};
use crate::program::{Function, Program, SigId};
use crate::verify::{verify_program, VerifyError};

// ------------------------------------------------------------- policy

/// Which guard obligations [`verify_soundness`] enforces.
///
/// The two halves of the dynamic-enforcement split need different
/// proofs: module code has every `CallPtr` checked *dynamically* by the
/// kernel's `call_ptr` environment hook (writer set + annotation hash),
/// so only stores need static guards; kernel thunks run trusted and
/// unchecked, so their inserted `GuardIndCall` is the only protection
/// for the function pointers they dereference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoundnessPolicy {
    /// Require every reachable `Store` to be guard-dominated.
    pub require_store_guards: bool,
    /// Require every reachable `CallPtr` to be guard-dominated.
    pub require_indcall_guards: bool,
}

impl SoundnessPolicy {
    /// Policy for rewritten module code: stores must be guarded;
    /// indirect calls are exempt because the kernel checks them
    /// dynamically on every `call_ptr` dispatch under LXFI.
    pub fn module() -> Self {
        SoundnessPolicy {
            require_store_guards: true,
            require_indcall_guards: false,
        }
    }

    /// Policy for rewritten kernel thunks: indirect calls must be
    /// guard-dominated (thunks run trusted, nothing checks them later);
    /// stores are exempt because kernel code writes with full authority.
    pub fn kernel_thunks() -> Self {
        SoundnessPolicy {
            require_store_guards: false,
            require_indcall_guards: true,
        }
    }

    /// Both obligations at once (useful for tests and tooling).
    pub fn full() -> Self {
        SoundnessPolicy {
            require_store_guards: true,
            require_indcall_guards: true,
        }
    }
}

// ------------------------------------------------------------- report

/// Statistics from a successful soundness proof.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Functions analysed.
    pub funcs: usize,
    /// Basic blocks visited by the fixpoint (reachable blocks).
    pub blocks_checked: usize,
    /// Basic blocks never reached from any function entry (dead code —
    /// exempt from guard obligations, like the paper's verifier).
    pub unreachable_blocks: usize,
    /// `Store` instructions proven guard-dominated.
    pub stores_proven: u64,
    /// Frame-relative stores proven statically in bounds (§8.3 elision).
    pub frame_stores_proven: u64,
    /// `CallPtr` instructions proven guard-dominated.
    pub indcalls_proven: u64,
}

impl SoundnessReport {
    fn absorb(&mut self, o: &SoundnessReport) {
        self.funcs += o.funcs;
        self.blocks_checked += o.blocks_checked;
        self.unreachable_blocks += o.unreachable_blocks;
        self.stores_proven += o.stores_proven;
        self.frame_stores_proven += o.frame_stores_proven;
        self.indcalls_proven += o.indcalls_proven;
    }
}

// ---------------------------------------------------- abstract domain

/// A proven-writable interval `[base+lo, base+hi)`, established by a
/// `GuardWrite` with an immediate length. Offsets are widened to `i128`
/// so `off + len` can never wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WriteFact {
    base: Operand,
    lo: i128,
    hi: i128,
}

/// A function-pointer slot address, named symbolically as `base + off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    base: Operand,
    off: i64,
}

/// A slot whose writer set and annotation hash were validated by a
/// `GuardIndCall` for signature `sig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CheckedSlot {
    slot: Slot,
    sig: SigId,
}

/// The per-program-point abstract state of the must-analysis. "No fact"
/// is the safe bottom: the verifier then simply cannot prove anything.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    /// Disjoint, coalesced proven-writable intervals, grouped by base.
    write_facts: Vec<WriteFact>,
    /// Per-register provenance: `slot_of[r] = Some(s)` means `r` still
    /// holds the 8-byte word loaded from slot `s`.
    slot_of: [Option<Slot>; NUM_REGS],
    /// Slots whose `GuardIndCall` check is still valid here.
    checked_slots: Vec<CheckedSlot>,
}

/// Total order on operands so fact lists can stay sorted/deduped.
fn op_key(op: Operand) -> (u8, i64) {
    match op {
        Operand::Reg(r) => (0, i64::from(r.0)),
        Operand::Imm(v) => (1, v),
    }
}

impl AbsState {
    fn empty() -> Self {
        AbsState {
            write_facts: Vec::new(),
            slot_of: [None; NUM_REGS],
            checked_slots: Vec::new(),
        }
    }

    /// Adds `[base+lo, base+hi)` and coalesces overlapping or adjacent
    /// same-base intervals, so union coverage is simple containment.
    fn add_write_fact(&mut self, base: Operand, lo: i128, hi: i128) {
        let (mut lo, mut hi) = (lo, hi);
        self.write_facts.retain(|f| {
            if f.base == base && f.lo <= hi && lo <= f.hi {
                lo = lo.min(f.lo);
                hi = hi.max(f.hi);
                false
            } else {
                true
            }
        });
        self.write_facts.push(WriteFact { base, lo, hi });
        self.write_facts
            .sort_by_key(|f| (op_key(f.base), f.lo, f.hi));
    }

    /// Is `[base+lo, base+hi)` proven writable here?
    fn covers(&self, base: Operand, lo: i128, hi: i128) -> bool {
        self.write_facts
            .iter()
            .any(|f| f.base == base && f.lo <= lo && hi <= f.hi)
    }

    /// Forgets everything whose symbolic meaning depends on `r`'s
    /// current value: facts based on `r`, and the content fact for `r`
    /// itself. Required so symbolic equality keeps implying concrete
    /// equality after the register changes.
    fn kill_reg(&mut self, r: Reg) {
        let dead = Operand::Reg(r);
        self.write_facts.retain(|f| f.base != dead);
        self.slot_of[r.0 as usize] = None;
        for s in self.slot_of.iter_mut() {
            if matches!(s, Some(sl) if sl.base == dead) {
                *s = None;
            }
        }
        self.checked_slots.retain(|c| c.slot.base != dead);
    }

    /// A store may overwrite any function-pointer slot, so all slot
    /// content and checked-slot facts die. Write capabilities are table
    /// state, not memory state — those facts survive.
    fn clobber_mem(&mut self) {
        self.slot_of = [None; NUM_REGS];
        self.checked_slots.clear();
    }

    /// A call can revoke write capabilities (the callee runs trusted
    /// kernel code), write memory, and clobber the return register:
    /// every fact dies.
    fn call_effect(&mut self) {
        self.write_facts.clear();
        self.clobber_mem();
    }

    /// Must-analysis meet: keep only facts valid on *both* paths.
    fn meet(&self, other: &AbsState) -> AbsState {
        let mut out = AbsState::empty();
        // Interval-list intersection per base (both lists are sorted
        // and coalesced, so a nested scan suffices at these sizes).
        for a in &self.write_facts {
            for b in &other.write_facts {
                if a.base == b.base {
                    let lo = a.lo.max(b.lo);
                    let hi = a.hi.min(b.hi);
                    if lo < hi {
                        out.add_write_fact(a.base, lo, hi);
                    }
                }
            }
        }
        for i in 0..NUM_REGS {
            if self.slot_of[i] == other.slot_of[i] {
                out.slot_of[i] = self.slot_of[i];
            }
        }
        out.checked_slots = self
            .checked_slots
            .iter()
            .filter(|c| other.checked_slots.contains(c))
            .copied()
            .collect();
        out
    }

    /// Applies one instruction's transfer function.
    fn transfer(&mut self, inst: &Inst) {
        match inst {
            Inst::Load { dst, base, off, .. } => {
                // Capture the slot fact *before* killing dst: a load
                // whose base is its own destination redefines the base,
                // so the symbolic slot name would dangle.
                let slot = if matches!(
                    inst,
                    Inst::Load {
                        width: Width::B8,
                        ..
                    }
                ) && *base != Operand::Reg(*dst)
                {
                    Some(Slot {
                        base: *base,
                        off: *off,
                    })
                } else {
                    None
                };
                self.kill_reg(*dst);
                self.slot_of[dst.0 as usize] = slot;
            }
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::LoadFrame { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::SymAddr { dst, .. }
            | Inst::FuncAddr { dst, .. } => self.kill_reg(*dst),
            Inst::Store { .. } | Inst::StoreFrame { .. } => self.clobber_mem(),
            Inst::GuardWrite { base, off, len } => {
                if let Operand::Imm(l) = len {
                    if *l > 0 {
                        let lo = i128::from(*off);
                        self.add_write_fact(*base, lo, lo + i128::from(*l));
                    }
                }
            }
            Inst::GuardIndCall {
                slot_base,
                slot_off,
                sig,
            } => {
                let fact = CheckedSlot {
                    slot: Slot {
                        base: *slot_base,
                        off: *slot_off,
                    },
                    sig: *sig,
                };
                if !self.checked_slots.contains(&fact) {
                    self.checked_slots.push(fact);
                }
            }
            Inst::CallLocal { .. } | Inst::CallExtern { .. } | Inst::CallPtr { .. } => {
                self.call_effect()
            }
            Inst::Jmp { .. }
            | Inst::Br { .. }
            | Inst::Ret { .. }
            | Inst::Trap { .. }
            | Inst::Nop => {}
        }
    }
}

// ------------------------------------------------------ CFG skeleton

/// Basic-block partition of a flat instruction vector: sorted leader
/// indices. A leader is index 0, any jump target, and any instruction
/// following a `Jmp`/`Br`/`Ret`/`Trap`. Shared with the rewriter's
/// hoisting pass so both sides agree on the CFG.
pub fn block_starts(insts: &[Inst]) -> Vec<usize> {
    let mut leader = vec![false; insts.len()];
    if !insts.is_empty() {
        leader[0] = true;
    }
    for (i, inst) in insts.iter().enumerate() {
        if let Some(t) = inst.jump_target() {
            leader[t] = true;
        }
        let splits = inst.jump_target().is_some() || inst.is_terminator();
        if splits && i + 1 < insts.len() {
            leader[i + 1] = true;
        }
    }
    (0..insts.len()).filter(|&i| leader[i]).collect()
}

/// Successor *block indices* of the block `b` in the partition
/// `starts` (with `starts[b]..end` spanning the block).
pub fn block_succs(insts: &[Inst], starts: &[usize], b: usize) -> Vec<usize> {
    let end = if b + 1 < starts.len() {
        starts[b + 1]
    } else {
        insts.len()
    };
    let last = &insts[end - 1];
    let block_of = |i: usize| starts.partition_point(|&s| s <= i) - 1;
    let mut out = Vec::new();
    if let Some(t) = last.jump_target() {
        out.push(block_of(t));
    }
    if !last.is_terminator() && end < insts.len() {
        out.push(block_of(end));
    }
    out
}

// ------------------------------------------------------- verification

/// Proves the guard-soundness invariant for one function. `errs` grows
/// by one entry per unprovable store / indirect call.
fn verify_function(
    f: &Function,
    policy: SoundnessPolicy,
    errs: &mut Vec<VerifyError>,
) -> SoundnessReport {
    let mut report = SoundnessReport {
        funcs: 1,
        ..Default::default()
    };
    let fail = |inst, msg: String| VerifyError {
        func: f.name.clone(),
        inst: Some(inst),
        msg,
    };

    let starts = block_starts(&f.insts);
    let nblocks = starts.len();
    let block_end = |b: usize| {
        if b + 1 < nblocks {
            starts[b + 1]
        } else {
            f.insts.len()
        }
    };

    // Fixpoint: in-state per block; `None` = not yet reached (top).
    let mut in_state: Vec<Option<AbsState>> = vec![None; nblocks];
    if nblocks > 0 {
        in_state[0] = Some(AbsState::empty());
    }
    let mut work: Vec<usize> = if nblocks > 0 { vec![0] } else { vec![] };
    while let Some(b) = work.pop() {
        let mut st = in_state[b].clone().expect("queued block has a state");
        for inst in &f.insts[starts[b]..block_end(b)] {
            st.transfer(inst);
        }
        for s in block_succs(&f.insts, &starts, b) {
            let merged = match &in_state[s] {
                None => st.clone(),
                Some(old) => old.meet(&st),
            };
            if in_state[s].as_ref() != Some(&merged) {
                in_state[s] = Some(merged);
                work.push(s);
            }
        }
    }

    // Checking pass over reachable blocks with their fixpoint in-state.
    for b in 0..nblocks {
        let Some(mut st) = in_state[b].clone() else {
            report.unreachable_blocks += 1;
            continue;
        };
        report.blocks_checked += 1;
        for i in starts[b]..block_end(b) {
            let inst = &f.insts[i];
            match inst {
                Inst::Store {
                    base, off, width, ..
                } if policy.require_store_guards => {
                    let lo = i128::from(*off);
                    let hi = lo + i128::from(width.bytes());
                    if st.covers(*base, lo, hi) {
                        report.stores_proven += 1;
                    } else {
                        errs.push(fail(
                            i,
                            format!(
                                "store [{base}+{off}] width {} not dominated by a \
                                 matching GuardWrite",
                                width.bytes()
                            ),
                        ));
                    }
                }
                Inst::StoreFrame { off, width, .. } if policy.require_store_guards => {
                    // §8.3 elision: the static bounds check *is* the
                    // guard. verify_program enforces this too; proving
                    // it here keeps the soundness argument self-contained.
                    if u64::from(*off) + width.bytes() <= u64::from(f.frame_size) {
                        report.frame_stores_proven += 1;
                    } else {
                        errs.push(fail(
                            i,
                            format!(
                                "unguarded frame store [sp+{off}] width {} exceeds \
                                 frame size {}",
                                width.bytes(),
                                f.frame_size
                            ),
                        ));
                    }
                }
                Inst::CallPtr { ptr, sig, .. } if policy.require_indcall_guards => {
                    let proven = match ptr {
                        Operand::Reg(p) => st.slot_of[p.0 as usize].is_some_and(|slot| {
                            st.checked_slots.contains(&CheckedSlot { slot, sig: *sig })
                        }),
                        Operand::Imm(_) => false,
                    };
                    if proven {
                        report.indcalls_proven += 1;
                    } else {
                        errs.push(fail(
                            i,
                            format!(
                                "indirect call through {ptr} not dominated by a \
                                 GuardIndCall on its slot for sig {}",
                                sig.0
                            ),
                        ));
                    }
                }
                _ => {}
            }
            st.transfer(inst);
        }
    }
    report
}

/// Proves the guard-soundness invariant for a whole (rewritten)
/// program under `policy`.
///
/// Runs [`verify_program`]'s structural checks first — the dataflow
/// pass assumes well-formed jump targets and register indices — then
/// the per-function must-analysis. Returns every violation found.
pub fn verify_soundness(
    p: &Program,
    policy: SoundnessPolicy,
) -> Result<SoundnessReport, Vec<VerifyError>> {
    verify_program(p)?;
    let mut report = SoundnessReport::default();
    let mut errs = Vec::new();
    for f in &p.funcs {
        report.absorb(&verify_function(f, policy, &mut errs));
    }
    if errs.is_empty() {
        Ok(report)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::regs::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{BinOp, Cond};

    fn prog(build: impl FnOnce(&mut crate::builder::FunctionBuilder)) -> Program {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 1, 16, build);
        pb.finish()
    }

    fn assert_rejects(p: &Program, policy: SoundnessPolicy, needle: &str) {
        let errs = verify_soundness(p, policy).unwrap_err();
        assert!(
            errs.iter().any(|e| e.msg.contains(needle)),
            "expected a `{needle}` error, got {errs:?}"
        );
    }

    #[test]
    fn accepts_guarded_store() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 8i64);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        let r = verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 1);
    }

    #[test]
    fn accepts_merged_guard_covering_a_run_of_stores() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 16i64);
            f.store8(R0, R1, 0);
            f.store8(R0, R1, 8);
            f.ret_void();
        });
        let r = verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 2);
    }

    #[test]
    fn rejects_unguarded_store() {
        let p = prog(|f| {
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn rejects_guard_with_wrong_base() {
        let p = prog(|f| {
            f.guard_write(R2, 0, 8i64);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn rejects_guard_with_short_span() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 4i64); // covers [0,4) but the store writes [0,8)
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn rejects_guard_after_store() {
        let p = prog(|f| {
            f.store8(R0, R1, 0);
            f.guard_write(R1, 0, 8i64);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn rejects_base_redefined_between_guard_and_store() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 8i64);
            f.add(R1, R1, 8i64);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn rejects_guard_killed_by_intervening_call() {
        let mut pb = ProgramBuilder::new("t");
        let ext = pb.import_func("helper");
        pb.define("f", 1, 0, |f| {
            f.guard_write(R1, 0, 8i64);
            f.call_extern(ext, &[], None); // may revoke the WRITE capability
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&pb.finish(), SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn diamond_requires_guard_on_both_arms() {
        let one_arm = prog(|f| {
            let other = f.label();
            let join = f.label();
            f.br(Cond::Eq, R0, 0i64, other);
            f.guard_write(R1, 0, 8i64);
            f.jmp(join);
            f.bind(other);
            f.nop();
            f.bind(join);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&one_arm, SoundnessPolicy::module(), "not dominated");

        let both_arms = prog(|f| {
            let other = f.label();
            let join = f.label();
            f.br(Cond::Eq, R0, 0i64, other);
            f.guard_write(R1, 0, 8i64);
            f.jmp(join);
            f.bind(other);
            f.guard_write(R1, 0, 16i64);
            f.bind(join);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        let r = verify_soundness(&both_arms, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 1);
    }

    #[test]
    fn accepts_loop_hoisted_guard() {
        // guard at the loop header's preheader position, store in the
        // body, base invariant: the shape the hoisting pass produces.
        let p = prog(|f| {
            let top = f.label();
            let done = f.label();
            f.mov(R2, 0i64);
            f.br(Cond::Eq, R0, 0i64, done);
            f.guard_write(R1, 0, 8i64);
            f.bind(top);
            f.store8(R2, R1, 0);
            f.add(R2, R2, 1i64);
            f.br(Cond::Lt, R2, R0, top);
            f.bind(done);
            f.ret_void();
        });
        let r = verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 1);
    }

    #[test]
    fn loop_guard_does_not_leak_to_unguarded_entry_path() {
        // The backedge carries the fact but the entry path does not:
        // the meet at the header must drop it.
        let p = prog(|f| {
            let top = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.store8(R2, R1, 0); // first iteration runs unguarded
            f.guard_write(R1, 0, 8i64);
            f.add(R2, R2, 1i64);
            f.br(Cond::Lt, R2, R0, top);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn dead_code_is_exempt() {
        let p = prog(|f| {
            f.ret_void();
            f.store8(R0, R1, 0); // unreachable
            f.ret_void();
        });
        let r = verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 0);
        assert!(r.unreachable_blocks > 0);
    }

    #[test]
    fn frame_store_elision_is_validated() {
        let ok = prog(|f| {
            f.store_frame(1i64, 8, Width::B8);
            f.ret_void();
        });
        let r = verify_soundness(&ok, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.frame_stores_proven, 1);

        // Out-of-bounds frame stores are caught by the structural pass
        // before the dataflow even runs.
        let bad = prog(|f| {
            f.store_frame(1i64, 12, Width::B8); // bytes 12..20 > frame 16
            f.ret_void();
        });
        assert_rejects(&bad, SoundnessPolicy::module(), "frame");
    }

    #[test]
    fn kernel_thunk_indcall_shape_verifies() {
        let mut pb = ProgramBuilder::new("t");
        let sig = pb.sig("ndo", 2);
        pb.define("thunk", 1, 0, |f| {
            f.load8(R2, R0, 16);
            f.load8(R3, R2, 8);
            f.guard_indcall(R2, 8, sig);
            f.call_ptr(R3, sig, &[R0.into()], None);
            f.ret_void();
        });
        let r = verify_soundness(&pb.finish(), SoundnessPolicy::kernel_thunks()).unwrap();
        assert_eq!(r.indcalls_proven, 1);
    }

    #[test]
    fn rejects_unguarded_indcall() {
        let mut pb = ProgramBuilder::new("t");
        let sig = pb.sig("ndo", 2);
        pb.define("thunk", 1, 0, |f| {
            f.load8(R3, R0, 8);
            f.call_ptr(R3, sig, &[], None);
            f.ret_void();
        });
        assert_rejects(
            &pb.finish(),
            SoundnessPolicy::kernel_thunks(),
            "indirect call",
        );
    }

    #[test]
    fn rejects_indcall_with_wrong_sig_guard() {
        let mut pb = ProgramBuilder::new("t");
        let sig_a = pb.sig("a", 1);
        let sig_b = pb.sig("b", 1);
        pb.define("thunk", 1, 0, |f| {
            f.load8(R3, R0, 8);
            f.guard_indcall(R0, 8, sig_a);
            f.call_ptr(R3, sig_b, &[], None);
            f.ret_void();
        });
        assert_rejects(
            &pb.finish(),
            SoundnessPolicy::kernel_thunks(),
            "indirect call",
        );
    }

    #[test]
    fn rejects_indcall_after_intervening_store() {
        // A store between the check and the call could swap the slot's
        // contents (TOCTOU); the loaded value then bypasses the check...
        // except the register still holds the *checked* word, so the
        // strict domain simply refuses to reason and rejects.
        let mut pb = ProgramBuilder::new("t");
        let sig = pb.sig("ndo", 2);
        pb.define("thunk", 1, 0, |f| {
            f.guard_indcall(R0, 8, sig);
            f.store8(R1, R0, 8); // clobbers the checked slot
            f.load8(R3, R0, 8);
            f.call_ptr(R3, sig, &[], None);
            f.ret_void();
        });
        assert_rejects(
            &pb.finish(),
            SoundnessPolicy::kernel_thunks(),
            "indirect call",
        );
    }

    #[test]
    fn policies_scope_their_obligations() {
        // Module policy ignores CallPtr (dynamically checked)...
        let mut pb = ProgramBuilder::new("t");
        let sig = pb.sig("cb", 1);
        pb.define("f", 1, 0, |f| {
            f.load8(R3, R0, 0);
            f.call_ptr(R3, sig, &[], None);
            f.ret_void();
        });
        assert!(verify_soundness(&pb.finish(), SoundnessPolicy::module()).is_ok());

        // ...and the thunk policy ignores stores (kernel authority).
        let p = prog(|f| {
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert!(verify_soundness(&p, SoundnessPolicy::kernel_thunks()).is_ok());
        // But the full policy enforces both.
        assert!(verify_soundness(&p, SoundnessPolicy::full()).is_err());
    }

    #[test]
    fn guard_with_register_length_proves_nothing() {
        let p = prog(|f| {
            f.guard_write(R1, 0, R2);
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }

    #[test]
    fn load_into_own_base_drops_slot_provenance() {
        let mut pb = ProgramBuilder::new("t");
        let sig = pb.sig("cb", 1);
        pb.define("thunk", 1, 0, |f| {
            f.guard_indcall(R2, 8, sig);
            f.mov(R2, R0);
            f.load8(R2, R2, 8); // r2 = mem[r2+8]: base dies with the load
            f.call_ptr(R2, sig, &[], None);
            f.ret_void();
        });
        assert_rejects(
            &pb.finish(),
            SoundnessPolicy::kernel_thunks(),
            "indirect call",
        );
    }

    #[test]
    fn interval_coalescing_covers_adjacent_guards() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 8i64);
            f.guard_write(R1, 8, 8i64);
            f.store(R0, R1, 4, Width::B8); // [4,12) straddles both guards
            f.ret_void();
        });
        let r = verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        assert_eq!(r.stores_proven, 1);
    }

    #[test]
    fn bin_op_redefining_base_kills_fact_even_as_self_add() {
        let p = prog(|f| {
            f.guard_write(R1, 0, 8i64);
            f.bin(BinOp::Add, R1, R1, 0i64); // same value, but the domain is syntactic
            f.store8(R0, R1, 0);
            f.ret_void();
        });
        assert_rejects(&p, SoundnessPolicy::module(), "not dominated");
    }
}
