//! Static verification of KIR programs.
//!
//! Run on every program before loading: malformed module code is rejected
//! at load time, not at run time. The checks matter for LXFI soundness:
//! frame-relative accesses must be statically in-bounds, because the
//! rewriter *skips* dynamic write guards for them (§8.3's elision
//! optimization is only sound given these checks).

use crate::isa::{Inst, NUM_REGS};
use crate::program::Program;

/// A static verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the problem is (name).
    pub func: String,
    /// Instruction index, when applicable.
    pub inst: Option<usize>,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inst {
            Some(i) => write!(f, "{}@{}: {}", self.func, i, self.msg),
            None => write!(f, "{}: {}", self.func, self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole program. Returns every problem found.
#[allow(clippy::collapsible_match)] // One arm per check reads clearer here.
pub fn verify_program(p: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for f in &p.funcs {
        let fail = |inst, msg: String| VerifyError {
            func: f.name.clone(),
            inst,
            msg,
        };
        if f.insts.is_empty() {
            errs.push(fail(None, "empty function body".into()));
            continue;
        }
        if !f.insts.last().unwrap().is_terminator() {
            errs.push(fail(
                Some(f.insts.len() - 1),
                "function does not end in ret/jmp/trap".into(),
            ));
        }
        for (i, inst) in f.insts.iter().enumerate() {
            if let Some(r) = inst.def_reg() {
                if r.0 as usize >= NUM_REGS {
                    errs.push(fail(Some(i), format!("register {r} out of range")));
                }
            }
            if let Some(t) = inst.jump_target() {
                if t >= f.insts.len() {
                    errs.push(fail(Some(i), format!("jump target {t} out of range")));
                }
            }
            match inst {
                Inst::LoadFrame { off, width, .. } | Inst::StoreFrame { off, width, .. } => {
                    if u64::from(*off) + width.bytes() > u64::from(f.frame_size) {
                        errs.push(fail(
                            Some(i),
                            format!(
                                "frame access [sp+{off}] width {} exceeds frame size {}",
                                width.bytes(),
                                f.frame_size
                            ),
                        ));
                    }
                }
                Inst::FrameAddr { off, .. } => {
                    if u64::from(*off) > u64::from(f.frame_size) {
                        errs.push(fail(
                            Some(i),
                            format!("frame address sp+{off} exceeds frame size {}", f.frame_size),
                        ));
                    }
                }
                Inst::GlobalAddr { global, .. } => {
                    if global.0 as usize >= p.globals.len() {
                        errs.push(fail(Some(i), format!("unknown global {}", global.0)));
                    }
                }
                Inst::SymAddr { sym, .. } => {
                    if sym.0 as usize >= p.imports.len() {
                        errs.push(fail(Some(i), format!("unknown import {}", sym.0)));
                    }
                }
                Inst::FuncAddr { func, .. } | Inst::CallLocal { func, .. } => {
                    if func.0 as usize >= p.funcs.len() {
                        errs.push(fail(Some(i), format!("unknown function {}", func.0)));
                    }
                }
                Inst::CallExtern { sym, .. } => {
                    if sym.0 as usize >= p.imports.len() {
                        errs.push(fail(Some(i), format!("unknown import {}", sym.0)));
                    }
                }
                Inst::CallPtr { sig, .. } | Inst::GuardIndCall { sig, .. } => {
                    if sig.0 as usize >= p.sigs.len() {
                        errs.push(fail(Some(i), format!("unknown sig {}", sig.0)));
                    }
                }
                _ => {}
            }
        }
    }
    for r in &p.fn_relocs {
        let bad_ids = r.global.0 as usize >= p.globals.len() || r.func.0 as usize >= p.funcs.len();
        if bad_ids {
            errs.push(VerifyError {
                func: "<relocs>".into(),
                inst: None,
                msg: "fn reloc references unknown global or func".into(),
            });
        } else if r.offset + 8 > p.globals[r.global.0 as usize].size {
            errs.push(VerifyError {
                func: "<relocs>".into(),
                inst: None,
                msg: format!(
                    "fn reloc at offset {} exceeds global `{}` size {}",
                    r.offset,
                    p.globals[r.global.0 as usize].name,
                    p.globals[r.global.0 as usize].size
                ),
            });
        }
    }
    for a in &p.sig_assignments {
        if a.func.0 as usize >= p.funcs.len() || a.sig.0 as usize >= p.sigs.len() {
            errs.push(VerifyError {
                func: "<assignments>".into(),
                inst: None,
                msg: "sig assignment references unknown func or sig".into(),
            });
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::regs::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::Width;
    use crate::program::{FuncId, Function, SigAssignment, SigId};

    #[test]
    fn accepts_well_formed_program() {
        let mut pb = ProgramBuilder::new("ok");
        pb.define("f", 1, 16, |f| {
            f.store_frame(1i64, 8, Width::B8);
            f.ret(R0);
        });
        let p = pb.finish();
        assert!(verify_program(&p).is_ok());
    }

    #[test]
    fn rejects_out_of_frame_access() {
        let mut pb = ProgramBuilder::new("bad");
        pb.define("f", 0, 8, |f| {
            f.store_frame(1i64, 4, Width::B8); // bytes 4..12 > frame 8
            f.ret_void();
        });
        let p = pb.finish();
        let errs = verify_program(&p).unwrap_err();
        assert!(errs[0].msg.contains("exceeds frame size"));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut p = crate::program::Program::new("bad");
        p.funcs.push(Function {
            name: "f".into(),
            params: 0,
            frame_size: 0,
            insts: vec![Inst::Nop],
        });
        let errs = verify_program(&p).unwrap_err();
        assert!(errs[0].msg.contains("does not end"));
    }

    #[test]
    fn rejects_wild_jump() {
        let mut p = crate::program::Program::new("bad");
        p.funcs.push(Function {
            name: "f".into(),
            params: 0,
            frame_size: 0,
            insts: vec![Inst::Jmp { target: 99 }],
        });
        let errs = verify_program(&p).unwrap_err();
        assert!(errs[0].msg.contains("out of range"));
    }

    #[test]
    fn rejects_dangling_sig_assignment() {
        let mut p = crate::program::Program::new("bad");
        p.funcs.push(Function {
            name: "f".into(),
            params: 0,
            frame_size: 0,
            insts: vec![Inst::Ret { val: None }],
        });
        p.sig_assignments.push(SigAssignment {
            func: FuncId(0),
            sig: SigId(7),
        });
        let errs = verify_program(&p).unwrap_err();
        assert!(errs[0].msg.contains("sig assignment"));
    }

    #[test]
    fn rejects_empty_function() {
        let mut p = crate::program::Program::new("bad");
        p.funcs.push(Function {
            name: "f".into(),
            params: 0,
            frame_size: 0,
            insts: vec![],
        });
        assert!(verify_program(&p).is_err());
    }
}
