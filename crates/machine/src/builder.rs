//! Builders for assembling KIR programs in Rust.
//!
//! Module authors (the simulated kernel modules in `lxfi-modules`) use
//! [`ProgramBuilder`] / [`FunctionBuilder`] instead of writing raw
//! instruction vectors: labels are resolved to absolute indices at
//! `finish()` time, and common idioms (loops, calls) get helpers.

use std::collections::HashMap;

use crate::isa::{BinOp, Cond, Inst, Operand, Reg, Width};
use crate::program::{
    FuncId, Function, GlobalDef, GlobalId, Import, ImportKind, Program, SigAssignment, SigDecl,
    SigId, SymbolId,
};

/// A forward-referencable label inside a function under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`]: declares functions, globals, imports, and
/// function-pointer types, then assembles function bodies.
#[derive(Default)]
pub struct ProgramBuilder {
    program: Program,
    func_names: HashMap<String, FuncId>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            func_names: HashMap::new(),
        }
    }

    /// Declares an imported kernel function; returns its symbol id.
    /// Importing twice returns the original id.
    pub fn import_func(&mut self, name: &str) -> SymbolId {
        self.import(name, ImportKind::Func)
    }

    /// Declares an imported kernel data symbol; returns its symbol id.
    pub fn import_data(&mut self, name: &str) -> SymbolId {
        self.import(name, ImportKind::Data)
    }

    fn import(&mut self, name: &str, kind: ImportKind) -> SymbolId {
        if let Some(id) = self.program.import_by_name(name) {
            assert_eq!(
                self.program.imports[id.0 as usize].kind, kind,
                "import `{name}` redeclared with different kind"
            );
            return id;
        }
        self.program.imports.push(Import {
            name: name.into(),
            kind,
        });
        SymbolId(self.program.imports.len() as u32 - 1)
    }

    /// Declares a writable module global of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        self.global_full(name, size, true, None)
    }

    /// Declares a read-only module global (`.rodata`); the module gets no
    /// WRITE capability for it under LXFI.
    pub fn rodata(&mut self, name: &str, size: u64) -> GlobalId {
        self.global_full(name, size, false, None)
    }

    /// Declares a global with full control over writability and contents.
    pub fn global_full(
        &mut self,
        name: &str,
        size: u64,
        writable: bool,
        init: Option<Vec<u8>>,
    ) -> GlobalId {
        assert!(
            self.program.global_by_name(name).is_none(),
            "global `{name}` declared twice"
        );
        self.program.globals.push(GlobalDef {
            name: name.into(),
            size,
            writable,
            init,
        });
        GlobalId(self.program.globals.len() as u32 - 1)
    }

    /// Declares a function-pointer type; returns its signature id.
    /// Re-declaring the same name returns the original id.
    pub fn sig(&mut self, name: &str, params: u8) -> SigId {
        if let Some(id) = self.program.sig_by_name(name) {
            assert_eq!(
                self.program.sigs[id.0 as usize].params, params,
                "signature `{name}` redeclared with different arity"
            );
            return id;
        }
        self.program.sigs.push(SigDecl {
            name: name.into(),
            params,
        });
        SigId(self.program.sigs.len() as u32 - 1)
    }

    /// Pre-declares a function so it can be called before its body is
    /// defined (mutual recursion); the body must be supplied later via
    /// [`ProgramBuilder::define`].
    pub fn declare(&mut self, name: &str, params: u8) -> FuncId {
        if let Some(&id) = self.func_names.get(name) {
            return id;
        }
        let id = FuncId(self.program.funcs.len() as u32);
        self.program.funcs.push(Function {
            name: name.into(),
            params,
            frame_size: 0,
            insts: Vec::new(),
        });
        self.func_names.insert(name.into(), id);
        id
    }

    /// Defines a function body with a [`FunctionBuilder`] closure.
    pub fn define(
        &mut self,
        name: &str,
        params: u8,
        frame_size: u32,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare(name, params);
        let f = &mut self.program.funcs[id.0 as usize];
        assert!(f.insts.is_empty(), "function `{name}` defined twice");
        assert_eq!(f.params, params, "function `{name}` arity mismatch");
        f.frame_size = frame_size;
        let mut fb = FunctionBuilder::new();
        body(&mut fb);
        f.insts = fb.finish();
        id
    }

    /// Records a static-initializer relocation: at load time the address
    /// of `func` is written into `global` at `offset` (like a C ops-table
    /// initializer). Also usable for read-only globals.
    pub fn fn_reloc(&mut self, global: GlobalId, offset: u64, func: FuncId) {
        self.program.fn_relocs.push(crate::program::FnReloc {
            global,
            offset,
            func,
        });
    }

    /// Records that `func` is used as a value of function-pointer type
    /// `sig` (for annotation propagation, §4.2).
    pub fn assign_sig(&mut self, func: FuncId, sig: SigId) {
        let fact = SigAssignment { func, sig };
        if !self.program.sig_assignments.contains(&fact) {
            self.program.sig_assignments.push(fact);
        }
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if any declared function was never defined.
    pub fn finish(self) -> Program {
        for f in &self.program.funcs {
            assert!(
                !f.insts.is_empty(),
                "function `{}` declared but never defined",
                f.name
            );
        }
        self.program
    }
}

/// Assembles one function body. Emission methods append instructions;
/// labels are patched at [`FunctionBuilder::finish`].
pub struct FunctionBuilder {
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
}

impl FunctionBuilder {
    fn new() -> Self {
        FunctionBuilder {
            insts: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at inst {}",
            self.insts.len()
        );
        self.labels[label.0] = Some(self.insts.len());
    }

    /// Emits `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.insts.push(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Emits `dst = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.insts.push(Inst::Bin {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// Emits `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// Emits `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// Emits `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// Emits a typed load `dst = mem[base + off]`.
    pub fn load(&mut self, dst: Reg, base: impl Into<Operand>, off: i64, width: Width) {
        self.insts.push(Inst::Load {
            dst,
            base: base.into(),
            off,
            width,
        });
    }

    /// Emits a 64-bit load `dst = mem[base + off]`.
    pub fn load8(&mut self, dst: Reg, base: impl Into<Operand>, off: i64) {
        self.load(dst, base, off, Width::B8);
    }

    /// Emits a typed store `mem[base + off] = src`.
    pub fn store(
        &mut self,
        src: impl Into<Operand>,
        base: impl Into<Operand>,
        off: i64,
        width: Width,
    ) {
        self.insts.push(Inst::Store {
            src: src.into(),
            base: base.into(),
            off,
            width,
        });
    }

    /// Emits a 64-bit store `mem[base + off] = src`.
    pub fn store8(&mut self, src: impl Into<Operand>, base: impl Into<Operand>, off: i64) {
        self.store(src, base, off, Width::B8);
    }

    /// Emits a frame-local load `dst = mem[sp + off]`.
    pub fn load_frame(&mut self, dst: Reg, off: u32, width: Width) {
        self.insts.push(Inst::LoadFrame { dst, off, width });
    }

    /// Emits a frame-local store `mem[sp + off] = src`.
    pub fn store_frame(&mut self, src: impl Into<Operand>, off: u32, width: Width) {
        self.insts.push(Inst::StoreFrame {
            src: src.into(),
            off,
            width,
        });
    }

    /// Emits `dst = sp + off` (address of a frame local).
    pub fn frame_addr(&mut self, dst: Reg, off: u32) {
        self.insts.push(Inst::FrameAddr { dst, off });
    }

    /// Emits `dst = &global`.
    pub fn global_addr(&mut self, dst: Reg, global: GlobalId) {
        self.insts.push(Inst::GlobalAddr { dst, global });
    }

    /// Emits `dst = &kernel_symbol`.
    pub fn sym_addr(&mut self, dst: Reg, sym: SymbolId) {
        self.insts.push(Inst::SymAddr { dst, sym });
    }

    /// Emits `dst = &local_function`.
    pub fn func_addr(&mut self, dst: Reg, func: FuncId) {
        self.insts.push(Inst::FuncAddr { dst, func });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.insts.push(Inst::Jmp { target: label.0 });
    }

    /// Emits a conditional branch to `label`.
    pub fn br(
        &mut self,
        cond: Cond,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        label: Label,
    ) {
        self.insts.push(Inst::Br {
            cond,
            lhs: lhs.into(),
            rhs: rhs.into(),
            target: label.0,
        });
    }

    /// Emits a direct call to a module-local function.
    pub fn call_local(&mut self, func: FuncId, args: &[Operand], ret: Option<Reg>) {
        self.insts.push(Inst::CallLocal {
            func,
            args: args.to_vec(),
            ret,
        });
    }

    /// Emits a call to an imported kernel function.
    pub fn call_extern(&mut self, sym: SymbolId, args: &[Operand], ret: Option<Reg>) {
        self.insts.push(Inst::CallExtern {
            sym,
            args: args.to_vec(),
            ret,
        });
    }

    /// Emits an indirect call through a function pointer of type `sig`.
    pub fn call_ptr(
        &mut self,
        ptr: impl Into<Operand>,
        sig: SigId,
        args: &[Operand],
        ret: Option<Reg>,
    ) {
        self.insts.push(Inst::CallPtr {
            ptr: ptr.into(),
            sig,
            args: args.to_vec(),
            ret,
        });
    }

    /// Emits `return src`.
    pub fn ret(&mut self, val: impl Into<Operand>) {
        self.insts.push(Inst::Ret {
            val: Some(val.into()),
        });
    }

    /// Emits `return` with no value.
    pub fn ret_void(&mut self) {
        self.insts.push(Inst::Ret { val: None });
    }

    /// Emits `BUG(code)`.
    pub fn trap(&mut self, code: u64) {
        self.insts.push(Inst::Trap { code });
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.insts.push(Inst::Nop);
    }

    /// Emits an LXFI write guard (normally only the rewriter does this;
    /// exposed for tests and hand-instrumented code).
    pub fn guard_write(&mut self, base: impl Into<Operand>, off: i64, len: impl Into<Operand>) {
        self.insts.push(Inst::GuardWrite {
            base: base.into(),
            off,
            len: len.into(),
        });
    }

    /// Emits an LXFI kernel-side indirect-call guard.
    pub fn guard_indcall(&mut self, slot_base: impl Into<Operand>, slot_off: i64, sig: SigId) {
        self.insts.push(Inst::GuardIndCall {
            slot_base: slot_base.into(),
            slot_off,
            sig,
        });
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    fn finish(mut self) -> Vec<Inst> {
        let labels = self.labels;
        for (idx, inst) in self.insts.iter_mut().enumerate() {
            if let Some(t) = inst.jump_target() {
                let bound = labels
                    .get(t)
                    .and_then(|b| *b)
                    .unwrap_or_else(|| panic!("unbound label L{t} used at inst {idx}"));
                inst.map_target(|_| bound);
            }
        }
        self.insts
    }
}

/// Shorthand constructors for registers `r0..r15`.
pub mod regs {
    use crate::isa::Reg;

    macro_rules! defreg {
        ($($name:ident = $n:expr),* $(,)?) => {
            $(
                #[doc = concat!("Register r", stringify!($n), ".")]
                pub const $name: Reg = Reg($n);
            )*
        };
    }

    defreg!(
        R0 = 0,
        R1 = 1,
        R2 = 2,
        R3 = 3,
        R4 = 4,
        R5 = 5,
        R6 = 6,
        R7 = 7,
        R8 = 8,
        R9 = 9,
        R10 = 10,
        R11 = 11,
        R12 = 12,
        R13 = 13,
        R14 = 14,
        R15 = 15,
    );
}

#[cfg(test)]
mod tests {
    use super::regs::*;
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("loop", 1, 0, |f| {
            let top = f.label();
            let out = f.label();
            f.mov(R1, 0i64);
            f.bind(top);
            f.br(Cond::Eq, R0, 0i64, out);
            f.add(R1, R1, 1i64);
            f.sub(R0, R0, 1i64);
            f.jmp(top);
            f.bind(out);
            f.ret(R1);
        });
        let p = pb.finish();
        let f = p.func(FuncId(0));
        assert_eq!(f.insts[1].jump_target(), Some(5));
        assert_eq!(f.insts[4].jump_target(), Some(1));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("bad", 0, 0, |f| {
            let l = f.label();
            f.jmp(l);
        });
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 0, 0, |f| f.ret_void());
        pb.define("f", 0, 0, |f| f.ret_void());
    }

    #[test]
    fn imports_are_deduplicated() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.import_func("kmalloc");
        let b = pb.import_func("kmalloc");
        assert_eq!(a, b);
        let p = {
            pb.define("f", 0, 0, |f| f.ret_void());
            pb.finish()
        };
        assert_eq!(p.imports.len(), 1);
    }

    #[test]
    fn sig_assignment_recorded_once() {
        let mut pb = ProgramBuilder::new("t");
        let s = pb.sig("cb", 1);
        let f = pb.define("f", 1, 0, |f| f.ret_void());
        pb.assign_sig(f, s);
        pb.assign_sig(f, s);
        let p = pb.finish();
        assert_eq!(p.sig_assignments.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_declaration_panics_on_finish() {
        let mut pb = ProgramBuilder::new("t");
        pb.declare("ghost", 0);
        pb.finish();
    }
}
